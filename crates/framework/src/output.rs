//! Output encoding: JSON lines with field-group filtering.

use serde_json::Value;
use zdns_modules::ModuleOutput;

use crate::conf::OutputGroup;

/// Shape a module output according to the selected field group.
pub fn shape(output: &ModuleOutput, group: OutputGroup) -> Value {
    let mut v = output.to_json();
    match group {
        OutputGroup::Short => {
            // Name + status (+ bare answers when present).
            let answers = v["data"].get("answers").cloned();
            let mut short = serde_json::json!({
                "name": v["name"],
                "status": v["status"],
            });
            if let Some(a) = answers {
                short["data"] = serde_json::json!({ "answers": a });
            }
            short
        }
        OutputGroup::Normal => {
            if let Some(obj) = v.as_object_mut() {
                obj.remove("trace");
                if let Some(data) = obj.get_mut("data").and_then(Value::as_object_mut) {
                    data.remove("additionals");
                    data.remove("flags");
                }
            }
            v
        }
        OutputGroup::Long => {
            if let Some(obj) = v.as_object_mut() {
                obj.remove("trace");
            }
            v
        }
        OutputGroup::Trace => v,
    }
}

/// Serialize one output line.
pub fn to_line(output: &ModuleOutput, group: OutputGroup) -> String {
    shape(output, group).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zdns_core::Status;

    fn sample() -> ModuleOutput {
        ModuleOutput {
            name: "example.com".into(),
            module: "A",
            status: Status::NoError,
            data: serde_json::json!({
                "answers": [{"answer": "192.0.2.1", "type": "A"}],
                "additionals": [{"answer": "192.0.2.2", "type": "A"}],
                "flags": {"authoritative": true},
            }),
            trace: vec![serde_json::json!({"depth": 1})],
        }
    }

    #[test]
    fn short_keeps_name_status_answers() {
        let v = shape(&sample(), OutputGroup::Short);
        assert_eq!(v["name"], "example.com");
        assert_eq!(v["status"], "NOERROR");
        assert!(v["data"]["answers"].is_array());
        assert!(v.get("module").is_none());
    }

    #[test]
    fn normal_drops_trace_and_noise() {
        let v = shape(&sample(), OutputGroup::Normal);
        assert!(v.get("trace").is_none());
        assert!(v["data"].get("additionals").is_none());
        assert!(v["data"].get("flags").is_none());
        assert!(v["data"]["answers"].is_array());
    }

    #[test]
    fn long_keeps_flags_but_not_trace() {
        let v = shape(&sample(), OutputGroup::Long);
        assert!(v.get("trace").is_none());
        assert!(v["data"]["flags"].is_object());
    }

    #[test]
    fn trace_keeps_everything() {
        let v = shape(&sample(), OutputGroup::Trace);
        assert!(v["trace"].is_array());
        let line = to_line(&sample(), OutputGroup::Trace);
        assert!(line.contains("\"depth\":1"));
        assert!(!line.contains('\n'));
    }
}
