//! Output encoding: JSON lines with field-group filtering.
//!
//! Two serialization paths produce byte-identical lines:
//!
//! * [`to_line`] — the convenient one-shot form: builds the shaped
//!   [`Value`] and renders it into a fresh `String` (one tree clone +
//!   one allocation per output).
//! * [`write_line`] — the scan-pipeline hot path: shapes and serializes
//!   straight into a caller-owned reusable buffer, touching the
//!   allocator zero times per line once the buffer has grown to its
//!   high-water mark.
//!
//! The [`OutputSink`] trait is the streaming consumer side: the scan
//! pipeline hands every [`ModuleOutput`] to one sink ([`JsonlSink`] for
//! JSONL files/stdout, [`CallbackSink`] for in-process consumers), and
//! the pipeline's bounded output queue means a sink that cannot keep up
//! throttles admission instead of ballooning memory.

use std::io::Write as IoWrite;

use serde_json::{write_escaped, Value};
use zdns_modules::ModuleOutput;

use crate::conf::OutputGroup;

/// Shape a module output according to the selected field group.
pub fn shape(output: &ModuleOutput, group: OutputGroup) -> Value {
    let mut v = output.to_json();
    match group {
        OutputGroup::Short => {
            // Name + status (+ bare answers when present).
            let answers = v["data"].get("answers").cloned();
            let mut short = serde_json::json!({
                "name": v["name"],
                "status": v["status"],
            });
            if let Some(a) = answers {
                short["data"] = serde_json::json!({ "answers": a });
            }
            short
        }
        OutputGroup::Normal => {
            if let Some(obj) = v.as_object_mut() {
                obj.remove("trace");
                if let Some(data) = obj.get_mut("data").and_then(Value::as_object_mut) {
                    data.remove("additionals");
                    data.remove("flags");
                }
            }
            v
        }
        OutputGroup::Long => {
            if let Some(obj) = v.as_object_mut() {
                obj.remove("trace");
            }
            v
        }
        OutputGroup::Trace => v,
    }
}

/// Serialize one output line.
pub fn to_line(output: &ModuleOutput, group: OutputGroup) -> String {
    shape(output, group).to_string()
}

/// Shape and serialize one output straight into `buf` (cleared first),
/// producing exactly the bytes [`to_line`] would — without building a
/// shaped [`Value`] tree or a per-line `String`. This is what the
/// streaming sink runs per output, so a warmed buffer makes the
/// serialization side of the pipeline allocation-free.
pub fn write_line(output: &ModuleOutput, group: OutputGroup, buf: &mut String) {
    use std::fmt::Write;
    buf.clear();
    match group {
        OutputGroup::Short => {
            buf.push_str("{\"name\":");
            let _ = write_escaped(&output.name, buf);
            buf.push_str(",\"status\":");
            let _ = write_escaped(output.status.as_str(), buf);
            if let Some(answers) = output.data.get("answers") {
                buf.push_str(",\"data\":{\"answers\":");
                let _ = write!(buf, "{answers}");
                buf.push('}');
            }
            buf.push('}');
        }
        OutputGroup::Normal => write_full(output, buf, true, false),
        OutputGroup::Long => write_full(output, buf, false, false),
        OutputGroup::Trace => write_full(output, buf, false, true),
    }
}

/// The full output shape (`name`/`class`/`status`/`module`/`data`),
/// optionally dropping the noisy `data` members and appending the trace.
fn write_full(output: &ModuleOutput, buf: &mut String, drop_noise: bool, include_trace: bool) {
    use std::fmt::Write;
    buf.push_str("{\"name\":");
    let _ = write_escaped(&output.name, buf);
    buf.push_str(",\"class\":\"IN\",\"status\":");
    let _ = write_escaped(output.status.as_str(), buf);
    buf.push_str(",\"module\":");
    let _ = write_escaped(output.module, buf);
    buf.push_str(",\"data\":");
    match (&output.data, drop_noise) {
        (Value::Object(map), true) => {
            buf.push('{');
            let mut first = true;
            for (k, v) in map.iter() {
                if k == "additionals" || k == "flags" {
                    continue;
                }
                if !first {
                    buf.push(',');
                }
                first = false;
                let _ = write_escaped(k, buf);
                buf.push(':');
                let _ = write!(buf, "{v}");
            }
            buf.push('}');
        }
        (data, _) => {
            let _ = write!(buf, "{data}");
        }
    }
    if include_trace && !output.trace.is_empty() {
        buf.push_str(",\"trace\":[");
        for (i, step) in output.trace.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            let _ = write!(buf, "{step}");
        }
        buf.push(']');
    }
    buf.push('}');
}

/// The streaming consumer side of a scan: one sink receives every
/// [`ModuleOutput`] the scan produces, on a single writer thread, behind
/// the pipeline's bounded output queue (a slow sink therefore throttles
/// admission rather than growing an unbounded backlog).
pub trait OutputSink: Send {
    /// Consume one output.
    fn write_output(&mut self, output: ModuleOutput) -> std::io::Result<()>;

    /// Flush anything buffered (end of scan).
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }

    /// Outputs consumed so far.
    fn outputs_written(&self) -> u64;
}

/// JSON-lines sink over any writer: shapes and serializes each output
/// into one reusable buffer ([`write_line`]), then writes buffer +
/// newline — no per-line `Value` clone, no per-line `String`.
pub struct JsonlSink<W: IoWrite + Send> {
    writer: W,
    group: OutputGroup,
    buf: String,
    written: u64,
}

impl<W: IoWrite + Send> JsonlSink<W> {
    /// A sink rendering `group`-shaped lines into `writer`.
    pub fn new(writer: W, group: OutputGroup) -> JsonlSink<W> {
        JsonlSink {
            writer,
            group,
            buf: String::new(),
            written: 0,
        }
    }

    /// Unwrap the writer (tests inspect what was written).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: IoWrite + Send> OutputSink for JsonlSink<W> {
    fn write_output(&mut self, output: ModuleOutput) -> std::io::Result<()> {
        write_line(&output, self.group, &mut self.buf);
        self.buf.push('\n');
        self.writer.write_all(self.buf.as_bytes())?;
        self.written += 1;
        Ok(())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }

    fn outputs_written(&self) -> u64 {
        self.written
    }
}

/// Adapter running a closure per output — how the pre-pipeline
/// `on_output` callback surface plugs into the sink-shaped pipeline.
pub struct CallbackSink<F: FnMut(ModuleOutput) + Send> {
    callback: F,
    written: u64,
}

impl<F: FnMut(ModuleOutput) + Send> CallbackSink<F> {
    /// Wrap `callback` as a sink.
    pub fn new(callback: F) -> CallbackSink<F> {
        CallbackSink {
            callback,
            written: 0,
        }
    }
}

impl<F: FnMut(ModuleOutput) + Send> OutputSink for CallbackSink<F> {
    fn write_output(&mut self, output: ModuleOutput) -> std::io::Result<()> {
        (self.callback)(output);
        self.written += 1;
        Ok(())
    }

    fn outputs_written(&self) -> u64 {
        self.written
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zdns_core::Status;

    fn sample() -> ModuleOutput {
        ModuleOutput {
            name: "example.com".into(),
            module: "A",
            status: Status::NoError,
            data: serde_json::json!({
                "answers": [{"answer": "192.0.2.1", "type": "A"}],
                "additionals": [{"answer": "192.0.2.2", "type": "A"}],
                "flags": {"authoritative": true},
            }),
            trace: vec![serde_json::json!({"depth": 1})],
        }
    }

    #[test]
    fn short_keeps_name_status_answers() {
        let v = shape(&sample(), OutputGroup::Short);
        assert_eq!(v["name"], "example.com");
        assert_eq!(v["status"], "NOERROR");
        assert!(v["data"]["answers"].is_array());
        assert!(v.get("module").is_none());
    }

    #[test]
    fn normal_drops_trace_and_noise() {
        let v = shape(&sample(), OutputGroup::Normal);
        assert!(v.get("trace").is_none());
        assert!(v["data"].get("additionals").is_none());
        assert!(v["data"].get("flags").is_none());
        assert!(v["data"]["answers"].is_array());
    }

    #[test]
    fn long_keeps_flags_but_not_trace() {
        let v = shape(&sample(), OutputGroup::Long);
        assert!(v.get("trace").is_none());
        assert!(v["data"]["flags"].is_object());
    }

    #[test]
    fn trace_keeps_everything() {
        let v = shape(&sample(), OutputGroup::Trace);
        assert!(v["trace"].is_array());
        let line = to_line(&sample(), OutputGroup::Trace);
        assert!(line.contains("\"depth\":1"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn write_line_matches_to_line_byte_for_byte() {
        let mut buf = String::new();
        let samples = [
            sample(),
            // Non-object data (bad input) and escapes in the name.
            ModuleOutput {
                name: "we\"ird\\name\n.test".into(),
                module: "A",
                status: Status::IllegalInput,
                data: serde_json::Value::Null,
                trace: Vec::new(),
            },
        ];
        for output in &samples {
            for group in [
                OutputGroup::Short,
                OutputGroup::Normal,
                OutputGroup::Long,
                OutputGroup::Trace,
            ] {
                write_line(output, group, &mut buf);
                assert_eq!(buf, to_line(output, group), "{group:?}");
            }
        }
    }

    #[test]
    fn jsonl_sink_reuses_buffer_and_counts_lines() {
        let mut sink = JsonlSink::new(Vec::new(), OutputGroup::Normal);
        for _ in 0..3 {
            sink.write_output(sample()).unwrap();
        }
        assert_eq!(sink.outputs_written(), 3);
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], to_line(&sample(), OutputGroup::Normal));
    }

    #[test]
    fn callback_sink_forwards_outputs() {
        let seen = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let s2 = std::sync::Arc::clone(&seen);
        let mut sink = CallbackSink::new(move |o: ModuleOutput| s2.lock().push(o.name));
        sink.write_output(sample()).unwrap();
        assert_eq!(sink.outputs_written(), 1);
        assert_eq!(seen.lock().as_slice(), ["example.com".to_string()]);
    }
}
