//! Scan orchestration.
//!
//! Two drivers around the same module machines:
//!
//! * [`run_sim_scan`] — hands machines to the discrete-event engine, one
//!   per lookup routine, against a simulated Internet. This is how the
//!   paper-scale experiments run.
//! * [`run_real_scan`] — a worker-thread pool where every worker owns one
//!   long-lived UDP socket and drives machines over real I/O (used against
//!   loopback wire servers in tests and demos).

use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel;
use parking_lot::Mutex;
use zdns_core::{drive_blocking, AddrMap, Resolver, ResolverConfig, UdpTransport};
use zdns_modules::{LookupModule, ModuleOutput, ModuleSink};
use zdns_netsim::{Engine, EngineConfig, PublicResolverConfig, PublicResolverSim, RunReport};
use zdns_zones::Universe;

use crate::conf::Conf;

/// Well-known simulated public resolver addresses.
pub const GOOGLE_DNS: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);
/// Cloudflare's simulated resolver address.
pub const CLOUDFLARE_DNS: Ipv4Addr = Ipv4Addr::new(1, 1, 1, 1);

/// Build the resolver a scan will use, filling root hints from the
/// universe when iterative.
pub fn resolver_for(conf: &Conf, universe: &dyn Universe) -> Resolver {
    let mut rc: ResolverConfig = conf.resolver.clone();
    if matches!(rc.mode, zdns_core::ResolutionMode::Iterative) {
        rc.root_hints = universe.root_hints();
    }
    Resolver::new(rc)
}

/// Run a scan inside the simulator. Outputs stream into `on_output`;
/// returns the engine's run report (virtual-time makespan, rates, drops).
pub fn run_sim_scan<I>(
    conf: &Conf,
    universe: Arc<dyn Universe>,
    module: Arc<dyn LookupModule>,
    inputs: I,
    on_output: impl FnMut(ModuleOutput) + Send + 'static,
) -> RunReport
where
    I: Iterator<Item = String>,
{
    let resolver = resolver_for(conf, universe.as_ref());
    run_sim_scan_with(conf, universe, module, &resolver, inputs, on_output)
}

/// Like [`run_sim_scan`] but with a caller-provided resolver (so repeated
/// runs can share a warm cache, as in Figure 2).
pub fn run_sim_scan_with<I>(
    conf: &Conf,
    universe: Arc<dyn Universe>,
    module: Arc<dyn LookupModule>,
    resolver: &Resolver,
    inputs: I,
    on_output: impl FnMut(ModuleOutput) + Send + 'static,
) -> RunReport
where
    I: Iterator<Item = String>,
{
    let mut engine = Engine::new(
        EngineConfig {
            threads: conf.threads,
            client_ips: conf.client_ips(),
            seed: conf.seed,
            ..EngineConfig::default()
        },
        universe,
    );
    engine.add_resolver(PublicResolverSim::new(PublicResolverConfig::google(
        GOOGLE_DNS,
    )));
    engine.add_resolver(PublicResolverSim::new(PublicResolverConfig::cloudflare(
        CLOUDFLARE_DNS,
    )));
    let callback = Arc::new(Mutex::new(on_output));
    let sink: ModuleSink = Arc::new(move |o| (callback.lock())(o));
    let resolver = resolver.clone();
    let mut inputs = inputs;
    engine.run(move || {
        let input = inputs.next()?;
        Some(module.make_machine(&input, &resolver, sink.clone()))
    })
}

/// Report from a real-socket scan.
#[derive(Debug, Default)]
pub struct RealScanReport {
    /// Lookups completed.
    pub lookups: u64,
    /// Lookups with NOERROR/NXDOMAIN status.
    pub successes: u64,
    /// Wall-clock duration.
    pub elapsed: std::time::Duration,
}

/// Run a scan over real sockets with a pool of worker threads. The worker
/// count is `min(conf.threads, 256)` — OS threads are not goroutines.
pub fn run_real_scan<I>(
    conf: &Conf,
    resolver: &Resolver,
    module: Arc<dyn LookupModule>,
    addr_map: Arc<AddrMap>,
    inputs: I,
    on_output: impl FnMut(ModuleOutput) + Send + 'static,
) -> RealScanReport
where
    I: Iterator<Item = String>,
{
    let workers = conf.threads.clamp(1, 256);
    let (input_tx, input_rx) = channel::bounded::<String>(workers * 4);
    let (output_tx, output_rx) = channel::unbounded::<ModuleOutput>();
    let successes = Arc::new(AtomicU64::new(0));
    let lookups = Arc::new(AtomicU64::new(0));
    let started = std::time::Instant::now();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let input_rx = input_rx.clone();
            let output_tx = output_tx.clone();
            let module = Arc::clone(&module);
            let resolver = resolver.clone();
            let addr_map = Arc::clone(&addr_map);
            let successes = Arc::clone(&successes);
            let lookups = Arc::clone(&lookups);
            scope.spawn(move || {
                // One long-lived socket per routine (§3.4).
                let Ok(mut transport) = UdpTransport::bind(Ipv4Addr::UNSPECIFIED) else {
                    return;
                };
                while let Ok(input) = input_rx.recv() {
                    let (tx2, collected) = channel::bounded::<ModuleOutput>(4);
                    let sink: ModuleSink = Arc::new(move |o| {
                        let _ = tx2.send(o);
                    });
                    let mut machine = module.make_machine(&input, &resolver, sink);
                    let outcome = drive_blocking(machine.as_mut(), &mut transport, &*addr_map);
                    lookups.fetch_add(1, Ordering::Relaxed);
                    if matches!(&outcome, Some(o) if o.success) {
                        successes.fetch_add(1, Ordering::Relaxed);
                    }
                    while let Ok(output) = collected.try_recv() {
                        let _ = output_tx.send(output);
                    }
                }
            });
        }
        drop(output_tx);
        // Writer thread drains outputs while inputs feed in.
        let writer = scope.spawn(move || {
            let mut on_output = on_output;
            while let Ok(output) = output_rx.recv() {
                on_output(output);
            }
        });
        for input in inputs {
            if input_tx.send(input).is_err() {
                break;
            }
        }
        drop(input_tx);
        let _ = writer.join();
    });

    RealScanReport {
        lookups: lookups.load(Ordering::Relaxed),
        successes: successes.load(Ordering::Relaxed),
        elapsed: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zdns_modules::ModuleRegistry;
    use zdns_zones::{SynthConfig, SyntheticUniverse};

    #[test]
    fn sim_scan_produces_one_output_per_input() {
        let conf = Conf::parse(["A", "--iterative", "--threads", "16"]).unwrap();
        let universe = Arc::new(SyntheticUniverse::new(SynthConfig::default()));
        let module = ModuleRegistry::standard().get("A").unwrap();
        let outputs = Arc::new(Mutex::new(Vec::new()));
        let sink_outputs = Arc::clone(&outputs);
        let inputs: Vec<String> = (0..50).map(|i| format!("runner{i}.com")).collect();
        let report = run_sim_scan(
            &conf,
            universe,
            module,
            inputs.into_iter(),
            move |o| sink_outputs.lock().push(o),
        );
        assert_eq!(report.jobs, 50);
        assert_eq!(outputs.lock().len(), 50);
        // ~70% exist; NXDOMAIN also counts as success.
        assert!(report.success_rate() > 0.9, "{:?}", report.status_counts);
    }

    #[test]
    fn sim_scan_external_mode_uses_public_resolver() {
        let conf = Conf::parse(["A", "--name-servers", "8.8.8.8", "--threads", "8"]).unwrap();
        let universe = Arc::new(SyntheticUniverse::new(SynthConfig::default()));
        let module = ModuleRegistry::standard().get("A").unwrap();
        let count = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&count);
        let inputs: Vec<String> = (0..30).map(|i| format!("ext{i}.net")).collect();
        let report = run_sim_scan(
            &conf,
            universe,
            module,
            inputs.into_iter(),
            move |_| {
                c2.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(count.load(Ordering::Relaxed), 30);
        // External mode sends ~1 query per lookup (plus retries).
        let qpl = report.queries_sent as f64 / report.jobs as f64;
        assert!(qpl < 2.0, "queries per lookup {qpl}");
    }
}
