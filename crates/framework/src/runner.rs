//! Scan orchestration.
//!
//! Two drivers around the same module machines:
//!
//! * [`run_sim_scan`] — hands machines to the discrete-event engine, one
//!   per lookup routine, against a simulated Internet. This is how the
//!   paper-scale experiments run.
//! * [`run_real_scan`] — a small pool of reactor workers, each owning one
//!   long-lived non-blocking UDP socket and multiplexing hundreds of
//!   in-flight lookup machines over it (the paper's event-driven
//!   architecture: concurrency comes from in-flight lookups, not OS
//!   threads). The admission window is `--max-in-flight`.

use std::collections::HashMap;
use std::net::{Ipv4Addr, UdpSocket};
use std::sync::Arc;

use crossbeam::channel;
use parking_lot::Mutex;
use zdns_core::{
    AddrMap, Admission, Driver, DriverReport, Pacer, Reactor, ReactorConfig, Resolver,
    ResolverConfig,
};
use zdns_modules::{LookupModule, ModuleOutput, ModuleSink};
use zdns_netsim::{Engine, EngineConfig, PublicResolverConfig, PublicResolverSim, RunReport};
use zdns_zones::Universe;

use crate::conf::Conf;

/// Well-known simulated public resolver addresses.
pub const GOOGLE_DNS: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);
/// Cloudflare's simulated resolver address.
pub const CLOUDFLARE_DNS: Ipv4Addr = Ipv4Addr::new(1, 1, 1, 1);

/// Build the resolver a scan will use, filling root hints from the
/// universe when iterative.
pub fn resolver_for(conf: &Conf, universe: &dyn Universe) -> Resolver {
    let mut rc: ResolverConfig = conf.resolver.clone();
    if matches!(rc.mode, zdns_core::ResolutionMode::Iterative) {
        rc.root_hints = universe.root_hints();
    }
    Resolver::new(rc)
}

/// Run a scan inside the simulator. Outputs stream into `on_output`;
/// returns the engine's run report (virtual-time makespan, rates, drops).
pub fn run_sim_scan<I>(
    conf: &Conf,
    universe: Arc<dyn Universe>,
    module: Arc<dyn LookupModule>,
    inputs: I,
    on_output: impl FnMut(ModuleOutput) + Send + 'static,
) -> RunReport
where
    I: Iterator<Item = String>,
{
    let resolver = resolver_for(conf, universe.as_ref());
    run_sim_scan_with(conf, universe, module, &resolver, inputs, on_output)
}

/// Like [`run_sim_scan`] but with a caller-provided resolver (so repeated
/// runs can share a warm cache, as in Figure 2).
pub fn run_sim_scan_with<I>(
    conf: &Conf,
    universe: Arc<dyn Universe>,
    module: Arc<dyn LookupModule>,
    resolver: &Resolver,
    inputs: I,
    on_output: impl FnMut(ModuleOutput) + Send + 'static,
) -> RunReport
where
    I: Iterator<Item = String>,
{
    let mut engine = Engine::new(
        EngineConfig {
            threads: conf.threads,
            client_ips: conf.client_ips(),
            seed: conf.seed,
            ..EngineConfig::default()
        },
        universe,
    );
    engine.add_resolver(PublicResolverSim::new(PublicResolverConfig::google(
        GOOGLE_DNS,
    )));
    engine.add_resolver(PublicResolverSim::new(PublicResolverConfig::cloudflare(
        CLOUDFLARE_DNS,
    )));
    // Polite-scanning budgets apply under virtual time too: the engine
    // admits every simulated send through the same pacer the real-socket
    // drivers use.
    let pacer_config = conf.pacer_config();
    if pacer_config.enabled() {
        engine.set_send_gate(Box::new(Pacer::new(pacer_config)));
    }
    let callback = Arc::new(Mutex::new(on_output));
    let sink: ModuleSink = Arc::new(move |o| (callback.lock())(o));
    let resolver = resolver.clone();
    let mut inputs = inputs;
    engine.run(move || {
        let input = inputs.next()?;
        Some(module.make_machine(&input, &resolver, sink.clone()))
    })
}

/// Report from a real-socket scan — parity with the simulator's
/// [`RunReport`]: per-status counts, query/retry totals, and rates.
#[derive(Debug, Default)]
pub struct RealScanReport {
    /// Lookups completed.
    pub lookups: u64,
    /// Lookups with NOERROR/NXDOMAIN status.
    pub successes: u64,
    /// Outcome counts by status string.
    pub status_counts: HashMap<String, u64>,
    /// Queries sent on the wire during this scan.
    pub queries_sent: u64,
    /// Retries consumed by timeouts/transport failures.
    pub retries: u64,
    /// Reactor workers that drove the scan.
    pub workers: usize,
    /// Aggregated driver telemetry (demux stats, timer fires, peak
    /// in-flight per worker).
    pub driver: DriverReport,
    /// Worker startup failures (socket bind errors). A scan that could not
    /// start any worker reports every input as failed here.
    pub worker_errors: Vec<String>,
    /// Wall-clock duration.
    pub elapsed: std::time::Duration,
}

impl RealScanReport {
    /// Overall success fraction.
    pub fn success_rate(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        self.successes as f64 / self.lookups as f64
    }

    /// Completed lookups per wall-clock second.
    pub fn lookups_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.lookups as f64 / secs
    }

    /// The stderr summary line for this scan.
    pub fn summary_line(&self) -> String {
        let mut counts: Vec<(&String, &u64)> = self.status_counts.iter().collect();
        counts.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        let statuses = counts
            .iter()
            .map(|(s, n)| format!("{s}={n}"))
            .collect::<Vec<_>>()
            .join(" ");
        let pacing = if self.driver.queries_deferred > 0
            || self.driver.per_host_throttles > 0
            || self.driver.backpressure_requeues > 0
        {
            format!(
                ", {} deferred (max queue {}, {} per-host throttles, {} backpressure)",
                self.driver.queries_deferred,
                self.driver.max_deferred_depth,
                self.driver.per_host_throttles,
                self.driver.backpressure_requeues,
            )
        } else {
            String::new()
        };
        let batching = if self.driver.send_syscalls > 0 {
            format!(
                ", {:.1} dg/send-syscall ({} sent / {} syscalls)",
                self.driver.datagrams_sent as f64 / self.driver.send_syscalls as f64,
                self.driver.datagrams_sent,
                self.driver.send_syscalls,
            )
        } else {
            String::new()
        };
        format!(
            "zdns: {} lookups, {:.1}% success, {} queries, {} retries, {:.2}s, {:.0} lookups/s, {} workers (peak {} in flight){}{} [{}]",
            self.lookups,
            self.success_rate() * 100.0,
            self.queries_sent,
            self.retries,
            self.elapsed.as_secs_f64(),
            self.lookups_per_sec(),
            self.workers,
            self.driver.peak_in_flight,
            pacing,
            batching,
            statuses,
        )
    }
}

/// How many reactor workers a real scan uses: enough to spread the demux
/// load over cores, never more than 8 — concurrency comes from the
/// per-worker admission window, not from thread count.
pub fn real_worker_count(conf: &Conf) -> usize {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    conf.threads.clamp(1, cores.min(8))
}

/// Run a scan over real sockets: a handful of reactor workers, each
/// multiplexing up to `max_in_flight / workers` concurrent lookups over
/// one long-lived UDP socket. Socket bind failures are reported in
/// [`RealScanReport::worker_errors`]; if no worker can start, the scan
/// fails fast instead of deadlocking on the input channel.
pub fn run_real_scan<I>(
    conf: &Conf,
    resolver: &Resolver,
    module: Arc<dyn LookupModule>,
    addr_map: Arc<AddrMap>,
    inputs: I,
    on_output: impl FnMut(ModuleOutput) + Send + 'static,
) -> RealScanReport
where
    I: Iterator<Item = String>,
{
    let total_window = if conf.max_in_flight > 0 {
        conf.max_in_flight
    } else {
        conf.threads.max(1)
    };
    // Never spawn more workers than the window allows, and split the
    // window exactly: the aggregate in-flight cap must not exceed what
    // the user asked for (a polite scanner's rate contract).
    let workers = real_worker_count(conf).min(total_window);
    let started = std::time::Instant::now();
    let mut report = RealScanReport {
        workers,
        ..RealScanReport::default()
    };

    // Bind every worker socket up front so startup failures surface
    // immediately (satellite of the reactor refactor: a worker that dies
    // silently can deadlock a bounded input channel).
    let mut sockets = Vec::new();
    for i in 0..workers {
        match UdpSocket::bind((Ipv4Addr::UNSPECIFIED, 0)) {
            Ok(socket) => sockets.push(socket),
            Err(e) => report
                .worker_errors
                .push(format!("worker {i}: socket bind failed: {e}")),
        }
    }
    if sockets.is_empty() {
        report.elapsed = started.elapsed();
        return report;
    }
    let workers = sockets.len();
    report.workers = workers;

    let (input_tx, input_rx) = channel::bounded::<String>(total_window.max(workers * 4));
    let (output_tx, output_rx) = channel::unbounded::<ModuleOutput>();
    let stats_before = resolver.core().stats.snapshot();
    let merged: Arc<Mutex<(HashMap<String, u64>, DriverReport)>> =
        Arc::new(Mutex::new((HashMap::new(), DriverReport::default())));
    let startup_errors: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));

    std::thread::scope(|scope| {
        let base_window = total_window / workers;
        let extra = total_window % workers;
        for (worker_idx, socket) in sockets.into_iter().enumerate() {
            let per_worker_window = (base_window + usize::from(worker_idx < extra)).max(1);
            let input_rx = input_rx.clone();
            let output_tx = output_tx.clone();
            let module = Arc::clone(&module);
            let resolver = resolver.clone();
            let addr_map = Arc::clone(&addr_map);
            let merged = Arc::clone(&merged);
            let startup_errors = Arc::clone(&startup_errors);
            let pacer = conf.pacer_config().split(workers);
            let batch_size = if conf.batch_size > 0 {
                conf.batch_size
            } else {
                ReactorConfig::default().batch_size
            };
            scope.spawn(move || {
                let config = ReactorConfig {
                    max_in_flight: per_worker_window,
                    // Each worker gets an equal slice of the scan-wide
                    // budgets so the aggregate rate honours the flags.
                    pacer,
                    batch_size,
                    ..ReactorConfig::default()
                };
                // One long-lived socket per worker (§3.4), shared by every
                // lookup the worker has in flight.
                let mut reactor = match Reactor::from_socket(socket, config, addr_map) {
                    Ok(reactor) => reactor,
                    Err(e) => {
                        // Record the death; dropping this worker's input_rx
                        // clone is what lets the feeding loop fail fast when
                        // every worker dies.
                        startup_errors
                            .lock()
                            .push(format!("worker {worker_idx}: reactor start failed: {e}"));
                        return;
                    }
                };
                let sink: ModuleSink = Arc::new(move |o| {
                    let _ = output_tx.send(o);
                });
                let mut statuses: HashMap<&'static str, u64> = HashMap::new();
                let mut feed = || match input_rx.try_recv() {
                    Ok(input) => {
                        Admission::Admit(module.make_machine(&input, &resolver, sink.clone()))
                    }
                    Err(channel::TryRecvError::Empty) => Admission::Later,
                    Err(channel::TryRecvError::Disconnected) => Admission::Exhausted,
                };
                let mut on_done = |outcome: Option<zdns_netsim::JobOutcome>| {
                    let status = outcome.map(|o| o.status).unwrap_or("ERROR");
                    *statuses.entry(status).or_insert(0) += 1;
                };
                let driver_report = reactor.run_scan(&mut feed, &mut on_done);
                let mut merged = merged.lock();
                for (status, n) in statuses {
                    *merged.0.entry(status.to_string()).or_insert(0) += n;
                }
                merged.1.merge(&driver_report);
            });
        }
        drop(output_tx);
        // The parent must not hold a receiver: once every worker is gone,
        // sends below error out instead of deadlocking on a full channel.
        drop(input_rx);
        // Writer thread drains outputs while inputs feed in.
        let writer = scope.spawn(move || {
            let mut on_output = on_output;
            while let Ok(output) = output_rx.recv() {
                on_output(output);
            }
        });
        for input in inputs {
            if input_tx.send(input).is_err() {
                break;
            }
        }
        drop(input_tx);
        let _ = writer.join();
    });

    let stats_after = resolver.core().stats.snapshot();
    let merged = Arc::try_unwrap(merged)
        .map(Mutex::into_inner)
        .unwrap_or_else(|arc| arc.lock().clone());
    report.worker_errors.extend(startup_errors.lock().drain(..));
    report.status_counts = merged.0;
    report.driver = merged.1;
    report.lookups = report.driver.completed;
    report.successes = report.driver.successes;
    report.queries_sent = stats_after.queries_sent - stats_before.queries_sent;
    report.retries = stats_after.retries - stats_before.retries;
    report.elapsed = started.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use zdns_modules::ModuleRegistry;
    use zdns_zones::{SynthConfig, SyntheticUniverse};

    #[test]
    fn sim_scan_produces_one_output_per_input() {
        let conf = Conf::parse(["A", "--iterative", "--threads", "16"]).unwrap();
        let universe = Arc::new(SyntheticUniverse::new(SynthConfig::default()));
        let module = ModuleRegistry::standard().get("A").unwrap();
        let outputs = Arc::new(Mutex::new(Vec::new()));
        let sink_outputs = Arc::clone(&outputs);
        let inputs: Vec<String> = (0..50).map(|i| format!("runner{i}.com")).collect();
        let report = run_sim_scan(&conf, universe, module, inputs.into_iter(), move |o| {
            sink_outputs.lock().push(o)
        });
        assert_eq!(report.jobs, 50);
        assert_eq!(outputs.lock().len(), 50);
        // ~70% exist; NXDOMAIN also counts as success.
        assert!(report.success_rate() > 0.9, "{:?}", report.status_counts);
    }

    #[test]
    fn sim_scan_external_mode_uses_public_resolver() {
        let conf = Conf::parse(["A", "--name-servers", "8.8.8.8", "--threads", "8"]).unwrap();
        let universe = Arc::new(SyntheticUniverse::new(SynthConfig::default()));
        let module = ModuleRegistry::standard().get("A").unwrap();
        let count = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&count);
        let inputs: Vec<String> = (0..30).map(|i| format!("ext{i}.net")).collect();
        let report = run_sim_scan(&conf, universe, module, inputs.into_iter(), move |_| {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 30);
        // External mode sends ~1 query per lookup (plus retries).
        let qpl = report.queries_sent as f64 / report.jobs as f64;
        assert!(qpl < 2.0, "queries per lookup {qpl}");
    }
}
