//! Scan orchestration.
//!
//! Two drivers around the same module machines, fed through the same
//! streaming input layer ([`zdns_netsim::InputSource`]):
//!
//! * [`run_sim_scan`] — hands machines to the discrete-event engine, one
//!   per lookup routine, against a simulated Internet. This is how the
//!   paper-scale experiments run.
//! * [`run_real_scan`] — the callback-shaped wrapper over
//!   [`crate::pipeline::run_scan_pipeline`]: a small pool of reactor
//!   workers, each owning one long-lived non-blocking UDP socket and
//!   multiplexing hundreds of in-flight lookup machines over it (the
//!   paper's event-driven architecture: concurrency comes from in-flight
//!   lookups, not OS threads). The `--max-in-flight` admission window is
//!   a scan-wide credit pool the workers lease from (see the pipeline
//!   module docs); `--static-split` reverts to fixed per-worker slices.

use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

use parking_lot::Mutex;
use zdns_core::{AddrMap, DriverReport, Pacer, Resolver, ResolverConfig};
use zdns_modules::{LookupModule, ModuleOutput, ModuleSink};
use zdns_netsim::{Engine, EngineConfig, PublicResolverConfig, PublicResolverSim, RunReport};
use zdns_zones::Universe;

use crate::conf::Conf;
use crate::output::CallbackSink;
use crate::pipeline::run_scan_pipeline;

/// Well-known simulated public resolver addresses.
pub const GOOGLE_DNS: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);
/// Cloudflare's simulated resolver address.
pub const CLOUDFLARE_DNS: Ipv4Addr = Ipv4Addr::new(1, 1, 1, 1);

/// Build the resolver a scan will use, filling root hints from the
/// universe when iterative.
pub fn resolver_for(conf: &Conf, universe: &dyn Universe) -> Resolver {
    let mut rc: ResolverConfig = conf.resolver.clone();
    if matches!(rc.mode, zdns_core::ResolutionMode::Iterative) {
        rc.root_hints = universe.root_hints();
    }
    Resolver::new(rc)
}

/// Run a scan inside the simulator. Outputs stream into `on_output`;
/// returns the engine's run report (virtual-time makespan, rates, drops).
pub fn run_sim_scan<I>(
    conf: &Conf,
    universe: Arc<dyn Universe>,
    module: Arc<dyn LookupModule>,
    inputs: I,
    on_output: impl FnMut(ModuleOutput) + Send + 'static,
) -> RunReport
where
    I: Iterator<Item = String>,
{
    let resolver = resolver_for(conf, universe.as_ref());
    run_sim_scan_with(conf, universe, module, &resolver, inputs, on_output)
}

/// Like [`run_sim_scan`] but with a caller-provided resolver (so repeated
/// runs can share a warm cache, as in Figure 2).
pub fn run_sim_scan_with<I>(
    conf: &Conf,
    universe: Arc<dyn Universe>,
    module: Arc<dyn LookupModule>,
    resolver: &Resolver,
    inputs: I,
    on_output: impl FnMut(ModuleOutput) + Send + 'static,
) -> RunReport
where
    I: Iterator<Item = String>,
{
    let mut engine = Engine::new(
        EngineConfig {
            threads: conf.threads,
            client_ips: conf.client_ips(),
            seed: conf.seed,
            ..EngineConfig::default()
        },
        universe,
    );
    engine.add_resolver(PublicResolverSim::new(PublicResolverConfig::google(
        GOOGLE_DNS,
    )));
    engine.add_resolver(PublicResolverSim::new(PublicResolverConfig::cloudflare(
        CLOUDFLARE_DNS,
    )));
    // Polite-scanning budgets apply under virtual time too: the engine
    // admits every simulated send through the same pacer the real-socket
    // drivers use.
    let pacer_config = conf.pacer_config();
    if pacer_config.enabled() {
        engine.set_send_gate(Box::new(Pacer::new(pacer_config)));
    }
    let callback = Arc::new(Mutex::new(on_output));
    let sink: ModuleSink = Arc::new(move |o| (callback.lock())(o));
    let resolver = resolver.clone();
    let mut inputs = inputs;
    // The sim drains the same streaming input layer as the real-socket
    // pipeline: one InputSource, pulled a name at a time.
    engine.run_names(&mut inputs, move |input| {
        module.make_machine(input, &resolver, sink.clone())
    })
}

/// Report from a real-socket scan — parity with the simulator's
/// [`RunReport`]: per-status counts, query/retry totals, and rates.
#[derive(Debug, Default)]
pub struct RealScanReport {
    /// Lookups completed.
    pub lookups: u64,
    /// Lookups with NOERROR/NXDOMAIN status.
    pub successes: u64,
    /// Outcome counts by status string.
    pub status_counts: HashMap<String, u64>,
    /// Queries sent on the wire during this scan.
    pub queries_sent: u64,
    /// Retries consumed by timeouts/transport failures.
    pub retries: u64,
    /// Reactor workers that drove the scan.
    pub workers: usize,
    /// Aggregated driver telemetry (demux stats, timer fires, peak
    /// in-flight per worker).
    pub driver: DriverReport,
    /// Worker startup failures (socket bind errors). A scan that could not
    /// start any worker reports every input as failed here.
    pub worker_errors: Vec<String>,
    /// Peak outstanding outputs observed by the writer (queued plus the
    /// one in hand — at most the bounded queue's capacity + 1): the
    /// backpressure headroom a slow sink consumed.
    pub peak_output_queue: usize,
    /// Outputs the sink failed to write (the scan still drains them so
    /// workers never block on a dead sink).
    pub sink_errors: u64,
    /// Wall-clock duration.
    pub elapsed: std::time::Duration,
}

impl RealScanReport {
    /// Overall success fraction.
    pub fn success_rate(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        self.successes as f64 / self.lookups as f64
    }

    /// Completed lookups per wall-clock second.
    pub fn lookups_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.lookups as f64 / secs
    }

    /// The stderr summary line for this scan.
    pub fn summary_line(&self) -> String {
        let mut counts: Vec<(&String, &u64)> = self.status_counts.iter().collect();
        counts.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        let statuses = counts
            .iter()
            .map(|(s, n)| format!("{s}={n}"))
            .collect::<Vec<_>>()
            .join(" ");
        let pacing = if self.driver.queries_deferred > 0
            || self.driver.per_host_throttles > 0
            || self.driver.backpressure_requeues > 0
        {
            format!(
                ", {} deferred (max queue {}, {} per-host throttles, {} backpressure)",
                self.driver.queries_deferred,
                self.driver.max_deferred_depth,
                self.driver.per_host_throttles,
                self.driver.backpressure_requeues,
            )
        } else {
            String::new()
        };
        let batching = if self.driver.send_syscalls > 0 {
            format!(
                ", {:.1} dg/send-syscall ({} sent / {} syscalls)",
                self.driver.datagrams_sent as f64 / self.driver.send_syscalls as f64,
                self.driver.datagrams_sent,
                self.driver.send_syscalls,
            )
        } else {
            String::new()
        };
        let ring = if self.driver.ring_enters > 0 {
            let stalls = if self.driver.sq_full_stalls > 0 {
                format!(", {} sq-full stalls", self.driver.sq_full_stalls)
            } else {
                String::new()
            };
            format!(
                ", {:.1} sqe/enter ({} sqes / {} enters, {} cqe batches{})",
                self.driver.ring_sqes as f64 / self.driver.ring_enters as f64,
                self.driver.ring_sqes,
                self.driver.ring_enters,
                self.driver.cqe_batches,
                stalls,
            )
        } else {
            String::new()
        };
        let backend = if self.driver.io_backend.is_empty() {
            String::new()
        } else {
            format!(", io={}", self.driver.io_backend)
        };
        let credits = if self.driver.credit_leases > 0 {
            format!(
                ", {} credit leases ({} idle returns, {} stalls), {} inputs stolen",
                self.driver.credit_leases,
                self.driver.idle_credit_returns,
                self.driver.credit_stalls,
                self.driver.inputs_stolen,
            )
        } else {
            String::new()
        };
        format!(
            "zdns: {} lookups, {:.1}% success, {} queries, {} retries, {:.2}s, {:.0} lookups/s, {} workers (peak {} in flight){}{}{}{}{} [{}]",
            self.lookups,
            self.success_rate() * 100.0,
            self.queries_sent,
            self.retries,
            self.elapsed.as_secs_f64(),
            self.lookups_per_sec(),
            self.workers,
            self.driver.peak_in_flight,
            backend,
            pacing,
            batching,
            ring,
            credits,
            statuses,
        )
    }
}

/// How many reactor workers a real scan uses: enough to spread the demux
/// load over cores, never more than 8 — concurrency comes from the
/// per-worker admission window, not from thread count.
pub fn real_worker_count(conf: &Conf) -> usize {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    conf.threads.clamp(1, cores.min(8))
}

/// Run a scan over real sockets through the shared-queue pipeline
/// ([`crate::pipeline::run_scan_pipeline`]), collecting outputs with a
/// callback. Socket bind failures are reported in
/// [`RealScanReport::worker_errors`]; if no worker can start, the scan
/// fails fast instead of deadlocking on the input channel.
pub fn run_real_scan<I>(
    conf: &Conf,
    resolver: &Resolver,
    module: Arc<dyn LookupModule>,
    addr_map: Arc<AddrMap>,
    inputs: I,
    on_output: impl FnMut(ModuleOutput) + Send + 'static,
) -> RealScanReport
where
    I: Iterator<Item = String>,
{
    let mut inputs = inputs;
    let mut sink = CallbackSink::new(on_output);
    run_scan_pipeline(conf, resolver, module, addr_map, &mut inputs, &mut sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use zdns_modules::ModuleRegistry;
    use zdns_zones::{SynthConfig, SyntheticUniverse};

    #[test]
    fn sim_scan_produces_one_output_per_input() {
        let conf = Conf::parse(["A", "--iterative", "--threads", "16"]).unwrap();
        let universe = Arc::new(SyntheticUniverse::new(SynthConfig::default()));
        let module = ModuleRegistry::standard().get("A").unwrap();
        let outputs = Arc::new(Mutex::new(Vec::new()));
        let sink_outputs = Arc::clone(&outputs);
        let inputs: Vec<String> = (0..50).map(|i| format!("runner{i}.com")).collect();
        let report = run_sim_scan(&conf, universe, module, inputs.into_iter(), move |o| {
            sink_outputs.lock().push(o)
        });
        assert_eq!(report.jobs, 50);
        assert_eq!(outputs.lock().len(), 50);
        // ~70% exist; NXDOMAIN also counts as success.
        assert!(report.success_rate() > 0.9, "{:?}", report.status_counts);
    }

    #[test]
    fn sim_scan_external_mode_uses_public_resolver() {
        let conf = Conf::parse(["A", "--name-servers", "8.8.8.8", "--threads", "8"]).unwrap();
        let universe = Arc::new(SyntheticUniverse::new(SynthConfig::default()));
        let module = ModuleRegistry::standard().get("A").unwrap();
        let count = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&count);
        let inputs: Vec<String> = (0..30).map(|i| format!("ext{i}.net")).collect();
        let report = run_sim_scan(&conf, universe, module, inputs.into_iter(), move |_| {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 30);
        // External mode sends ~1 query per lookup (plus retries).
        let qpl = report.queries_sent as f64 / report.jobs as f64;
        assert!(qpl < 2.0, "queries per lookup {qpl}");
    }
}
