//! The shared-queue scan pipeline.
//!
//! One orchestration layer drives every real-socket scan:
//!
//! ```text
//!   InputSource ──► shared input queue ──► reactor workers ──► output queue ──► OutputSink
//!   (file/stdin/       (bounded; every      │  lease admission     (bounded:       (JSONL with a
//!    ct-corpus          worker steals       │  credits + pacing    a slow sink      reusable buffer,
//!    generator,         the next name)      │  budget from the     throttles        or a callback)
//!    streaming)                             ▼  scan-wide pools     admission)
//!                                    CreditPool + ConcurrentPacer
//! ```
//!
//! The pre-pipeline design split the admission window and the pacing
//! budgets *statically* across workers (`total / workers` each), so a
//! worker whose destinations were all serving backoff penalties
//! stranded its slice of the window while its siblings queued. Here the
//! window is a scan-wide [`CreditPool`]: workers lease one credit per
//! active lookup, park lookups whose every send is waiting out a
//! backoff penalty (returning the credits), and pull — steal — the next
//! pending input from the shared queue whenever they hold capacity,
//! wherever that capacity was nominally "assigned". The pacing budgets
//! are likewise one scan-wide pacer rather than per-worker slices — a
//! lock-free [`ConcurrentPacer`] by default (workers lease token blocks
//! from an atomic global bucket and share a striped backoff table), or
//! the historical whole-pacer mutex ([`SharedPacer`]) under
//! `--pacer legacy-shared`. `--static-split` keeps the pre-pipeline
//! behaviour as an A/B lever; `bench_reactor` measures all of them and
//! `tests/scan_pipeline.rs` asserts the stranded-window recovery.
//!
//! Both ends stream: an [`InputSource`] is pulled one name at a time
//! (a 234M-name corpus is a generator, never a `Vec`), and outputs
//! cross a *bounded* queue to a single writer thread that serializes
//! through one reusable buffer — a sink that cannot keep up blocks the
//! queue, which blocks the workers' completion path, which throttles
//! admission: memory stays flat and the input is simply consumed more
//! slowly.

use std::collections::HashMap;
use std::net::{Ipv4Addr, UdpSocket};
use std::sync::Arc;

use crossbeam::channel;
use parking_lot::Mutex;
use zdns_core::{
    AddrMap, Admission, ConcurrentPacer, CreditPool, Driver, DriverReport, Pacer, PacerConfig,
    Reactor, ReactorConfig, Resolver, SharedPacer,
};
use zdns_modules::{LookupModule, ModuleOutput, ModuleSink};
use zdns_netsim::InputSource;

use crate::checkpoint::{scan_id, Checkpoint, CheckpointKeeper, ScanManifest};
use crate::conf::Conf;
use crate::output::OutputSink;
use crate::runner::{real_worker_count, RealScanReport};

/// How the scan divides its admission window and pacing budgets across
/// reactor workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionMode {
    /// Scan-wide pools, leased dynamically (work stealing); the default.
    #[default]
    SharedQueue,
    /// A fixed `total / workers` slice each (the pre-pipeline design,
    /// kept for A/B runs via `--static-split`).
    StaticSplit,
}

impl AdmissionMode {
    /// The mode a configuration asks for.
    pub fn from_conf(conf: &Conf) -> AdmissionMode {
        if conf.static_split {
            AdmissionMode::StaticSplit
        } else {
            AdmissionMode::SharedQueue
        }
    }
}

/// The scan-wide pacer a shared-queue scan installs in every worker.
/// Both flavours carry the same contract — one global budget, common
/// per-destination backoff memory, interchangeable checkpoint format —
/// they differ only in how workers synchronize on it.
#[derive(Clone)]
enum ScanPacer {
    /// Lock-free: atomic global token bucket (workers lease token
    /// blocks) plus a striped per-destination table. The default.
    Concurrent(Arc<ConcurrentPacer>),
    /// The historical whole-pacer mutex, kept as an A/B lever
    /// (`--pacer legacy-shared`): every admit/success/failure from every
    /// worker serializes on one lock.
    Legacy(SharedPacer),
}

impl ScanPacer {
    fn install(&self, reactor: &mut Reactor) {
        match self {
            ScanPacer::Concurrent(pacer) => reactor.set_concurrent_pacer(Arc::clone(pacer)),
            ScanPacer::Legacy(pacer) => reactor.set_shared_pacer(Arc::clone(pacer)),
        }
    }

    fn restore_backoff(&self, entries: &[(Ipv4Addr, u32, u64)], now: u64) {
        match self {
            ScanPacer::Concurrent(pacer) => pacer.restore_backoff(entries, now),
            ScanPacer::Legacy(pacer) => pacer.lock().restore_backoff(entries, now),
        }
    }

    fn backoff_snapshot(&self, now: u64) -> Vec<(Ipv4Addr, u32, u64)> {
        match self {
            ScanPacer::Concurrent(pacer) => pacer.backoff_snapshot(now),
            ScanPacer::Legacy(pacer) => pacer.lock().backoff_snapshot(now),
        }
    }
}

/// Run a real-socket scan: names stream from `source` through the shared
/// input queue into a pool of reactor workers, and every output crosses
/// the bounded output queue into `sink` on one writer thread. See the
/// module docs for the full picture; [`crate::runner::run_real_scan`] is
/// the callback-shaped convenience wrapper.
pub fn run_scan_pipeline(
    conf: &Conf,
    resolver: &Resolver,
    module: Arc<dyn LookupModule>,
    addr_map: Arc<AddrMap>,
    source: &mut dyn InputSource,
    sink: &mut dyn OutputSink,
) -> RealScanReport {
    let total_window = if conf.max_in_flight > 0 {
        conf.max_in_flight
    } else {
        conf.threads.max(1)
    };
    // Never spawn more workers than the window allows: the aggregate
    // active cap must not exceed what the user asked for (a polite
    // scanner's rate contract).
    let workers = real_worker_count(conf).min(total_window);
    let mode = AdmissionMode::from_conf(conf);
    let started = std::time::Instant::now();
    let mut report = RealScanReport {
        workers,
        ..RealScanReport::default()
    };

    // Bind every worker socket up front so startup failures surface
    // immediately (a worker that dies silently can deadlock a bounded
    // input channel).
    let mut sockets = Vec::new();
    for i in 0..workers {
        match UdpSocket::bind((Ipv4Addr::UNSPECIFIED, 0)) {
            Ok(socket) => sockets.push(socket),
            Err(e) => report
                .worker_errors
                .push(format!("worker {i}: socket bind failed: {e}")),
        }
    }
    if sockets.is_empty() {
        report.elapsed = started.elapsed();
        return report;
    }
    let workers = sockets.len();
    report.workers = workers;

    // The scan-wide pools every worker leases from (shared mode): the
    // admission window as credits, the pacing budgets as one pacer.
    let pacer_config = conf.pacer_config();
    let credit_pool: Option<Arc<CreditPool>> = match mode {
        AdmissionMode::SharedQueue => Some(Arc::new(CreditPool::new(total_window))),
        AdmissionMode::StaticSplit => None,
    };
    let shared_pacer: Option<ScanPacer> = match mode {
        AdmissionMode::SharedQueue if pacer_config.enabled() => Some(if conf.legacy_shared_pacer {
            ScanPacer::Legacy(Arc::new(Mutex::new(Pacer::new(pacer_config.clone()))))
        } else {
            ScanPacer::Concurrent(Arc::new(ConcurrentPacer::new(pacer_config.clone())))
        }),
        _ => None,
    };

    // Durable scans keep a checkpoint bookkeeper shared between the
    // feeder (dispatch records) and the writer thread (completion
    // records + periodic snapshots). The insert-before-send /
    // remove-after-receive ordering through one mutex means a
    // completion can never be observed for a name that is not in the
    // outstanding set.
    let keeper: Option<Arc<Mutex<CheckpointKeeper>>> = if conf.checkpoint_path.is_empty() {
        None
    } else {
        let manifest_path = std::path::Path::new(&conf.checkpoint_path);
        let id = scan_id(conf);
        let mut keeper = CheckpointKeeper::new(id.clone(), manifest_path, conf.checkpoint_every);
        if conf.resume {
            // Re-arm the scan-wide pacer with the spilled backoff state
            // (streaks + remaining penalties) so a resumed scan keeps
            // honouring penalties incurred before the crash; the
            // output-file done-set (applied by the caller's
            // `DedupSource`) is what keeps resume *correct*.
            if let Some(ckpt) =
                Checkpoint::load_latest(&ScanManifest::checkpoint_file(manifest_path))
                    .filter(|c| c.scan_id == id)
            {
                if let Some(pacer) = &shared_pacer {
                    pacer.restore_backoff(&ckpt.backoff, 0);
                }
                keeper.resume_from(&ckpt);
            }
        } else if let Err(e) = ScanManifest::from_conf(conf).write(manifest_path) {
            report.worker_errors.push(format!(
                "cannot write scan manifest {}: {e}",
                conf.checkpoint_path
            ));
            report.elapsed = started.elapsed();
            return report;
        }
        Some(Arc::new(Mutex::new(keeper)))
    };

    // The shared input queue (every worker steals from the same bounded
    // channel) and the bounded output queue (backpressure).
    let (input_tx, input_rx) = channel::bounded::<String>(total_window.max(workers * 4));
    let output_cap = (total_window * 2).max(64);
    let (output_tx, output_rx) = channel::bounded::<ModuleOutput>(output_cap);

    // One clock epoch for every worker: the shared pacer stores absolute
    // release/penalty times, so workers reading each other's backoff
    // state must agree on what "now" means regardless of spawn skew.
    let epoch = std::time::Instant::now();
    let stats_before = resolver.core().stats.snapshot();
    let merged: Arc<Mutex<(HashMap<String, u64>, DriverReport)>> =
        Arc::new(Mutex::new((HashMap::new(), DriverReport::default())));
    let startup_errors: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let mut writer_stats = (0usize, 0u64);

    std::thread::scope(|scope| {
        let base_window = total_window / workers;
        let extra = total_window % workers;
        for (worker_idx, socket) in sockets.into_iter().enumerate() {
            let static_window = (base_window + usize::from(worker_idx < extra)).max(1);
            let input_rx = input_rx.clone();
            let output_tx = output_tx.clone();
            let module = Arc::clone(&module);
            let resolver = resolver.clone();
            let addr_map = Arc::clone(&addr_map);
            let merged = Arc::clone(&merged);
            let startup_errors = Arc::clone(&startup_errors);
            let credit_pool = credit_pool.clone();
            let shared_pacer = shared_pacer.clone();
            let batch_size = if conf.batch_size > 0 {
                conf.batch_size
            } else {
                ReactorConfig::default().batch_size
            };
            let (window, pacer) = match mode {
                // Any single worker may absorb the whole window when its
                // siblings' destinations are stranded in backoff; its own
                // pacer stays disabled because the shared one gates sends.
                AdmissionMode::SharedQueue => (total_window, PacerConfig::default()),
                AdmissionMode::StaticSplit => (static_window, pacer_config.split(workers)),
            };
            let io_backend = conf.io_backend;
            let pin_cores = conf.pin_cores;
            scope.spawn(move || {
                // Opt-in core pinning: one core per worker, best-effort
                // (a restricted sandbox or a worker count above the core
                // count just runs unpinned).
                if pin_cores {
                    let _ = zdns_core::pin_to_core(worker_idx);
                }
                let config = ReactorConfig {
                    max_in_flight: window,
                    pacer,
                    batch_size,
                    io_backend,
                    // Parked (fully backed-off) lookups cost slots but no
                    // window; allow a few windows' worth per worker so
                    // backoff cannot choke admission, while still
                    // bounding what a dead-Internet scan can pin.
                    max_parked: window.saturating_mul(4),
                    epoch: Some(epoch),
                    ..ReactorConfig::default()
                };
                // One long-lived socket per worker (§3.4), shared by every
                // lookup the worker has in flight.
                let mut reactor = match Reactor::from_socket(socket, config, addr_map) {
                    Ok(reactor) => reactor,
                    Err(e) => {
                        // Record the death; dropping this worker's input_rx
                        // clone is what lets the feeding loop fail fast when
                        // every worker dies.
                        startup_errors
                            .lock()
                            .push(format!("worker {worker_idx}: reactor start failed: {e}"));
                        return;
                    }
                };
                if let Some(pool) = credit_pool {
                    reactor.set_credit_pool(pool, static_window);
                }
                if let Some(pacer) = shared_pacer {
                    pacer.install(&mut reactor);
                }
                let sink: ModuleSink = Arc::new(move |o| {
                    // A full output queue blocks here — inside lookup
                    // completion — which stalls this worker's admission:
                    // the slow-sink backpressure path.
                    let _ = output_tx.send(o);
                });
                let mut statuses: HashMap<&'static str, u64> = HashMap::new();
                let mut feed = || match input_rx.try_recv() {
                    Ok(input) => {
                        Admission::Admit(module.make_machine(&input, &resolver, sink.clone()))
                    }
                    Err(channel::TryRecvError::Empty) => Admission::Later,
                    Err(channel::TryRecvError::Disconnected) => Admission::Exhausted,
                };
                let mut on_done = |outcome: Option<zdns_netsim::JobOutcome>| {
                    let status = outcome.map(|o| o.status).unwrap_or("ERROR");
                    *statuses.entry(status).or_insert(0) += 1;
                };
                let driver_report = reactor.run_scan(&mut feed, &mut on_done);
                let mut merged = merged.lock();
                for (status, n) in statuses {
                    *merged.0.entry(status.to_string()).or_insert(0) += n;
                }
                merged.1.merge(&driver_report);
            });
        }
        drop(output_tx);
        // The parent must not hold a receiver: once every worker is gone,
        // sends below error out instead of deadlocking on a full channel.
        drop(input_rx);
        // One writer thread owns the sink: outputs drain while inputs
        // feed in, and the queue's depth is observable as backpressure
        // telemetry. On durable scans it doubles as the checkpoint
        // clock: completions are recorded per output and a snapshot is
        // serialized every `checkpoint_every` of them, off the workers'
        // hot path.
        let writer_keeper = keeper.clone();
        let writer_pacer = shared_pacer.clone();
        let writer = scope.spawn(move || {
            let mut peak_queue = 0usize;
            let mut errors = 0u64;
            while let Ok(output) = output_rx.recv() {
                // The message in hand plus whatever is still queued.
                peak_queue = peak_queue.max(output_rx.len() + 1);
                // Record the completion *before* the sink write: if the
                // process dies between the two, the checkpoint's counts
                // run ahead of the output file — harmless, because the
                // output file (not the checkpoint) is the authoritative
                // done-record on resume.
                let snapshot_due = writer_keeper
                    .as_ref()
                    .map(|k| k.lock().completed(&output.name))
                    .unwrap_or(false);
                if sink.write_output(output).is_err() {
                    // Keep draining so workers never block on a dead
                    // sink; the error count surfaces in the report.
                    errors += 1;
                }
                if snapshot_due {
                    if let Some(keeper) = &writer_keeper {
                        let backoff = writer_pacer
                            .as_ref()
                            .map(|p| p.backoff_snapshot(epoch.elapsed().as_nanos() as u64))
                            .unwrap_or_default();
                        // A failed snapshot write is retried at the next
                        // cadence tick; the scan itself never stops.
                        let _ = keeper.lock().write_snapshot(backoff);
                    }
                }
            }
            let _ = sink.flush();
            (peak_queue, errors)
        });
        while let Some(name) = source.next_name() {
            if let Some(keeper) = &keeper {
                // Insert into the outstanding set before the send so the
                // name is tracked by the time any worker can complete it.
                keeper.lock().dispatched(&name);
            }
            if input_tx.send(name).is_err() {
                break;
            }
        }
        if let Some(keeper) = &keeper {
            keeper.lock().input_exhausted();
        }
        drop(input_tx);
        writer_stats = writer.join().unwrap_or((0, 0));
    });

    // The closing snapshot: input exhausted and every lookup drained
    // marks the shard complete, which is what `zdns merge` verifies.
    if let Some(keeper) = &keeper {
        let backoff = shared_pacer
            .as_ref()
            .map(|p| p.backoff_snapshot(epoch.elapsed().as_nanos() as u64))
            .unwrap_or_default();
        if let Err(e) = keeper.lock().write_snapshot(backoff) {
            report
                .worker_errors
                .push(format!("final checkpoint write failed: {e}"));
        }
    }

    let stats_after = resolver.core().stats.snapshot();
    let merged = Arc::try_unwrap(merged)
        .map(Mutex::into_inner)
        .unwrap_or_else(|arc| arc.lock().clone());
    report.worker_errors.extend(startup_errors.lock().drain(..));
    report.status_counts = merged.0;
    report.driver = merged.1;
    // Concurrent-pacer contention telemetry is scan-wide (the counters
    // live on the one shared pacer), so it lands on the merged report
    // here rather than being summed per worker.
    if let Some(ScanPacer::Concurrent(pacer)) = &shared_pacer {
        report.driver.pacer_cas_retries = pacer.cas_retries();
        report.driver.pacer_stripe_waits = pacer.stripe_waits();
        report.driver.token_blocks_leased = pacer.blocks_leased();
    }
    report.lookups = report.driver.completed;
    report.successes = report.driver.successes;
    report.queries_sent = stats_after.queries_sent - stats_before.queries_sent;
    report.retries = stats_after.retries - stats_before.retries;
    report.peak_output_queue = writer_stats.0;
    report.sink_errors = writer_stats.1;
    report.elapsed = started.elapsed();
    report
}
