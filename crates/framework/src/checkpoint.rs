//! Durable scans: manifest, periodic checkpoint, resume, shard merge.
//!
//! A paper-scale scan runs for hours over millions of names; a crash at
//! name 900,000 must not restart from zero. `--checkpoint PATH` makes a
//! `--real` scan durable with two artifacts:
//!
//! * **Manifest** (`PATH`) — the scan's identity, written once at start:
//!   the configuration fingerprint ([`scan_id`]), the input/output
//!   locations, and the shard coordinates. Every shard of one logical
//!   scan shares the same `scan_id` (the fingerprint deliberately
//!   excludes the shard index and output path), which is what lets
//!   `zdns merge` verify that per-shard outputs belong together.
//! * **Checkpoint** (`PATH.ckpt`, rotated to `PATH.ckpt.prev`) — a
//!   periodic snapshot of scan progress: the input cursor, the set of
//!   dispatched-but-incomplete names, and the pacer's backoff table
//!   spilled as `(host, streak, remaining penalty)` rather than held as
//!   live credits. Each write is atomic (temp file + rename) and
//!   self-validating (payload line + checksum line), so a torn write —
//!   the process died mid-`rename`, the disk filled — is detected and
//!   the previous generation used instead.
//!
//! **Resume correctness does not depend on the checkpoint.** The scan's
//! own JSONL output is the authoritative record of completion: on
//! `--resume`, the output file's trailing torn line (if any) is
//! repaired away, every `"name"` already present becomes the done-set,
//! and a [`DedupSource`] replays the input skipping exactly those
//! names. Names in flight at the kill — dispatched, never written — are
//! therefore re-admitted automatically. The checkpoint contributes the
//! parts the output cannot: the spilled backoff state (so a resumed
//! scan keeps honouring penalties it had already incurred) and the
//! `complete` flag `zdns merge` checks before concatenating shards.
//!
//! This is the fingerprint → state store → timeout-transition lifecycle
//! idiom: identity is a stable hash of the configuration, progress is an
//! append-only record plus a compact rotating snapshot, and recovery is
//! a pure function of the two.

use std::collections::HashSet;
use std::io::{BufRead, Read, Write};
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};

use serde_json::{json, Value};
use zdns_netsim::InputSource;

use crate::conf::Conf;

/// Manifest/checkpoint format version (bump on incompatible change).
pub const CHECKPOINT_VERSION: u64 = 1;

/// The configuration fingerprint shared by every shard of one logical
/// scan: a stable hash over the fields that define *what* is being
/// scanned (module, workload, input, seed, name cap, output shape,
/// shard count) and deliberately not *where this shard* runs (shard
/// index, output path, checkpoint path). Two manifests with equal
/// `scan_id`s describe partitions of the same scan and may be merged.
pub fn scan_id(conf: &Conf) -> String {
    let input = match conf.workload {
        crate::conf::Workload::Lines => conf.input_path.as_str(),
        crate::conf::Workload::CtCorpus => "ct-corpus",
    };
    let shard_count = conf.shard.map_or(1, |(_, n)| n);
    let canon = format!(
        "{}|{}|{}|{}|{}|{}|{}",
        conf.module,
        conf.workload.as_str(),
        input,
        conf.seed,
        conf.max_names,
        conf.output.as_str(),
        shard_count,
    );
    format!(
        "{:016x}",
        zdns_zones::hashing::h64(0, "scan-id", canon.as_bytes())
    )
}

/// The durable identity of one shard of a scan, written to the
/// `--checkpoint` path at scan start and read back by `--resume` and
/// `zdns merge`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanManifest {
    /// Configuration fingerprint ([`scan_id`]); equal across shards.
    pub scan_id: String,
    /// Lookup module name.
    pub module: String,
    /// `--workload` spelling of the input source.
    pub workload: String,
    /// Input path (`lines` workload) or `"ct-corpus"`.
    pub input: String,
    /// Simulation/corpus seed.
    pub seed: u64,
    /// Name cap (0 = unlimited), applied *before* the shard filter.
    pub max_names: u64,
    /// This shard's index (0-based).
    pub shard_index: u32,
    /// Total shard count (1 = unsharded).
    pub shard_count: u32,
    /// Where this shard's JSONL lands.
    pub output: String,
}

impl ScanManifest {
    /// The manifest a configuration describes.
    pub fn from_conf(conf: &Conf) -> ScanManifest {
        let (shard_index, shard_count) = conf.shard.unwrap_or((0, 1));
        ScanManifest {
            scan_id: scan_id(conf),
            module: conf.module.clone(),
            workload: conf.workload.as_str().to_string(),
            input: match conf.workload {
                crate::conf::Workload::Lines => conf.input_path.clone(),
                crate::conf::Workload::CtCorpus => "ct-corpus".to_string(),
            },
            seed: conf.seed,
            max_names: conf.max_names as u64,
            shard_index,
            shard_count,
            output: conf.output_path.clone(),
        }
    }

    /// Serialize as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&json!({
            "version": CHECKPOINT_VERSION,
            "scan_id": self.scan_id,
            "module": self.module,
            "workload": self.workload,
            "input": self.input,
            "seed": self.seed,
            "max_names": self.max_names,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            "output": self.output,
        }))
        .expect("json serialization is infallible")
    }

    /// Parse a manifest from its JSON form.
    pub fn from_json(text: &str) -> Result<ScanManifest, String> {
        let v: Value =
            serde_json::from_str(text).map_err(|e| format!("manifest is not JSON: {e}"))?;
        let str_field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("manifest missing string field {k:?}"))
        };
        let u64_field = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("manifest missing integer field {k:?}"))
        };
        let version = u64_field("version")?;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "manifest version {version} unsupported (expected {CHECKPOINT_VERSION})"
            ));
        }
        Ok(ScanManifest {
            scan_id: str_field("scan_id")?,
            module: str_field("module")?,
            workload: str_field("workload")?,
            input: str_field("input")?,
            seed: u64_field("seed")?,
            max_names: u64_field("max_names")?,
            shard_index: u64_field("shard_index")? as u32,
            shard_count: u64_field("shard_count")? as u32,
            output: str_field("output")?,
        })
    }

    /// Write the manifest to `path` atomically (temp + rename). Like the
    /// periodic checkpoints, the guarantee is kill-safety, not
    /// power-loss durability: after the rename the manifest is either
    /// absent or whole, never torn.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        write_atomic(path, self.to_json().as_bytes(), false)
    }

    /// Load a manifest from `path`.
    pub fn load(path: &Path) -> Result<ScanManifest, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read manifest {}: {e}", path.display()))?;
        ScanManifest::from_json(&text)
    }

    /// This shard's checkpoint file (`<manifest>.ckpt`).
    pub fn checkpoint_file(manifest_path: &Path) -> PathBuf {
        let mut s = manifest_path.as_os_str().to_os_string();
        s.push(".ckpt");
        PathBuf::from(s)
    }
}

/// One progress snapshot: how far the input cursor got, which names were
/// dispatched but had not completed, and the pacer backoff table spilled
/// with each host's remaining penalty. Written periodically during the
/// scan and once more — with `complete: true` — when the input is
/// exhausted and the last lookup has drained.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Checkpoint {
    /// Fingerprint of the scan this snapshot belongs to.
    pub scan_id: String,
    /// Names dispatched from the input so far.
    pub cursor: u64,
    /// Outputs written so far.
    pub completed: u64,
    /// Dispatched but not yet completed at snapshot time.
    pub outstanding: Vec<String>,
    /// Spilled backoff state: `(host, failure streak, penalty remaining
    /// at snapshot time, in nanoseconds)`.
    pub backoff: Vec<(Ipv4Addr, u32, u64)>,
    /// The scan finished: input exhausted, nothing outstanding.
    pub complete: bool,
}

impl Checkpoint {
    /// Serialize the payload line (compact JSON, no trailing newline).
    pub fn to_json(&self) -> String {
        let backoff: Vec<Value> = self
            .backoff
            .iter()
            .map(|(ip, streak, remaining)| json!([ip.to_string(), streak, remaining]))
            .collect();
        json!({
            "version": CHECKPOINT_VERSION,
            "scan_id": self.scan_id,
            "cursor": self.cursor,
            "completed": self.completed,
            "outstanding": self.outstanding,
            "backoff": backoff,
            "complete": self.complete,
        })
        .to_string()
    }

    /// Parse a payload line.
    pub fn from_json(text: &str) -> Result<Checkpoint, String> {
        let v: Value =
            serde_json::from_str(text).map_err(|e| format!("checkpoint is not JSON: {e}"))?;
        if v.get("version").and_then(Value::as_u64) != Some(CHECKPOINT_VERSION) {
            return Err("checkpoint version mismatch".to_string());
        }
        let scan_id = v
            .get("scan_id")
            .and_then(Value::as_str)
            .ok_or("checkpoint missing scan_id")?
            .to_string();
        let outstanding = v
            .get("outstanding")
            .and_then(Value::as_array)
            .ok_or("checkpoint missing outstanding")?
            .iter()
            .filter_map(Value::as_str)
            .map(str::to_string)
            .collect();
        let mut backoff = Vec::new();
        for entry in v
            .get("backoff")
            .and_then(Value::as_array)
            .ok_or("checkpoint missing backoff")?
        {
            let parts = entry.as_array().ok_or("bad backoff entry")?;
            let ip: Ipv4Addr = parts
                .first()
                .and_then(Value::as_str)
                .and_then(|s| s.parse().ok())
                .ok_or("bad backoff host")?;
            let streak = parts.get(1).and_then(Value::as_u64).ok_or("bad streak")? as u32;
            let remaining = parts.get(2).and_then(Value::as_u64).ok_or("bad penalty")?;
            backoff.push((ip, streak, remaining));
        }
        Ok(Checkpoint {
            scan_id,
            cursor: v.get("cursor").and_then(Value::as_u64).unwrap_or(0),
            completed: v.get("completed").and_then(Value::as_u64).unwrap_or(0),
            outstanding,
            backoff,
            complete: v.get("complete").and_then(Value::as_bool).unwrap_or(false),
        })
    }

    /// Write this snapshot to `path` torn-write-safely: the file holds
    /// the payload line plus a checksum line, is staged in a temp file
    /// and renamed into place, and the previous generation is rotated to
    /// `<path>.prev` first — so at every instant at least one of the two
    /// generations is a fully valid snapshot.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        self.write_inner(path, true)
    }

    /// [`Checkpoint::write`] without the fsync. Periodic snapshots use
    /// this: they are already torn-write-safe against a process kill
    /// (rename is atomic, the checksum rejects a torn file, `.prev` is
    /// the fallback, and the output done-set keeps resume correct even
    /// with no checkpoint at all), so the flush only buys power-loss
    /// durability — not worth a disk round trip on the writer thread
    /// every cadence. The final `complete` snapshot, which `zdns merge`
    /// trusts, does sync.
    pub fn write_relaxed(&self, path: &Path) -> std::io::Result<()> {
        self.write_inner(path, false)
    }

    fn write_inner(&self, path: &Path, sync: bool) -> std::io::Result<()> {
        let payload = self.to_json();
        let crc = payload_crc(&payload);
        let body = format!("{payload}\n{crc}\n");
        // Rotate: the current generation becomes the fallback. A failure
        // here (no current generation yet) is fine.
        let _ = std::fs::rename(path, prev_path(path));
        write_atomic(path, body.as_bytes(), sync)
    }

    /// Load the newest *valid* snapshot: `path` if its checksum holds,
    /// else `<path>.prev`, else `None`. A torn or corrupted current
    /// generation therefore degrades to the previous one rather than
    /// failing the resume (the output-file done-set keeps resume correct
    /// regardless of which generation survives).
    pub fn load_latest(path: &Path) -> Option<Checkpoint> {
        Checkpoint::load_one(path).or_else(|| Checkpoint::load_one(&prev_path(path)))
    }

    fn load_one(path: &Path) -> Option<Checkpoint> {
        let text = std::fs::read_to_string(path).ok()?;
        let mut lines = text.lines();
        let payload = lines.next()?;
        let crc = lines.next()?;
        if crc != payload_crc(payload) {
            return None;
        }
        Checkpoint::from_json(payload).ok()
    }
}

fn payload_crc(payload: &str) -> String {
    format!(
        "{:016x}",
        zdns_zones::hashing::h64(0, "checkpoint-crc", payload.as_bytes())
    )
}

fn prev_path(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(".prev");
    PathBuf::from(s)
}

/// Stage `bytes` in `<path>.tmp` and rename into place; `sync` forces
/// the bytes to disk before the rename.
fn write_atomic(path: &Path, bytes: &[u8], sync: bool) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        if sync {
            f.sync_all()?;
        }
    }
    std::fs::rename(&tmp, path)
}

/// What a `--resume` run recovered before the pipeline starts.
#[derive(Debug)]
pub struct ResumePlan {
    /// The verified manifest — its `output` is where the resumed shard
    /// must keep appending (the output path is deliberately outside the
    /// fingerprint, so the manifest, not the flags, is authoritative).
    pub manifest: ScanManifest,
    /// Names whose output line already exists — never re-probed.
    pub done: HashSet<String>,
    /// The newest valid checkpoint, if any generation survived.
    pub checkpoint: Option<Checkpoint>,
    /// Bytes trimmed from the output file's torn trailing line.
    pub repaired_bytes: u64,
}

/// Prepare a resume: verify the manifest at `manifest_path` matches
/// `conf`'s fingerprint, repair the output file's torn trailing line
/// (a SIGKILL can land mid-`write`), collect the done-set from the
/// output's `"name"` fields, and load the newest valid checkpoint.
pub fn prepare_resume(conf: &Conf, manifest_path: &Path) -> Result<ResumePlan, String> {
    let manifest = ScanManifest::load(manifest_path)?;
    let expected = scan_id(conf);
    if manifest.scan_id != expected {
        return Err(format!(
            "manifest {} was written by a different scan configuration \
             (scan_id {} != {expected}); refusing to resume — rerun with the \
             original module/workload/input/seed/max-names/shard settings",
            manifest_path.display(),
            manifest.scan_id,
        ));
    }
    let shard = conf.shard.unwrap_or((0, 1));
    if (manifest.shard_index, manifest.shard_count) != shard {
        return Err(format!(
            "manifest {} belongs to shard {}/{} but this run is shard {}/{}",
            manifest_path.display(),
            manifest.shard_index,
            manifest.shard_count,
            shard.0,
            shard.1,
        ));
    }
    let repaired_bytes = repair_jsonl(Path::new(&manifest.output))
        .map_err(|e| format!("cannot repair output {}: {e}", manifest.output))?;
    let done = output_done_set(Path::new(&manifest.output))
        .map_err(|e| format!("cannot read output {}: {e}", manifest.output))?;
    let checkpoint = Checkpoint::load_latest(&ScanManifest::checkpoint_file(manifest_path))
        .filter(|c| c.scan_id == expected);
    Ok(ResumePlan {
        manifest,
        done,
        checkpoint,
        repaired_bytes,
    })
}

/// Truncate a JSONL file after its last complete line (returns how many
/// torn trailing bytes were dropped). A missing file is zero lines, not
/// an error — the scan died before its first write.
pub fn repair_jsonl(path: &Path) -> std::io::Result<u64> {
    let mut file = match std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
    {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
        Err(e) => return Err(e),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    let keep = match bytes.iter().rposition(|&b| b == b'\n') {
        Some(last_newline) => last_newline + 1,
        None => 0,
    };
    let torn = (bytes.len() - keep) as u64;
    if torn > 0 {
        file.set_len(keep as u64)?;
        file.sync_all()?;
    }
    Ok(torn)
}

/// The names already completed according to a (repaired) JSONL output:
/// every parseable line's `"name"` field. Module outputs carry the raw
/// input line as their `name`, so this set keys directly against the
/// input stream.
pub fn output_done_set(path: &Path) -> std::io::Result<HashSet<String>> {
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(HashSet::new()),
        Err(e) => return Err(e),
    };
    let mut done = HashSet::new();
    for line in std::io::BufReader::new(file).lines() {
        let line = line?;
        if let Ok(v) = serde_json::from_str(&line) {
            if let Some(name) = v.get("name").and_then(Value::as_str) {
                done.insert(name.to_string());
            }
        }
    }
    Ok(done)
}

/// An [`InputSource`] filter that skips names already completed — the
/// resume path wraps the replayed input in one of these so zero
/// completed names are re-probed.
pub struct DedupSource<S> {
    inner: S,
    done: HashSet<String>,
    /// Names skipped because their output already existed.
    pub skipped: u64,
}

impl<S: InputSource> DedupSource<S> {
    /// Wrap `inner`, skipping every name in `done`.
    pub fn new(inner: S, done: HashSet<String>) -> DedupSource<S> {
        DedupSource {
            inner,
            done,
            skipped: 0,
        }
    }
}

impl<S: InputSource> InputSource for DedupSource<S> {
    fn next_name(&mut self) -> Option<String> {
        loop {
            let name = self.inner.next_name()?;
            if self.done.contains(&name) {
                self.skipped += 1;
                continue;
            }
            return Some(name);
        }
    }

    fn size_hint(&self) -> Option<u64> {
        None
    }
}

/// The scan pipeline's checkpoint bookkeeper, shared (behind a mutex)
/// between the feeder thread (records dispatches) and the writer thread
/// (records completions and decides when a snapshot is due). Snapshot
/// *writing* happens outside the pipeline's hot path: the writer thread
/// serializes at most one snapshot per `every` completions.
pub struct CheckpointKeeper {
    scan_id: String,
    path: PathBuf,
    every: u64,
    cursor: u64,
    completed: u64,
    since_snapshot: u64,
    outstanding: HashSet<String>,
    exhausted: bool,
}

/// Default completions between snapshots when `--checkpoint-every` is
/// not given: frequent enough that a crash loses seconds of backoff
/// state, rare enough to be invisible in lookups/s.
pub const DEFAULT_CHECKPOINT_EVERY: u64 = 1000;

impl CheckpointKeeper {
    /// A keeper snapshotting to `<manifest>.ckpt` every `every`
    /// completions (0 = [`DEFAULT_CHECKPOINT_EVERY`]).
    pub fn new(scan_id: String, manifest_path: &Path, every: u64) -> CheckpointKeeper {
        CheckpointKeeper {
            scan_id,
            path: ScanManifest::checkpoint_file(manifest_path),
            every: if every == 0 {
                DEFAULT_CHECKPOINT_EVERY
            } else {
                every
            },
            cursor: 0,
            completed: 0,
            since_snapshot: 0,
            outstanding: HashSet::new(),
            exhausted: false,
        }
    }

    /// Seed counters from a resumed checkpoint so cursor/completed keep
    /// counting across the scan's whole life, not just this process.
    pub fn resume_from(&mut self, checkpoint: &Checkpoint) {
        self.cursor = checkpoint.cursor;
        self.completed = checkpoint.completed;
    }

    /// Record a name entering the pipeline (feeder thread, *before* the
    /// channel send — so every in-flight name is in `outstanding` by the
    /// time its completion can possibly be observed).
    pub fn dispatched(&mut self, name: &str) {
        self.cursor += 1;
        self.outstanding.insert(name.to_string());
    }

    /// The input source is drained; with an empty outstanding set the
    /// final snapshot may be marked complete.
    pub fn input_exhausted(&mut self) {
        self.exhausted = true;
    }

    /// Record a completed output (writer thread). Returns `true` when a
    /// periodic snapshot is due — the caller then collects the backoff
    /// spill and calls [`CheckpointKeeper::write_snapshot`].
    pub fn completed(&mut self, name: &str) -> bool {
        self.outstanding.remove(name);
        self.completed += 1;
        self.since_snapshot += 1;
        if self.since_snapshot >= self.every {
            self.since_snapshot = 0;
            true
        } else {
            false
        }
    }

    /// Whether the scan has fully drained (input exhausted, nothing
    /// outstanding).
    pub fn is_complete(&self) -> bool {
        self.exhausted && self.outstanding.is_empty()
    }

    /// Build and write one snapshot with the given backoff spill; the
    /// `complete` flag is derived from drain state. Write failures are
    /// returned but non-fatal to the scan (the next snapshot retries).
    pub fn write_snapshot(&self, backoff: Vec<(Ipv4Addr, u32, u64)>) -> std::io::Result<()> {
        let mut outstanding: Vec<String> = self.outstanding.iter().cloned().collect();
        outstanding.sort();
        let complete = self.is_complete();
        let checkpoint = Checkpoint {
            scan_id: self.scan_id.clone(),
            cursor: self.cursor,
            completed: self.completed,
            outstanding,
            backoff,
            complete,
        };
        // Only the final generation — the one `zdns merge` trusts to say
        // a shard finished — pays for a disk flush; mid-scan snapshots
        // ride the rename/crc/.prev torn-write protections alone.
        if complete {
            checkpoint.write(&self.path)
        } else {
            checkpoint.write_relaxed(&self.path)
        }
    }
}

/// What `zdns merge` did.
#[derive(Debug, Default)]
pub struct MergeReport {
    /// Shards concatenated, in index order.
    pub shards: u32,
    /// Output lines written.
    pub lines: u64,
    /// Shards whose checkpoints were not marked complete (only non-empty
    /// when merging with `--allow-partial`).
    pub partial_shards: Vec<u32>,
}

/// Merge per-shard outputs into `output_path` after verifying the shard
/// manifests agree: same `scan_id`, same shard count, indices covering
/// exactly `0..n` with no duplicates, and (unless `allow_partial`) every
/// shard's checkpoint marked complete. Shard outputs are concatenated in
/// index order with torn trailing lines dropped.
pub fn merge_shards(
    manifest_paths: &[PathBuf],
    output_path: &Path,
    allow_partial: bool,
) -> Result<MergeReport, String> {
    if manifest_paths.is_empty() {
        return Err("zdns merge needs at least one shard manifest".to_string());
    }
    let mut manifests = Vec::new();
    for path in manifest_paths {
        manifests.push((path.clone(), ScanManifest::load(path)?));
    }
    let scan_id = manifests[0].1.scan_id.clone();
    let count = manifests[0].1.shard_count;
    for (path, m) in &manifests {
        if m.scan_id != scan_id {
            return Err(format!(
                "{}: scan_id {} does not match {} from {} — these shards \
                 belong to different scans",
                path.display(),
                m.scan_id,
                scan_id,
                manifests[0].0.display(),
            ));
        }
        if m.shard_count != count {
            return Err(format!(
                "{}: shard count {} does not match {}",
                path.display(),
                m.shard_count,
                count
            ));
        }
    }
    if manifests.len() != count as usize {
        return Err(format!(
            "scan has {count} shards but {} manifests were given",
            manifests.len()
        ));
    }
    let mut seen = vec![false; count as usize];
    for (path, m) in &manifests {
        let i = m.shard_index as usize;
        if i >= seen.len() || seen[i] {
            return Err(format!(
                "{}: shard index {} duplicated or out of range 0..{count}",
                path.display(),
                m.shard_index
            ));
        }
        seen[i] = true;
    }
    let mut report = MergeReport::default();
    for (path, m) in &manifests {
        let complete = Checkpoint::load_latest(&ScanManifest::checkpoint_file(path))
            .map(|c| c.scan_id == scan_id && c.complete)
            .unwrap_or(false);
        if !complete {
            if !allow_partial {
                return Err(format!(
                    "shard {} ({}) is not marked complete — finish or resume it, \
                     or pass --allow-partial to merge anyway",
                    m.shard_index,
                    path.display()
                ));
            }
            report.partial_shards.push(m.shard_index);
        }
    }
    // Concatenate in shard-index order (deterministic merged output).
    manifests.sort_by_key(|(_, m)| m.shard_index);
    let mut out = std::io::BufWriter::new(
        std::fs::File::create(output_path)
            .map_err(|e| format!("cannot create {}: {e}", output_path.display()))?,
    );
    for (_, m) in &manifests {
        let file = match std::fs::File::open(&m.output) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(format!("cannot read shard output {}: {e}", m.output)),
        };
        for line in std::io::BufReader::new(file).lines() {
            let line = line.map_err(|e| format!("cannot read shard output {}: {e}", m.output))?;
            if line.is_empty() {
                continue;
            }
            writeln!(out, "{line}")
                .map_err(|e| format!("cannot write {}: {e}", output_path.display()))?;
            report.lines += 1;
        }
        report.shards += 1;
    }
    out.flush()
        .map_err(|e| format!("cannot write {}: {e}", output_path.display()))?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conf::Conf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("zdns-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn durable_conf(dir: &Path, shard: Option<(u32, u32)>) -> Conf {
        let mut argv = vec![
            "A".to_string(),
            "--real".to_string(),
            "--input-file".to_string(),
            dir.join("names.txt").display().to_string(),
            "--output-file".to_string(),
            dir.join("out.jsonl").display().to_string(),
            "--checkpoint".to_string(),
            dir.join("scan.manifest.json").display().to_string(),
        ];
        if let Some((i, n)) = shard {
            argv.push("--shard".to_string());
            argv.push(format!("{i}/{n}"));
        }
        Conf::parse(argv).unwrap()
    }

    #[test]
    fn scan_id_is_shard_invariant_but_config_sensitive() {
        let dir = temp_dir("scanid");
        let a = durable_conf(&dir, Some((0, 2)));
        let b = durable_conf(&dir, Some((1, 2)));
        assert_eq!(scan_id(&a), scan_id(&b), "shard index must not matter");

        let mut c = durable_conf(&dir, Some((0, 2)));
        c.seed = 999;
        assert_ne!(scan_id(&a), scan_id(&c), "seed must matter");
        let mut d = durable_conf(&dir, Some((0, 2)));
        d.shard = Some((0, 3));
        assert_ne!(scan_id(&a), scan_id(&d), "shard count must matter");
    }

    #[test]
    fn manifest_round_trips() {
        let dir = temp_dir("manifest");
        let conf = durable_conf(&dir, Some((1, 4)));
        let manifest = ScanManifest::from_conf(&conf);
        let path = dir.join("m.json");
        manifest.write(&path).unwrap();
        let loaded = ScanManifest::load(&path).unwrap();
        assert_eq!(loaded, manifest);
        assert_eq!(loaded.shard_index, 1);
        assert_eq!(loaded.shard_count, 4);
    }

    #[test]
    fn checkpoint_round_trips_and_rotates() {
        let dir = temp_dir("ckpt");
        let path = dir.join("scan.ckpt");
        let first = Checkpoint {
            scan_id: "abc".into(),
            cursor: 10,
            completed: 7,
            outstanding: vec!["a.test".into(), "b.test".into()],
            backoff: vec![(Ipv4Addr::new(192, 0, 2, 1), 3, 700_000_000)],
            complete: false,
        };
        first.write(&path).unwrap();
        assert_eq!(Checkpoint::load_latest(&path).unwrap(), first);

        let second = Checkpoint {
            cursor: 20,
            ..first.clone()
        };
        second.write(&path).unwrap();
        assert_eq!(Checkpoint::load_latest(&path).unwrap(), second);

        // Tear the current generation: the previous one is used instead.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert_eq!(
            Checkpoint::load_latest(&path).unwrap(),
            first,
            "torn current generation must fall back to .prev"
        );
    }

    #[test]
    fn torn_output_lines_are_repaired_and_deduped() {
        let dir = temp_dir("repair");
        let out = dir.join("out.jsonl");
        std::fs::write(
            &out,
            "{\"name\":\"a.test\",\"status\":\"NOERROR\"}\n\
             {\"name\":\"b.test\",\"status\":\"NXDOMAIN\"}\n\
             {\"name\":\"c.te",
        )
        .unwrap();
        let torn = repair_jsonl(&out).unwrap();
        assert_eq!(torn, "{\"name\":\"c.te".len() as u64);
        let done = output_done_set(&out).unwrap();
        assert_eq!(done.len(), 2);
        assert!(done.contains("a.test") && done.contains("b.test"));
        assert!(!done.contains("c.te"), "torn line must not count as done");

        // Missing output = nothing done, not an error.
        assert_eq!(repair_jsonl(&dir.join("absent.jsonl")).unwrap(), 0);
        assert!(output_done_set(&dir.join("absent.jsonl"))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn dedup_source_skips_exactly_the_done_names() {
        let names: Vec<String> = ["a.test", "b.test", "c.test", "d.test"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let done: HashSet<String> = ["b.test".to_string(), "d.test".to_string()].into();
        let mut source = DedupSource::new(names.into_iter(), done);
        assert_eq!(source.next_name().as_deref(), Some("a.test"));
        assert_eq!(source.next_name().as_deref(), Some("c.test"));
        assert_eq!(source.next_name(), None);
        assert_eq!(source.skipped, 2);
    }

    #[test]
    fn keeper_tracks_outstanding_and_cadence() {
        let dir = temp_dir("keeper");
        let manifest_path = dir.join("m.json");
        let mut keeper = CheckpointKeeper::new("id".into(), &manifest_path, 2);
        keeper.dispatched("a.test");
        keeper.dispatched("b.test");
        keeper.dispatched("c.test");
        assert!(!keeper.completed("a.test"), "1 of 2: not due yet");
        assert!(keeper.completed("b.test"), "2 of 2: snapshot due");
        keeper.input_exhausted();
        assert!(!keeper.is_complete(), "c.test still outstanding");
        keeper.completed("c.test");
        assert!(keeper.is_complete());
        keeper.write_snapshot(Vec::new()).unwrap();
        let ckpt = Checkpoint::load_latest(&ScanManifest::checkpoint_file(&manifest_path)).unwrap();
        assert!(ckpt.complete);
        assert_eq!(ckpt.cursor, 3);
        assert_eq!(ckpt.completed, 3);
        assert!(ckpt.outstanding.is_empty());
    }

    #[test]
    fn merge_verifies_manifests_and_concatenates_in_order() {
        let dir = temp_dir("merge");
        std::fs::write(dir.join("names.txt"), "x\n").unwrap();
        let mut paths = Vec::new();
        for i in 0..2u32 {
            let mut conf = durable_conf(&dir, Some((i, 2)));
            conf.output_path = dir.join(format!("out{i}.jsonl")).display().to_string();
            let manifest_path = dir.join(format!("shard{i}.manifest.json"));
            ScanManifest::from_conf(&conf)
                .write(&manifest_path)
                .unwrap();
            std::fs::write(&conf.output_path, format!("{{\"name\":\"s{i}\"}}\n")).unwrap();
            let keeper = {
                let mut k = CheckpointKeeper::new(scan_id(&conf), &manifest_path, 1);
                k.dispatched(&format!("s{i}"));
                k.completed(&format!("s{i}"));
                k.input_exhausted();
                k
            };
            keeper.write_snapshot(Vec::new()).unwrap();
            paths.push(manifest_path);
        }
        let merged = dir.join("merged.jsonl");
        // Reversed order in, index order out.
        let reversed: Vec<PathBuf> = paths.iter().rev().cloned().collect();
        let report = merge_shards(&reversed, &merged, false).unwrap();
        assert_eq!(report.shards, 2);
        assert_eq!(report.lines, 2);
        let text = std::fs::read_to_string(&merged).unwrap();
        assert_eq!(text, "{\"name\":\"s0\"}\n{\"name\":\"s1\"}\n");

        // A foreign manifest is rejected.
        let mut foreign = durable_conf(&dir, Some((1, 2)));
        foreign.seed = 777;
        foreign.output_path = dir.join("outf.jsonl").display().to_string();
        let fpath = dir.join("foreign.manifest.json");
        ScanManifest::from_conf(&foreign).write(&fpath).unwrap();
        let bad = vec![paths[0].clone(), fpath];
        let err = merge_shards(&bad, &merged, false).unwrap_err();
        assert!(err.contains("different scans"), "{err}");

        // Missing shard index is rejected.
        let err = merge_shards(&paths[..1], &merged, false).unwrap_err();
        assert!(err.contains("2 shards"), "{err}");
    }

    #[test]
    fn merge_rejects_incomplete_shards_unless_partial() {
        let dir = temp_dir("partial");
        std::fs::write(dir.join("names.txt"), "x\n").unwrap();
        let conf = durable_conf(&dir, None);
        let manifest_path = dir.join("scan.manifest.json");
        ScanManifest::from_conf(&conf)
            .write(&manifest_path)
            .unwrap();
        std::fs::write(&conf.output_path, "{\"name\":\"x\"}\n").unwrap();
        // No checkpoint at all → not complete.
        let merged = dir.join("merged.jsonl");
        let err = merge_shards(std::slice::from_ref(&manifest_path), &merged, false).unwrap_err();
        assert!(err.contains("not marked complete"), "{err}");
        let report = merge_shards(&[manifest_path], &merged, true).unwrap();
        assert_eq!(report.partial_shards, vec![0]);
        assert_eq!(report.lines, 1);
    }
}
