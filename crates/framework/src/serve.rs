//! Serve-mode orchestration: `zdns serve`'s worker fleet.
//!
//! This module is the framework-side half of serve mode — it turns the
//! engine pieces ([`Reactor`] + [`ServerRole`]) into a running listener
//! fleet the CLI, tests, and benches all share:
//!
//! * **Single worker** (`shards == 1`, the default): one *dual-role*
//!   socket. The listen socket IS the reactor socket — client queries
//!   arrive on it as QR=0 demux misses, and forwarded upstream queries
//!   leave from it. One socket, both directions, no handoff.
//! * **Sharded** (`shards > 1`): each worker keeps the reactor's usual
//!   ephemeral-port socket for upstream traffic (client-side sockets must
//!   not share a port — responses would flow-hash away from the worker
//!   holding the demux state) and additionally owns a `SO_REUSEPORT`
//!   listener socket (UDP and TCP) on the serve port, so the kernel
//!   spreads inbound clients across workers with no shared accept lock.
//!
//! Every worker clones one [`Resolver`], so the selective cache behind
//! the fleet is shared: any worker's forwarded answer warms every
//! worker's hit path.

use std::collections::HashMap;
use std::net::{Ipv4Addr, SocketAddr, TcpListener, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use zdns_core::{
    AddrMap, Clock, DriverReport, IoBackend, Reactor, ReactorConfig, Resolver, ResolverConfig,
    ServeConfig, ServeStats, ServerRole,
};
use zdns_netsim::{bind_reuse_port, bind_tcp_reuse_port};

/// Options for starting a serve fleet (the parsed form of the
/// `zdns serve` flags).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Address to listen on (UDP + TCP; port 0 = ephemeral).
    pub listen: SocketAddr,
    /// Upstream recursive resolvers queries are forwarded to (IPv4).
    pub upstreams: Vec<SocketAddr>,
    /// Selective-cache capacity in entries.
    pub cache_capacity: usize,
    /// Per-client UDP budget in queries/second (0 = no gate).
    pub client_pps: f64,
    /// Reactor syscall strategy for the forwarding side.
    pub io_backend: IoBackend,
    /// Worker count (1 = dual-role socket; >1 = `SO_REUSEPORT` sharding).
    pub shards: usize,
    /// Datagrams per syscall on the forwarding hot path (0 = default).
    pub batch_size: usize,
    /// Concurrent forwarded lookups per worker.
    pub max_in_flight: usize,
    /// Slots in the fleet-shared pre-encoded packet cache (0 disables,
    /// keeping scratch-encode as the A/B lever).
    pub packet_cache_capacity: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            listen: SocketAddr::new(Ipv4Addr::LOCALHOST.into(), 5353),
            upstreams: Vec::new(),
            cache_capacity: 600_000,
            client_pps: 0.0,
            io_backend: IoBackend::default(),
            shards: 1,
            batch_size: 0,
            max_in_flight: 1_024,
            packet_cache_capacity: zdns_core::DEFAULT_PACKET_CACHE_CAPACITY,
        }
    }
}

/// A running serve fleet: stop flag, per-worker counters, and the worker
/// threads themselves. Dropping the handle stops and joins the fleet.
pub struct ServeHandle {
    stop: Arc<AtomicBool>,
    stats: Vec<Arc<ServeStats>>,
    workers: Vec<JoinHandle<DriverReport>>,
    local_addr: SocketAddr,
    resolver: Resolver,
}

impl ServeHandle {
    /// The address the fleet actually listens on (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Per-worker serve counters, in worker order.
    pub fn stats(&self) -> &[Arc<ServeStats>] {
        &self.stats
    }

    /// The shared resolver behind the fleet (one cache for all workers).
    pub fn resolver(&self) -> &Resolver {
        &self.resolver
    }

    /// Fleet-wide queries received.
    pub fn queries(&self) -> u64 {
        self.stats.iter().map(|s| s.queries()).sum()
    }

    /// Fleet-wide cache hits.
    pub fn cache_hits(&self) -> u64 {
        self.stats.iter().map(|s| s.cache_hits()).sum()
    }

    /// Fleet-wide forwarded lookups.
    pub fn forwarded(&self) -> u64 {
        self.stats.iter().map(|s| s.forwarded()).sum()
    }

    /// Fleet-wide responses sent.
    pub fn responses(&self) -> u64 {
        self.stats.iter().map(|s| s.responses()).sum()
    }

    /// Fleet-wide truncated UDP responses (TC set).
    pub fn truncated(&self) -> u64 {
        self.stats.iter().map(|s| s.truncated()).sum()
    }

    /// Fleet-wide queries dropped by the per-client gate.
    pub fn rate_limited(&self) -> u64 {
        self.stats.iter().map(|s| s.rate_limited()).sum()
    }

    /// Fleet-wide hits served from a pre-encoded packet (a subset of
    /// `cache_hits`).
    pub fn packet_hits(&self) -> u64 {
        self.stats.iter().map(|s| s.packet_hits()).sum()
    }

    /// Fleet-wide canonical responses memoized into the packet cache.
    pub fn packet_fills(&self) -> u64 {
        self.stats.iter().map(|s| s.packet_fills()).sum()
    }

    /// Fleet-wide packet lookups that found an entry past its TTL.
    pub fn packet_expired(&self) -> u64 {
        self.stats.iter().map(|s| s.packet_expired()).sum()
    }

    /// Packet entries dropped by record-cache promotions. The packet
    /// cache is one fleet-shared table, so this reads the shared counter
    /// from any worker rather than summing (a sum would multiply it by
    /// the worker count).
    pub fn packet_invalidations(&self) -> u64 {
        self.stats.first().map_or(0, |s| s.packet_invalidations())
    }

    /// One status line for stderr/telemetry.
    pub fn summary_line(&self) -> String {
        format!(
            "serve: {} queries, {} cache hits ({} packet), {} forwarded, \
             {} responses, {} truncated, {} rate-limited",
            self.queries(),
            self.cache_hits(),
            self.packet_hits(),
            self.forwarded(),
            self.responses(),
            self.truncated(),
            self.rate_limited(),
        )
    }

    /// Raise the stop flag and join every worker, returning their
    /// reactor reports.
    pub fn stop(mut self) -> Vec<DriverReport> {
        self.stop.store(true, Ordering::Relaxed);
        self.workers
            .drain(..)
            .map(|w| w.join().unwrap_or_default())
            .collect()
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// What one worker gets to listen on, decided (and bound) up front so
/// bind failures surface before any thread spawns.
struct WorkerSockets {
    /// The reactor's socket: the dual-role listen socket for a single
    /// worker, an ephemeral upstream-only socket when sharded.
    reactor: UdpSocket,
    /// A dedicated `SO_REUSEPORT` UDP listener (sharded mode only).
    listener: Option<UdpSocket>,
    /// This worker's TCP listener (all workers on Linux via
    /// `SO_REUSEPORT`; only worker 0 where the platform lacks it).
    tcp: Option<TcpListener>,
}

/// Start a serve fleet. Binds all sockets up front (errors surface here,
/// not in a worker thread), spawns one reactor worker per shard, and
/// returns once every worker's server role is installed and listening.
pub fn start(opts: &ServeOptions) -> std::io::Result<ServeHandle> {
    let bad = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, msg);
    if opts.upstreams.is_empty() {
        return Err(bad("serve needs at least one upstream".into()));
    }
    let mut upstream_ips = Vec::new();
    let mut port_map: HashMap<Ipv4Addr, SocketAddr> = HashMap::new();
    for upstream in &opts.upstreams {
        let SocketAddr::V4(v4) = upstream else {
            return Err(bad(format!("upstream {upstream} is not IPv4")));
        };
        upstream_ips.push(*v4.ip());
        port_map.insert(*v4.ip(), *upstream);
    }
    let listen_ip = match opts.listen {
        SocketAddr::V4(v4) => *v4.ip(),
        other => return Err(bad(format!("listen address {other} is not IPv4"))),
    };

    // One resolver for the whole fleet: workers clone it, so they share
    // the cache — any worker's fill warms every worker's hit path.
    let resolver = Resolver::new(ResolverConfig {
        cache_size: opts.cache_capacity,
        // Serving wants throughput, not forensics: skip building lookup
        // chains for forwarded queries.
        trace: false,
        ..ResolverConfig::external(upstream_ips)
    });
    let addr_map: Arc<AddrMap> = Arc::new(move |ip: Ipv4Addr| {
        port_map
            .get(&ip)
            .copied()
            .unwrap_or_else(|| SocketAddr::new(ip.into(), 53))
    });

    // Bind everything up front.
    let shards = opts.shards.max(1);
    let mut sockets = Vec::with_capacity(shards);
    let local_addr;
    // When the caller asks for port 0 the kernel picks the UDP port
    // without knowing we need its TCP twin too — an `AddrInUse` on the
    // TCP half just means an unrelated listener owns that port, so try
    // another. With an explicit port the collision is a real error.
    let ephemeral = opts.listen.port() == 0;
    if shards == 1 {
        // Dual-role: the listen socket hosts both directions.
        let (udp, tcp) = loop {
            let udp = UdpSocket::bind(opts.listen)?;
            match TcpListener::bind(udp.local_addr()?) {
                Ok(tcp) => break (udp, tcp),
                Err(e) if ephemeral && e.kind() == std::io::ErrorKind::AddrInUse => continue,
                Err(e) => return Err(e),
            }
        };
        local_addr = udp.local_addr()?;
        sockets.push(WorkerSockets {
            reactor: udp,
            listener: None,
            tcp: Some(tcp),
        });
    } else {
        // Sharded: reuse-port listener group + private upstream sockets.
        // Worker 0's TCP listener must exist (truncation fallback needs
        // somewhere to land), so its bind error is fatal.
        let (first, first_tcp) = loop {
            let first = bind_reuse_port(listen_ip, opts.listen.port())?;
            match bind_tcp_reuse_port(listen_ip, first.local_addr()?.port()) {
                Ok(tcp) => break (first, tcp),
                Err(e) if ephemeral && e.kind() == std::io::ErrorKind::AddrInUse => continue,
                Err(e) => return Err(e),
            }
        };
        local_addr = first.local_addr()?;
        let mut listeners = vec![first];
        for _ in 1..shards {
            // A kernel refusing the shared bind just serves with fewer
            // shards; correctness is unaffected.
            match bind_reuse_port(listen_ip, local_addr.port()) {
                Ok(s) => listeners.push(s),
                Err(_) => break,
            }
        }
        let mut first_tcp = Some(first_tcp);
        for (i, listener) in listeners.into_iter().enumerate() {
            let tcp = if i == 0 {
                first_tcp.take()
            } else {
                // Siblings are best-effort: platforms without TCP
                // `SO_REUSEPORT` leave all TCP on worker 0.
                bind_tcp_reuse_port(listen_ip, local_addr.port()).ok()
            };
            sockets.push(WorkerSockets {
                reactor: UdpSocket::bind((Ipv4Addr::UNSPECIFIED, 0))?,
                listener: Some(listener),
                tcp,
            });
        }
    }

    // One epoch for the fleet: reactor timers, cache expiries, and
    // client-bucket refills all live on the same timeline.
    let epoch = Instant::now();
    let clock = Clock::from_epoch(epoch);
    let stop = Arc::new(AtomicBool::new(false));
    let batch_size = if opts.batch_size > 0 {
        opts.batch_size
    } else {
        ReactorConfig::default().batch_size
    };
    let (ready_tx, ready_rx) = mpsc::channel::<Result<Arc<ServeStats>, String>>();

    let mut workers = Vec::with_capacity(sockets.len());
    let worker_count = sockets.len();
    for (idx, worker_sockets) in sockets.into_iter().enumerate() {
        let resolver = resolver.clone();
        let addr_map = Arc::clone(&addr_map);
        let stop = Arc::clone(&stop);
        let ready_tx = ready_tx.clone();
        let config = ReactorConfig {
            max_in_flight: opts.max_in_flight.max(1),
            batch_size,
            io_backend: opts.io_backend,
            epoch: Some(epoch),
            ..ReactorConfig::default()
        };
        let serve_config = ServeConfig {
            client_pps: opts.client_pps,
            packet_cache_capacity: opts.packet_cache_capacity,
            ..ServeConfig::default()
        };
        workers.push(std::thread::spawn(move || {
            // Reactor and role are built on the worker thread — neither
            // is Send (they own lookup machines).
            let mut reactor = match Reactor::from_socket(worker_sockets.reactor, config, addr_map) {
                Ok(reactor) => reactor,
                Err(e) => {
                    let _ = ready_tx.send(Err(format!("worker {idx}: reactor: {e}")));
                    return DriverReport::default();
                }
            };
            let mut role = ServerRole::new(resolver, clock, serve_config);
            if let Some(listener) = worker_sockets.listener {
                role = match role.with_udp_listener(listener) {
                    Ok(role) => role,
                    Err(e) => {
                        let _ = ready_tx.send(Err(format!("worker {idx}: udp listener: {e}")));
                        return DriverReport::default();
                    }
                };
            }
            if let Some(tcp) = worker_sockets.tcp {
                role = match role.with_tcp_listener(tcp) {
                    Ok(role) => role,
                    Err(e) => {
                        let _ = ready_tx.send(Err(format!("worker {idx}: tcp listener: {e}")));
                        return DriverReport::default();
                    }
                };
            }
            let stats = role.stats();
            reactor.set_server_role(role);
            let _ = ready_tx.send(Ok(stats));
            reactor.run_serve(&stop)
        }));
    }
    drop(ready_tx);

    // Collect every worker's stats handle (or its startup error).
    let mut stats = Vec::with_capacity(worker_count);
    let mut failure = None;
    for _ in 0..worker_count {
        match ready_rx.recv_timeout(Duration::from_secs(10)) {
            Ok(Ok(s)) => stats.push(s),
            Ok(Err(e)) => failure = Some(e),
            Err(_) => failure = Some("worker startup timed out".into()),
        }
        if failure.is_some() {
            break;
        }
    }
    if let Some(e) = failure {
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            let _ = w.join();
        }
        return Err(std::io::Error::other(e));
    }

    Ok(ServeHandle {
        stop,
        stats,
        workers,
        local_addr,
        resolver,
    })
}
