//! Scan configuration: the framework's command-line surface.
//!
//! The framework "is responsible for facilitating command-line
//! configuration ... and is absent of most DNS-specific logic" (§3.2).
//! Parsing is argv-vector based so tests and benches drive it directly.

use std::net::{Ipv4Addr, SocketAddr};

use zdns_core::{IoBackend, PacerConfig, ResolutionMode, ResolverConfig};
use zdns_netsim::{SimTime, MILLIS, SECONDS};

use crate::serve::ServeOptions;

/// Which output fields to keep (ZDNS's `--output-fields` groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputGroup {
    /// Name + status only.
    Short,
    /// Everything except the trace.
    #[default]
    Normal,
    /// Everything including flags/additionals.
    Long,
    /// Everything including the lookup chain.
    Trace,
}

impl OutputGroup {
    /// The `--output-fields` spelling of this group.
    pub fn as_str(self) -> &'static str {
        match self {
            OutputGroup::Short => "short",
            OutputGroup::Normal => "normal",
            OutputGroup::Long => "long",
            OutputGroup::Trace => "trace",
        }
    }

    /// Parse an `--output-fields` value.
    pub fn parse(v: &str) -> Option<OutputGroup> {
        match v {
            "short" => Some(OutputGroup::Short),
            "normal" => Some(OutputGroup::Normal),
            "long" => Some(OutputGroup::Long),
            "trace" => Some(OutputGroup::Trace),
            _ => None,
        }
    }
}

/// Where a scan's names come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Workload {
    /// Newline-delimited names from `--input-file` / stdin (streaming).
    #[default]
    Lines,
    /// The generated CT-log-like corpus (`zdns_workloads::CtCorpus`),
    /// streamed — `--max-names N` bounds it; the set is never
    /// materialized.
    CtCorpus,
}

impl Workload {
    /// The `--workload` spelling of this source.
    pub fn as_str(self) -> &'static str {
        match self {
            Workload::Lines => "lines",
            Workload::CtCorpus => "ct-corpus",
        }
    }

    /// Parse a `--workload` value.
    pub fn parse(v: &str) -> Option<Workload> {
        match v {
            "lines" | "input" => Some(Workload::Lines),
            "ct-corpus" => Some(Workload::CtCorpus),
            _ => None,
        }
    }
}

/// Parsed scan configuration.
#[derive(Debug, Clone)]
pub struct Conf {
    /// Module name (`A`, `MXLOOKUP`, ...).
    pub module: String,
    /// Lookup routine count (the paper's threads).
    pub threads: usize,
    /// Resolver configuration handed to `zdns-core`.
    pub resolver: ResolverConfig,
    /// Output verbosity group.
    pub output: OutputGroup,
    /// Input path (`-` = stdin) when run as a CLI.
    pub input_path: String,
    /// Output path (`-` = stdout).
    pub output_path: String,
    /// Simulation seed (the CLI scans the simulated Internet).
    pub seed: u64,
    /// Number of scanning source IPs (/32=1, /29=8, /28=16).
    pub source_ips: usize,
    /// Print periodic status lines to stderr.
    pub status_updates: bool,
    /// Cap on names read from input (0 = unlimited).
    pub max_names: usize,
    /// Scan over real sockets instead of the simulator.
    pub real: bool,
    /// Admission window for the real-socket reactor: total lookups in
    /// flight across all reactor workers (0 = use `threads`).
    pub max_in_flight: usize,
    /// Global send budget in packets/second, shared across all workers
    /// (0 = unlimited). Polite scanning's primary knob.
    pub rate_pps: f64,
    /// Per-destination send budget in packets/second (0 = unlimited).
    pub per_host_pps: f64,
    /// Adaptive per-destination backoff on timeout/error streaks.
    pub backoff: bool,
    /// First backoff penalty in nanoseconds (0 = pacer default). Doubles
    /// per consecutive failure up to `backoff_cap`.
    pub backoff_base: SimTime,
    /// Backoff penalty growth cap in nanoseconds (0 = pacer default).
    pub backoff_cap: SimTime,
    /// Datagrams per syscall on the reactor hot path: same-tick sends
    /// coalesce into one `sendmmsg` of up to this many datagrams, and the
    /// receive arena holds this many pre-allocated buffers. `0` = the
    /// reactor default; `1` = per-datagram syscalls.
    pub batch_size: usize,
    /// Name source for the scan (`--workload`).
    pub workload: Workload,
    /// Split the admission window and pacing budgets statically across
    /// reactor workers (the pre-pipeline behaviour) instead of leasing
    /// them from scan-wide pools. An A/B escape hatch; the shared-queue
    /// pipeline is the default.
    pub static_split: bool,
    /// Shared-pacer implementation (`--pacer`): `concurrent` (default)
    /// is the lock-free scan-wide pacer — atomic global token bucket
    /// plus a striped per-destination table; `legacy-shared` keeps the
    /// historical whole-pacer mutex as an A/B lever.
    pub legacy_shared_pacer: bool,
    /// Syscall strategy for the reactor hot path (`--io-backend`):
    /// `auto` (default) takes the best the kernel supports — io_uring,
    /// then `sendmmsg`/`recvmmsg`, then per-datagram — and explicit
    /// choices degrade along the same chain when unavailable.
    pub io_backend: IoBackend,
    /// Pin each reactor worker to its own CPU core
    /// (`sched_setaffinity`), best-effort. Off by default.
    pub pin_cores: bool,
    /// The `--name-servers` entries with their ports: `ip:port` forms
    /// keep the given port, bare IPs get 53. Real-socket scans build
    /// their address map from this, so a scan can point at a non-53
    /// resolver — e.g. a local `zdns serve` instance.
    pub name_server_addrs: Vec<SocketAddr>,
    /// Deterministic horizontal partition (`--shard i/n`): this process
    /// scans only the names whose stable hash assigns them to shard `i`
    /// of `n`. Every shard streams the same input; `None` = unsharded.
    pub shard: Option<(u32, u32)>,
    /// Scan-manifest path (`--checkpoint PATH`): a durable scan writes
    /// its manifest here and periodic checkpoints next to it, so a
    /// killed scan resumes with `--resume PATH`. Empty = not durable.
    pub checkpoint_path: String,
    /// This run resumes the manifest at `checkpoint_path` (`--resume`):
    /// names already in the shard's output are skipped, the in-flight
    /// remainder is re-admitted, and spilled backoff state is restored.
    pub resume: bool,
    /// Completions between checkpoint snapshots (`--checkpoint-every`;
    /// 0 = the default cadence, 1000).
    pub checkpoint_every: u64,
}

impl Default for Conf {
    fn default() -> Self {
        Conf {
            module: "A".to_string(),
            threads: 1_000,
            resolver: ResolverConfig::default(),
            output: OutputGroup::Normal,
            input_path: "-".to_string(),
            output_path: "-".to_string(),
            seed: 1,
            source_ips: 1,
            status_updates: false,
            max_names: 0,
            real: false,
            max_in_flight: 0,
            rate_pps: 0.0,
            per_host_pps: 0.0,
            backoff: false,
            backoff_base: 0,
            backoff_cap: 0,
            batch_size: 0,
            workload: Workload::Lines,
            static_split: false,
            legacy_shared_pacer: false,
            io_backend: IoBackend::default(),
            pin_cores: false,
            name_server_addrs: Vec::new(),
            shard: None,
            checkpoint_path: String::new(),
            resume: false,
            checkpoint_every: 0,
        }
    }
}

/// Configuration parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfError(pub String);

impl std::fmt::Display for ConfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "configuration error: {}", self.0)
    }
}

impl std::error::Error for ConfError {}

/// Parse a server address: `ip` (port 53) or `ip:port`. IPv4 only — the
/// resolver core routes by v4 address.
fn parse_server_addr(v: &str) -> Result<(Ipv4Addr, SocketAddr), ConfError> {
    if let Ok(ip) = v.parse::<Ipv4Addr>() {
        return Ok((ip, SocketAddr::new(ip.into(), 53)));
    }
    match v.parse::<SocketAddr>() {
        Ok(SocketAddr::V4(v4)) => Ok((*v4.ip(), SocketAddr::V4(v4))),
        _ => Err(ConfError(format!(
            "bad server address {v:?} (expected IP or IP:PORT, IPv4)"
        ))),
    }
}

fn parse_duration_secs(v: &str) -> Result<SimTime, ConfError> {
    v.parse::<f64>()
        .map(|s| (s * SECONDS as f64) as SimTime)
        .map_err(|_| ConfError(format!("bad duration {v:?}")))
}

/// Parse a `--cookie-secret` value into the 16-octet client secret the
/// resolver's keyed cookie derivation uses (RFC 7873 §6): exactly 32 hex
/// digits are taken literally; any other non-empty string is treated as
/// a passphrase and stretched deterministically (two FNV-1a rounds with
/// distinct seeds).
fn parse_cookie_secret(v: &str) -> Result<[u8; 16], ConfError> {
    if v.is_empty() {
        return Err(ConfError("--cookie-secret must not be empty".into()));
    }
    let mut secret = [0u8; 16];
    if v.len() == 32 && v.bytes().all(|b| b.is_ascii_hexdigit()) {
        for (i, chunk) in secret.iter_mut().enumerate() {
            *chunk =
                u8::from_str_radix(&v[2 * i..2 * i + 2], 16).expect("checked hex digits above");
        }
        return Ok(secret);
    }
    for (round, out) in secret.chunks_exact_mut(8).enumerate() {
        // The workspace's one seeded-hash helper, with a distinct facet
        // per 8-byte round.
        let h = zdns_zones::hashing::h64(round as u64 + 1, "cookie-secret", v.as_bytes());
        out.copy_from_slice(&h.to_be_bytes());
    }
    Ok(secret)
}

/// Parse a `--shard` value: `i/n` with `0 <= i < n` and `n >= 1`.
fn parse_shard(v: &str) -> Result<(u32, u32), ConfError> {
    let bad = || {
        ConfError(format!(
            "bad --shard {v:?} (expected I/N with 0 <= I < N, e.g. 0/4)"
        ))
    };
    let (index, count) = v.split_once('/').ok_or_else(bad)?;
    let index: u32 = index.trim().parse().map_err(|_| bad())?;
    let count: u32 = count.trim().parse().map_err(|_| bad())?;
    if count == 0 || index >= count {
        return Err(bad());
    }
    Ok((index, count))
}

impl Conf {
    /// Parse an argv-style vector: `zdns MODULE [flags]`.
    pub fn parse<I, S>(args: I) -> Result<Conf, ConfError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut conf = Conf::default();
        let mut args: Vec<String> = args.into_iter().map(Into::into).collect();
        if args.is_empty() {
            return Err(ConfError("expected a module name".into()));
        }
        conf.module = args.remove(0);
        if conf.module.starts_with('-') {
            return Err(ConfError(format!(
                "expected a module name first, got flag {:?}",
                conf.module
            )));
        }
        let mut name_servers: Vec<Ipv4Addr> = Vec::new();
        let mut iterative = false;
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].clone();
            let take_value = |i: &mut usize| -> Result<String, ConfError> {
                *i += 1;
                args.get(*i)
                    .cloned()
                    .ok_or_else(|| ConfError(format!("flag {flag} needs a value")))
            };
            match flag.as_str() {
                "--threads" | "-t" => {
                    conf.threads = take_value(&mut i)?
                        .parse()
                        .map_err(|_| ConfError("bad --threads".into()))?;
                }
                "--iterative" => iterative = true,
                "--name-servers" => {
                    for part in take_value(&mut i)?.split(',') {
                        let (ip, addr) = parse_server_addr(part.trim())?;
                        name_servers.push(ip);
                        conf.name_server_addrs.push(addr);
                    }
                }
                "--cache-size" => {
                    conf.resolver.cache_size = take_value(&mut i)?
                        .parse()
                        .map_err(|_| ConfError("bad --cache-size".into()))?;
                }
                "--retries" => {
                    conf.resolver.retries = take_value(&mut i)?
                        .parse()
                        .map_err(|_| ConfError("bad --retries".into()))?;
                }
                "--timeout" => {
                    conf.resolver.timeout = parse_duration_secs(&take_value(&mut i)?)?;
                }
                "--iteration-timeout" => {
                    conf.resolver.iteration_timeout = parse_duration_secs(&take_value(&mut i)?)?;
                }
                "--tcp-only" => conf.resolver.tcp_only = true,
                "--no-tcp-fallback" => conf.resolver.tcp_on_truncated = false,
                "--trace" => {
                    conf.resolver.trace = true;
                    conf.output = OutputGroup::Trace;
                }
                "--output-fields" => {
                    conf.output = match take_value(&mut i)?.as_str() {
                        "short" => OutputGroup::Short,
                        "normal" => OutputGroup::Normal,
                        "long" => OutputGroup::Long,
                        "trace" => OutputGroup::Trace,
                        other => return Err(ConfError(format!("bad output group {other:?}"))),
                    };
                }
                "--input-file" | "-f" => conf.input_path = take_value(&mut i)?,
                "--output-file" | "-o" => conf.output_path = take_value(&mut i)?,
                "--seed" => {
                    conf.seed = take_value(&mut i)?
                        .parse()
                        .map_err(|_| ConfError("bad --seed".into()))?;
                }
                "--source-ips" => {
                    conf.source_ips = take_value(&mut i)?
                        .parse()
                        .map_err(|_| ConfError("bad --source-ips".into()))?;
                }
                "--status-updates" => conf.status_updates = true,
                "--real" => conf.real = true,
                "--max-in-flight" => {
                    conf.max_in_flight = take_value(&mut i)?
                        .parse()
                        .map_err(|_| ConfError("bad --max-in-flight".into()))?;
                }
                "--rate-pps" => {
                    conf.rate_pps = take_value(&mut i)?
                        .parse()
                        .ok()
                        .filter(|v: &f64| v.is_finite() && *v >= 0.0)
                        .ok_or_else(|| ConfError("bad --rate-pps".into()))?;
                }
                "--per-host-pps" => {
                    conf.per_host_pps = take_value(&mut i)?
                        .parse()
                        .ok()
                        .filter(|v: &f64| v.is_finite() && *v >= 0.0)
                        .ok_or_else(|| ConfError("bad --per-host-pps".into()))?;
                }
                "--backoff" => conf.backoff = true,
                "--backoff-base" => {
                    conf.backoff = true;
                    conf.backoff_base = parse_duration_secs(&take_value(&mut i)?)?;
                }
                "--backoff-cap" => {
                    conf.backoff = true;
                    conf.backoff_cap = parse_duration_secs(&take_value(&mut i)?)?;
                }
                "--batch-size" => {
                    conf.batch_size = take_value(&mut i)?
                        .parse()
                        .ok()
                        .filter(|v: &usize| *v >= 1)
                        .ok_or_else(|| ConfError("bad --batch-size".into()))?;
                }
                "--max-names" => {
                    conf.max_names = take_value(&mut i)?
                        .parse()
                        .map_err(|_| ConfError("bad --max-names".into()))?;
                }
                "--workload" => {
                    conf.workload = match take_value(&mut i)?.as_str() {
                        "lines" | "input" => Workload::Lines,
                        "ct-corpus" => Workload::CtCorpus,
                        other => return Err(ConfError(format!("unknown workload {other:?}"))),
                    };
                }
                "--static-split" => conf.static_split = true,
                "--pacer" => {
                    conf.legacy_shared_pacer = match take_value(&mut i)?.as_str() {
                        "concurrent" => false,
                        "legacy-shared" => true,
                        other => {
                            return Err(ConfError(format!(
                                "bad --pacer {other:?} (concurrent|legacy-shared)"
                            )))
                        }
                    };
                }
                "--io-backend" => {
                    let v = take_value(&mut i)?;
                    conf.io_backend = IoBackend::parse(&v).ok_or_else(|| {
                        ConfError(format!("bad --io-backend {v:?} (auto|syscall|mmsg|uring)"))
                    })?;
                }
                "--pin-cores" => conf.pin_cores = true,
                "--cookie-secret" => {
                    conf.resolver.cookie_secret = Some(parse_cookie_secret(&take_value(&mut i)?)?);
                }
                "--shard" => {
                    conf.shard = Some(parse_shard(&take_value(&mut i)?)?);
                }
                "--checkpoint" => {
                    conf.checkpoint_path = take_value(&mut i)?;
                    if conf.checkpoint_path.is_empty() {
                        return Err(ConfError("--checkpoint needs a manifest path".into()));
                    }
                }
                "--resume" => {
                    conf.checkpoint_path = take_value(&mut i)?;
                    conf.resume = true;
                    if conf.checkpoint_path.is_empty() {
                        return Err(ConfError("--resume needs a manifest path".into()));
                    }
                }
                "--checkpoint-every" => {
                    conf.checkpoint_every = take_value(&mut i)?
                        .parse()
                        .ok()
                        .filter(|v: &u64| *v >= 1)
                        .ok_or_else(|| ConfError("bad --checkpoint-every".into()))?;
                }
                other => return Err(ConfError(format!("unknown flag {other:?}"))),
            }
            i += 1;
        }
        if iterative && !name_servers.is_empty() {
            return Err(ConfError(
                "--iterative and --name-servers are mutually exclusive".into(),
            ));
        }
        conf.resolver.mode = if name_servers.is_empty() {
            ResolutionMode::Iterative
        } else {
            ResolutionMode::External {
                servers: name_servers,
            }
        };
        if conf.workload == Workload::CtCorpus && conf.max_names == 0 {
            return Err(ConfError(
                "--workload ct-corpus needs --max-names N (the corpus is \
                 unbounded; pick how many fqdns to stream)"
                    .into(),
            ));
        }
        if !conf.checkpoint_path.is_empty() {
            // A durable scan must be re-runnable from its manifest alone:
            // real sockets (the sim is already deterministic end to end),
            // an output file to dedup completed names against, and an
            // input that can be streamed again (a file path or a seeded
            // generator — a drained stdin cannot be replayed).
            if !conf.real {
                return Err(ConfError(
                    "--checkpoint/--resume require --real (simulated scans \
                     are deterministic; rerun them instead)"
                        .into(),
                ));
            }
            // A resume takes its output location from the manifest (the
            // output path is outside the scan fingerprint), so only a
            // fresh durable scan needs these checked at parse time.
            if !conf.resume {
                if conf.output_path == "-" {
                    return Err(ConfError(
                        "--checkpoint requires --output-file PATH (resume skips \
                         the names already present in the output file)"
                            .into(),
                    ));
                }
                if conf.workload == Workload::Lines && conf.input_path == "-" {
                    return Err(ConfError(
                        "--checkpoint requires --input-file PATH or --workload \
                         ct-corpus (stdin cannot be replayed on resume)"
                            .into(),
                    ));
                }
            }
        }
        // Default timeouts favour scanning: tighter than stub-resolver
        // defaults, looser than LAN assumptions.
        if conf.resolver.iteration_timeout == 0 {
            conf.resolver.iteration_timeout = 1_500 * MILLIS;
        }
        Ok(conf)
    }

    /// The pacing + backoff budgets this scan was asked for (the whole
    /// scan's budget — drivers running in parallel split it with
    /// [`PacerConfig::split`]).
    pub fn pacer_config(&self) -> PacerConfig {
        let defaults = PacerConfig::default();
        PacerConfig {
            rate_pps: self.rate_pps,
            per_host_pps: self.per_host_pps,
            backoff: self.backoff,
            backoff_base: if self.backoff_base > 0 {
                self.backoff_base
            } else {
                defaults.backoff_base
            },
            backoff_cap: if self.backoff_cap > 0 {
                self.backoff_cap
            } else {
                defaults.backoff_cap
            },
            ..defaults
        }
    }

    /// The scanning source addresses derived from `source_ips`.
    pub fn client_ips(&self) -> Vec<Ipv4Addr> {
        (0..self.source_ips.max(1))
            .map(|i| Ipv4Addr::new(192, 0, 2, (i + 1) as u8))
            .collect()
    }
}

/// Parsed `zdns serve` configuration: the forwarding-server subcommand's
/// own flag surface (a serve is not a scan — it has no module, no input,
/// and runs until stopped).
#[derive(Debug, Clone)]
pub struct ServeConf {
    /// Listen address (`--listen`), UDP + TCP.
    pub listen: SocketAddr,
    /// Upstream recursive resolvers (`--upstream ip[:port][,...]`).
    pub upstreams: Vec<SocketAddr>,
    /// Selective-cache capacity in entries (`--cache-capacity`).
    pub cache_capacity: usize,
    /// Per-client UDP budget in queries/second (`--client-pps`; 0 = off).
    pub client_pps: f64,
    /// Reactor syscall strategy (`--io-backend`).
    pub io_backend: IoBackend,
    /// Worker count (`--shards`; 1 = dual-role socket).
    pub shards: usize,
    /// Datagrams per syscall on the forwarding path (`--batch-size`).
    pub batch_size: usize,
    /// Pre-encoded packet-cache slots (`--packet-cache-capacity`; 0
    /// disables the layer and serves every hit via scratch-encode).
    pub packet_cache_capacity: usize,
    /// Run for this many seconds then exit (`--duration`; 0 = forever).
    pub duration: f64,
    /// Print a status line to stderr every second (`--status-updates`).
    pub status_updates: bool,
}

impl Default for ServeConf {
    fn default() -> Self {
        ServeConf {
            listen: "127.0.0.1:5353".parse().expect("static address"),
            upstreams: Vec::new(),
            cache_capacity: 600_000,
            client_pps: 0.0,
            io_backend: IoBackend::default(),
            shards: 1,
            batch_size: 0,
            packet_cache_capacity: zdns_core::DEFAULT_PACKET_CACHE_CAPACITY,
            duration: 0.0,
            status_updates: false,
        }
    }
}

impl ServeConf {
    /// Parse the argv vector that followed `zdns serve`.
    pub fn parse<I, S>(args: I) -> Result<ServeConf, ConfError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut conf = ServeConf::default();
        let args: Vec<String> = args.into_iter().map(Into::into).collect();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].clone();
            let take_value = |i: &mut usize| -> Result<String, ConfError> {
                *i += 1;
                args.get(*i)
                    .cloned()
                    .ok_or_else(|| ConfError(format!("flag {flag} needs a value")))
            };
            match flag.as_str() {
                "--listen" => {
                    let v = take_value(&mut i)?;
                    conf.listen = v
                        .parse()
                        .map_err(|_| ConfError(format!("bad --listen {v:?} (expected IP:PORT)")))?;
                }
                "--upstream" => {
                    for part in take_value(&mut i)?.split(',') {
                        let (_, addr) = parse_server_addr(part.trim())?;
                        conf.upstreams.push(addr);
                    }
                }
                "--cache-capacity" => {
                    conf.cache_capacity = take_value(&mut i)?
                        .parse()
                        .map_err(|_| ConfError("bad --cache-capacity".into()))?;
                }
                "--client-pps" => {
                    conf.client_pps = take_value(&mut i)?
                        .parse()
                        .ok()
                        .filter(|v: &f64| v.is_finite() && *v >= 0.0)
                        .ok_or_else(|| ConfError("bad --client-pps".into()))?;
                }
                "--io-backend" => {
                    let v = take_value(&mut i)?;
                    conf.io_backend = IoBackend::parse(&v).ok_or_else(|| {
                        ConfError(format!("bad --io-backend {v:?} (auto|syscall|mmsg|uring)"))
                    })?;
                }
                "--shards" => {
                    conf.shards = take_value(&mut i)?
                        .parse()
                        .ok()
                        .filter(|v: &usize| *v >= 1)
                        .ok_or_else(|| ConfError("bad --shards".into()))?;
                }
                "--batch-size" => {
                    conf.batch_size = take_value(&mut i)?
                        .parse()
                        .ok()
                        .filter(|v: &usize| *v >= 1)
                        .ok_or_else(|| ConfError("bad --batch-size".into()))?;
                }
                "--packet-cache-capacity" => {
                    conf.packet_cache_capacity = take_value(&mut i)?
                        .parse()
                        .map_err(|_| ConfError("bad --packet-cache-capacity".into()))?;
                }
                "--duration" => {
                    conf.duration = take_value(&mut i)?
                        .parse()
                        .ok()
                        .filter(|v: &f64| v.is_finite() && *v >= 0.0)
                        .ok_or_else(|| ConfError("bad --duration".into()))?;
                }
                "--status-updates" => conf.status_updates = true,
                other => return Err(ConfError(format!("unknown serve flag {other:?}"))),
            }
            i += 1;
        }
        if conf.upstreams.is_empty() {
            return Err(ConfError(
                "serve needs --upstream IP[:PORT] (where forwarded queries go)".into(),
            ));
        }
        Ok(conf)
    }

    /// The fleet options this configuration asks for.
    pub fn options(&self) -> ServeOptions {
        ServeOptions {
            listen: self.listen,
            upstreams: self.upstreams.clone(),
            cache_capacity: self.cache_capacity,
            client_pps: self.client_pps,
            io_backend: self.io_backend,
            shards: self.shards,
            batch_size: self.batch_size,
            packet_cache_capacity: self.packet_cache_capacity,
            ..ServeOptions::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_iterative_scan() {
        let conf = Conf::parse([
            "A",
            "--iterative",
            "--threads",
            "5000",
            "--cache-size",
            "100000",
            "--retries",
            "5",
        ])
        .unwrap();
        assert_eq!(conf.module, "A");
        assert_eq!(conf.threads, 5000);
        assert_eq!(conf.resolver.cache_size, 100_000);
        assert_eq!(conf.resolver.retries, 5);
        assert!(matches!(conf.resolver.mode, ResolutionMode::Iterative));
    }

    #[test]
    fn parse_external_servers() {
        let conf = Conf::parse(["MXLOOKUP", "--name-servers", "8.8.8.8,1.1.1.1"]).unwrap();
        match conf.resolver.mode {
            ResolutionMode::External { ref servers } => assert_eq!(servers.len(), 2),
            _ => panic!("expected external mode"),
        }
    }

    #[test]
    fn iterative_and_servers_conflict() {
        assert!(Conf::parse(["A", "--iterative", "--name-servers", "8.8.8.8"]).is_err());
    }

    #[test]
    fn trace_flag_sets_output_group() {
        let conf = Conf::parse(["A", "--trace"]).unwrap();
        assert_eq!(conf.output, OutputGroup::Trace);
    }

    #[test]
    fn timeout_parsing_accepts_fractions() {
        let conf = Conf::parse(["A", "--timeout", "2.5"]).unwrap();
        assert_eq!(conf.resolver.timeout, 2_500 * MILLIS);
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(Conf::parse(["A", "--bogus"]).is_err());
        assert!(
            Conf::parse(["--threads", "5"]).is_err(),
            "module must come first"
        );
    }

    #[test]
    fn source_ips_expand_to_prefix() {
        let conf = Conf::parse(["A", "--source-ips", "8"]).unwrap();
        assert_eq!(conf.client_ips().len(), 8);
    }

    #[test]
    fn pacing_flags() {
        let conf = Conf::parse([
            "A",
            "--rate-pps",
            "5000",
            "--per-host-pps",
            "250.5",
            "--backoff",
        ])
        .unwrap();
        assert_eq!(conf.rate_pps, 5000.0);
        assert_eq!(conf.per_host_pps, 250.5);
        assert!(conf.backoff);
        let pc = conf.pacer_config();
        assert!(pc.enabled());
        assert_eq!(pc.split(2).rate_pps, 2500.0);

        let default = Conf::parse(["A"]).unwrap();
        assert!(!default.pacer_config().enabled(), "pacing is opt-in");
        assert!(Conf::parse(["A", "--rate-pps", "-3"]).is_err());
        assert!(Conf::parse(["A", "--rate-pps", "x"]).is_err());
        assert!(Conf::parse(["A", "--per-host-pps", "inf"]).is_err());
    }

    #[test]
    fn real_scan_flags() {
        let conf = Conf::parse(["A", "--real", "--max-in-flight", "2048"]).unwrap();
        assert!(conf.real);
        assert_eq!(conf.max_in_flight, 2048);
        let default = Conf::parse(["A"]).unwrap();
        assert!(!default.real);
        assert_eq!(default.max_in_flight, 0, "0 = derive from --threads");
        assert!(Conf::parse(["A", "--max-in-flight", "x"]).is_err());
    }

    #[test]
    fn workload_flag() {
        let conf = Conf::parse(["A", "--workload", "ct-corpus", "--max-names", "500"]).unwrap();
        assert_eq!(conf.workload, Workload::CtCorpus);
        assert_eq!(conf.max_names, 500);
        let default = Conf::parse(["A"]).unwrap();
        assert_eq!(default.workload, Workload::Lines);
        assert!(
            Conf::parse(["A", "--workload", "ct-corpus"]).is_err(),
            "corpus workload requires --max-names"
        );
        assert!(Conf::parse(["A", "--workload", "bogus"]).is_err());
    }

    #[test]
    fn backoff_tuning_flags() {
        let conf = Conf::parse(["A", "--backoff-base", "0.5", "--backoff-cap", "2"]).unwrap();
        assert!(conf.backoff, "tuning a penalty implies --backoff");
        let pc = conf.pacer_config();
        assert_eq!(pc.backoff_base, 500 * MILLIS);
        assert_eq!(pc.backoff_cap, 2 * SECONDS);
        let defaults = Conf::parse(["A", "--backoff"]).unwrap().pacer_config();
        assert_eq!(defaults.backoff_base, PacerConfig::default().backoff_base);
        assert_eq!(defaults.backoff_cap, PacerConfig::default().backoff_cap);
    }

    #[test]
    fn static_split_flag() {
        assert!(
            !Conf::parse(["A"]).unwrap().static_split,
            "shared is default"
        );
        assert!(Conf::parse(["A", "--static-split"]).unwrap().static_split);
    }

    #[test]
    fn pacer_flag() {
        assert!(
            !Conf::parse(["A"]).unwrap().legacy_shared_pacer,
            "concurrent is default"
        );
        assert!(
            !Conf::parse(["A", "--pacer", "concurrent"])
                .unwrap()
                .legacy_shared_pacer
        );
        assert!(
            Conf::parse(["A", "--pacer", "legacy-shared"])
                .unwrap()
                .legacy_shared_pacer
        );
        assert!(Conf::parse(["A", "--pacer", "mutex"]).is_err());
        assert!(Conf::parse(["A", "--pacer"]).is_err(), "needs a value");
    }

    #[test]
    fn cookie_secret_flag() {
        let hex =
            Conf::parse(["A", "--cookie-secret", "000102030405060708090a0b0c0d0e0f"]).unwrap();
        assert_eq!(
            hex.resolver.cookie_secret,
            Some([0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15])
        );
        let phrase = Conf::parse(["A", "--cookie-secret", "hunter2"]).unwrap();
        let again = Conf::parse(["A", "--cookie-secret", "hunter2"]).unwrap();
        assert_eq!(phrase.resolver.cookie_secret, again.resolver.cookie_secret);
        assert_ne!(phrase.resolver.cookie_secret, hex.resolver.cookie_secret);
        let secret = phrase.resolver.cookie_secret.unwrap();
        assert_ne!(secret[..8], secret[8..], "rounds use distinct seeds");
        assert!(Conf::parse(["A", "--cookie-secret", ""]).is_err());
        assert_eq!(
            Conf::parse(["A"]).unwrap().resolver.cookie_secret,
            None,
            "default derivation unchanged"
        );
    }

    #[test]
    fn batch_size_flag() {
        let conf = Conf::parse(["A", "--batch-size", "64"]).unwrap();
        assert_eq!(conf.batch_size, 64);
        let one = Conf::parse(["A", "--batch-size", "1"]).unwrap();
        assert_eq!(one.batch_size, 1, "1 = per-datagram syscalls");
        let default = Conf::parse(["A"]).unwrap();
        assert_eq!(default.batch_size, 0, "0 = reactor default");
        assert!(Conf::parse(["A", "--batch-size", "0"]).is_err());
        assert!(Conf::parse(["A", "--batch-size", "x"]).is_err());
    }

    #[test]
    fn io_backend_flag() {
        let default = Conf::parse(["A"]).unwrap();
        assert_eq!(default.io_backend, IoBackend::Auto);
        for (v, want) in [
            ("auto", IoBackend::Auto),
            ("syscall", IoBackend::Syscall),
            ("mmsg", IoBackend::Mmsg),
            ("uring", IoBackend::Uring),
        ] {
            let conf = Conf::parse(["A", "--io-backend", v]).unwrap();
            assert_eq!(conf.io_backend, want, "{v}");
        }
        assert!(Conf::parse(["A", "--io-backend", "epoll"]).is_err());
        assert!(Conf::parse(["A", "--io-backend"]).is_err(), "missing value");
    }

    #[test]
    fn pin_cores_flag() {
        assert!(!Conf::parse(["A"]).unwrap().pin_cores, "off by default");
        assert!(Conf::parse(["A", "--pin-cores"]).unwrap().pin_cores);
    }

    #[test]
    fn name_servers_accept_ports() {
        let conf = Conf::parse(["A", "--name-servers", "8.8.8.8,127.0.0.1:5533"]).unwrap();
        match conf.resolver.mode {
            ResolutionMode::External { ref servers } => assert_eq!(servers.len(), 2),
            _ => panic!("expected external mode"),
        }
        assert_eq!(
            conf.name_server_addrs,
            vec![
                "8.8.8.8:53".parse::<SocketAddr>().unwrap(),
                "127.0.0.1:5533".parse().unwrap(),
            ],
            "bare IPs default to 53, explicit ports survive"
        );
        assert!(Conf::parse(["A", "--name-servers", "[::1]:53"]).is_err());
        assert!(Conf::parse(["A", "--name-servers", "example.com"]).is_err());
    }

    #[test]
    fn shard_flag() {
        let conf = Conf::parse(["A", "--shard", "1/4"]).unwrap();
        assert_eq!(conf.shard, Some((1, 4)));
        assert_eq!(Conf::parse(["A"]).unwrap().shard, None, "unsharded default");
        assert_eq!(
            Conf::parse(["A", "--shard", "0/1"]).unwrap().shard,
            Some((0, 1))
        );
        for bad in ["4/4", "2/1", "0/0", "1", "a/b", "-1/2", "1/2/3"] {
            assert!(Conf::parse(["A", "--shard", bad]).is_err(), "{bad}");
        }
    }

    #[test]
    fn checkpoint_flags() {
        let conf = Conf::parse([
            "A",
            "--real",
            "--name-servers",
            "8.8.8.8",
            "--input-file",
            "names.txt",
            "--output-file",
            "out.jsonl",
            "--checkpoint",
            "scan.manifest.json",
            "--checkpoint-every",
            "500",
        ])
        .unwrap();
        assert_eq!(conf.checkpoint_path, "scan.manifest.json");
        assert!(!conf.resume);
        assert_eq!(conf.checkpoint_every, 500);

        let resumed = Conf::parse(["A", "--real", "--resume", "scan.manifest.json"]).unwrap();
        assert!(resumed.resume);
        assert_eq!(resumed.checkpoint_path, "scan.manifest.json");

        let default = Conf::parse(["A"]).unwrap();
        assert!(default.checkpoint_path.is_empty());
        assert_eq!(default.checkpoint_every, 0, "0 = default cadence");

        // A durable scan must be replayable from its manifest alone.
        let base = ["A", "--checkpoint", "m.json"];
        assert!(Conf::parse(base).is_err(), "--checkpoint needs --real");
        assert!(
            Conf::parse(["A", "--real", "--checkpoint", "m.json"]).is_err(),
            "stdout output cannot be deduped on resume"
        );
        assert!(
            Conf::parse([
                "A",
                "--real",
                "--output-file",
                "o.jsonl",
                "--checkpoint",
                "m.json"
            ])
            .is_err(),
            "stdin input cannot be replayed on resume"
        );
        assert!(Conf::parse(["A", "--checkpoint-every", "0"]).is_err());
    }

    #[test]
    fn serve_conf_parses() {
        let conf = ServeConf::parse([
            "--listen",
            "127.0.0.1:5533",
            "--upstream",
            "8.8.8.8,9.9.9.9:5353",
            "--cache-capacity",
            "50000",
            "--client-pps",
            "100",
            "--shards",
            "4",
            "--io-backend",
            "mmsg",
            "--packet-cache-capacity",
            "1024",
            "--duration",
            "2.5",
        ])
        .unwrap();
        assert_eq!(conf.listen, "127.0.0.1:5533".parse().unwrap());
        assert_eq!(
            conf.upstreams,
            vec![
                "8.8.8.8:53".parse::<SocketAddr>().unwrap(),
                "9.9.9.9:5353".parse().unwrap(),
            ]
        );
        assert_eq!(conf.cache_capacity, 50_000);
        assert_eq!(conf.client_pps, 100.0);
        assert_eq!(conf.shards, 4);
        assert_eq!(conf.io_backend, IoBackend::Mmsg);
        assert_eq!(conf.packet_cache_capacity, 1024);
        assert_eq!(conf.duration, 2.5);
        let opts = conf.options();
        assert_eq!(opts.shards, 4);
        assert_eq!(opts.cache_capacity, 50_000);
        assert_eq!(opts.packet_cache_capacity, 1024);
    }

    #[test]
    fn serve_conf_rejects_bad_input() {
        assert!(
            ServeConf::parse::<[&str; 0], &str>([]).is_err(),
            "no upstream"
        );
        assert!(ServeConf::parse(["--upstream", "example.com"]).is_err());
        assert!(ServeConf::parse(["--upstream", "8.8.8.8", "--shards", "0"]).is_err());
        assert!(ServeConf::parse(["--upstream", "8.8.8.8", "--bogus"]).is_err());
        assert!(ServeConf::parse(["--upstream", "8.8.8.8", "--client-pps", "-1"]).is_err());
        assert!(
            ServeConf::parse(["--upstream", "8.8.8.8", "--packet-cache-capacity", "x"]).is_err()
        );
        let minimal = ServeConf::parse(["--upstream", "8.8.8.8"]).unwrap();
        assert_eq!(minimal.shards, 1, "dual-role socket by default");
        assert_eq!(minimal.client_pps, 0.0, "gate off by default");
        assert_eq!(
            minimal.packet_cache_capacity,
            zdns_core::DEFAULT_PACKET_CACHE_CAPACITY,
            "packet cache on by default"
        );
        // 0 is valid: it is the disable lever.
        let off =
            ServeConf::parse(["--upstream", "8.8.8.8", "--packet-cache-capacity", "0"]).unwrap();
        assert_eq!(off.packet_cache_capacity, 0);
    }
}
