//! The `zdns` command-line tool.
//!
//! ```text
//! zdns MODULE [flags] < names.txt > results.jsonl
//! ```
//!
//! Scans run against the built-in simulated Internet (deterministic per
//! `--seed`), making the CLI a self-contained demonstration of the whole
//! pipeline: input decoding, module dispatch, lookup routines, JSON output,
//! and run-time statistics on stderr.

use std::io::{BufRead, Write};
use std::sync::Arc;

use parking_lot::Mutex;
use zdns_framework::conf::{Conf, Workload};
use zdns_framework::output::{JsonlSink, OutputSink};
use zdns_framework::{pipeline, runner};
use zdns_modules::ModuleRegistry;
use zdns_netsim::InputSource;
use zdns_workloads::CtCorpus;
use zdns_zones::{SynthConfig, SyntheticUniverse};

/// The corpus registry shape every evaluation workload uses (486 ccTLDs,
/// 1211 new gTLDs — the Table 3 registry mix).
const CORPUS_CCTLDS: usize = 486;
const CORPUS_NGTLDS: usize = 1211;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print_help();
        return;
    }
    if args[0] == "serve" {
        run_serve(&args[1..]);
        return;
    }
    if args[0] == "merge" {
        run_merge(&args[1..]);
        return;
    }
    let mut conf = match Conf::parse(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("zdns: {e}");
            std::process::exit(2);
        }
    };
    let registry = ModuleRegistry::standard();
    let Some(module) = registry.get(&conf.module) else {
        eprintln!(
            "zdns: unknown module {:?}; available: {}",
            conf.module,
            registry.names().join(", ")
        );
        std::process::exit(2);
    };

    let universe = Arc::new(SyntheticUniverse::new(SynthConfig {
        seed: conf.seed,
        ..SynthConfig::default()
    }));

    // Input: a streaming source — lines from a file/stdin, or the
    // generated CT corpus (`--workload ct-corpus --max-names N`), which
    // is never materialized.
    let mut source: Box<dyn InputSource> = match conf.workload {
        Workload::CtCorpus => Box::new(
            CtCorpus::new(conf.seed, CORPUS_CCTLDS, CORPUS_NGTLDS)
                .into_stream(conf.max_names as u64),
        ),
        Workload::Lines => {
            let reader: Box<dyn BufRead> = if conf.input_path == "-" {
                Box::new(std::io::stdin().lock())
            } else {
                match std::fs::File::open(&conf.input_path) {
                    Ok(f) => Box::new(std::io::BufReader::new(f)),
                    Err(e) => {
                        eprintln!("zdns: cannot open {}: {e}", conf.input_path);
                        std::process::exit(2);
                    }
                }
            };
            let max = conf.max_names;
            Box::new(
                reader
                    .lines()
                    .map_while(Result::ok)
                    .map(|l| l.trim().to_string())
                    .filter(|l| !l.is_empty() && !l.starts_with('#'))
                    .take(if max == 0 { usize::MAX } else { max }),
            )
        }
    };

    // Sharding: filter the (already name-capped) stream down to this
    // process's partition. --max-names applies *before* the shard
    // filter, so the union of all shards equals the unsharded run.
    if let Some((index, count)) = conf.shard {
        if count > 1 {
            source = Box::new(zdns_netsim::ShardedSource::new(source, index, count));
        }
    }

    // Resume: verify the manifest matches this configuration, repair the
    // output's torn trailing line, and skip every name whose output line
    // already exists — zero completed names are re-probed.
    if conf.resume {
        match zdns_framework::prepare_resume(&conf, std::path::Path::new(&conf.checkpoint_path)) {
            Ok(plan) => {
                if plan.repaired_bytes > 0 {
                    eprintln!(
                        "zdns: dropped {} torn trailing byte(s) from {}",
                        plan.repaired_bytes, plan.manifest.output
                    );
                }
                eprintln!(
                    "zdns: resuming scan {} — {} name(s) already complete{}",
                    plan.manifest.scan_id,
                    plan.done.len(),
                    plan.checkpoint
                        .as_ref()
                        .map(|c| format!(
                            ", checkpoint at cursor {} ({} outstanding)",
                            c.cursor,
                            c.outstanding.len()
                        ))
                        .unwrap_or_default(),
                );
                // The manifest owns the output location — the path is
                // deliberately outside the scan fingerprint, so flags
                // cannot redirect a resumed shard's output.
                conf.output_path = plan.manifest.output.clone();
                source = Box::new(zdns_framework::DedupSource::new(source, plan.done));
            }
            Err(e) => {
                eprintln!("zdns: {e}");
                std::process::exit(2);
            }
        }
    }

    // Output: a JSONL sink over file or stdout, serializing every line
    // through one reusable buffer. A resumed scan appends to the
    // (already repaired) output instead of truncating it.
    let writer: Box<dyn Write + Send> = if conf.output_path == "-" {
        Box::new(std::io::BufWriter::new(std::io::stdout()))
    } else {
        let mut opts = std::fs::OpenOptions::new();
        opts.write(true).create(true);
        if conf.resume {
            opts.append(true);
        } else {
            opts.truncate(true);
        }
        match opts.open(&conf.output_path) {
            Ok(f) => Box::new(std::io::BufWriter::new(f)),
            Err(e) => {
                eprintln!("zdns: cannot create {}: {e}", conf.output_path);
                std::process::exit(2);
            }
        }
    };
    let mut sink = JsonlSink::new(writer, conf.output);

    if conf.real {
        // Real sockets: the reactor drives --max-in-flight concurrent
        // lookups over a handful of long-lived UDP sockets, addressing
        // servers directly (`ip:53`). Iterative mode is refused: its root
        // hints come from the *synthetic* universe, so a real iterative
        // scan would spray live packets at third-party addresses that are
        // not DNS servers. Input-addressed modules (PROBE, BINDVERSION)
        // take every destination from their input lines and are exempt.
        if matches!(conf.resolver.mode, zdns_core::ResolutionMode::Iterative)
            && !module.input_addressed()
        {
            eprintln!(
                "zdns: --real requires --name-servers (iterative mode has no \
                 real root hints yet; the built-in hints are simulation-only)"
            );
            std::process::exit(2);
        }
        let resolver = runner::resolver_for(&conf, universe.as_ref());
        // Route by the --name-servers entries: `ip:port` forms keep their
        // port (a scan can point at a local `zdns serve`), everything
        // else goes to ip:53.
        let ports: std::collections::HashMap<std::net::Ipv4Addr, std::net::SocketAddr> = conf
            .name_server_addrs
            .iter()
            .filter_map(|sa| match sa {
                std::net::SocketAddr::V4(v4) => Some((*v4.ip(), *sa)),
                _ => None,
            })
            .collect();
        let addr_map: Arc<zdns_core::AddrMap> = Arc::new(move |ip: std::net::Ipv4Addr| {
            ports
                .get(&ip)
                .copied()
                .unwrap_or_else(|| std::net::SocketAddr::new(ip.into(), 53))
        });
        let report = pipeline::run_scan_pipeline(
            &conf,
            &resolver,
            module,
            addr_map,
            source.as_mut(),
            &mut sink,
        );
        for error in &report.worker_errors {
            eprintln!("zdns: {error}");
        }
        eprintln!("{}", report.summary_line());
        if report.lookups == 0 && !report.worker_errors.is_empty() {
            std::process::exit(1);
        }
        return;
    }

    // Sim path: same source, same sink — the sink sits behind a lock
    // because the engine's output callback must be Send.
    let sink = Arc::new(Mutex::new(sink));
    let sink2 = Arc::clone(&sink);
    let report = runner::run_sim_scan(
        &conf,
        universe,
        module,
        std::iter::from_fn(move || source.next_name()),
        move |o| {
            let _ = sink2.lock().write_output(o);
        },
    );
    let _ = sink.lock().flush();

    if conf.status_updates {
        eprintln!(
            "zdns: {} lookups, {:.1}% success, {} queries, {:.1}s virtual time, {:.0} successes/s steady-state",
            report.jobs,
            report.success_rate() * 100.0,
            report.queries_sent,
            zdns_netsim::as_secs_f64(report.makespan),
            report.steady_success_rate(),
        );
    }
}

/// `zdns merge`: verify that per-shard manifests describe the same scan
/// (equal fingerprints, shard indices covering exactly `0..n`, every
/// shard complete unless `--allow-partial`) and concatenate their JSONL
/// outputs in shard-index order.
fn run_merge(args: &[String]) {
    if args.is_empty() || args[0] == "--help" {
        print_merge_help();
        if args.is_empty() {
            std::process::exit(2);
        }
        return;
    }
    let mut output = String::new();
    let mut allow_partial = false;
    let mut manifests: Vec<std::path::PathBuf> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--output" | "--output-file" => {
                i += 1;
                match args.get(i) {
                    Some(v) => output = v.clone(),
                    None => {
                        eprintln!("zdns merge: --output needs a path");
                        std::process::exit(2);
                    }
                }
            }
            "--allow-partial" => allow_partial = true,
            flag if flag.starts_with("--") => {
                eprintln!("zdns merge: unknown flag {flag}");
                std::process::exit(2);
            }
            manifest => manifests.push(std::path::PathBuf::from(manifest)),
        }
        i += 1;
    }
    if output.is_empty() {
        eprintln!("zdns merge: --output PATH is required");
        std::process::exit(2);
    }
    match zdns_framework::merge_shards(&manifests, std::path::Path::new(&output), allow_partial) {
        Ok(report) => {
            let partial = if report.partial_shards.is_empty() {
                String::new()
            } else {
                format!(" (shards not complete: {:?})", report.partial_shards)
            };
            eprintln!(
                "zdns merge: {} shard(s), {} line(s) -> {output}{partial}",
                report.shards, report.lines
            );
        }
        Err(e) => {
            eprintln!("zdns merge: {e}");
            std::process::exit(1);
        }
    }
}

fn print_merge_help() {
    println!(
        "zdns merge - combine per-shard scan outputs into one JSONL file

USAGE: zdns merge --output merged.jsonl shard0.manifest.json shard1.manifest.json ...

Verifies the shard manifests first: every manifest must carry the same
scan fingerprint (same module/workload/input/seed/max-names/shard-count),
the shard indices must cover exactly 0..n with no duplicates, and every
shard's checkpoint must be marked complete. Outputs are concatenated in
shard-index order.

FLAGS:
  --output PATH        merged JSONL destination (required)
  --allow-partial      merge even if some shards have not finished
                       (their indices are reported on stderr)"
    );
}

/// `zdns serve`: run a caching forwarding DNS server on real sockets —
/// the reactor's bidirectional mode. Listens on UDP + TCP, answers from
/// the selective cache, forwards misses to `--upstream`, and applies a
/// per-client token-bucket gate when `--client-pps` is set.
fn run_serve(args: &[String]) {
    if args.first().map(String::as_str) == Some("--help") {
        print_serve_help();
        return;
    }
    let conf = match zdns_framework::ServeConf::parse(args.iter().cloned()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("zdns serve: {e}");
            std::process::exit(2);
        }
    };
    let handle = match zdns_framework::serve::start(&conf.options()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("zdns serve: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "zdns serve: listening on {} (udp+tcp), {} worker{}, forwarding to {}",
        handle.local_addr(),
        handle.stats().len(),
        if handle.stats().len() == 1 { "" } else { "s" },
        conf.upstreams
            .iter()
            .map(|u| u.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );
    let started = std::time::Instant::now();
    loop {
        std::thread::sleep(std::time::Duration::from_millis(250));
        if conf.status_updates && started.elapsed().as_millis() % 1000 < 250 {
            eprintln!("{}", handle.summary_line());
        }
        if conf.duration > 0.0 && started.elapsed().as_secs_f64() >= conf.duration {
            break;
        }
    }
    eprintln!("{}", handle.summary_line());
    let reports = handle.stop();
    if let Some(report) = reports.first() {
        eprintln!(
            "zdns serve: io backend {}, {} upstream queries sent, {} datagrams received",
            report.io_backend, report.datagrams_sent, report.datagrams_received,
        );
    }
}

fn print_serve_help() {
    println!(
        "zdns serve - caching forwarding DNS server (reactor serve mode)

USAGE: zdns serve --upstream IP[:PORT] [flags]

FLAGS:
  --listen IP:PORT         listen address, UDP + TCP (default 127.0.0.1:5353;
                           port 0 = ephemeral)
  --upstream IP[:PORT][,…] upstream recursive resolvers misses are forwarded
                           to (required; port defaults to 53)
  --cache-capacity N       selective cache entries (default 600000)
  --packet-cache-capacity N
                           pre-encoded answer packets kept in front of the
                           record cache; hot repeats skip record iteration
                           and re-encoding (default 65536; 0 disables)
  --client-pps N           per-client UDP budget in queries/s; over-budget
                           queries are dropped, TCP is never gated
                           (default: off)
  --io-backend KIND        forwarding syscall strategy: auto | uring | mmsg |
                           syscall (same chain as scan mode)
  --shards N               worker count: 1 (default) serves and forwards on
                           one dual-role socket; N>1 shards the listen port
                           across workers via SO_REUSEPORT
  --batch-size N           datagrams per syscall on the forwarding path
  --duration SECS          serve for SECS then exit (default: run forever)
  --status-updates         print a stats line to stderr every second"
    );
}

fn print_help() {
    println!(
        "zdns - fast DNS measurement toolkit (Rust reproduction, simulated Internet)

USAGE: zdns MODULE [flags] < names.txt
       zdns serve --upstream IP[:PORT] [flags]   (see: zdns serve --help)
       zdns merge --output merged.jsonl MANIFEST...  (see: zdns merge --help)

MODULES: A, AAAA, MX, TXT, PTR, CAA, ... plus ALOOKUP, MXLOOKUP, NSLOOKUP,
         CAALOOKUP, SPF, DMARC, BINDVERSION, ALLNAMESERVERS

FLAGS:
  --iterative              resolve iteratively from the roots (default)
  --name-servers IP[,IP]   use external recursive resolvers; ip:port forms
                           keep their port under --real (e.g. a local
                           `zdns serve` instance). Simulated runs have
                           Google at 8.8.8.8, Cloudflare at 1.1.1.1
  --threads N              concurrent lookup routines (default 1000)
  --cache-size N           selective cache entries (default 600000)
  --retries N              per-query retries (default 3)
  --timeout SECS           external query timeout
  --iteration-timeout SECS per-step timeout for iterative walks
  --tcp-only               send every query over TCP (no UDP attempt)
  --no-tcp-fallback        never retry truncated (TC=1) answers over TCP
  --trace                  include the full lookup chain in output
  --output-fields GROUP    short | normal | long | trace
  --input-file PATH        newline-delimited names (default: stdin)
  --workload KIND          name source: lines (default) reads --input-file;
                           ct-corpus streams the generated CT-log-like corpus
                           (requires --max-names N; never materialized)
  --output-file PATH       output JSONL (default: stdout)
  --source-ips N           scanning source addresses (1=/32, 8=/29, 16=/28)
  --seed N                 simulated-Internet seed
  --max-names N            stop after N inputs
  --status-updates         print run statistics to stderr
  --real                   scan over real sockets (servers at ip:53) using
                           the event-driven reactor instead of the simulator
  --max-in-flight N        reactor admission window: concurrent lookups in
                           flight across all workers (default: --threads)
  --batch-size N           datagrams per syscall on the reactor hot path:
                           same-tick sends coalesce into one sendmmsg and
                           receives drain through an N-buffer recvmmsg arena
                           (default 32; 1 = per-datagram syscalls)
  --io-backend KIND        reactor syscall strategy: auto (default; best the
                           kernel supports), uring (io_uring rings), mmsg
                           (sendmmsg/recvmmsg), syscall (per-datagram).
                           Unavailable choices degrade uring -> mmsg -> syscall
  --pin-cores              pin each reactor worker to its own CPU core
                           (sched_setaffinity; best-effort)
  --rate-pps N             polite scanning: global send budget in packets/s,
                           one scan-wide budget the workers lease from
                           (default: unlimited)
  --per-host-pps N         per-destination send budget in packets/s
  --backoff                adaptive per-destination backoff: timeout/error
                           streaks grow a penalty multiplicatively, successes
                           decay it
  --backoff-base SECS      first backoff penalty (implies --backoff)
  --backoff-cap SECS       backoff penalty growth cap (implies --backoff)
  --static-split           split the admission window and pacing budgets
                           statically across workers (pre-pipeline behaviour;
                           A/B lever — the shared credit pool is the default)
  --pacer KIND             shared-pacer implementation: concurrent (default)
                           is lock-free — an atomic global token bucket the
                           workers lease token blocks from, plus a striped
                           per-destination backoff table; legacy-shared keeps
                           the historical whole-pacer mutex (A/B lever)
  --cookie-secret S        derive EDNS client cookies from a keyed hash of S
                           and the destination (RFC 7873 \u{a7}6): 32 hex digits
                           are literal, anything else is stretched; default
                           stays the reproducible per-name hash
  --shard I/N              deterministic horizontal partition: scan only the
                           names whose stable hash lands on shard I of N;
                           run all N shards (any machines, any order) to
                           cover the input exactly once
  --checkpoint PATH        durable scan: write a scan manifest to PATH and a
                           rotating progress checkpoint to PATH.ckpt
                           (requires --real, --output-file, and a replayable
                           input). A killed scan restarts with --resume PATH
  --resume PATH            resume the scan described by the manifest at PATH:
                           repairs the output's torn trailing line, skips
                           every name already in the output, re-admits the
                           in-flight remainder, and restores pacer backoff
  --checkpoint-every N     completions between checkpoint snapshots
                           (default 1000)"
    );
}
