//! The `zdns` command-line tool.
//!
//! ```text
//! zdns MODULE [flags] < names.txt > results.jsonl
//! ```
//!
//! Scans run against the built-in simulated Internet (deterministic per
//! `--seed`), making the CLI a self-contained demonstration of the whole
//! pipeline: input decoding, module dispatch, lookup routines, JSON output,
//! and run-time statistics on stderr.

use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use zdns_framework::conf::Conf;
use zdns_framework::output;
use zdns_framework::runner;
use zdns_modules::ModuleRegistry;
use zdns_zones::{SynthConfig, SyntheticUniverse};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print_help();
        return;
    }
    let conf = match Conf::parse(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("zdns: {e}");
            std::process::exit(2);
        }
    };
    let registry = ModuleRegistry::standard();
    let Some(module) = registry.get(&conf.module) else {
        eprintln!(
            "zdns: unknown module {:?}; available: {}",
            conf.module,
            registry.names().join(", ")
        );
        std::process::exit(2);
    };

    let universe = Arc::new(SyntheticUniverse::new(SynthConfig {
        seed: conf.seed,
        ..SynthConfig::default()
    }));

    // Input: file or stdin, one name per line.
    let reader: Box<dyn BufRead> = if conf.input_path == "-" {
        Box::new(std::io::stdin().lock())
    } else {
        match std::fs::File::open(&conf.input_path) {
            Ok(f) => Box::new(std::io::BufReader::new(f)),
            Err(e) => {
                eprintln!("zdns: cannot open {}: {e}", conf.input_path);
                std::process::exit(2);
            }
        }
    };
    let max = conf.max_names;
    let inputs = reader
        .lines()
        .map_while(Result::ok)
        .map(|l| l.trim().to_string())
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .take(if max == 0 { usize::MAX } else { max });

    // Output: file or stdout.
    let sink: Box<dyn Write + Send> = if conf.output_path == "-" {
        Box::new(std::io::BufWriter::new(std::io::stdout()))
    } else {
        match std::fs::File::create(&conf.output_path) {
            Ok(f) => Box::new(std::io::BufWriter::new(f)),
            Err(e) => {
                eprintln!("zdns: cannot create {}: {e}", conf.output_path);
                std::process::exit(2);
            }
        }
    };
    let mut sink = sink;
    let group = conf.output;
    let emitted = Arc::new(AtomicU64::new(0));
    let emitted2 = Arc::clone(&emitted);
    let on_output = move |o: zdns_modules::ModuleOutput| {
        emitted2.fetch_add(1, Ordering::Relaxed);
        let _ = writeln!(sink, "{}", output::to_line(&o, group));
    };

    if conf.real {
        // Real sockets: the reactor drives --max-in-flight concurrent
        // lookups over a handful of long-lived UDP sockets, addressing
        // servers directly (`ip:53`). Iterative mode is refused: its root
        // hints come from the *synthetic* universe, so a real iterative
        // scan would spray live packets at third-party addresses that are
        // not DNS servers.
        if matches!(conf.resolver.mode, zdns_core::ResolutionMode::Iterative) {
            eprintln!(
                "zdns: --real requires --name-servers (iterative mode has no \
                 real root hints yet; the built-in hints are simulation-only)"
            );
            std::process::exit(2);
        }
        let resolver = runner::resolver_for(&conf, universe.as_ref());
        let addr_map: Arc<zdns_core::AddrMap> =
            Arc::new(|ip: std::net::Ipv4Addr| std::net::SocketAddr::new(ip.into(), 53));
        let report = runner::run_real_scan(&conf, &resolver, module, addr_map, inputs, on_output);
        for error in &report.worker_errors {
            eprintln!("zdns: {error}");
        }
        eprintln!("{}", report.summary_line());
        if report.lookups == 0 && !report.worker_errors.is_empty() {
            std::process::exit(1);
        }
        return;
    }

    let report = runner::run_sim_scan(&conf, universe, module, inputs, on_output);

    if conf.status_updates {
        eprintln!(
            "zdns: {} lookups, {:.1}% success, {} queries, {:.1}s virtual time, {:.0} successes/s steady-state",
            report.jobs,
            report.success_rate() * 100.0,
            report.queries_sent,
            zdns_netsim::as_secs_f64(report.makespan),
            report.steady_success_rate(),
        );
    }
}

fn print_help() {
    println!(
        "zdns - fast DNS measurement toolkit (Rust reproduction, simulated Internet)

USAGE: zdns MODULE [flags] < names.txt

MODULES: A, AAAA, MX, TXT, PTR, CAA, ... plus ALOOKUP, MXLOOKUP, NSLOOKUP,
         CAALOOKUP, SPF, DMARC, BINDVERSION, ALLNAMESERVERS

FLAGS:
  --iterative              resolve iteratively from the roots (default)
  --name-servers IP[,IP]   use external recursive resolvers
                           (simulated Google at 8.8.8.8, Cloudflare at 1.1.1.1)
  --threads N              concurrent lookup routines (default 1000)
  --cache-size N           selective cache entries (default 600000)
  --retries N              per-query retries (default 3)
  --timeout SECS           external query timeout
  --iteration-timeout SECS per-step timeout for iterative walks
  --trace                  include the full lookup chain in output
  --output-fields GROUP    short | normal | long | trace
  --input-file PATH        newline-delimited names (default: stdin)
  --output-file PATH       output JSONL (default: stdout)
  --source-ips N           scanning source addresses (1=/32, 8=/29, 16=/28)
  --seed N                 simulated-Internet seed
  --max-names N            stop after N inputs
  --status-updates         print run statistics to stderr
  --real                   scan over real sockets (servers at ip:53) using
                           the event-driven reactor instead of the simulator
  --max-in-flight N        reactor admission window: concurrent lookups in
                           flight across all workers (default: --threads)
  --batch-size N           datagrams per syscall on the reactor hot path:
                           same-tick sends coalesce into one sendmmsg and
                           receives drain through an N-buffer recvmmsg arena
                           (default 32; 1 = per-datagram syscalls)
  --rate-pps N             polite scanning: global send budget in packets/s,
                           split across workers (default: unlimited)
  --per-host-pps N         per-destination send budget in packets/s
  --backoff                adaptive per-destination backoff: timeout/error
                           streaks grow a penalty multiplicatively, successes
                           decay it"
    );
}
