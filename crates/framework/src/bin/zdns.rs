//! The `zdns` command-line tool.
//!
//! ```text
//! zdns MODULE [flags] < names.txt > results.jsonl
//! ```
//!
//! Scans run against the built-in simulated Internet (deterministic per
//! `--seed`), making the CLI a self-contained demonstration of the whole
//! pipeline: input decoding, module dispatch, lookup routines, JSON output,
//! and run-time statistics on stderr.

use std::io::{BufRead, Write};
use std::sync::Arc;

use parking_lot::Mutex;
use zdns_framework::conf::{Conf, Workload};
use zdns_framework::output::{JsonlSink, OutputSink};
use zdns_framework::{pipeline, runner};
use zdns_modules::ModuleRegistry;
use zdns_netsim::InputSource;
use zdns_workloads::CtCorpus;
use zdns_zones::{SynthConfig, SyntheticUniverse};

/// The corpus registry shape every evaluation workload uses (486 ccTLDs,
/// 1211 new gTLDs — the Table 3 registry mix).
const CORPUS_CCTLDS: usize = 486;
const CORPUS_NGTLDS: usize = 1211;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        print_help();
        return;
    }
    if args[0] == "serve" {
        run_serve(&args[1..]);
        return;
    }
    let conf = match Conf::parse(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("zdns: {e}");
            std::process::exit(2);
        }
    };
    let registry = ModuleRegistry::standard();
    let Some(module) = registry.get(&conf.module) else {
        eprintln!(
            "zdns: unknown module {:?}; available: {}",
            conf.module,
            registry.names().join(", ")
        );
        std::process::exit(2);
    };

    let universe = Arc::new(SyntheticUniverse::new(SynthConfig {
        seed: conf.seed,
        ..SynthConfig::default()
    }));

    // Input: a streaming source — lines from a file/stdin, or the
    // generated CT corpus (`--workload ct-corpus --max-names N`), which
    // is never materialized.
    let mut source: Box<dyn InputSource> = match conf.workload {
        Workload::CtCorpus => Box::new(
            CtCorpus::new(conf.seed, CORPUS_CCTLDS, CORPUS_NGTLDS)
                .into_stream(conf.max_names as u64),
        ),
        Workload::Lines => {
            let reader: Box<dyn BufRead> = if conf.input_path == "-" {
                Box::new(std::io::stdin().lock())
            } else {
                match std::fs::File::open(&conf.input_path) {
                    Ok(f) => Box::new(std::io::BufReader::new(f)),
                    Err(e) => {
                        eprintln!("zdns: cannot open {}: {e}", conf.input_path);
                        std::process::exit(2);
                    }
                }
            };
            let max = conf.max_names;
            Box::new(
                reader
                    .lines()
                    .map_while(Result::ok)
                    .map(|l| l.trim().to_string())
                    .filter(|l| !l.is_empty() && !l.starts_with('#'))
                    .take(if max == 0 { usize::MAX } else { max }),
            )
        }
    };

    // Output: a JSONL sink over file or stdout, serializing every line
    // through one reusable buffer.
    let writer: Box<dyn Write + Send> = if conf.output_path == "-" {
        Box::new(std::io::BufWriter::new(std::io::stdout()))
    } else {
        match std::fs::File::create(&conf.output_path) {
            Ok(f) => Box::new(std::io::BufWriter::new(f)),
            Err(e) => {
                eprintln!("zdns: cannot create {}: {e}", conf.output_path);
                std::process::exit(2);
            }
        }
    };
    let mut sink = JsonlSink::new(writer, conf.output);

    if conf.real {
        // Real sockets: the reactor drives --max-in-flight concurrent
        // lookups over a handful of long-lived UDP sockets, addressing
        // servers directly (`ip:53`). Iterative mode is refused: its root
        // hints come from the *synthetic* universe, so a real iterative
        // scan would spray live packets at third-party addresses that are
        // not DNS servers. Input-addressed modules (PROBE, BINDVERSION)
        // take every destination from their input lines and are exempt.
        if matches!(conf.resolver.mode, zdns_core::ResolutionMode::Iterative)
            && !module.input_addressed()
        {
            eprintln!(
                "zdns: --real requires --name-servers (iterative mode has no \
                 real root hints yet; the built-in hints are simulation-only)"
            );
            std::process::exit(2);
        }
        let resolver = runner::resolver_for(&conf, universe.as_ref());
        // Route by the --name-servers entries: `ip:port` forms keep their
        // port (a scan can point at a local `zdns serve`), everything
        // else goes to ip:53.
        let ports: std::collections::HashMap<std::net::Ipv4Addr, std::net::SocketAddr> = conf
            .name_server_addrs
            .iter()
            .filter_map(|sa| match sa {
                std::net::SocketAddr::V4(v4) => Some((*v4.ip(), *sa)),
                _ => None,
            })
            .collect();
        let addr_map: Arc<zdns_core::AddrMap> = Arc::new(move |ip: std::net::Ipv4Addr| {
            ports
                .get(&ip)
                .copied()
                .unwrap_or_else(|| std::net::SocketAddr::new(ip.into(), 53))
        });
        let report = pipeline::run_scan_pipeline(
            &conf,
            &resolver,
            module,
            addr_map,
            source.as_mut(),
            &mut sink,
        );
        for error in &report.worker_errors {
            eprintln!("zdns: {error}");
        }
        eprintln!("{}", report.summary_line());
        if report.lookups == 0 && !report.worker_errors.is_empty() {
            std::process::exit(1);
        }
        return;
    }

    // Sim path: same source, same sink — the sink sits behind a lock
    // because the engine's output callback must be Send.
    let sink = Arc::new(Mutex::new(sink));
    let sink2 = Arc::clone(&sink);
    let report = runner::run_sim_scan(
        &conf,
        universe,
        module,
        std::iter::from_fn(move || source.next_name()),
        move |o| {
            let _ = sink2.lock().write_output(o);
        },
    );
    let _ = sink.lock().flush();

    if conf.status_updates {
        eprintln!(
            "zdns: {} lookups, {:.1}% success, {} queries, {:.1}s virtual time, {:.0} successes/s steady-state",
            report.jobs,
            report.success_rate() * 100.0,
            report.queries_sent,
            zdns_netsim::as_secs_f64(report.makespan),
            report.steady_success_rate(),
        );
    }
}

/// `zdns serve`: run a caching forwarding DNS server on real sockets —
/// the reactor's bidirectional mode. Listens on UDP + TCP, answers from
/// the selective cache, forwards misses to `--upstream`, and applies a
/// per-client token-bucket gate when `--client-pps` is set.
fn run_serve(args: &[String]) {
    if args.first().map(String::as_str) == Some("--help") {
        print_serve_help();
        return;
    }
    let conf = match zdns_framework::ServeConf::parse(args.iter().cloned()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("zdns serve: {e}");
            std::process::exit(2);
        }
    };
    let handle = match zdns_framework::serve::start(&conf.options()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("zdns serve: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "zdns serve: listening on {} (udp+tcp), {} worker{}, forwarding to {}",
        handle.local_addr(),
        handle.stats().len(),
        if handle.stats().len() == 1 { "" } else { "s" },
        conf.upstreams
            .iter()
            .map(|u| u.to_string())
            .collect::<Vec<_>>()
            .join(", "),
    );
    let started = std::time::Instant::now();
    loop {
        std::thread::sleep(std::time::Duration::from_millis(250));
        if conf.status_updates && started.elapsed().as_millis() % 1000 < 250 {
            eprintln!("{}", handle.summary_line());
        }
        if conf.duration > 0.0 && started.elapsed().as_secs_f64() >= conf.duration {
            break;
        }
    }
    eprintln!("{}", handle.summary_line());
    let reports = handle.stop();
    if let Some(report) = reports.first() {
        eprintln!(
            "zdns serve: io backend {}, {} upstream queries sent, {} datagrams received",
            report.io_backend, report.datagrams_sent, report.datagrams_received,
        );
    }
}

fn print_serve_help() {
    println!(
        "zdns serve - caching forwarding DNS server (reactor serve mode)

USAGE: zdns serve --upstream IP[:PORT] [flags]

FLAGS:
  --listen IP:PORT         listen address, UDP + TCP (default 127.0.0.1:5353;
                           port 0 = ephemeral)
  --upstream IP[:PORT][,…] upstream recursive resolvers misses are forwarded
                           to (required; port defaults to 53)
  --cache-capacity N       selective cache entries (default 600000)
  --client-pps N           per-client UDP budget in queries/s; over-budget
                           queries are dropped, TCP is never gated
                           (default: off)
  --io-backend KIND        forwarding syscall strategy: auto | uring | mmsg |
                           syscall (same chain as scan mode)
  --shards N               worker count: 1 (default) serves and forwards on
                           one dual-role socket; N>1 shards the listen port
                           across workers via SO_REUSEPORT
  --batch-size N           datagrams per syscall on the forwarding path
  --duration SECS          serve for SECS then exit (default: run forever)
  --status-updates         print a stats line to stderr every second"
    );
}

fn print_help() {
    println!(
        "zdns - fast DNS measurement toolkit (Rust reproduction, simulated Internet)

USAGE: zdns MODULE [flags] < names.txt
       zdns serve --upstream IP[:PORT] [flags]   (see: zdns serve --help)

MODULES: A, AAAA, MX, TXT, PTR, CAA, ... plus ALOOKUP, MXLOOKUP, NSLOOKUP,
         CAALOOKUP, SPF, DMARC, BINDVERSION, ALLNAMESERVERS

FLAGS:
  --iterative              resolve iteratively from the roots (default)
  --name-servers IP[,IP]   use external recursive resolvers; ip:port forms
                           keep their port under --real (e.g. a local
                           `zdns serve` instance). Simulated runs have
                           Google at 8.8.8.8, Cloudflare at 1.1.1.1
  --threads N              concurrent lookup routines (default 1000)
  --cache-size N           selective cache entries (default 600000)
  --retries N              per-query retries (default 3)
  --timeout SECS           external query timeout
  --iteration-timeout SECS per-step timeout for iterative walks
  --trace                  include the full lookup chain in output
  --output-fields GROUP    short | normal | long | trace
  --input-file PATH        newline-delimited names (default: stdin)
  --workload KIND          name source: lines (default) reads --input-file;
                           ct-corpus streams the generated CT-log-like corpus
                           (requires --max-names N; never materialized)
  --output-file PATH       output JSONL (default: stdout)
  --source-ips N           scanning source addresses (1=/32, 8=/29, 16=/28)
  --seed N                 simulated-Internet seed
  --max-names N            stop after N inputs
  --status-updates         print run statistics to stderr
  --real                   scan over real sockets (servers at ip:53) using
                           the event-driven reactor instead of the simulator
  --max-in-flight N        reactor admission window: concurrent lookups in
                           flight across all workers (default: --threads)
  --batch-size N           datagrams per syscall on the reactor hot path:
                           same-tick sends coalesce into one sendmmsg and
                           receives drain through an N-buffer recvmmsg arena
                           (default 32; 1 = per-datagram syscalls)
  --io-backend KIND        reactor syscall strategy: auto (default; best the
                           kernel supports), uring (io_uring rings), mmsg
                           (sendmmsg/recvmmsg), syscall (per-datagram).
                           Unavailable choices degrade uring -> mmsg -> syscall
  --pin-cores              pin each reactor worker to its own CPU core
                           (sched_setaffinity; best-effort)
  --rate-pps N             polite scanning: global send budget in packets/s,
                           one scan-wide budget the workers lease from
                           (default: unlimited)
  --per-host-pps N         per-destination send budget in packets/s
  --backoff                adaptive per-destination backoff: timeout/error
                           streaks grow a penalty multiplicatively, successes
                           decay it
  --backoff-base SECS      first backoff penalty (implies --backoff)
  --backoff-cap SECS       backoff penalty growth cap (implies --backoff)
  --static-split           split the admission window and pacing budgets
                           statically across workers (pre-pipeline behaviour;
                           A/B lever — the shared credit pool is the default)
  --cookie-secret S        derive EDNS client cookies from a keyed hash of S
                           and the destination (RFC 7873 \u{a7}6): 32 hex digits
                           are literal, anything else is stretched; default
                           stays the reproducible per-name hash"
    );
}
