//! # zdns-framework
//!
//! The ZDNS scan framework (§3.2): command-line configuration, input
//! decoding, spawning lookup routines, routing results, output encoding,
//! and run-time statistics. The framework is deliberately free of
//! DNS-specific logic — that lives in `zdns-core` and `zdns-modules`.

#![warn(missing_docs)]

pub mod conf;
pub mod output;
pub mod pipeline;
pub mod runner;
pub mod serve;

pub use conf::{Conf, ConfError, OutputGroup, ServeConf, Workload};
pub use output::{CallbackSink, JsonlSink, OutputSink};
pub use pipeline::{run_scan_pipeline, AdmissionMode};
pub use runner::{
    resolver_for, run_real_scan, run_sim_scan, run_sim_scan_with, RealScanReport, CLOUDFLARE_DNS,
    GOOGLE_DNS,
};
pub use serve::{ServeHandle, ServeOptions};
