//! # zdns-framework
//!
//! The ZDNS scan framework (§3.2): command-line configuration, input
//! decoding, spawning lookup routines, routing results, output encoding,
//! and run-time statistics. The framework is deliberately free of
//! DNS-specific logic — that lives in `zdns-core` and `zdns-modules`.
//!
//! # Example
//!
//! [`Conf::parse`] consumes an argv-style vector, exactly as the `zdns`
//! binary does:
//!
//! ```
//! use zdns_framework::Conf;
//!
//! let conf = Conf::parse([
//!     "A", "--real", "--name-servers", "192.0.2.53:5353",
//!     "--shard", "0/4", "--rate-pps", "5000",
//! ])
//! .unwrap();
//! assert_eq!(conf.module, "A");
//! assert_eq!(conf.shard, Some((0, 4)));
//! assert_eq!(conf.rate_pps, 5000.0);
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod conf;
pub mod output;
pub mod pipeline;
pub mod runner;
pub mod serve;

pub use checkpoint::{
    merge_shards, prepare_resume, scan_id, Checkpoint, CheckpointKeeper, DedupSource, MergeReport,
    ResumePlan, ScanManifest,
};
pub use conf::{Conf, ConfError, OutputGroup, ServeConf, Workload};
pub use output::{CallbackSink, JsonlSink, OutputSink};
pub use pipeline::{run_scan_pipeline, AdmissionMode};
pub use runner::{
    resolver_for, run_real_scan, run_sim_scan, run_sim_scan_with, RealScanReport, CLOUDFLARE_DNS,
    GOOGLE_DNS,
};
pub use serve::{ServeHandle, ServeOptions};
