//! Serve mode end-to-end: a `zdns_framework::serve` fleet on loopback,
//! answering a real scan *through* itself — scanning reactor → serve
//! listener → per-client gate → cache → forwarding machine → upstream
//! `WireServer` — including cache warm-up across rounds, cookie echo,
//! and the UDP-truncation → TCP-retry round trip, on every I/O backend.

use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::sync::Arc;

use zdns_core::{
    collecting_sink, AddrMap, Admission, Driver, IoBackend, Reactor, ReactorConfig, Resolver,
    ResolverConfig, Status,
};
use zdns_framework::serve::{start, ServeOptions};
use zdns_netsim::WireServer;
use zdns_wire::{
    encode_query_into, Cookie, MessageView, Name, Question, RData, Record, RecordType, ScratchBuf,
};
use zdns_zones::{ExplicitUniverse, Universe, Zone};

/// Expected address for the i-th scan name (unique per name, so a mixed-up
/// answer anywhere in the chain is always detectable).
fn scan_addr(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 9, (i / 256) as u8, (i % 256) as u8)
}

/// A universe with one authoritative zone of uniquely-addressed names,
/// plus a name fat enough (120 A records) that its answer cannot fit a
/// 1232-byte UDP response. Hosted at 127.0.0.1 so the serve fleet's
/// upstream address map stays a loopback identity.
fn upstream_universe(n: usize) -> Arc<ExplicitUniverse> {
    let server_ip = Ipv4Addr::LOCALHOST;
    let mut zone = Zone::new(
        "scan.test".parse().unwrap(),
        "ns1.scan.test".parse().unwrap(),
        300,
    );
    for i in 0..n {
        zone.add(Record::new(
            format!("n{i}.scan.test").parse().unwrap(),
            300,
            RData::A(scan_addr(i)),
        ));
    }
    let fat: Name = "fat.scan.test".parse().unwrap();
    for i in 0..120usize {
        zone.add(Record::new(
            fat.clone(),
            300,
            RData::A(Ipv4Addr::new(10, 99, (i / 256) as u8, (i % 256) as u8)),
        ));
    }
    let mut u = ExplicitUniverse::new();
    u.host(server_ip, zone);
    Arc::new(u)
}

/// Start an upstream `WireServer` and a serve fleet forwarding to it.
fn serve_fleet(
    universe: Arc<ExplicitUniverse>,
    io_backend: IoBackend,
    shards: usize,
    client_pps: f64,
) -> (WireServer, zdns_framework::ServeHandle) {
    let upstream = WireServer::start(universe as Arc<dyn Universe>, Ipv4Addr::LOCALHOST).unwrap();
    let handle = start(&ServeOptions {
        listen: SocketAddr::new(Ipv4Addr::LOCALHOST.into(), 0),
        upstreams: vec![upstream.addr()],
        cache_capacity: 10_000,
        client_pps,
        io_backend,
        shards,
        ..ServeOptions::default()
    })
    .unwrap();
    (upstream, handle)
}

/// A scanning reactor whose "external resolver" is the serve fleet.
fn scan_through(serve_addr: SocketAddr, questions: Vec<Question>) -> Vec<zdns_core::LookupResult> {
    let map: Arc<AddrMap> = Arc::new(move |_ip| serve_addr);
    let mut config = ResolverConfig::external(vec![Ipv4Addr::LOCALHOST]);
    config.timeout = 3 * zdns_netsim::SECONDS;
    config.retries = 2;
    let resolver = Resolver::new(config);
    let (sink, collected) = collecting_sink();
    let mut reactor = Reactor::new(
        ReactorConfig {
            max_in_flight: questions.len().max(1),
            source: Ipv4Addr::LOCALHOST,
            ..ReactorConfig::default()
        },
        map,
    )
    .unwrap();
    let mut machines: Vec<_> = questions
        .into_iter()
        .map(|q| resolver.machine(q, Some(sink.clone())))
        .collect();
    machines.reverse();
    let mut feed = || match machines.pop() {
        Some(m) => Admission::Admit(m),
        None => Admission::Exhausted,
    };
    let mut on_done = |_outcome: Option<zdns_netsim::JobOutcome>| {};
    reactor.run_scan(&mut feed, &mut on_done);
    let results = std::mem::take(&mut *collected.lock());
    results
}

fn a_questions(n: usize) -> Vec<Question> {
    (0..n)
        .map(|i| Question::new(format!("n{i}.scan.test").parse().unwrap(), RecordType::A))
        .collect()
}

/// The tentpole assertion: a scan answered end-to-end through `zdns
/// serve`, with the second round warmed by the first round's cache
/// fills.
fn scan_through_serve_warms_cache(io_backend: IoBackend, shards: usize) {
    const N: usize = 30;
    let (_upstream, handle) = serve_fleet(upstream_universe(N), io_backend, shards, 0.0);
    let addr = handle.local_addr();

    // Round 1: everything misses and is forwarded upstream.
    let round1 = scan_through(addr, a_questions(N));
    assert_eq!(round1.len(), N);
    for r in &round1 {
        assert_eq!(r.status, Status::NoError, "{:?}", r.name);
        let text = r.name.to_string();
        let digits: String = text
            .trim_start_matches('n')
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        let i: usize = digits.parse().expect("name carries its index");
        assert!(
            r.answers
                .iter()
                .any(|rec| rec.rdata == RData::A(scan_addr(i))),
            "lookup {i} got someone else's answer: {:?}",
            r.answers
        );
    }
    let forwarded_r1 = handle.forwarded();
    let hits_r1 = handle.cache_hits();
    assert!(
        forwarded_r1 >= N as u64,
        "round 1 must forward ({forwarded_r1})"
    );

    // Round 2: the same names again — now the cache in front answers.
    let round2 = scan_through(addr, a_questions(N));
    assert_eq!(round2.len(), N);
    assert!(round2.iter().all(|r| r.status == Status::NoError));
    let hits_r2 = handle.cache_hits();
    assert!(
        hits_r2 - hits_r1 >= (N as u64) * 8 / 10,
        "repeat scan must be answered from cache (round-2 hits: {})",
        hits_r2 - hits_r1
    );
    assert_eq!(
        handle.forwarded(),
        forwarded_r1,
        "a warmed cache forwards nothing new"
    );
    assert!(handle.responses() >= 2 * N as u64);
    if io_backend == IoBackend::Uring {
        // Informational: on kernels without io_uring the fleet degrades
        // to mmsg; the serve dataflow above was still fully exercised.
        let reports = handle.stop();
        if reports.iter().any(|r| r.io_backend != "uring") {
            eprintln!(
                "note: io_uring unavailable, serve ran on {:?}",
                reports.iter().map(|r| r.io_backend).collect::<Vec<_>>()
            );
        }
    }
}

#[test]
fn scan_through_serve_warms_cache_syscall() {
    scan_through_serve_warms_cache(IoBackend::Syscall, 1);
}

#[test]
fn scan_through_serve_warms_cache_mmsg() {
    scan_through_serve_warms_cache(IoBackend::Mmsg, 1);
}

#[test]
fn scan_through_serve_warms_cache_uring() {
    scan_through_serve_warms_cache(IoBackend::Uring, 1);
}

#[test]
fn sharded_fleet_serves_reuseport_listeners() {
    scan_through_serve_warms_cache(IoBackend::Mmsg, 2);
}

#[test]
fn serve_echoes_cookies_with_its_server_half() {
    let (_upstream, handle) = serve_fleet(upstream_universe(4), IoBackend::Syscall, 1, 0.0);
    let client = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    client
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .unwrap();
    let cookie = Cookie::client(*b"e2eCK-01");
    let mut scratch = ScratchBuf::new();
    let question = Question::new("n0.scan.test".parse().unwrap(), RecordType::A);
    encode_query_into(&mut scratch, 0x5151, &question, true, Some(&cookie)).unwrap();
    client
        .send_to(scratch.as_slice(), handle.local_addr())
        .unwrap();
    let mut buf = [0u8; 4096];
    let (n, from) = client.recv_from(&mut buf).unwrap();
    assert_eq!(from, handle.local_addr());
    let reply = MessageView::parse(&buf[..n]).unwrap();
    assert_eq!(reply.id(), 0x5151);
    assert!(reply.flags().response);
    let echoed = reply.cookie().expect("serve echoes the cookie");
    assert_eq!(echoed.client_part(), b"e2eCK-01");
    assert_eq!(echoed.server_part(), b"ZDNSSERV");
}

#[test]
fn oversized_answer_truncates_on_udp_and_retries_over_tcp() {
    let (_upstream, handle) = serve_fleet(upstream_universe(4), IoBackend::Syscall, 1, 0.0);
    let question = Question::new("fat.scan.test".parse().unwrap(), RecordType::A);

    // The scanning machine advertises 1232 bytes; 120 A records exceed
    // it, so serve answers TC over UDP and the machine retries over TCP
    // against serve's own listener.
    let results = scan_through(handle.local_addr(), vec![question]);
    assert_eq!(results.len(), 1);
    let r = &results[0];
    assert_eq!(r.status, Status::NoError, "{r:?}");
    assert_eq!(r.answers.len(), 120, "full RRset must arrive via TCP");
    assert_eq!(r.protocol, "tcp", "truncation must drive a TCP retry");
    assert!(
        handle.truncated() >= 1,
        "serve must have sent a TC answer ({})",
        handle.truncated()
    );
    // The TCP retry was answered from the cache the UDP miss just
    // filled: promotion happens before the truncated response is sent.
    assert!(
        handle.cache_hits() >= 1,
        "TCP retry should hit the freshly-filled cache"
    );
}

#[test]
fn repeat_queries_ride_the_packet_cache() {
    // Three identical queries walk the whole cache hierarchy: the first
    // forwards upstream (filling the record cache at promotion), the
    // second answers from records and memoizes the encoded packet, the
    // third is a pure packet hit. All three answers must agree.
    let (_upstream, handle) = serve_fleet(upstream_universe(4), IoBackend::Syscall, 1, 0.0);
    let client = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    client
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .unwrap();
    let question = Question::new("n1.scan.test".parse().unwrap(), RecordType::A);
    let mut scratch = ScratchBuf::new();
    let mut answers = Vec::new();
    for id in 1..=3u16 {
        scratch.reset();
        encode_query_into(&mut scratch, id, &question, true, None).unwrap();
        client
            .send_to(scratch.as_slice(), handle.local_addr())
            .unwrap();
        let mut buf = [0u8; 4096];
        let (n, _) = client.recv_from(&mut buf).unwrap();
        let reply = MessageView::parse(&buf[..n]).unwrap();
        assert_eq!(reply.id(), id);
        assert_eq!(reply.answer_count(), 1);
        let addr = reply.answers().find_map(|r| r.a_addr()).unwrap();
        answers.push(addr);
    }
    assert!(answers.iter().all(|a| *a == scan_addr(1)));
    assert!(
        handle.packet_fills() >= 1,
        "second query memoizes ({})",
        handle.packet_fills()
    );
    assert!(
        handle.packet_hits() >= 1,
        "third query rides the packet path ({})",
        handle.packet_hits()
    );
}

#[test]
fn packet_cache_capacity_zero_still_serves() {
    // The A/B lever: a fleet with the packet cache disabled answers the
    // same repeat traffic purely from the record cache.
    let upstream = WireServer::start(
        upstream_universe(4) as Arc<dyn Universe>,
        Ipv4Addr::LOCALHOST,
    )
    .unwrap();
    let handle = start(&ServeOptions {
        listen: SocketAddr::new(Ipv4Addr::LOCALHOST.into(), 0),
        upstreams: vec![upstream.addr()],
        cache_capacity: 10_000,
        packet_cache_capacity: 0,
        io_backend: IoBackend::Syscall,
        ..ServeOptions::default()
    })
    .unwrap();
    let client = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    client
        .set_read_timeout(Some(std::time::Duration::from_secs(5)))
        .unwrap();
    let question = Question::new("n2.scan.test".parse().unwrap(), RecordType::A);
    let mut scratch = ScratchBuf::new();
    for id in 1..=3u16 {
        scratch.reset();
        encode_query_into(&mut scratch, id, &question, true, None).unwrap();
        client
            .send_to(scratch.as_slice(), handle.local_addr())
            .unwrap();
        let mut buf = [0u8; 4096];
        let (n, _) = client.recv_from(&mut buf).unwrap();
        let reply = MessageView::parse(&buf[..n]).unwrap();
        assert_eq!(reply.id(), id);
        assert_eq!(reply.answer_count(), 1);
    }
    assert!(handle.cache_hits() >= 1, "record cache still answers");
    assert_eq!(handle.packet_fills(), 0);
    assert_eq!(handle.packet_hits(), 0);
    assert_eq!(handle.packet_invalidations(), 0);
}

#[test]
fn per_client_gate_drops_overflow_udp_queries() {
    let (_upstream, handle) = serve_fleet(upstream_universe(4), IoBackend::Syscall, 1, 2.0);
    let client = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    let mut scratch = ScratchBuf::new();
    let question = Question::new("n0.scan.test".parse().unwrap(), RecordType::A);
    // Burst far past a 2 qps budget; the bucket admits the burst
    // allowance and drops the rest without answering.
    for id in 0..50u16 {
        scratch.reset();
        encode_query_into(&mut scratch, id, &question, true, None).unwrap();
        client
            .send_to(scratch.as_slice(), handle.local_addr())
            .unwrap();
    }
    // Give the serve tick time to drain the burst.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while handle.rate_limited() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(
        handle.rate_limited() > 0,
        "a 50-query burst against a 2 qps bucket must shed load"
    );
}
