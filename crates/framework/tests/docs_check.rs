//! Docs-rot guard: the CLI flag surface in `conf.rs` is cross-checked
//! against the documentation, in both directions, and every documented
//! flag is actually parsed through [`Conf::parse`] / [`ServeConf::parse`]
//! with a sample value. Internal markdown links (including `#anchors`)
//! in README.md and docs/*.md must resolve.
//!
//! When a flag is added to `conf.rs`, `conf_flag_inventory_is_curated`
//! fails until the flag gets a sample argv here *and* a mention in the
//! `zdns` help text — which is exactly the docs update being guarded.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use zdns_framework::{Conf, ServeConf};

/// Every scan flag, with a complete argv that must parse. The argv also
/// satisfies the flag's validation dependencies (e.g. `--checkpoint`
/// requires `--real` plus file-backed input and output).
const SCAN_SAMPLES: &[(&str, &[&str])] = &[
    ("--threads", &["A", "--threads", "64"]),
    ("--iterative", &["A", "--iterative"]),
    (
        "--name-servers",
        &["A", "--name-servers", "192.0.2.53,192.0.2.54:5353"],
    ),
    ("--cache-size", &["A", "--cache-size", "10000"]),
    ("--retries", &["A", "--retries", "2"]),
    ("--timeout", &["A", "--timeout", "2.5"]),
    ("--iteration-timeout", &["A", "--iteration-timeout", "1.5"]),
    ("--tcp-only", &["A", "--tcp-only"]),
    ("--no-tcp-fallback", &["A", "--no-tcp-fallback"]),
    ("--trace", &["A", "--trace"]),
    ("--output-fields", &["A", "--output-fields", "long"]),
    ("--input-file", &["A", "--input-file", "names.txt"]),
    ("--output-file", &["A", "--output-file", "out.jsonl"]),
    ("--seed", &["A", "--seed", "7"]),
    ("--source-ips", &["A", "--source-ips", "8"]),
    ("--status-updates", &["A", "--status-updates"]),
    ("--real", &["A", "--real", "--name-servers", "192.0.2.53"]),
    ("--max-in-flight", &["A", "--max-in-flight", "2000"]),
    ("--rate-pps", &["A", "--rate-pps", "5000"]),
    ("--per-host-pps", &["A", "--per-host-pps", "400"]),
    ("--backoff", &["A", "--backoff"]),
    ("--backoff-base", &["A", "--backoff-base", "0.2"]),
    ("--backoff-cap", &["A", "--backoff-cap", "8"]),
    ("--batch-size", &["A", "--batch-size", "64"]),
    ("--max-names", &["A", "--max-names", "1000000"]),
    (
        "--workload",
        &["A", "--workload", "ct-corpus", "--max-names", "100"],
    ),
    ("--static-split", &["A", "--static-split"]),
    ("--pacer", &["A", "--pacer", "legacy-shared"]),
    ("--io-backend", &["A", "--io-backend", "mmsg"]),
    ("--pin-cores", &["A", "--pin-cores"]),
    (
        "--cookie-secret",
        &["A", "--cookie-secret", "000102030405060708090a0b0c0d0e0f"],
    ),
    ("--shard", &["A", "--shard", "0/4"]),
    (
        "--checkpoint",
        &[
            "A",
            "--real",
            "--name-servers",
            "192.0.2.53",
            "--input-file",
            "names.txt",
            "--output-file",
            "out.jsonl",
            "--checkpoint",
            "scan.manifest.json",
        ],
    ),
    (
        "--resume",
        &[
            "A",
            "--real",
            "--name-servers",
            "192.0.2.53",
            "--resume",
            "scan.manifest.json",
        ],
    ),
    (
        "--checkpoint-every",
        &[
            "A",
            "--real",
            "--name-servers",
            "192.0.2.53",
            "--input-file",
            "names.txt",
            "--output-file",
            "out.jsonl",
            "--checkpoint",
            "scan.manifest.json",
            "--checkpoint-every",
            "250",
        ],
    ),
];

/// Every `zdns serve` flag with a parsing sample argv.
const SERVE_SAMPLES: &[(&str, &[&str])] = &[
    (
        "--listen",
        &["--listen", "127.0.0.1:5300", "--upstream", "192.0.2.53"],
    ),
    ("--upstream", &["--upstream", "192.0.2.53:5353,192.0.2.54"]),
    (
        "--cache-capacity",
        &["--cache-capacity", "100000", "--upstream", "192.0.2.53"],
    ),
    (
        "--packet-cache-capacity",
        &[
            "--packet-cache-capacity",
            "65536",
            "--upstream",
            "192.0.2.53",
        ],
    ),
    (
        "--client-pps",
        &["--client-pps", "100", "--upstream", "192.0.2.53"],
    ),
    (
        "--io-backend",
        &["--io-backend", "syscall", "--upstream", "192.0.2.53"],
    ),
    ("--shards", &["--shards", "4", "--upstream", "192.0.2.53"]),
    (
        "--batch-size",
        &["--batch-size", "32", "--upstream", "192.0.2.53"],
    ),
    (
        "--duration",
        &["--duration", "10", "--upstream", "192.0.2.53"],
    ),
    (
        "--status-updates",
        &["--status-updates", "--upstream", "192.0.2.53"],
    ),
];

/// Flags that are real but live outside `conf.rs`: the `zdns merge`
/// subcommand's own flags, bench-binary perf gates, and cargo flags
/// quoted in build instructions.
const DOC_ONLY_FLAGS: &[&str] = &[
    "--output",        // zdns merge
    "--allow-partial", // zdns merge
    "--help",
    "--release",
    "--bench",
    "--bin",
    "--workspace",
];

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn read(rel: &str) -> String {
    let path = repo_root().join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// The documentation set the flag checks run against.
fn doc_files() -> Vec<(String, String)> {
    let mut files = vec![("README.md".to_string(), read("README.md"))];
    let docs = repo_root().join("docs");
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&docs)
        .expect("docs/ directory")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "md"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "docs/ holds no markdown");
    for path in entries {
        let rel = format!("docs/{}", path.file_name().unwrap().to_string_lossy());
        files.push((rel.clone(), read(&rel)));
    }
    files
}

/// Extract the flag literals from `conf.rs` *match arms* — a clean
/// `"--flag"` string immediately followed by `=>` or `|` — ignoring the
/// test module and flag names quoted inside error messages.
fn conf_arm_flags() -> BTreeSet<String> {
    let src = read("crates/framework/src/conf.rs");
    let src = src.split("#[cfg(test)]").next().unwrap();
    let bytes = src.as_bytes();
    let mut flags = BTreeSet::new();
    let mut i = 0;
    while let Some(pos) = src[i..].find("\"--") {
        let start = i + pos + 1; // first '-'
        let mut end = start;
        while end < bytes.len() && matches!(bytes[end], b'a'..=b'z' | b'0'..=b'9' | b'-') {
            end += 1;
        }
        i = end;
        if end < bytes.len() && bytes[end] == b'"' && end > start + 2 {
            let rest = src[end + 1..].trim_start();
            if rest.starts_with("=>") || rest.starts_with('|') {
                flags.insert(src[start..end].to_string());
            }
        }
    }
    flags
}

/// Every `--flag`-shaped token in a document.
fn doc_flag_tokens(text: &str) -> BTreeSet<String> {
    let bytes = text.as_bytes();
    let mut tokens = BTreeSet::new();
    let mut i = 0;
    while i + 2 < bytes.len() {
        let at_flag = bytes[i] == b'-'
            && bytes[i + 1] == b'-'
            && bytes[i + 2].is_ascii_lowercase()
            && (i == 0 || !matches!(bytes[i - 1], b'-' | b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9'));
        if !at_flag {
            i += 1;
            continue;
        }
        let mut end = i + 2;
        while end < bytes.len() && matches!(bytes[end], b'a'..=b'z' | b'0'..=b'9' | b'-') {
            end += 1;
        }
        let token = text[i..end].trim_end_matches('-');
        tokens.insert(token.to_string());
        i = end;
    }
    tokens
}

#[test]
fn conf_flag_inventory_is_curated() {
    let parsed: BTreeSet<String> = conf_arm_flags();
    let curated: BTreeSet<String> = SCAN_SAMPLES
        .iter()
        .chain(SERVE_SAMPLES)
        .map(|(flag, _)| flag.to_string())
        .collect();
    let undocumented: Vec<&String> = parsed.difference(&curated).collect();
    let stale: Vec<&String> = curated.difference(&parsed).collect();
    assert!(
        undocumented.is_empty(),
        "conf.rs parses flags this test (and so the docs) never heard of: \
         {undocumented:?} — add a sample argv here, a help-text entry in \
         bin/zdns.rs, and documentation"
    );
    assert!(
        stale.is_empty(),
        "sample flags no longer parsed by conf.rs: {stale:?}"
    );
}

#[test]
fn every_flag_parses_with_its_sample_argv() {
    for (flag, argv) in SCAN_SAMPLES {
        assert!(argv.contains(flag), "sample for {flag} must use {flag}");
        Conf::parse(argv.iter().copied())
            .unwrap_or_else(|e| panic!("sample argv for {flag} failed to parse: {e}"));
    }
    for (flag, argv) in SERVE_SAMPLES {
        assert!(argv.contains(flag), "sample for {flag} must use {flag}");
        ServeConf::parse(argv.iter().copied())
            .unwrap_or_else(|e| panic!("serve sample argv for {flag} failed to parse: {e}"));
    }
}

#[test]
fn every_flag_appears_in_the_binary_help_text() {
    let help_src = read("crates/framework/src/bin/zdns.rs");
    let help_tokens = doc_flag_tokens(&help_src);
    for (flag, _) in SCAN_SAMPLES.iter().chain(SERVE_SAMPLES) {
        assert!(
            help_tokens.contains(*flag),
            "{flag} is parsed by conf.rs but absent from the zdns help text"
        );
    }
}

#[test]
fn docs_mention_only_real_flags() {
    let real: BTreeSet<String> = SCAN_SAMPLES
        .iter()
        .chain(SERVE_SAMPLES)
        .map(|(flag, _)| flag.to_string())
        .chain(DOC_ONLY_FLAGS.iter().map(|f| f.to_string()))
        .collect();
    for (name, text) in doc_files() {
        for token in doc_flag_tokens(&text) {
            assert!(
                real.contains(&token) || token.starts_with("--min-"),
                "{name} mentions {token}, which no parser implements \
                 (bench gates --min-* are exempt; extend DOC_ONLY_FLAGS \
                 for new subcommand flags)"
            );
        }
    }
}

/// GitHub's heading-anchor slug: lowercase, punctuation dropped, spaces
/// to hyphens.
fn slug(heading: &str) -> String {
    heading
        .to_lowercase()
        .chars()
        .filter(|c| c.is_alphanumeric() || *c == ' ' || *c == '-')
        .map(|c| if c == ' ' { '-' } else { c })
        .collect()
}

/// Headings of a markdown document, as anchor slugs (fenced code blocks
/// excluded — a `# comment` in a console example is not a heading).
fn anchors(text: &str) -> BTreeSet<String> {
    let mut fenced = false;
    let mut out = BTreeSet::new();
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            fenced = !fenced;
            continue;
        }
        if !fenced && line.starts_with('#') {
            out.insert(slug(line.trim_start_matches('#').trim()));
        }
    }
    out
}

/// `](target)` link targets of a markdown document.
fn link_targets(text: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut i = 0;
    while let Some(pos) = text[i..].find("](") {
        let start = i + pos + 2;
        match text[start..].find(')') {
            Some(len) => {
                targets.push(text[start..start + len].to_string());
                i = start + len;
            }
            None => break,
        }
    }
    targets
}

#[test]
fn internal_markdown_links_resolve() {
    let files = doc_files();
    for (name, text) in &files {
        let dir = repo_root().join(name);
        let dir = dir.parent().unwrap();
        for target in link_targets(text) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            let (path_part, anchor) = match target.split_once('#') {
                Some((p, a)) => (p, Some(a.to_string())),
                None => (target.as_str(), None),
            };
            let linked_text = if path_part.is_empty() {
                text.clone()
            } else {
                let path = dir.join(path_part);
                assert!(
                    path.exists(),
                    "{name} links to {target}, but {} does not exist",
                    path.display()
                );
                if path_part.ends_with(".md") {
                    std::fs::read_to_string(&path).unwrap()
                } else {
                    continue; // a non-markdown file can't carry anchors
                }
            };
            if let Some(anchor) = anchor {
                assert!(
                    anchors(&linked_text).contains(&anchor),
                    "{name} links to {target}, but no heading slugs to {anchor:?}"
                );
            }
        }
    }
}
