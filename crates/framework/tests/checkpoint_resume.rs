//! Checkpoint/resume and shard-merge, end to end against the real
//! `zdns` binary:
//!
//! * **Crash recovery** — a durable loopback scan is SIGKILLed
//!   mid-flight (torn output line, torn checkpoint file and all),
//!   resumed from its manifest, and must re-probe *zero* of the names
//!   whose output already existed — asserted with a server-side query
//!   log — while the final JSONL is line-set-identical to an
//!   uninterrupted run.
//! * **Shard merge** — `--shard 0/2` + `--shard 1/2` outputs, combined
//!   with `zdns merge`, are line-set-identical to the unsharded run;
//!   the shards themselves are disjoint and non-empty.
//!
//! The subprocess boundary is the point: a SIGKILL exercises real torn
//! writes and real file-system recovery, not a simulated panic.

use std::collections::HashSet;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use zdns_netsim::{QueryLog, WireServer};
use zdns_wire::Name;
use zdns_zones::{ExplicitUniverse, Universe, Zone};

/// A loopback server impersonating 127.0.0.1 whose root-apex zone
/// authoritatively answers every name (NXDOMAIN = completed lookup),
/// recording each question it is asked.
fn catch_all_server(latency: Duration) -> (WireServer, QueryLog) {
    let zone = Zone::new(Name::root(), "ns1.rootish.test".parse().unwrap(), 300);
    let mut universe = ExplicitUniverse::new();
    universe.host(Ipv4Addr::LOCALHOST, zone);
    WireServer::start_logged(
        Arc::new(universe) as Arc<dyn Universe>,
        Ipv4Addr::LOCALHOST,
        latency,
    )
    .unwrap()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zdns-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// DNS names are case-insensitive and the wire form may carry a root
/// dot; compare apples to apples.
fn canon(name: &str) -> String {
    name.trim().trim_end_matches('.').to_ascii_lowercase()
}

/// `zdns A --real` against the loopback server, plus `extra` flags.
fn scan_cmd(server_port: u16, names: &Path, extra: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_zdns"));
    cmd.arg("A")
        .arg("--real")
        .arg("--name-servers")
        .arg(format!("127.0.0.1:{server_port}"))
        .arg("--input-file")
        .arg(names)
        .arg("--max-in-flight")
        .arg("16")
        .arg("--retries")
        .arg("2")
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    cmd
}

fn wait_timeout(child: &mut Child, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match child.try_wait().unwrap() {
            Some(status) => {
                assert!(status.success(), "{what} exited with {status}");
                return;
            }
            None if Instant::now() > deadline => {
                let _ = child.kill();
                panic!("{what} did not finish within 60s");
            }
            None => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Complete (newline-terminated) JSONL lines of `path`; a torn trailing
/// line is excluded, mirroring what resume's repair step would drop.
fn complete_lines(path: &Path) -> Vec<String> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(_) => return Vec::new(),
    };
    let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
    String::from_utf8_lossy(&bytes[..keep])
        .lines()
        .map(str::to_string)
        .collect()
}

fn names_of(lines: &[String]) -> HashSet<String> {
    lines
        .iter()
        .map(|line| {
            let v = serde_json::from_str(line).expect("valid JSONL line");
            canon(v.get("name").and_then(serde_json::Value::as_str).unwrap())
        })
        .collect()
}

#[test]
fn killed_scan_resumes_without_reprobing_completed_names() {
    const TOTAL: usize = 2000;
    let dir = temp_dir("crash");
    let names_path = dir.join("names.txt");
    let input: Vec<String> = (0..TOTAL).map(|i| format!("name{i}.ckpt.test")).collect();
    std::fs::write(&names_path, input.join("\n") + "\n").unwrap();

    // 4ms of response latency stretches the scan into a comfortably
    // killable window (~0.5s) without slowing the test much.
    let (server, log) = catch_all_server(Duration::from_millis(4));
    let port = server.addr().port();
    let out = dir.join("out.jsonl");
    let manifest = dir.join("scan.manifest.json");

    // Fresh durable scan; kill it once results start landing on disk.
    let mut child = scan_cmd(
        port,
        &names_path,
        &[
            "--output-file",
            out.to_str().unwrap(),
            "--checkpoint",
            manifest.to_str().unwrap(),
            "--checkpoint-every",
            "25",
        ],
    )
    .spawn()
    .unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    while std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0) < 4096 {
        assert!(
            child.try_wait().unwrap().is_none(),
            "scan finished before it could be killed; raise TOTAL"
        );
        assert!(Instant::now() < deadline, "no output appeared within 30s");
        std::thread::sleep(Duration::from_millis(2));
    }
    child.kill().unwrap();
    let _ = child.wait();

    // What the dead scan durably completed (complete lines only — the
    // SIGKILL may have torn the final one mid-write).
    let completed = names_of(&complete_lines(&out));
    assert!(
        !completed.is_empty() && completed.len() < TOTAL,
        "kill must land mid-scan: {} of {TOTAL} complete",
        completed.len()
    );

    // Tear the checkpoint's current generation too: resume must shrug
    // (fall back to the previous generation or to the output done-set).
    let ckpt = {
        let mut p = manifest.as_os_str().to_os_string();
        p.push(".ckpt");
        PathBuf::from(p)
    };
    if let Ok(text) = std::fs::read_to_string(&ckpt) {
        std::fs::write(&ckpt, &text[..text.len() / 2]).unwrap();
    }

    // Resume, watching the server-side query log: not one completed
    // name may be probed again.
    log.lock().unwrap().clear();
    let mut resumed = scan_cmd(port, &names_path, &["--resume", manifest.to_str().unwrap()])
        .spawn()
        .unwrap();
    wait_timeout(&mut resumed, "resumed scan");

    let probed: HashSet<String> = log.lock().unwrap().iter().map(|n| canon(n)).collect();
    let reprobed: Vec<&String> = probed.intersection(&completed).collect();
    assert!(
        reprobed.is_empty(),
        "resume re-probed {} completed name(s), e.g. {:?}",
        reprobed.len(),
        reprobed.first()
    );
    assert!(!probed.is_empty(), "resume must probe the remainder");

    // The combined output covers every input exactly once.
    let final_lines = complete_lines(&out);
    assert_eq!(final_lines.len(), TOTAL, "one line per input");
    let final_names = names_of(&final_lines);
    let expected: HashSet<String> = input.iter().map(|n| canon(n)).collect();
    assert_eq!(final_names, expected, "names must cover the input exactly");

    // And it is line-set-identical to a never-interrupted run.
    let out_ref = dir.join("reference.jsonl");
    let manifest_ref = dir.join("reference.manifest.json");
    let mut reference = scan_cmd(
        port,
        &names_path,
        &[
            "--output-file",
            out_ref.to_str().unwrap(),
            "--checkpoint",
            manifest_ref.to_str().unwrap(),
        ],
    )
    .spawn()
    .unwrap();
    wait_timeout(&mut reference, "reference scan");
    let mut merged_sorted = final_lines.clone();
    merged_sorted.sort();
    let mut reference_sorted = complete_lines(&out_ref);
    reference_sorted.sort();
    assert_eq!(
        merged_sorted, reference_sorted,
        "resumed output must equal an uninterrupted run"
    );
    drop(server);
}

#[test]
fn two_shard_outputs_merge_into_the_unsharded_run() {
    const TOTAL: usize = 300;
    let dir = temp_dir("shards");
    let names_path = dir.join("names.txt");
    let input: Vec<String> = (0..TOTAL)
        .map(|i| format!("shardy{i}.merge.test"))
        .collect();
    std::fs::write(&names_path, input.join("\n") + "\n").unwrap();

    let (server, _log) = catch_all_server(Duration::ZERO);
    let port = server.addr().port();

    // Both shards run concurrently — separate processes, separate
    // manifests, separate outputs, zero coordination.
    let mut children = Vec::new();
    let mut manifests = Vec::new();
    for i in 0..2u32 {
        let out = dir.join(format!("shard{i}.jsonl"));
        let manifest = dir.join(format!("shard{i}.manifest.json"));
        children.push((
            scan_cmd(
                port,
                &names_path,
                &[
                    "--shard",
                    &format!("{i}/2"),
                    "--output-file",
                    out.to_str().unwrap(),
                    "--checkpoint",
                    manifest.to_str().unwrap(),
                ],
            )
            .spawn()
            .unwrap(),
            out,
        ));
        manifests.push(manifest);
    }
    for (child, _) in &mut children {
        wait_timeout(child, "shard scan");
    }

    // Disjoint, non-empty partitions.
    let shard_names: Vec<HashSet<String>> = children
        .iter()
        .map(|(_, out)| names_of(&complete_lines(out)))
        .collect();
    assert!(
        shard_names.iter().all(|s| !s.is_empty()),
        "both shards scan"
    );
    assert!(
        shard_names[0].is_disjoint(&shard_names[1]),
        "shards must not overlap"
    );

    // Merge via the subcommand (verifies manifests agree + complete).
    let merged = dir.join("merged.jsonl");
    let status = Command::new(env!("CARGO_BIN_EXE_zdns"))
        .arg("merge")
        .arg("--output")
        .arg(&merged)
        .args(&manifests)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert!(status.success(), "zdns merge failed: {status}");

    // The unsharded reference.
    let out_all = dir.join("all.jsonl");
    let mut all = scan_cmd(
        port,
        &names_path,
        &["--output-file", out_all.to_str().unwrap()],
    )
    .spawn()
    .unwrap();
    wait_timeout(&mut all, "unsharded scan");

    let mut merged_sorted = complete_lines(&merged);
    merged_sorted.sort();
    let mut all_sorted = complete_lines(&out_all);
    all_sorted.sort();
    assert_eq!(merged_sorted.len(), TOTAL);
    assert_eq!(
        merged_sorted, all_sorted,
        "merged shard outputs must equal the unsharded run line-for-line"
    );
    drop(server);
}
