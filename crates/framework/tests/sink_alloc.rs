//! The streaming sink's zero-alloc property, enforced by the counting
//! allocator: once its buffer has grown to the high-water mark,
//! [`zdns_framework::output::write_line`] serializes an output line —
//! shaping, escaping, number formatting and all — without touching the
//! allocator, for every field group. This is the serialization half of
//! the pipeline's per-output cost; [`to_line`] (the one-shot form) is
//! the allocating path it replaces on the hot loop.

use zdns_core::alloc_count::{thread_allocations, CountingAllocator};
use zdns_core::Status;
use zdns_framework::output::{to_line, write_line};
use zdns_framework::OutputGroup;
use zdns_modules::ModuleOutput;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn referral_sized_output() -> ModuleOutput {
    ModuleOutput {
        name: "stream.sink.test".into(),
        module: "A",
        status: Status::NoError,
        data: serde_json::json!({
            "answers": [
                {"answer": "192.0.2.1", "type": "A", "ttl": 300},
                {"answer": "192.0.2.2", "type": "A", "ttl": 300},
                {"answer": "192.0.2.3", "type": "A", "ttl": 300},
            ],
            "additionals": [{"answer": "198.51.100.1", "type": "A"}],
            "flags": {"authoritative": true, "recursion_available": false},
            "resolver": "203.0.113.7:53",
            "protocol": "udp",
        }),
        trace: vec![
            serde_json::json!({"depth": 1, "zone": ".", "cached": false}),
            serde_json::json!({"depth": 2, "zone": "test.", "cached": true}),
        ],
    }
}

#[test]
fn write_line_is_allocation_free_once_warm() {
    let output = referral_sized_output();
    let mut buf = String::new();
    for group in [
        OutputGroup::Short,
        OutputGroup::Normal,
        OutputGroup::Long,
        OutputGroup::Trace,
    ] {
        // Warm the buffer to this group's line length.
        for _ in 0..4 {
            write_line(&output, group, &mut buf);
        }
        let before = thread_allocations();
        for _ in 0..1_000 {
            write_line(&output, group, &mut buf);
        }
        let allocs = thread_allocations() - before;
        assert_eq!(
            allocs, 0,
            "{group:?}: write_line allocated {allocs} times over 1000 lines"
        );
        // And it still produces exactly the one-shot rendering.
        assert_eq!(buf, to_line(&output, group), "{group:?}");
    }
}

#[test]
fn one_shot_to_line_allocates_as_expected() {
    // Sanity check on the measurement itself: the allocating path must
    // register against the same counter the zero-alloc claim uses.
    let output = referral_sized_output();
    let before = thread_allocations();
    let line = to_line(&output, OutputGroup::Trace);
    assert!(thread_allocations() - before > 0);
    assert!(line.contains("stream.sink.test"));
}
