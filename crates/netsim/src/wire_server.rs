//! Real-socket DNS servers for integration testing.
//!
//! `WireServer` binds an OS UDP socket (and a TCP listener for truncation
//! fallback) on 127.0.0.1 and serves a [`Universe`], so `zdns-core`'s real
//! `UdpTransport` path can be exercised end-to-end without leaving the
//! machine.

use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use zdns_wire::Message;
use zdns_zones::Universe;

/// A running loopback DNS server.
pub struct WireServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl WireServer {
    /// Address the server listens on (UDP and TCP share the port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Start serving `universe` on an ephemeral 127.0.0.1 port. Queries are
    /// answered as if this socket were the server at `impersonate` inside
    /// the universe.
    pub fn start(universe: Arc<dyn Universe>, impersonate: Ipv4Addr) -> std::io::Result<WireServer> {
        let udp = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?;
        let addr = udp.local_addr()?;
        let tcp = TcpListener::bind(addr)?;
        tcp.set_nonblocking(true)?;
        udp.set_read_timeout(Some(Duration::from_millis(25)))?;
        let stop = Arc::new(AtomicBool::new(false));

        let udp_stop = Arc::clone(&stop);
        let udp_universe = Arc::clone(&universe);
        let udp_thread = std::thread::spawn(move || {
            let mut buf = [0u8; 65_535];
            while !udp_stop.load(Ordering::Relaxed) {
                let Ok((len, peer)) = udp.recv_from(&mut buf) else {
                    continue;
                };
                if let Some(bytes) = answer(&udp_universe, impersonate, &buf[..len], true) {
                    let _ = udp.send_to(&bytes, peer);
                }
            }
        });

        let tcp_stop = Arc::clone(&stop);
        let tcp_universe = Arc::clone(&universe);
        let tcp_thread = std::thread::spawn(move || {
            while !tcp_stop.load(Ordering::Relaxed) {
                match tcp.accept() {
                    Ok((mut stream, _)) => {
                        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                        let mut len_buf = [0u8; 2];
                        if stream.read_exact(&mut len_buf).is_err() {
                            continue;
                        }
                        let len = u16::from_be_bytes(len_buf) as usize;
                        let mut msg_buf = vec![0u8; len];
                        if stream.read_exact(&mut msg_buf).is_err() {
                            continue;
                        }
                        if let Some(bytes) = answer(&tcp_universe, impersonate, &msg_buf, false) {
                            let prefix = (bytes.len() as u16).to_be_bytes();
                            let _ = stream.write_all(&prefix);
                            let _ = stream.write_all(&bytes);
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => break,
                }
            }
        });

        Ok(WireServer {
            addr,
            stop,
            threads: vec![udp_thread, tcp_thread],
        })
    }
}

fn answer(
    universe: &Arc<dyn Universe>,
    impersonate: Ipv4Addr,
    raw: &[u8],
    udp: bool,
) -> Option<Vec<u8>> {
    let query = Message::decode(raw).ok()?;
    let question = query.question()?;
    let auth = universe.respond(impersonate, question)?;
    let response = auth.to_message(&query);
    if udp {
        let limit = query
            .edns
            .as_ref()
            .map(|e| e.udp_payload_size as usize)
            .unwrap_or(512);
        response.encode_udp(limit).ok().map(|(bytes, _)| bytes)
    } else {
        response.encode().ok()
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zdns_wire::{Question, RData, Rcode, Record, RecordType};
    use zdns_zones::{ExplicitUniverse, Zone};

    fn test_universe() -> (Arc<dyn Universe>, Ipv4Addr) {
        let server_ip = Ipv4Addr::new(127, 0, 0, 1);
        let mut zone = Zone::new(
            "example.test".parse().unwrap(),
            "ns1.example.test".parse().unwrap(),
            300,
        );
        zone.add(Record::new(
            "example.test".parse().unwrap(),
            300,
            RData::A("192.0.2.5".parse().unwrap()),
        ));
        let mut u = ExplicitUniverse::new();
        u.host(server_ip, zone);
        (Arc::new(u), server_ip)
    }

    #[test]
    fn serves_udp_queries_over_real_sockets() {
        let (universe, ip) = test_universe();
        let server = WireServer::start(universe, ip).unwrap();
        let client = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let query = Message::query(
            0x4242,
            Question::new("example.test".parse().unwrap(), RecordType::A),
        );
        client
            .send_to(&query.encode().unwrap(), server.addr())
            .unwrap();
        let mut buf = [0u8; 4096];
        let (len, _) = client.recv_from(&mut buf).unwrap();
        let response = Message::decode(&buf[..len]).unwrap();
        assert_eq!(response.id, 0x4242);
        assert_eq!(response.rcode(), Rcode::NoError);
        assert_eq!(
            response.answers[0].rdata,
            RData::A("192.0.2.5".parse().unwrap())
        );
    }

    #[test]
    fn serves_tcp_queries() {
        let (universe, ip) = test_universe();
        let server = WireServer::start(universe, ip).unwrap();
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let query = Message::query(
            7,
            Question::new("example.test".parse().unwrap(), RecordType::A),
        );
        let bytes = query.encode().unwrap();
        stream
            .write_all(&(bytes.len() as u16).to_be_bytes())
            .unwrap();
        stream.write_all(&bytes).unwrap();
        let mut len_buf = [0u8; 2];
        stream.read_exact(&mut len_buf).unwrap();
        let mut msg = vec![0u8; u16::from_be_bytes(len_buf) as usize];
        stream.read_exact(&mut msg).unwrap();
        let response = Message::decode(&msg).unwrap();
        assert_eq!(response.rcode(), Rcode::NoError);
    }

    #[test]
    fn garbage_input_is_ignored() {
        let (universe, ip) = test_universe();
        let server = WireServer::start(universe, ip).unwrap();
        let client = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        client
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        client.send_to(&[0xFF; 7], server.addr()).unwrap();
        let mut buf = [0u8; 64];
        assert!(client.recv_from(&mut buf).is_err(), "no reply to garbage");
    }
}
