//! Real-socket DNS servers for integration testing.
//!
//! `WireServer` binds an OS UDP socket (and a TCP listener for truncation
//! fallback) on 127.0.0.1 and serves a [`Universe`], so `zdns-core`'s real
//! `UdpTransport` path can be exercised end-to-end without leaving the
//! machine.

use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use zdns_wire::Message;
use zdns_zones::Universe;

/// A running loopback DNS server.
pub struct WireServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

/// Ask the kernel for a large receive buffer on `socket`. Event-driven
/// clients put hundreds-to-thousands of datagrams in flight at once; the
/// default buffer (a few hundred KB) silently drops the burst, which
/// surfaces as timeouts. Best-effort: unsupported platforms are a no-op.
pub fn set_recv_buffer(socket: &UdpSocket, bytes: usize) {
    #[cfg(any(target_os = "linux", target_os = "android"))]
    {
        use std::os::fd::AsRawFd;
        const SOL_SOCKET: i32 = 1;
        const SO_RCVBUF: i32 = 8;
        extern "C" {
            fn setsockopt(
                fd: i32,
                level: i32,
                name: i32,
                value: *const std::ffi::c_void,
                len: u32,
            ) -> i32;
        }
        let value = bytes as i32;
        // SAFETY: fd is a live socket; value points at a properly sized int.
        unsafe {
            setsockopt(
                socket.as_raw_fd(),
                SOL_SOCKET,
                SO_RCVBUF,
                &value as *const i32 as *const std::ffi::c_void,
                std::mem::size_of::<i32>() as u32,
            );
        }
    }
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    {
        let _ = (socket, bytes);
    }
}

impl WireServer {
    /// Address the server listens on (UDP and TCP share the port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Start serving `universe` on an ephemeral 127.0.0.1 port. Queries are
    /// answered as if this socket were the server at `impersonate` inside
    /// the universe.
    pub fn start(
        universe: Arc<dyn Universe>,
        impersonate: Ipv4Addr,
    ) -> std::io::Result<WireServer> {
        WireServer::start_with_latency(universe, impersonate, Duration::ZERO)
    }

    /// Like [`WireServer::start`] but every UDP response is delayed by
    /// `latency` *without* serializing queries behind each other — the
    /// benchmark knob that makes concurrency architecture visible: a
    /// driver with N lookups in flight completes ~N per latency window,
    /// regardless of how many OS threads it has.
    pub fn start_with_latency(
        universe: Arc<dyn Universe>,
        impersonate: Ipv4Addr,
        latency: Duration,
    ) -> std::io::Result<WireServer> {
        let udp = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?;
        set_recv_buffer(&udp, 8 << 20);
        let addr = udp.local_addr()?;
        let tcp = TcpListener::bind(addr)?;
        tcp.set_nonblocking(true)?;
        udp.set_read_timeout(Some(Duration::from_millis(25)))?;
        let stop = Arc::new(AtomicBool::new(false));

        let udp_stop = Arc::clone(&stop);
        let udp_universe = Arc::clone(&universe);
        let mut threads = Vec::new();

        // Delayed responses queue in arrival order (due times are
        // monotonic), drained by a dedicated sender thread.
        type Delayed = (std::time::Instant, std::net::SocketAddr, Vec<u8>);
        let delayed: Arc<std::sync::Mutex<std::collections::VecDeque<Delayed>>> =
            Arc::new(std::sync::Mutex::new(std::collections::VecDeque::new()));
        if latency > Duration::ZERO {
            let delayed = Arc::clone(&delayed);
            let sender = udp.try_clone()?;
            let sender_stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                while !sender_stop.load(Ordering::Relaxed) {
                    let next = delayed.lock().unwrap().pop_front();
                    match next {
                        Some((due, peer, bytes)) => {
                            let now = std::time::Instant::now();
                            if due > now {
                                std::thread::sleep(due - now);
                            }
                            let _ = sender.send_to(&bytes, peer);
                        }
                        None => std::thread::sleep(Duration::from_micros(200)),
                    }
                }
            }));
        }

        let udp_delayed = Arc::clone(&delayed);
        let udp_thread = std::thread::spawn(move || {
            let mut buf = [0u8; 65_535];
            while !udp_stop.load(Ordering::Relaxed) {
                let Ok((len, peer)) = udp.recv_from(&mut buf) else {
                    continue;
                };
                if let Some(bytes) = answer(&udp_universe, impersonate, &buf[..len], true) {
                    if latency > Duration::ZERO {
                        udp_delayed.lock().unwrap().push_back((
                            std::time::Instant::now() + latency,
                            peer,
                            bytes,
                        ));
                    } else {
                        let _ = udp.send_to(&bytes, peer);
                    }
                }
            }
        });

        let tcp_stop = Arc::clone(&stop);
        let tcp_universe = Arc::clone(&universe);
        let tcp_thread = std::thread::spawn(move || {
            while !tcp_stop.load(Ordering::Relaxed) {
                match tcp.accept() {
                    Ok((mut stream, _)) => {
                        let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                        let mut len_buf = [0u8; 2];
                        if stream.read_exact(&mut len_buf).is_err() {
                            continue;
                        }
                        let len = u16::from_be_bytes(len_buf) as usize;
                        let mut msg_buf = vec![0u8; len];
                        if stream.read_exact(&mut msg_buf).is_err() {
                            continue;
                        }
                        if let Some(bytes) = answer(&tcp_universe, impersonate, &msg_buf, false) {
                            let prefix = (bytes.len() as u16).to_be_bytes();
                            let _ = stream.write_all(&prefix);
                            let _ = stream.write_all(&bytes);
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => break,
                }
            }
        });

        threads.push(udp_thread);
        threads.push(tcp_thread);
        Ok(WireServer {
            addr,
            stop,
            threads,
        })
    }
}

fn answer(
    universe: &Arc<dyn Universe>,
    impersonate: Ipv4Addr,
    raw: &[u8],
    udp: bool,
) -> Option<Vec<u8>> {
    let query = Message::decode(raw).ok()?;
    let question = query.question()?;
    let auth = universe.respond(impersonate, question)?;
    let response = auth.to_message(&query);
    if udp {
        let limit = query
            .edns
            .as_ref()
            .map(|e| e.udp_payload_size as usize)
            .unwrap_or(512);
        response.encode_udp(limit).ok().map(|(bytes, _)| bytes)
    } else {
        response.encode().ok()
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zdns_wire::{Question, RData, Rcode, Record, RecordType};
    use zdns_zones::{ExplicitUniverse, Zone};

    fn test_universe() -> (Arc<dyn Universe>, Ipv4Addr) {
        let server_ip = Ipv4Addr::new(127, 0, 0, 1);
        let mut zone = Zone::new(
            "example.test".parse().unwrap(),
            "ns1.example.test".parse().unwrap(),
            300,
        );
        zone.add(Record::new(
            "example.test".parse().unwrap(),
            300,
            RData::A("192.0.2.5".parse().unwrap()),
        ));
        let mut u = ExplicitUniverse::new();
        u.host(server_ip, zone);
        (Arc::new(u), server_ip)
    }

    #[test]
    fn serves_udp_queries_over_real_sockets() {
        let (universe, ip) = test_universe();
        let server = WireServer::start(universe, ip).unwrap();
        let client = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let query = Message::query(
            0x4242,
            Question::new("example.test".parse().unwrap(), RecordType::A),
        );
        client
            .send_to(&query.encode().unwrap(), server.addr())
            .unwrap();
        let mut buf = [0u8; 4096];
        let (len, _) = client.recv_from(&mut buf).unwrap();
        let response = Message::decode(&buf[..len]).unwrap();
        assert_eq!(response.id, 0x4242);
        assert_eq!(response.rcode(), Rcode::NoError);
        assert_eq!(
            response.answers[0].rdata,
            RData::A("192.0.2.5".parse().unwrap())
        );
    }

    #[test]
    fn serves_tcp_queries() {
        let (universe, ip) = test_universe();
        let server = WireServer::start(universe, ip).unwrap();
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let query = Message::query(
            7,
            Question::new("example.test".parse().unwrap(), RecordType::A),
        );
        let bytes = query.encode().unwrap();
        stream
            .write_all(&(bytes.len() as u16).to_be_bytes())
            .unwrap();
        stream.write_all(&bytes).unwrap();
        let mut len_buf = [0u8; 2];
        stream.read_exact(&mut len_buf).unwrap();
        let mut msg = vec![0u8; u16::from_be_bytes(len_buf) as usize];
        stream.read_exact(&mut msg).unwrap();
        let response = Message::decode(&msg).unwrap();
        assert_eq!(response.rcode(), Rcode::NoError);
    }

    #[test]
    fn garbage_input_is_ignored() {
        let (universe, ip) = test_universe();
        let server = WireServer::start(universe, ip).unwrap();
        let client = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        client
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        client.send_to(&[0xFF; 7], server.addr()).unwrap();
        let mut buf = [0u8; 64];
        assert!(client.recv_from(&mut buf).is_err(), "no reply to garbage");
    }
}
