//! Real-socket DNS servers for integration testing.
//!
//! `WireServer` binds an OS UDP socket (and a TCP listener for truncation
//! fallback) on 127.0.0.1 and serves a [`Universe`], so `zdns-core`'s real
//! `UdpTransport` path can be exercised end-to-end without leaving the
//! machine.

use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use zdns_wire::{Cookie, MessageView, ScratchBuf, CLIENT_COOKIE_LEN};
use zdns_zones::Universe;

/// A running loopback DNS server.
pub struct WireServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

/// Every question name a logging wire server was asked, in arrival
/// order (see [`WireServer::start_logged`]). Names are recorded as the
/// query spelled them, one entry per query datagram/frame — retries of
/// the same name appear once per retry.
pub type QueryLog = Arc<std::sync::Mutex<Vec<String>>>;

/// Ask the kernel for a large receive buffer on `socket`. Event-driven
/// clients put hundreds-to-thousands of datagrams in flight at once; the
/// default buffer (a few hundred KB) silently drops the burst, which
/// surfaces as timeouts. Best-effort: unsupported platforms are a no-op.
pub fn set_recv_buffer(socket: &UdpSocket, bytes: usize) {
    #[cfg(any(target_os = "linux", target_os = "android"))]
    {
        use std::os::fd::AsRawFd;
        const SOL_SOCKET: i32 = 1;
        const SO_RCVBUF: i32 = 8;
        extern "C" {
            fn setsockopt(
                fd: i32,
                level: i32,
                name: i32,
                value: *const std::ffi::c_void,
                len: u32,
            ) -> i32;
        }
        let value = bytes as i32;
        // SAFETY: fd is a live socket; value points at a properly sized int.
        unsafe {
            setsockopt(
                socket.as_raw_fd(),
                SOL_SOCKET,
                SO_RCVBUF,
                &value as *const i32 as *const std::ffi::c_void,
                std::mem::size_of::<i32>() as u32,
            );
        }
    }
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    {
        let _ = (socket, bytes);
    }
}

/// Bind a UDP socket on `ip:port` with `SO_REUSEPORT` set, so several
/// sockets can share one port and the kernel load-balances incoming
/// datagrams across them by flow hash — how a DNS *server* front end
/// shards one well-known port over multiple worker sockets. (Client-side
/// scanning sockets must NOT share a port: responses would hash to an
/// arbitrary group member, away from the worker holding the query's
/// demux state.) On non-Linux targets this is a plain bind, so a single
/// socket per port still works.
pub fn bind_reuse_port(ip: Ipv4Addr, port: u16) -> std::io::Result<UdpSocket> {
    #[cfg(any(target_os = "linux", target_os = "android"))]
    {
        use std::os::fd::{FromRawFd, RawFd};
        // SAFETY: plain socket(2); the fd is checked before use.
        let fd: RawFd = unsafe {
            libc::socket(
                libc::AF_INET as i32,
                libc::SOCK_DGRAM | libc::SOCK_CLOEXEC,
                0,
            )
        };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        // SAFETY: from here the fd is owned; it is closed through the
        // UdpSocket on every path, including errors.
        let socket = unsafe { UdpSocket::from_raw_fd(fd) };
        let one: i32 = 1;
        // SAFETY: fd is live; value points at a properly sized int.
        let r = unsafe {
            libc::setsockopt(
                fd,
                libc::SOL_SOCKET,
                libc::SO_REUSEPORT,
                &one as *const i32 as *const libc::c_void,
                std::mem::size_of::<i32>() as u32,
            )
        };
        if r != 0 {
            return Err(std::io::Error::last_os_error());
        }
        let addr = libc::sockaddr_in::from_parts(ip, port);
        // SAFETY: addr is a live, correctly sized sockaddr_in.
        let r = unsafe {
            libc::bind(
                fd,
                &addr as *const libc::sockaddr_in,
                std::mem::size_of::<libc::sockaddr_in>() as u32,
            )
        };
        if r != 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(socket)
    }
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    {
        UdpSocket::bind((ip, port))
    }
}

/// [`bind_reuse_port`]'s TCP sibling: a listener on `ip:port` with
/// `SO_REUSEPORT` set, so each serve worker can own a listener on the
/// same well-known port and the kernel spreads incoming connections
/// across the group. On non-Linux targets this is a plain bind —
/// callers wanting multi-worker TCP there must share one listener.
pub fn bind_tcp_reuse_port(ip: Ipv4Addr, port: u16) -> std::io::Result<TcpListener> {
    #[cfg(any(target_os = "linux", target_os = "android"))]
    {
        use std::os::fd::{FromRawFd, RawFd};
        // SAFETY: plain socket(2); the fd is checked before use.
        let fd: RawFd = unsafe {
            libc::socket(
                libc::AF_INET as i32,
                libc::SOCK_STREAM | libc::SOCK_CLOEXEC,
                0,
            )
        };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        // SAFETY: from here the fd is owned; it is closed through the
        // TcpListener on every path, including errors.
        let listener = unsafe { TcpListener::from_raw_fd(fd) };
        let one: i32 = 1;
        // SAFETY: fd is live; value points at a properly sized int.
        let r = unsafe {
            libc::setsockopt(
                fd,
                libc::SOL_SOCKET,
                libc::SO_REUSEPORT,
                &one as *const i32 as *const libc::c_void,
                std::mem::size_of::<i32>() as u32,
            )
        };
        if r != 0 {
            return Err(std::io::Error::last_os_error());
        }
        let addr = libc::sockaddr_in::from_parts(ip, port);
        // SAFETY: addr is a live, correctly sized sockaddr_in.
        let r = unsafe {
            libc::bind(
                fd,
                &addr as *const libc::sockaddr_in,
                std::mem::size_of::<libc::sockaddr_in>() as u32,
            )
        };
        if r != 0 {
            return Err(std::io::Error::last_os_error());
        }
        // SAFETY: fd is a bound stream socket.
        if unsafe { libc::listen(fd, 128) } != 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(listener)
    }
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    {
        TcpListener::bind((ip, port))
    }
}

/// A reusable receive arena for batch-draining a UDP socket with
/// `recvmmsg(2)`: `depth` pre-allocated buffers filled in one syscall.
///
/// This is what lets the loopback wire servers absorb the bursts a
/// batched reactor produces (one `sendmmsg` can land 32+ queries on the
/// server socket in one tick) without paying one `recv_from` syscall per
/// datagram. On non-Linux targets it degrades to a single `recv_from`
/// per call.
pub struct RecvArena {
    bufs: Vec<Box<[u8]>>,
    lens: Vec<usize>,
    peers: Vec<SocketAddr>,
    #[cfg(any(target_os = "linux", target_os = "android"))]
    scratch: crate::mmsg::MmsgScratch,
}

impl RecvArena {
    /// Pre-allocate `depth` full-size (64 KiB) datagram buffers.
    pub fn new(depth: usize) -> RecvArena {
        let depth = depth.clamp(1, 1_024);
        RecvArena {
            bufs: (0..depth)
                .map(|_| vec![0u8; 65_535].into_boxed_slice())
                .collect(),
            lens: vec![0; depth],
            peers: vec![SocketAddr::new(std::net::IpAddr::V4(Ipv4Addr::UNSPECIFIED), 0); depth],
            #[cfg(any(target_os = "linux", target_os = "android"))]
            scratch: crate::mmsg::MmsgScratch::new(),
        }
    }

    /// Receive up to `depth` datagrams in one call, honouring the
    /// socket's blocking mode and read timeout for the *first* datagram
    /// (`MSG_WAITFORONE`): returns as soon as at least one arrives, with
    /// everything else already queued picked up for free. Returns the
    /// number received (0 on timeout or error).
    pub fn recv_batch(&mut self, socket: &UdpSocket) -> usize {
        #[cfg(any(target_os = "linux", target_os = "android"))]
        {
            use std::os::fd::AsRawFd;
            let hdrs = self.scratch.prepare_recv(&mut self.bufs);
            // SAFETY: every mmsghdr points at live, correctly-sized
            // storage (the arena buffers and the scratch arrays) that
            // outlives the call; vlen matches the slice length.
            let r = unsafe {
                libc::recvmmsg(
                    socket.as_raw_fd(),
                    hdrs.as_mut_ptr(),
                    hdrs.len() as libc::c_uint,
                    libc::MSG_WAITFORONE,
                    std::ptr::null_mut(),
                )
            };
            if r <= 0 {
                return 0;
            }
            let count = r as usize;
            for i in 0..count {
                if let Some(peer) = self.scratch.peer(i) {
                    self.lens[i] = self.scratch.received_len(i).min(self.bufs[i].len());
                    self.peers[i] = peer;
                } else {
                    // Non-IPv4 peer: impossible on a v4 socket. Keep the
                    // slot (the payloads are position-aligned with the
                    // buffers) but make it decode to nothing.
                    self.lens[i] = 0;
                }
            }
            count
        }
        #[cfg(not(any(target_os = "linux", target_os = "android")))]
        {
            match socket.recv_from(&mut self.bufs[0]) {
                Ok((len, peer)) => {
                    self.lens[0] = len;
                    self.peers[0] = peer;
                    1
                }
                Err(_) => 0,
            }
        }
    }

    /// The `i`-th received datagram (valid after a `recv_batch` that
    /// returned `count > i`).
    pub fn datagram(&self, i: usize) -> (&[u8], SocketAddr) {
        (&self.bufs[i][..self.lens[i]], self.peers[i])
    }
}

impl WireServer {
    /// Address the server listens on (UDP and TCP share the port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Start serving `universe` on an ephemeral 127.0.0.1 port. Queries are
    /// answered as if this socket were the server at `impersonate` inside
    /// the universe.
    pub fn start(
        universe: Arc<dyn Universe>,
        impersonate: Ipv4Addr,
    ) -> std::io::Result<WireServer> {
        WireServer::start_with_latency(universe, impersonate, Duration::ZERO)
    }

    /// Like [`WireServer::start`] but every UDP response is delayed by
    /// `latency` *without* serializing queries behind each other — the
    /// benchmark knob that makes concurrency architecture visible: a
    /// driver with N lookups in flight completes ~N per latency window,
    /// regardless of how many OS threads it has.
    pub fn start_with_latency(
        universe: Arc<dyn Universe>,
        impersonate: Ipv4Addr,
        latency: Duration,
    ) -> std::io::Result<WireServer> {
        WireServer::start_inner(universe, impersonate, latency, None)
    }

    /// Like [`WireServer::start`] but also records every question name
    /// into the returned [`QueryLog`] — how crash-recovery tests assert
    /// that a resumed scan re-probes *zero* completed names: kill the
    /// scan, snapshot the log, resume, and check the intersection.
    pub fn start_logged(
        universe: Arc<dyn Universe>,
        impersonate: Ipv4Addr,
        latency: Duration,
    ) -> std::io::Result<(WireServer, QueryLog)> {
        let log: QueryLog = Arc::new(std::sync::Mutex::new(Vec::new()));
        let server =
            WireServer::start_inner(universe, impersonate, latency, Some(Arc::clone(&log)))?;
        Ok((server, log))
    }

    fn start_inner(
        universe: Arc<dyn Universe>,
        impersonate: Ipv4Addr,
        latency: Duration,
        log: Option<QueryLog>,
    ) -> std::io::Result<WireServer> {
        // A DNS server answers on one port over both transports, but the
        // kernel picks the UDP port without knowing we also need its TCP
        // twin — retry when an unrelated listener already owns it (test
        // suites bind many ephemeral TCP ports in parallel).
        let (udp, addr, tcp) = loop {
            let udp = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0))?;
            let addr = udp.local_addr()?;
            match TcpListener::bind(addr) {
                Ok(tcp) => break (udp, addr, tcp),
                Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => continue,
                Err(e) => return Err(e),
            }
        };
        set_recv_buffer(&udp, 8 << 20);
        tcp.set_nonblocking(true)?;
        udp.set_read_timeout(Some(Duration::from_millis(25)))?;
        let stop = Arc::new(AtomicBool::new(false));

        let udp_stop = Arc::clone(&stop);
        let udp_universe = Arc::clone(&universe);
        let mut threads = Vec::new();

        // Delayed responses queue in arrival order (due times are
        // monotonic), drained by a dedicated sender thread.
        type Delayed = (std::time::Instant, std::net::SocketAddr, Vec<u8>);
        let delayed: Arc<std::sync::Mutex<std::collections::VecDeque<Delayed>>> =
            Arc::new(std::sync::Mutex::new(std::collections::VecDeque::new()));
        if latency > Duration::ZERO {
            let delayed = Arc::clone(&delayed);
            let sender = udp.try_clone()?;
            let sender_stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                while !sender_stop.load(Ordering::Relaxed) {
                    let next = delayed.lock().unwrap().pop_front();
                    match next {
                        Some((due, peer, bytes)) => {
                            let now = std::time::Instant::now();
                            if due > now {
                                std::thread::sleep(due - now);
                            }
                            let _ = sender.send_to(&bytes, peer);
                        }
                        None => std::thread::sleep(Duration::from_micros(200)),
                    }
                }
            }));
        }

        let udp_delayed = Arc::clone(&delayed);
        let udp_log = log.clone();
        let udp_thread = std::thread::spawn(move || {
            // Batch-drain the socket: a batched reactor client can land
            // dozens of queries in one sendmmsg, and picking them all up
            // in one recvmmsg keeps this single server thread from
            // becoming the syscall bottleneck of loopback tests/benches.
            let mut arena = RecvArena::new(32);
            // The server answers through the same borrowed-view decode and
            // scratch-buffer encode the client hot path uses, so loopback
            // tests exercise both sides of the zero-alloc lifecycle.
            let mut scratch = ScratchBuf::new();
            while !udp_stop.load(Ordering::Relaxed) {
                let count = arena.recv_batch(&udp);
                for i in 0..count {
                    let (raw, peer) = arena.datagram(i);
                    scratch.reset();
                    if answer_into(
                        &udp_universe,
                        impersonate,
                        raw,
                        true,
                        &mut scratch,
                        udp_log.as_ref(),
                    ) {
                        if latency > Duration::ZERO {
                            udp_delayed.lock().unwrap().push_back((
                                std::time::Instant::now() + latency,
                                peer,
                                scratch.as_slice().to_vec(),
                            ));
                        } else {
                            let _ = udp.send_to(scratch.as_slice(), peer);
                        }
                    }
                }
            }
        });

        let tcp_stop = Arc::clone(&stop);
        let tcp_universe = Arc::clone(&universe);
        let tcp_log = log;
        let tcp_thread = std::thread::spawn(move || {
            // A non-blocking connection table, not one blocking connection
            // at a time: the old loop's two 500ms `read_exact`s meant a
            // single slow (or merely scheduled-out) client wedged every
            // other TCP fallback for up to a second. Now each pass accepts
            // everything pending and does only the work each connection
            // has ready.
            struct Conn {
                stream: std::net::TcpStream,
                read_buf: Vec<u8>,
                write_buf: Vec<u8>,
                write_pos: usize,
                last_active: std::time::Instant,
            }
            const IDLE: Duration = Duration::from_millis(500);
            let mut scratch = ScratchBuf::new();
            let mut conns: Vec<Conn> = Vec::new();
            let mut tmp = [0u8; 4096];
            while !tcp_stop.load(Ordering::Relaxed) {
                loop {
                    match tcp.accept() {
                        Ok((stream, _)) if stream.set_nonblocking(true).is_ok() => {
                            conns.push(Conn {
                                stream,
                                read_buf: Vec::new(),
                                write_buf: Vec::new(),
                                write_pos: 0,
                                last_active: std::time::Instant::now(),
                            });
                        }
                        Ok(_) => {}
                        Err(_) => break, // WouldBlock or fatal: stop accepting
                    }
                }
                let mut progressed = false;
                conns.retain_mut(|conn| {
                    // Flush buffered writes first.
                    while conn.write_pos < conn.write_buf.len() {
                        match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                            Ok(0) => return false,
                            Ok(n) => {
                                conn.write_pos += n;
                                conn.last_active = std::time::Instant::now();
                                progressed = true;
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                            Err(_) => return false,
                        }
                    }
                    if conn.write_pos == conn.write_buf.len() {
                        conn.write_buf.clear();
                        conn.write_pos = 0;
                    }
                    // Read what is available and answer complete frames.
                    loop {
                        match conn.stream.read(&mut tmp) {
                            Ok(0) => return false, // peer closed
                            Ok(n) => {
                                conn.read_buf.extend_from_slice(&tmp[..n]);
                                conn.last_active = std::time::Instant::now();
                                progressed = true;
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                            Err(_) => return false,
                        }
                    }
                    while conn.read_buf.len() >= 2 {
                        let need =
                            2 + u16::from_be_bytes([conn.read_buf[0], conn.read_buf[1]]) as usize;
                        if conn.read_buf.len() < need {
                            break;
                        }
                        scratch.reset();
                        if answer_into(
                            &tcp_universe,
                            impersonate,
                            &conn.read_buf[2..need],
                            false,
                            &mut scratch,
                            tcp_log.as_ref(),
                        ) {
                            let bytes = scratch.as_slice();
                            conn.write_buf
                                .extend_from_slice(&(bytes.len() as u16).to_be_bytes());
                            conn.write_buf.extend_from_slice(bytes);
                        }
                        conn.read_buf.drain(..need);
                    }
                    conn.last_active.elapsed() <= IDLE
                });
                if !progressed {
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        });

        threads.push(udp_thread);
        threads.push(tcp_thread);
        Ok(WireServer {
            addr,
            stop,
            threads,
        })
    }

    /// Start serving `universe` over `shards` UDP sockets sharing one
    /// ephemeral port via `SO_REUSEPORT`, one drain thread per socket —
    /// the serve-mode scaling shape: the kernel flow-hashes incoming
    /// queries across the group, so independent workers each own a
    /// socket with no shared accept lock. Falls back to a single socket
    /// when `shards <= 1` or the platform lacks `SO_REUSEPORT` for
    /// additional binds. UDP only (no TCP listener, no latency): this
    /// exists for throughput benches and sharding tests.
    pub fn start_sharded(
        universe: Arc<dyn Universe>,
        impersonate: Ipv4Addr,
        shards: usize,
    ) -> std::io::Result<WireServer> {
        let shards = shards.max(1);
        let first = bind_reuse_port(Ipv4Addr::LOCALHOST, 0)?;
        let addr = first.local_addr()?;
        let mut sockets = vec![first];
        for _ in 1..shards {
            // A kernel refusing the shared bind just serves with fewer
            // shards; correctness is unaffected.
            match bind_reuse_port(Ipv4Addr::LOCALHOST, addr.port()) {
                Ok(s) => sockets.push(s),
                Err(_) => break,
            }
        }
        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();
        for udp in sockets {
            set_recv_buffer(&udp, 8 << 20);
            udp.set_read_timeout(Some(Duration::from_millis(25)))?;
            let shard_stop = Arc::clone(&stop);
            let shard_universe = Arc::clone(&universe);
            threads.push(std::thread::spawn(move || {
                let mut arena = RecvArena::new(32);
                let mut scratch = ScratchBuf::new();
                while !shard_stop.load(Ordering::Relaxed) {
                    let count = arena.recv_batch(&udp);
                    for i in 0..count {
                        let (raw, peer) = arena.datagram(i);
                        scratch.reset();
                        if answer_into(&shard_universe, impersonate, raw, true, &mut scratch, None)
                        {
                            let _ = udp.send_to(scratch.as_slice(), peer);
                        }
                    }
                }
            }));
        }
        Ok(WireServer {
            addr,
            stop,
            threads,
        })
    }
}

/// The 8-octet server cookie this loopback server appends when a query
/// carries a client cookie (RFC 7873). Deterministic so tests can assert
/// the echo.
pub const SERVER_COOKIE: [u8; 8] = *b"ZDNSSRVR";

/// Decode `raw` as a borrowed [`MessageView`], answer it from the
/// universe, and encode the response into `scratch` (one message, starting
/// at the scratch's current position). Returns false for undecodable or
/// unanswerable queries.
fn answer_into(
    universe: &Arc<dyn Universe>,
    impersonate: Ipv4Addr,
    raw: &[u8],
    udp: bool,
    scratch: &mut ScratchBuf,
    log: Option<&QueryLog>,
) -> bool {
    let Ok(query) = MessageView::parse(raw) else {
        return false;
    };
    let Some(question_view) = query.question() else {
        return false;
    };
    let question = question_view.to_question();
    if let Some(log) = log {
        log.lock().unwrap().push(question.name.to_string());
    }
    let Some(auth) = universe.respond(impersonate, &question) else {
        return false;
    };
    let mut response = auth.to_message_for(&query);
    // RFC 7873: echo the client cookie back with our server cookie
    // appended, so cookie-aware clients can pin retries to us.
    if let (Some(cookie), Some(edns)) = (query.cookie(), response.edns.as_mut()) {
        let mut full = [0u8; CLIENT_COOKIE_LEN + SERVER_COOKIE.len()];
        full[..CLIENT_COOKIE_LEN].copy_from_slice(cookie.client_part());
        full[CLIENT_COOKIE_LEN..].copy_from_slice(&SERVER_COOKIE);
        if let Some(full) = Cookie::from_wire(&full) {
            edns.set_cookie(full);
        }
    }
    if udp {
        let limit = query.udp_payload_size().unwrap_or(512) as usize;
        response.encode_udp_into(scratch, limit).is_ok()
    } else {
        response.encode_into(scratch).is_ok()
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zdns_wire::{Message, Question, RData, Rcode, Record, RecordType};
    use zdns_zones::{ExplicitUniverse, Zone};

    fn test_universe() -> (Arc<dyn Universe>, Ipv4Addr) {
        let server_ip = Ipv4Addr::new(127, 0, 0, 1);
        let mut zone = Zone::new(
            "example.test".parse().unwrap(),
            "ns1.example.test".parse().unwrap(),
            300,
        );
        zone.add(Record::new(
            "example.test".parse().unwrap(),
            300,
            RData::A("192.0.2.5".parse().unwrap()),
        ));
        let mut u = ExplicitUniverse::new();
        u.host(server_ip, zone);
        (Arc::new(u), server_ip)
    }

    #[test]
    fn serves_udp_queries_over_real_sockets() {
        let (universe, ip) = test_universe();
        let server = WireServer::start(universe, ip).unwrap();
        let client = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let query = Message::query(
            0x4242,
            Question::new("example.test".parse().unwrap(), RecordType::A),
        );
        client
            .send_to(&query.encode().unwrap(), server.addr())
            .unwrap();
        let mut buf = [0u8; 4096];
        let (len, _) = client.recv_from(&mut buf).unwrap();
        let response = Message::decode(&buf[..len]).unwrap();
        assert_eq!(response.id, 0x4242);
        assert_eq!(response.rcode(), Rcode::NoError);
        assert_eq!(
            response.answers[0].rdata,
            RData::A("192.0.2.5".parse().unwrap())
        );
    }

    #[test]
    fn serves_tcp_queries() {
        let (universe, ip) = test_universe();
        let server = WireServer::start(universe, ip).unwrap();
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let query = Message::query(
            7,
            Question::new("example.test".parse().unwrap(), RecordType::A),
        );
        let bytes = query.encode().unwrap();
        stream
            .write_all(&(bytes.len() as u16).to_be_bytes())
            .unwrap();
        stream.write_all(&bytes).unwrap();
        let mut len_buf = [0u8; 2];
        stream.read_exact(&mut len_buf).unwrap();
        let mut msg = vec![0u8; u16::from_be_bytes(len_buf) as usize];
        stream.read_exact(&mut msg).unwrap();
        let response = Message::decode(&msg).unwrap();
        assert_eq!(response.rcode(), Rcode::NoError);
    }

    #[test]
    fn sharded_server_answers_from_every_shard() {
        let (universe, ip) = test_universe();
        let server = WireServer::start_sharded(universe, ip, 4).unwrap();
        // Many clients (distinct source ports) so the kernel's flow hash
        // spreads queries across the REUSEPORT group; every one must be
        // answered regardless of which shard it lands on.
        for i in 0..20u16 {
            let c = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
            c.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            let query = Message::query(
                i,
                Question::new("example.test".parse().unwrap(), RecordType::A),
            );
            c.send_to(&query.encode().unwrap(), server.addr()).unwrap();
            let mut buf = [0u8; 4096];
            let (len, _) = c.recv_from(&mut buf).unwrap();
            let response = Message::decode(&buf[..len]).unwrap();
            assert_eq!(response.id, i);
            assert_eq!(response.rcode(), Rcode::NoError);
        }
    }

    #[test]
    fn garbage_input_is_ignored() {
        let (universe, ip) = test_universe();
        let server = WireServer::start(universe, ip).unwrap();
        let client = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        client
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        client.send_to(&[0xFF; 7], server.addr()).unwrap();
        let mut buf = [0u8; 64];
        assert!(client.recv_from(&mut buf).is_err(), "no reply to garbage");
    }
}
