//! An instant "oracle" resolver over a [`Universe`].
//!
//! Public-resolver models (Google/Cloudflare in the evaluation) need final
//! answers without simulating their internal recursion packet-by-packet —
//! the paper treats them as opaque black boxes with a latency and a rate
//! limit. The oracle walks the same authoritative data the iterative
//! resolver sees, so both modes agree on ground truth.

use std::collections::HashSet;
use std::net::Ipv4Addr;

use zdns_wire::{Name, Question, RData, Rcode, Record, RecordType};
use zdns_zones::Universe;

/// Outcome of an oracle resolution.
#[derive(Debug, Clone)]
pub struct OracleAnswer {
    /// Final response code.
    pub rcode: Rcode,
    /// Answer records (CNAME chains included).
    pub answers: Vec<Record>,
    /// Authority records from the final response (SOA for negatives).
    pub authorities: Vec<Record>,
    /// How many authoritative queries the walk would have taken (used by
    /// resolver models to scale recursion latency).
    pub upstream_queries: u32,
}

impl OracleAnswer {
    fn failed(rcode: Rcode, upstream_queries: u32) -> OracleAnswer {
        OracleAnswer {
            rcode,
            answers: Vec::new(),
            authorities: Vec::new(),
            upstream_queries,
        }
    }
}

/// Maximum referral depth before the oracle declares failure.
const MAX_DEPTH: usize = 24;
/// Maximum CNAME chain length (matches common resolver limits).
const MAX_CNAMES: usize = 8;

/// Resolve `question` to completion against `universe`.
pub fn resolve(universe: &dyn Universe, question: &Question) -> OracleAnswer {
    let mut chain: Vec<Record> = Vec::new();
    let mut current = question.clone();
    let mut cname_hops = 0;
    let mut queries = 0u32;
    loop {
        let mut sub = resolve_no_cname(universe, &current, 0, &mut queries);
        if sub.rcode != Rcode::NoError {
            sub.answers = [chain, sub.answers].concat();
            return sub;
        }
        // Detect a CNAME-terminated answer that still needs chasing.
        let has_final = sub
            .answers
            .iter()
            .any(|r| r.rtype == current.qtype || current.qtype == RecordType::ANY);
        let last_cname = sub.answers.iter().rev().find_map(|r| match &r.rdata {
            RData::Cname(t) if current.qtype != RecordType::CNAME => Some(t.clone()),
            _ => None,
        });
        chain.extend(sub.answers);
        match (has_final, last_cname) {
            (false, Some(target)) => {
                cname_hops += 1;
                if cname_hops > MAX_CNAMES {
                    return OracleAnswer {
                        rcode: Rcode::ServFail,
                        answers: chain,
                        authorities: Vec::new(),
                        upstream_queries: queries,
                    };
                }
                current = Question {
                    name: target,
                    qtype: current.qtype,
                    qclass: current.qclass,
                };
            }
            _ => {
                return OracleAnswer {
                    rcode: Rcode::NoError,
                    answers: chain,
                    authorities: sub.authorities,
                    upstream_queries: queries,
                };
            }
        }
    }
}

/// Resolve without following trailing CNAMEs (one delegation walk).
fn resolve_no_cname(
    universe: &dyn Universe,
    question: &Question,
    depth: usize,
    queries: &mut u32,
) -> OracleAnswer {
    if depth > 4 {
        return OracleAnswer::failed(Rcode::ServFail, *queries);
    }
    let mut servers: Vec<Ipv4Addr> = universe.root_hints().iter().map(|(_, a)| *a).collect();
    let mut visited_cuts: HashSet<Name> = HashSet::new();
    for _hop in 0..MAX_DEPTH {
        let mut referral: Option<(Vec<Record>, Vec<Record>)> = None;
        let mut last_rcode = Rcode::ServFail;
        let mut answered = None;
        for &server in &servers {
            *queries += 1;
            let Some(resp) = universe.respond(server, question) else {
                continue; // dead address
            };
            match resp.rcode {
                Rcode::NoError if resp.authoritative => {
                    answered = Some(OracleAnswer {
                        rcode: Rcode::NoError,
                        answers: resp.answers,
                        authorities: resp.authorities,
                        upstream_queries: *queries,
                    });
                    break;
                }
                Rcode::NoError if !resp.authorities.is_empty() => {
                    referral = Some((resp.authorities, resp.additionals));
                    break;
                }
                Rcode::NxDomain => {
                    answered = Some(OracleAnswer {
                        rcode: Rcode::NxDomain,
                        answers: resp.answers,
                        authorities: resp.authorities,
                        upstream_queries: *queries,
                    });
                    break;
                }
                rcode => {
                    // Lame / refused / servfail: try the next server.
                    last_rcode = rcode;
                }
            }
        }
        if let Some(a) = answered {
            return a;
        }
        let Some((ns_records, glue)) = referral else {
            return OracleAnswer::failed(last_rcode, *queries);
        };
        // Loop protection: never descend into the same cut twice.
        if let Some(first) = ns_records.first() {
            let cut = first.name.clone();
            if !visited_cuts.insert(cut) {
                return OracleAnswer::failed(Rcode::ServFail, *queries);
            }
        }
        let mut next: Vec<Ipv4Addr> = Vec::new();
        for ns in &ns_records {
            let RData::Ns(ns_name) = &ns.rdata else {
                continue;
            };
            // In-referral glue first.
            let glued: Vec<Ipv4Addr> = glue
                .iter()
                .filter(|g| g.name == *ns_name)
                .filter_map(|g| match &g.rdata {
                    RData::A(a) => Some(*a),
                    _ => None,
                })
                .collect();
            if glued.is_empty() {
                // Glueless: resolve the NS host recursively.
                let sub_q = Question::new(ns_name.clone(), RecordType::A);
                let sub = resolve_no_cname(universe, &sub_q, depth + 1, queries);
                for rec in sub.answers {
                    if let RData::A(a) = rec.rdata {
                        next.push(a);
                    }
                }
            } else {
                next.extend(glued);
            }
        }
        if next.is_empty() {
            return OracleAnswer::failed(Rcode::ServFail, *queries);
        }
        servers = next;
    }
    OracleAnswer::failed(Rcode::ServFail, *queries)
}

/// Convenience: resolve a PTR question for an address.
pub fn resolve_ptr(universe: &dyn Universe, ip: Ipv4Addr) -> OracleAnswer {
    resolve(
        universe,
        &Question::new(Name::reverse_ipv4(ip), RecordType::PTR),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use zdns_zones::{SynthConfig, SyntheticUniverse};

    fn universe() -> SyntheticUniverse {
        SyntheticUniverse::new(SynthConfig::default())
    }

    fn find_existing(u: &SyntheticUniverse, tld: &str) -> Name {
        (0..20_000)
            .map(|i| format!("oracle{i}.{tld}").parse::<Name>().unwrap())
            .find(|n| u.domain_exists(n))
            .expect("existing domain")
    }

    #[test]
    fn resolves_existing_apex_a() {
        let u = universe();
        let base = find_existing(&u, "com");
        let ans = resolve(&u, &Question::new(base.clone(), RecordType::A));
        assert_eq!(ans.rcode, Rcode::NoError, "{ans:?}");
        let profile = u.domain_profile(&base);
        assert!(ans
            .answers
            .iter()
            .any(|r| r.rdata == RData::A(profile.apex_a)));
        assert!(ans.upstream_queries >= 3, "walked the chain");
    }

    #[test]
    fn nxdomain_for_missing_domain() {
        let u = universe();
        let missing = (0..20_000)
            .map(|i| format!("oracle{i}.com").parse::<Name>().unwrap())
            .find(|n| !u.domain_exists(n))
            .unwrap();
        let ans = resolve(&u, &Question::new(missing, RecordType::A));
        assert_eq!(ans.rcode, Rcode::NxDomain);
        assert!(!ans.authorities.is_empty(), "negative answers carry SOA");
    }

    #[test]
    fn follows_www_cname() {
        let u = universe();
        // Find a domain whose www is a CNAME.
        let base = (0..50_000)
            .map(|i| format!("oracle{i}.net").parse::<Name>().unwrap())
            .find(|n| {
                u.domain_exists(n)
                    && u.domain_profile(n).www == zdns_zones::synth::WwwKind::CnameToApex
            })
            .unwrap();
        let www = base.child("www").unwrap();
        let ans = resolve(&u, &Question::new(www, RecordType::A));
        assert_eq!(ans.rcode, Rcode::NoError);
        assert!(ans
            .answers
            .iter()
            .any(|r| matches!(r.rdata, RData::Cname(_))));
        assert!(ans.answers.iter().any(|r| matches!(r.rdata, RData::A(_))));
    }

    #[test]
    fn resolves_glueless_domains() {
        let u = universe();
        let base = (0..100_000)
            .map(|i| format!("oracle{i}.org").parse::<Name>().unwrap())
            .find(|n| u.domain_exists(n) && u.domain_profile(n).glueless)
            .unwrap();
        let ans = resolve(&u, &Question::new(base, RecordType::A));
        assert_eq!(ans.rcode, Rcode::NoError, "{ans:?}");
    }

    #[test]
    fn resolves_ptr_chain() {
        let u = universe();
        let ip = (0..u32::MAX)
            .map(|i| Ipv4Addr::from(0x2000_0000u32.wrapping_add(i * 7919)))
            .find(|&ip| u.ptr_exists(ip))
            .unwrap();
        let ans = resolve_ptr(&u, ip);
        assert_eq!(ans.rcode, Rcode::NoError);
        assert_eq!(ans.answers[0].rdata, RData::Ptr(u.ptr_name(ip)));
        // root → arpa → /8 → /16: at least 4 queries.
        assert!(ans.upstream_queries >= 4);
    }

    #[test]
    fn caa_via_cname_resolves_to_issue_record() {
        let u = universe();
        let base = (0..2_000_000)
            .map(|i| format!("oracle{i}.pl").parse::<Name>().unwrap())
            .find(|n| {
                u.domain_exists(n) && {
                    let p = u.domain_profile(n);
                    p.caa_via_cname && !p.caa_records.is_empty()
                }
            })
            .expect("a CAA-via-CNAME domain in .pl");
        let ans = resolve(&u, &Question::new(base, RecordType::CAA));
        assert_eq!(ans.rcode, Rcode::NoError, "{ans:?}");
        assert!(ans
            .answers
            .iter()
            .any(|r| matches!(r.rdata, RData::Cname(_))));
        assert!(ans.answers.iter().any(|r| matches!(r.rdata, RData::Caa(_))));
    }
}
