//! # zdns-netsim
//!
//! A deterministic discrete-event simulator of the network substrate the
//! ZDNS paper measures against: virtual time, per-server latency classes,
//! silent drops, rate-limited public resolvers, a client host with finite
//! cores/ports/GC, plus real loopback UDP/TCP servers for socket-level
//! integration tests.

#![warn(missing_docs)]

pub mod engine;
pub mod input;
pub mod latency;
#[cfg(any(target_os = "linux", target_os = "android"))]
pub mod mmsg;
pub mod oracle;
pub mod ratelimit;
pub mod resolvers;
pub mod time;
pub mod wire_server;

pub use engine::{
    estimate_size, ClientEvent, Engine, EngineConfig, GcModel, JobOutcome, OutQuery, Protocol,
    RunReport, SimClient, StepStatus,
};
pub use input::InputSource;
#[cfg(any(target_os = "linux", target_os = "android"))]
pub use mmsg::MmsgScratch;
pub use ratelimit::TokenBucket;
pub use resolvers::{PublicResolverConfig, PublicResolverSim, ResolverOutcome};
pub use time::{as_secs_f64, from_secs_f64, SimTime, MICROS, MILLIS, SECONDS};
pub use wire_server::{
    bind_reuse_port, bind_tcp_reuse_port, set_recv_buffer, RecvArena, WireServer, SERVER_COOKIE,
};
pub use zdns_pacing::{PaceDecision, SendGate};
