//! # zdns-netsim
//!
//! A deterministic discrete-event simulator of the network substrate the
//! ZDNS paper measures against: virtual time, per-server latency classes,
//! silent drops, rate-limited public resolvers, a client host with finite
//! cores/ports/GC, plus real loopback UDP/TCP servers for socket-level
//! integration tests.
//!
//! # Example
//!
//! Any string iterator is an [`InputSource`]; [`ShardedSource`] keeps one
//! deterministic hash partition of it (how `--shard i/n` spreads a scan
//! across processes):
//!
//! ```
//! use zdns_netsim::{shard_of, InputSource, ShardedSource};
//!
//! // Stable across runs, machines, and case:
//! assert_eq!(shard_of("Example.com", 4), shard_of("example.COM", 4));
//!
//! let names = (0..100).map(|i| format!("host{i}.test"));
//! let mut shard = ShardedSource::new(names, 0, 4);
//! while let Some(name) = shard.next_name() {
//!     assert_eq!(shard_of(&name, 4), 0);
//! }
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod input;
pub mod latency;
#[cfg(any(target_os = "linux", target_os = "android"))]
pub mod mmsg;
pub mod oracle;
pub mod ratelimit;
pub mod resolvers;
pub mod time;
pub mod wire_server;

pub use engine::{
    estimate_size, ClientEvent, Engine, EngineConfig, GcModel, JobOutcome, OutQuery, Protocol,
    RunReport, SimClient, StepStatus,
};
pub use input::{shard_of, InputSource, ShardedSource};
#[cfg(any(target_os = "linux", target_os = "android"))]
pub use mmsg::MmsgScratch;
pub use ratelimit::TokenBucket;
pub use resolvers::{PublicResolverConfig, PublicResolverSim, ResolverOutcome};
pub use time::{as_secs_f64, from_secs_f64, SimTime, MICROS, MILLIS, SECONDS};
pub use wire_server::{
    bind_reuse_port, bind_tcp_reuse_port, set_recv_buffer, QueryLog, RecvArena, WireServer,
    SERVER_COOKIE,
};
pub use zdns_pacing::{PaceDecision, SendGate};
