//! The discrete-event simulation engine.
//!
//! The engine owns virtual time and models exactly the resources the paper's
//! evaluation varies:
//!
//! * **Thread slots** — the paper's "lightweight routines" (1K–100K). Each
//!   slot runs one lookup job at a time and owns one long-lived UDP socket
//!   bound to (client IP, port), so the usable thread count is capped by
//!   `|scanning prefix| × ephemeral ports` exactly as in Figure 1's /32
//!   socket limit.
//! * **Client CPU** — a work-conserving queue with a per-packet cost; 24
//!   cores saturate around 2K routines/core (§4.1), which produces the
//!   50K-thread throughput plateau. An optional GC model reproduces the
//!   "more frequent GC is faster" observation.
//! * **The network** — per-server RTT classes, silent drops (base loss,
//!   §5 per-domain blocking, rate limiting), truncation, and TCP retries.
//!
//! Lookup logic lives in client state machines ([`SimClient`]); the engine
//! is resolution-agnostic.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::net::Ipv4Addr;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use zdns_pacing::{PaceDecision, SendGate};
use zdns_wire::{Cookie, Message, MsgRef, Question};
use zdns_zones::Universe;

use crate::latency::sample_rtt;
use crate::resolvers::{PublicResolverSim, ResolverOutcome};
use crate::time::{as_secs_f64, SimTime, MICROS, MILLIS, SECONDS};

/// Transport protocol of a simulated exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// UDP: subject to truncation.
    Udp,
    /// TCP: an extra round trip, no truncation.
    Tcp,
}

/// A query a client wants sent.
///
/// Deliberately *not* a full [`Message`]: the fields below are everything a
/// ZDNS query contains, held inline so emitting a query performs no heap
/// allocation beyond the (inline-storage) question name. Drivers that need
/// the owned message — the simulator, the blocking transport, the TCP
/// side-pool — build one with [`OutQuery::to_message`]; the reactor encodes
/// the wire bytes directly from these fields through a scratch buffer.
#[derive(Debug, Clone)]
pub struct OutQuery {
    /// Destination server.
    pub to: Ipv4Addr,
    /// The machine's own transaction id (drivers may rewrite the wire id).
    pub id: u16,
    /// The question being asked.
    pub question: Question,
    /// RD flag: ask the server to recurse (external mode).
    pub recursion_desired: bool,
    /// DNS cookie to attach to the query's OPT record (RFC 7873).
    pub cookie: Option<Cookie>,
    /// UDP or TCP.
    pub protocol: Protocol,
    /// Client-side timeout.
    pub timeout: SimTime,
    /// Client-chosen correlation tag, echoed back in the event.
    pub tag: u64,
}

impl OutQuery {
    /// Build the owned query [`Message`] these fields describe (EDNS
    /// attached, cookie included). Off the hot path by design.
    pub fn to_message(&self) -> Message {
        let mut msg = Message::query(self.id, self.question.clone());
        msg.flags.recursion_desired = self.recursion_desired;
        if let (Some(cookie), Some(edns)) = (self.cookie.as_ref(), msg.edns.as_mut()) {
            edns.set_cookie(*cookie);
        }
        msg
    }
}

/// What a client receives back. The lifetime is the borrow of the receive
/// buffer: the reactor's UDP path delivers [`MsgRef::View`]s straight over
/// its arena, everything else delivers owned messages.
#[derive(Debug)]
pub enum ClientEvent<'a> {
    /// A response arrived in time.
    Response {
        /// Correlation tag from the [`OutQuery`].
        tag: u64,
        /// The responding server.
        from: Ipv4Addr,
        /// The response message, borrowed or owned.
        message: MsgRef<'a>,
        /// Protocol it arrived over.
        protocol: Protocol,
    },
    /// The query timed out (dropped, dead address, or too slow).
    Timeout {
        /// Correlation tag from the [`OutQuery`].
        tag: u64,
    },
    /// The transport failed outright (socket error, unreachable network,
    /// undecodable response) — distinct from a timeout so drivers over real
    /// sockets can surface `Status::Error` instead of masking I/O failures
    /// as `Status::Timeout`. The simulator itself never emits this.
    TransportFailed {
        /// Correlation tag from the [`OutQuery`].
        tag: u64,
    },
}

/// Final report for one finished job.
#[derive(Debug, Clone, Copy)]
pub struct JobOutcome {
    /// "Success" in the paper's sense: a NOERROR or NXDOMAIN result.
    pub success: bool,
    /// ZDNS-style status string (`NOERROR`, `TIMEOUT`, `SERVFAIL`, ...).
    /// A static string so finishing a lookup never allocates.
    pub status: &'static str,
}

/// Client state-machine progress.
pub enum StepStatus {
    /// More events expected.
    Running,
    /// Job finished.
    Done(JobOutcome),
}

/// A lookup job: a state machine fed by the engine.
pub trait SimClient {
    /// Begin the job, pushing initial queries. May complete immediately.
    fn start(&mut self, now: SimTime, out: &mut Vec<OutQuery>) -> StepStatus;
    /// Handle a response or timeout. Responses may be borrowed views over
    /// the driver's receive buffer — promote only what you keep.
    fn on_event(
        &mut self,
        event: ClientEvent<'_>,
        now: SimTime,
        out: &mut Vec<OutQuery>,
    ) -> StepStatus;
}

/// Garbage-collection pause model (§3.4 "Increased Garbage Collection").
///
/// After every `work_per_cycle` of accumulated CPU work the collector stalls
/// the process for `pause`. Longer cycles accumulate more garbage, so pauses
/// grow superlinearly with cycle length — which is why the paper found that
/// *quadrupling* GC frequency increased throughput.
#[derive(Debug, Clone, Copy)]
pub struct GcModel {
    /// CPU work per collection cycle.
    pub work_per_cycle: SimTime,
    /// Stop-the-world pause per collection.
    pub pause: SimTime,
}

impl GcModel {
    /// Go's default-ish behaviour under this load.
    pub fn go_default() -> GcModel {
        GcModel {
            work_per_cycle: 800 * MILLIS,
            pause: 48 * MILLIS,
        }
    }

    /// The paper's tuned configuration: 4× more frequent, much shorter
    /// pauses that interleave between request processing.
    pub fn frequent() -> GcModel {
        GcModel {
            work_per_cycle: 200 * MILLIS,
            pause: 7 * MILLIS,
        }
    }
}

/// Engine configuration: the knobs Figure 1 and Table 1/2 vary.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Requested lightweight-routine count.
    pub threads: usize,
    /// Scanning source addresses (/32 = 1, /29 = 8, /28 = 16).
    pub client_ips: Vec<Ipv4Addr>,
    /// Usable ephemeral ports per source IP (the paper's setup: 45K).
    pub ports_per_ip: usize,
    /// Per-core CPU cost of one packet event (send or receive), µs. This is
    /// an *effective* cost including parsing, cache updates, scheduling, and
    /// output encoding — calibrated so 24 cores plateau near the paper's
    /// packet rates.
    pub per_packet_cpu_us: u64,
    /// Virtual cores.
    pub cores: u32,
    /// Received packets are dropped if the CPU backlog exceeds this
    /// (socket-buffer overflow under overload).
    pub cpu_backlog_drop: SimTime,
    /// Optional GC pause model.
    pub gc: Option<GcModel>,
    /// Extra per-query CPU charged when querying 127.0.0.1 — a co-located
    /// recursive resolver (Unbound in Table 2) competes for the same cores.
    pub local_resolver_cpu_us: u64,
    /// Encode/decode every packet through the real codec (exercises the
    /// wire crate; slower). When false, messages pass by value and sizes
    /// are estimated.
    pub wire_fidelity: bool,
    /// RNG seed.
    pub seed: u64,
    /// Thread start times are staggered uniformly over this window.
    pub stagger: SimTime,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 1_000,
            client_ips: vec![Ipv4Addr::new(192, 0, 2, 1)],
            ports_per_ip: 45_000,
            per_packet_cpu_us: 240,
            cores: 24,
            cpu_backlog_drop: 2 * SECONDS,
            gc: Some(GcModel::frequent()),
            local_resolver_cpu_us: 0,
            wire_fidelity: false,
            seed: 1,
            stagger: 500 * MILLIS,
        }
    }
}

/// Aggregated results of an engine run.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Jobs completed.
    pub jobs: u64,
    /// Jobs whose outcome counts as success (NOERROR/NXDOMAIN).
    pub successes: u64,
    /// Outcome counts by status string.
    pub status_counts: HashMap<String, u64>,
    /// Queries sent (all protocols).
    pub queries_sent: u64,
    /// Responses dropped because the client CPU was too backlogged.
    pub rx_overflow_drops: u64,
    /// Queries answered from... dropped silently in the network.
    pub net_drops: u64,
    /// Sends held back by the client-side send gate (pacing). Each
    /// deferral counts once, at first admission.
    pub paced_deferrals: u64,
    /// Virtual time of the last completion.
    pub makespan: SimTime,
    /// Sum of per-job durations (for mean latency).
    pub total_job_duration: SimTime,
    /// Effective thread count after the socket/port cap.
    pub effective_threads: usize,
    /// Successes per 1-second bucket (for steady-state rates).
    pub success_series: Vec<u64>,
    /// Queries per 1-second bucket.
    pub query_series: Vec<u64>,
}

impl RunReport {
    /// Overall success fraction.
    pub fn success_rate(&self) -> f64 {
        if self.jobs == 0 {
            return 0.0;
        }
        self.successes as f64 / self.jobs as f64
    }

    /// Mean successes/second over the steady part of the run: the window
    /// holding the middle 80% of completions. Clock-based windows would be
    /// dragged down by the long retry/timeout tail after input exhaustion.
    pub fn steady_success_rate(&self) -> f64 {
        steady_rate(&self.success_series)
    }

    /// Mean queries/second over the steady part of the run.
    pub fn steady_query_rate(&self) -> f64 {
        steady_rate(&self.query_series)
    }

    /// Mean per-job duration in seconds.
    pub fn mean_job_secs(&self) -> f64 {
        if self.jobs == 0 {
            return 0.0;
        }
        as_secs_f64(self.total_job_duration) / self.jobs as f64
    }
}

fn steady_rate(series: &[u64]) -> f64 {
    let total: u64 = series.iter().sum();
    if total == 0 {
        return 0.0;
    }
    // Find the buckets holding the middle 80% of events.
    let p10 = total / 10;
    let p90 = total - p10;
    let mut acc = 0u64;
    let mut start = 0usize;
    let mut end = series.len() - 1;
    let mut seen_start = false;
    for (i, &v) in series.iter().enumerate() {
        acc += v;
        if !seen_start && acc >= p10 {
            start = i;
            seen_start = true;
        }
        if acc >= p90 {
            end = i;
            break;
        }
    }
    let window = &series[start..=end];
    let events: u64 = window.iter().sum();
    events as f64 / window.len() as f64
}

enum EventKind {
    JobStart,
    Outcome {
        generation: u32,
        tag: u64,
        /// The server this exchange targeted (send-gate feedback needs it
        /// even for timeouts, which carry no response).
        dest: Ipv4Addr,
        /// None = timeout; Some = response to deliver.
        response: Option<(Ipv4Addr, Message, Protocol)>,
    },
    /// A send the gate deferred: dispatch it now, without re-admission.
    PacedSend {
        generation: u32,
        oq: OutQuery,
    },
}

struct Event {
    time: SimTime,
    slot: u32,
    kind: EventKind,
}

struct Slot {
    client: Option<Box<dyn SimClient>>,
    generation: u32,
    started_at: SimTime,
    ip: Ipv4Addr,
}

/// The simulation engine.
pub struct Engine {
    config: EngineConfig,
    universe: Arc<dyn Universe>,
    resolvers: Vec<PublicResolverSim>,
    send_gate: Option<Box<dyn SendGate>>,
    rng: SmallRng,
    heap: BinaryHeap<Reverse<(SimTime, u64)>>,
    events: HashMap<u64, Event>,
    seq: u64,
    cpu_free_at: SimTime,
    gc_accum: SimTime,
    report: RunReport,
}

impl Engine {
    /// Create an engine over a universe.
    pub fn new(config: EngineConfig, universe: Arc<dyn Universe>) -> Engine {
        let seed = config.seed;
        Engine {
            config,
            universe,
            resolvers: Vec::new(),
            send_gate: None,
            rng: SmallRng::seed_from_u64(seed),
            heap: BinaryHeap::new(),
            events: HashMap::new(),
            seq: 0,
            cpu_free_at: 0,
            gc_accum: 0,
            report: RunReport::default(),
        }
    }

    /// Attach a public resolver model (Google/Cloudflare/local Unbound).
    pub fn add_resolver(&mut self, resolver: PublicResolverSim) {
        self.resolvers.push(resolver);
    }

    /// Attach a client-side send gate (pacing + backoff). Every query any
    /// simulated client emits is admitted through it; deferred sends are
    /// rescheduled to their release time, and per-destination outcomes
    /// are fed back so adaptive backoff closes its loop under virtual
    /// time exactly as it does over real sockets.
    pub fn set_send_gate(&mut self, gate: Box<dyn SendGate>) {
        self.send_gate = Some(gate);
    }

    /// Per-resolver drop counters, for reports.
    pub fn resolver_stats(&self) -> Vec<(&'static str, u64, u64)> {
        self.resolvers
            .iter()
            .map(|r| (r.config.label, r.rate_limited, r.overloaded))
            .collect()
    }

    fn schedule(&mut self, time: SimTime, slot: u32, kind: EventKind) {
        self.seq += 1;
        self.events.insert(self.seq, Event { time, slot, kind });
        self.heap.push(Reverse((time, self.seq)));
    }

    /// Consume client CPU: returns the time the work completes.
    fn cpu_consume(&mut self, now: SimTime, cost: SimTime) -> SimTime {
        let start = self.cpu_free_at.max(now);
        let mut finish = start + cost;
        if let Some(gc) = self.config.gc {
            self.gc_accum += cost;
            if self.gc_accum >= gc.work_per_cycle {
                self.gc_accum = 0;
                finish += gc.pause;
            }
        }
        self.cpu_free_at = finish;
        finish
    }

    fn packet_cost(&self) -> SimTime {
        // Aggregate machine: per-core cost divided across cores.
        (self.config.per_packet_cpu_us * MICROS) / self.config.cores.max(1) as u64
    }

    /// Run one machine per name pulled from a streaming
    /// [`crate::InputSource`] — the same input layer the real-socket scan
    /// pipeline drains, so simulated and real scans are fed identically
    /// and paper-scale generated workloads never materialize a name set.
    pub fn run_names(
        &mut self,
        source: &mut dyn crate::InputSource,
        mut make: impl FnMut(&str) -> Box<dyn SimClient>,
    ) -> RunReport {
        self.run(move || source.next_name().map(|name| make(&name)))
    }

    /// Run jobs from `source` until it is exhausted and all slots drain.
    pub fn run(&mut self, mut source: impl FnMut() -> Option<Box<dyn SimClient>>) -> RunReport {
        let effective_threads = self
            .config
            .threads
            .min(self.config.client_ips.len() * self.config.ports_per_ip)
            .max(1);
        self.report = RunReport {
            effective_threads,
            ..RunReport::default()
        };
        let mut slots: Vec<Slot> = (0..effective_threads)
            .map(|t| Slot {
                client: None,
                generation: 0,
                started_at: 0,
                ip: self.config.client_ips[t % self.config.client_ips.len()],
            })
            .collect();
        // Stagger thread start-up.
        for t in 0..effective_threads {
            let jitter = if self.config.stagger > 0 {
                self.rng.gen_range(0..self.config.stagger)
            } else {
                0
            };
            self.schedule(jitter, t as u32, EventKind::JobStart);
        }
        let mut actions: Vec<OutQuery> = Vec::with_capacity(4);
        while let Some(Reverse((time, seq))) = self.heap.pop() {
            let event = self.events.remove(&seq).expect("event present");
            debug_assert_eq!(event.time, time);
            let slot_idx = event.slot as usize;
            match event.kind {
                EventKind::JobStart => {
                    let Some(mut client) = source() else {
                        continue; // input exhausted; slot retires
                    };
                    slots[slot_idx].generation += 1;
                    slots[slot_idx].started_at = time;
                    actions.clear();
                    let status = client.start(time, &mut actions);
                    self.drain_actions(&mut slots[slot_idx], slot_idx as u32, time, &mut actions);
                    match status {
                        StepStatus::Running => slots[slot_idx].client = Some(client),
                        StepStatus::Done(outcome) => {
                            self.finish_job(&mut slots[slot_idx], time, outcome);
                            self.schedule(time + MICROS, slot_idx as u32, EventKind::JobStart);
                        }
                    }
                }
                EventKind::PacedSend { generation, oq } => {
                    if slots[slot_idx].generation != generation {
                        continue; // owner finished while the send was held
                    }
                    let ip = slots[slot_idx].ip;
                    self.dispatch(ip, generation, slot_idx as u32, time, oq, true);
                }
                EventKind::Outcome {
                    generation,
                    tag,
                    dest,
                    response,
                } => {
                    if slots[slot_idx].generation != generation {
                        continue; // stale event from a finished job
                    }
                    if let Some(gate) = self.send_gate.as_mut() {
                        match &response {
                            Some((from, _, _)) => gate.on_success(*from, time),
                            None => gate.on_failure(dest, time),
                        }
                    }
                    let Some(mut client) = slots[slot_idx].client.take() else {
                        continue;
                    };
                    // Receive-side CPU; under heavy backlog the packet is
                    // dropped and the client sees its timeout instead.
                    let (client_event, now) = match response {
                        Some((from, message, protocol)) => {
                            let backlog = self.cpu_free_at.saturating_sub(time);
                            if backlog > self.config.cpu_backlog_drop {
                                self.report.rx_overflow_drops += 1;
                                (ClientEvent::Timeout { tag }, time)
                            } else {
                                let done_at = self.cpu_consume(time, self.packet_cost());
                                (
                                    ClientEvent::Response {
                                        tag,
                                        from,
                                        message: MsgRef::Owned(message),
                                        protocol,
                                    },
                                    done_at,
                                )
                            }
                        }
                        None => (ClientEvent::Timeout { tag }, time),
                    };
                    actions.clear();
                    let status = client.on_event(client_event, now, &mut actions);
                    self.drain_actions(&mut slots[slot_idx], slot_idx as u32, now, &mut actions);
                    match status {
                        StepStatus::Running => slots[slot_idx].client = Some(client),
                        StepStatus::Done(outcome) => {
                            self.finish_job(&mut slots[slot_idx], now, outcome);
                            self.schedule(now + MICROS, slot_idx as u32, EventKind::JobStart);
                        }
                    }
                }
            }
        }
        std::mem::take(&mut self.report)
    }

    fn finish_job(&mut self, slot: &mut Slot, now: SimTime, outcome: JobOutcome) {
        slot.client = None;
        slot.generation += 1; // invalidate in-flight events
        self.report.jobs += 1;
        if outcome.success {
            self.report.successes += 1;
            let bucket = (now / SECONDS) as usize;
            if self.report.success_series.len() <= bucket {
                self.report.success_series.resize(bucket + 1, 0);
            }
            self.report.success_series[bucket] += 1;
        }
        if let Some(n) = self.report.status_counts.get_mut(outcome.status) {
            *n += 1;
        } else {
            self.report
                .status_counts
                .insert(outcome.status.to_string(), 1);
        }
        self.report.makespan = self.report.makespan.max(now);
        self.report.total_job_duration += now.saturating_sub(slot.started_at);
    }

    fn drain_actions(
        &mut self,
        slot: &mut Slot,
        slot_idx: u32,
        now: SimTime,
        actions: &mut Vec<OutQuery>,
    ) {
        for oq in actions.drain(..) {
            self.dispatch(slot.ip, slot.generation, slot_idx, now, oq, false);
        }
    }

    /// Decide the fate of one query at send time and schedule its single
    /// outcome event. `paced` marks a send released from the gate's hold
    /// queue — its budget is already reserved, so it must not re-admit.
    fn dispatch(
        &mut self,
        client_ip: Ipv4Addr,
        generation: u32,
        slot: u32,
        now: SimTime,
        oq: OutQuery,
        paced: bool,
    ) {
        if !paced {
            if let Some(gate) = self.send_gate.as_mut() {
                if let PaceDecision::Defer { until, .. } = gate.admit(oq.to, now) {
                    self.report.paced_deferrals += 1;
                    self.schedule(
                        until.max(now + 1),
                        slot,
                        EventKind::PacedSend { generation, oq },
                    );
                    return;
                }
            }
        }
        self.report.queries_sent += 1;
        let bucket = (now / SECONDS) as usize;
        if self.report.query_series.len() <= bucket {
            self.report.query_series.resize(bucket + 1, 0);
        }
        self.report.query_series[bucket] += 1;

        // Send-side CPU (TCP costs ~3x: connect, send, teardown).
        let mut send_cost = self.packet_cost();
        if oq.protocol == Protocol::Tcp {
            send_cost *= 3;
        }
        if oq.to.is_loopback() && self.config.local_resolver_cpu_us > 0 {
            // The co-located resolver's recursion work shares our cores.
            send_cost +=
                (self.config.local_resolver_cpu_us * MICROS) / self.config.cores.max(1) as u64;
        }
        let t_send = self.cpu_consume(now, send_cost);
        let deadline = now + oq.timeout;

        // Optional wire fidelity: push the query through the real codec.
        let query = if self.config.wire_fidelity {
            match oq.to_message().encode().and_then(|b| Message::decode(&b)) {
                Ok(m) => m,
                Err(_) => {
                    // Unencodable query: client sees a timeout.
                    self.schedule(
                        deadline,
                        slot,
                        EventKind::Outcome {
                            generation,
                            tag: oq.tag,
                            dest: oq.to,
                            response: None,
                        },
                    );
                    return;
                }
            }
        } else {
            oq.to_message()
        };
        let Some(question) = query.question().cloned() else {
            self.schedule(
                deadline,
                slot,
                EventKind::Outcome {
                    generation,
                    tag: oq.tag,
                    dest: oq.to,
                    response: None,
                },
            );
            return;
        };

        // Public resolver path.
        if let Some(idx) = self.resolvers.iter().position(|r| r.config.addr == oq.to) {
            // Split borrows: resolver handles need the universe and rng.
            let universe = Arc::clone(&self.universe);
            let outcome = self.resolvers[idx].handle(
                universe.as_ref(),
                client_ip,
                &query,
                &question,
                t_send,
                &mut self.rng,
            );
            match outcome {
                ResolverOutcome::Dropped => {
                    self.report.net_drops += 1;
                    self.schedule(
                        deadline,
                        slot,
                        EventKind::Outcome {
                            generation,
                            tag: oq.tag,
                            dest: oq.to,
                            response: None,
                        },
                    );
                }
                ResolverOutcome::ServFail { latency } => {
                    let mut msg = Message {
                        id: query.id,
                        questions: query.questions.clone(),
                        ..Message::default()
                    };
                    msg.flags.response = true;
                    msg.flags.recursion_available = true;
                    msg.rcode = zdns_wire::RcodeField(zdns_wire::Rcode::ServFail);
                    let arrival = t_send + latency;
                    self.deliver_or_timeout(
                        slot,
                        generation,
                        oq.tag,
                        arrival,
                        deadline,
                        oq.to,
                        msg,
                        oq.protocol,
                    );
                }
                ResolverOutcome::Answer { message, latency } => {
                    let arrival = t_send + latency;
                    self.deliver_or_timeout(
                        slot,
                        generation,
                        oq.tag,
                        arrival,
                        deadline,
                        oq.to,
                        *message,
                        oq.protocol,
                    );
                }
            }
            return;
        }

        // Authoritative-universe path.
        let profile = self.universe.server_profile(oq.to);
        let drop_p = profile.base_drop + self.universe.drop_probability(oq.to, &question.name);
        if self.rng.gen_bool(drop_p.clamp(0.0, 1.0)) {
            self.report.net_drops += 1;
            self.schedule(
                deadline,
                slot,
                EventKind::Outcome {
                    generation,
                    tag: oq.tag,
                    dest: oq.to,
                    response: None,
                },
            );
            return;
        }
        let Some(auth) = self.universe.respond(oq.to, &question) else {
            // Nothing listens there.
            self.schedule(
                deadline,
                slot,
                EventKind::Outcome {
                    generation,
                    tag: oq.tag,
                    dest: oq.to,
                    response: None,
                },
            );
            return;
        };
        let mut response = auth.to_message(&query);
        // Truncation on UDP.
        if oq.protocol == Protocol::Udp {
            let limit = query
                .edns
                .as_ref()
                .map(|e| e.udp_payload_size as usize)
                .unwrap_or(512);
            if self.config.wire_fidelity {
                if let Ok((bytes, truncated)) = response.encode_udp(limit) {
                    if truncated {
                        if let Ok(m) = Message::decode(&bytes) {
                            response = m;
                        }
                    }
                }
            } else if estimate_size(&response) > limit {
                response.answers.clear();
                response.authorities.clear();
                response.additionals.clear();
                response.flags.truncated = true;
            }
        }
        let mut rtt = sample_rtt(profile.latency, &mut self.rng);
        if oq.protocol == Protocol::Tcp {
            rtt = rtt * 2 + sample_rtt(profile.latency, &mut self.rng);
        }
        let arrival = t_send + rtt + profile.processing_us * MICROS;
        self.deliver_or_timeout(
            slot,
            generation,
            oq.tag,
            arrival,
            deadline,
            oq.to,
            response,
            oq.protocol,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn deliver_or_timeout(
        &mut self,
        slot: u32,
        generation: u32,
        tag: u64,
        arrival: SimTime,
        deadline: SimTime,
        from: Ipv4Addr,
        message: Message,
        protocol: Protocol,
    ) {
        if arrival > deadline {
            self.schedule(
                deadline,
                slot,
                EventKind::Outcome {
                    generation,
                    tag,
                    dest: from,
                    response: None,
                },
            );
        } else {
            self.schedule(
                arrival,
                slot,
                EventKind::Outcome {
                    generation,
                    tag,
                    dest: from,
                    response: Some((from, message, protocol)),
                },
            );
        }
    }
}

/// Rough wire size of a message without encoding it (used when
/// `wire_fidelity` is off).
pub fn estimate_size(msg: &Message) -> usize {
    let mut size = 12;
    for q in &msg.questions {
        size += q.name.wire_len() + 4;
    }
    for rec in msg
        .answers
        .iter()
        .chain(&msg.authorities)
        .chain(&msg.additionals)
    {
        size += rec.name.wire_len() + 10 + estimate_rdata(rec);
    }
    if msg.edns.is_some() {
        size += 11;
    }
    size
}

fn estimate_rdata(rec: &zdns_wire::Record) -> usize {
    use zdns_wire::RData;
    match &rec.rdata {
        RData::A(_) => 4,
        RData::Aaaa(_) => 16,
        RData::Ns(n) | RData::Cname(n) | RData::Ptr(n) | RData::Dname(n) => n.wire_len(),
        RData::Soa(s) => s.mname.wire_len() + s.rname.wire_len() + 20,
        RData::Mx(m) => 2 + m.exchange.wire_len(),
        RData::Txt(t) => t.strings.iter().map(|s| s.len() + 1).sum(),
        RData::Caa(c) => 2 + c.tag.len() + c.value.len(),
        RData::Opaque(b) => b.len(),
        _ => 32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zdns_wire::{Name, Question, Rcode, RecordType};
    use zdns_zones::{SynthConfig, SyntheticUniverse};

    /// A minimal client: one UDP query to a fixed server, success on any
    /// response.
    struct OneShot {
        to: Ipv4Addr,
        name: Name,
        qtype: RecordType,
        retries: u32,
    }

    impl OneShot {
        fn query(&self) -> OutQuery {
            OutQuery {
                to: self.to,
                id: 1,
                question: Question::new(self.name.clone(), self.qtype),
                recursion_desired: false,
                cookie: None,
                protocol: Protocol::Udp,
                timeout: 2 * SECONDS,
                tag: 0,
            }
        }
    }

    impl SimClient for OneShot {
        fn start(&mut self, _now: SimTime, out: &mut Vec<OutQuery>) -> StepStatus {
            out.push(self.query());
            StepStatus::Running
        }

        fn on_event(
            &mut self,
            event: ClientEvent<'_>,
            _now: SimTime,
            out: &mut Vec<OutQuery>,
        ) -> StepStatus {
            match event {
                ClientEvent::Response { message, .. } => StepStatus::Done(JobOutcome {
                    success: matches!(message.rcode(), Rcode::NoError | Rcode::NxDomain),
                    status: message.rcode().as_str(),
                }),
                ClientEvent::Timeout { .. } => {
                    if self.retries > 0 {
                        self.retries -= 1;
                        out.push(self.query());
                        StepStatus::Running
                    } else {
                        StepStatus::Done(JobOutcome {
                            success: false,
                            status: "TIMEOUT",
                        })
                    }
                }
                // The simulator never produces transport failures.
                ClientEvent::TransportFailed { .. } => StepStatus::Done(JobOutcome {
                    success: false,
                    status: "ERROR",
                }),
            }
        }
    }

    fn universe() -> Arc<SyntheticUniverse> {
        Arc::new(SyntheticUniverse::new(SynthConfig::default()))
    }

    #[test]
    fn jobs_complete_against_root_servers() {
        let u = universe();
        let root = u.root_hints()[0].1;
        let mut engine = Engine::new(
            EngineConfig {
                threads: 16,
                ..EngineConfig::default()
            },
            u,
        );
        let mut remaining = 200;
        let report = engine.run(move || {
            if remaining == 0 {
                return None;
            }
            remaining -= 1;
            Some(Box::new(OneShot {
                to: root,
                name: format!("job{remaining}.com").parse().unwrap(),
                qtype: RecordType::A,
                retries: 3,
            }))
        });
        assert_eq!(report.jobs, 200);
        // Root referrals are NOERROR; nearly everything succeeds.
        assert!(report.success_rate() > 0.97, "{}", report.success_rate());
        assert!(report.queries_sent >= 200);
        assert!(report.makespan > 0);
    }

    #[test]
    fn dead_address_times_out() {
        let u = universe();
        let mut engine = Engine::new(
            EngineConfig {
                threads: 4,
                ..EngineConfig::default()
            },
            u,
        );
        let mut remaining = 8;
        let report = engine.run(move || {
            if remaining == 0 {
                return None;
            }
            remaining -= 1;
            Some(Box::new(OneShot {
                to: "203.0.113.99".parse().unwrap(),
                name: "dead.test".parse().unwrap(),
                qtype: RecordType::A,
                retries: 1,
            }))
        });
        assert_eq!(report.jobs, 8);
        assert_eq!(report.successes, 0);
        assert_eq!(report.status_counts["TIMEOUT"], 8);
        // 8 jobs × (1 try + 1 retry).
        assert_eq!(report.queries_sent, 16);
    }

    #[test]
    fn port_cap_limits_threads() {
        let u = universe();
        let mut engine = Engine::new(
            EngineConfig {
                threads: 100_000,
                client_ips: vec!["192.0.2.1".parse().unwrap()],
                ports_per_ip: 45_000,
                ..EngineConfig::default()
            },
            u,
        );
        let report = engine.run(|| None);
        assert_eq!(report.effective_threads, 45_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let u = universe();
            let root = u.root_hints()[0].1;
            let mut engine = Engine::new(
                EngineConfig {
                    threads: 8,
                    seed: 42,
                    ..EngineConfig::default()
                },
                u,
            );
            let mut remaining = 50;
            engine.run(move || {
                if remaining == 0 {
                    return None;
                }
                remaining -= 1;
                Some(Box::new(OneShot {
                    to: root,
                    name: format!("det{remaining}.org").parse().unwrap(),
                    qtype: RecordType::A,
                    retries: 2,
                }) as Box<dyn SimClient>)
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.queries_sent, b.queries_sent);
        assert_eq!(a.successes, b.successes);
    }

    #[test]
    fn gc_pauses_slow_the_run() {
        let mk = |gc: Option<GcModel>| {
            let u = universe();
            let root = u.root_hints()[0].1;
            let mut engine = Engine::new(
                EngineConfig {
                    threads: 64,
                    seed: 7,
                    gc,
                    // Make CPU the bottleneck so GC matters.
                    per_packet_cpu_us: 2_000,
                    cores: 2,
                    ..EngineConfig::default()
                },
                u,
            );
            let mut remaining = 2_000;
            engine
                .run(move || {
                    if remaining == 0 {
                        return None;
                    }
                    remaining -= 1;
                    Some(Box::new(OneShot {
                        to: root,
                        name: format!("gc{remaining}.net").parse().unwrap(),
                        qtype: RecordType::A,
                        retries: 2,
                    }) as Box<dyn SimClient>)
                })
                .makespan
        };
        let slow_gc = mk(Some(GcModel::go_default()));
        let fast_gc = mk(Some(GcModel::frequent()));
        // The paper's observation: more frequent, shorter collections win.
        assert!(
            fast_gc < slow_gc,
            "frequent {fast_gc} should beat default {slow_gc}"
        );
    }

    #[test]
    fn wire_fidelity_roundtrips_messages() {
        let u = universe();
        let root = u.root_hints()[0].1;
        let mut engine = Engine::new(
            EngineConfig {
                threads: 4,
                wire_fidelity: true,
                ..EngineConfig::default()
            },
            u,
        );
        let mut remaining = 20;
        let report = engine.run(move || {
            if remaining == 0 {
                return None;
            }
            remaining -= 1;
            Some(Box::new(OneShot {
                to: root,
                name: format!("wf{remaining}.com").parse().unwrap(),
                qtype: RecordType::A,
                retries: 1,
            }))
        });
        assert_eq!(report.jobs, 20);
        assert!(report.success_rate() > 0.9);
    }

    #[test]
    fn estimate_size_tracks_reality() {
        let u = universe();
        let q = Question::new("example.com".parse().unwrap(), RecordType::A);
        let resp = u.respond(u.root_hints()[0].1, &q).unwrap();
        let msg = resp.to_message(&Message::query(1, q));
        let actual = msg.encode().unwrap().len();
        let estimated = estimate_size(&msg);
        let ratio = estimated as f64 / actual as f64;
        // Compression makes the estimate high; it must stay in the ballpark.
        assert!(
            (0.8..2.5).contains(&ratio),
            "est {estimated} actual {actual}"
        );
    }
}
