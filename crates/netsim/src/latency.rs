//! Round-trip-time sampling.
//!
//! RTTs are drawn as `floor + Exp(mean_extra)` per latency class — a shifted
//! exponential is a decent fit for wide-area DNS RTT distributions and keeps
//! the sampler branch-free.

use rand::Rng;
use zdns_zones::LatencyClass;

use crate::time::{SimTime, MILLIS};

/// Sample a one-way-ish round trip time for a latency class.
pub fn sample_rtt<R: Rng>(class: LatencyClass, rng: &mut R) -> SimTime {
    let (floor_ms, mean_extra_ms) = match class {
        LatencyClass::Fast => (8.0, 14.0),
        LatencyClass::Medium => (35.0, 45.0),
        LatencyClass::Slow => (110.0, 130.0),
    };
    let extra = exp_sample(mean_extra_ms, rng);
    ((floor_ms + extra) * MILLIS as f64) as SimTime
}

/// Exponential sample with the given mean.
fn exp_sample<R: Rng>(mean: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen_range(1e-12..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn class_ordering_holds_in_aggregate() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut mean = |class| {
            (0..5000)
                .map(|_| sample_rtt(class, &mut rng) as f64)
                .sum::<f64>()
                / 5000.0
        };
        let fast = mean(LatencyClass::Fast);
        let medium = mean(LatencyClass::Medium);
        let slow = mean(LatencyClass::Slow);
        assert!(fast < medium && medium < slow, "{fast} {medium} {slow}");
        // Fast should average ~22ms, slow ~240ms.
        assert!((15.0 * MILLIS as f64..30.0 * MILLIS as f64).contains(&fast));
        assert!(slow > 180.0 * MILLIS as f64);
    }

    #[test]
    fn rtt_respects_floor() {
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..1000 {
            assert!(sample_rtt(LatencyClass::Fast, &mut rng) >= 8 * MILLIS);
            assert!(sample_rtt(LatencyClass::Slow, &mut rng) >= 110 * MILLIS);
        }
    }
}
