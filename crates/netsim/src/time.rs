//! Virtual time for the discrete-event simulator.

/// Simulated time in nanoseconds since simulation start.
pub type SimTime = u64;

/// One microsecond in [`SimTime`] units.
pub const MICROS: SimTime = 1_000;
/// One millisecond in [`SimTime`] units.
pub const MILLIS: SimTime = 1_000_000;
/// One second in [`SimTime`] units.
pub const SECONDS: SimTime = 1_000_000_000;

/// Convert [`SimTime`] to floating-point seconds (for reporting).
pub fn as_secs_f64(t: SimTime) -> f64 {
    t as f64 / SECONDS as f64
}

/// Convert floating-point seconds to [`SimTime`].
pub fn from_secs_f64(s: f64) -> SimTime {
    (s * SECONDS as f64) as SimTime
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(as_secs_f64(1_500_000_000), 1.5);
        assert_eq!(from_secs_f64(2.25), 2_250_000_000);
        assert_eq!(from_secs_f64(as_secs_f64(123 * MILLIS)), 123 * MILLIS);
    }
}
