//! Token-bucket rate limiting — the mechanism behind Google Public DNS's
//! per-client-IP limits that cost the paper's /32 scans a 6× success drop.
//!
//! The implementation lives in `zdns-pacing` so the simulator's
//! server-side limiters and the real-socket drivers' client-side pacer
//! share one bucket; this module re-exports it under its historical path.

pub use zdns_pacing::TokenBucket;
