//! Token-bucket rate limiting — the mechanism behind Google Public DNS's
//! per-client-IP limits that cost the paper's /32 scans a 6× success drop.

use crate::time::{SimTime, SECONDS};

/// A token bucket: `rate` tokens/second, capacity `burst`.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last_refill: SimTime,
}

impl TokenBucket {
    /// New bucket, initially full.
    pub fn new(rate: f64, burst: f64) -> TokenBucket {
        TokenBucket {
            rate,
            burst,
            tokens: burst,
            last_refill: 0,
        }
    }

    fn refill(&mut self, now: SimTime) {
        if now > self.last_refill {
            let dt = (now - self.last_refill) as f64 / SECONDS as f64;
            self.tokens = (self.tokens + dt * self.rate).min(self.burst);
            self.last_refill = now;
        }
    }

    /// Take one token if available.
    pub fn try_take(&mut self, now: SimTime) -> bool {
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Current token count (after refill), for tests and introspection.
    pub fn available(&mut self, now: SimTime) -> f64 {
        self.refill(now);
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_limits() {
        let mut tb = TokenBucket::new(10.0, 5.0);
        // Burst of 5 allowed immediately.
        for _ in 0..5 {
            assert!(tb.try_take(0));
        }
        assert!(!tb.try_take(0));
        // After 100ms, one token has refilled.
        assert!(tb.try_take(SECONDS / 10));
        assert!(!tb.try_take(SECONDS / 10));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut tb = TokenBucket::new(1000.0, 10.0);
        assert!((tb.available(100 * SECONDS) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sustained_rate_is_enforced() {
        let mut tb = TokenBucket::new(100.0, 10.0);
        let mut granted = 0;
        // Offer 10x the rate for 10 simulated seconds.
        for i in 0..10_000u64 {
            let now = i * SECONDS / 1000;
            if tb.try_take(now) {
                granted += 1;
            }
        }
        // ~100/s for 10s plus the initial burst.
        assert!((1000..=1050).contains(&granted), "{granted}");
    }
}
