//! Streaming scan input.
//!
//! Every execution mode drains its names through one [`InputSource`]:
//! the discrete-event engine ([`crate::Engine::run_names`]), the
//! real-socket scan pipeline in `zdns-framework`, and anything a test
//! wants to hand-roll. The trait is deliberately tiny — *pull one name*
//! — so inputs stay streaming end to end: a 234M-name CT corpus is a
//! generator, a file is a line iterator, and neither is ever
//! materialized into a `Vec`.

/// A streaming source of scan inputs (one name per pull).
pub trait InputSource {
    /// The next input, or `None` when the source is exhausted (for
    /// good — sources are not restartable).
    fn next_name(&mut self) -> Option<String>;

    /// How many names this source expects to yield in total, when known
    /// up front (generators know; stdin does not). Advisory, for
    /// progress reporting only.
    fn size_hint(&self) -> Option<u64> {
        None
    }
}

/// Any string iterator is an input source, so `Vec::into_iter()`,
/// line-reader chains, and corpus generators all plug in directly.
impl<T: Iterator<Item = String>> InputSource for T {
    fn next_name(&mut self) -> Option<String> {
        self.next()
    }

    fn size_hint(&self) -> Option<u64> {
        let (lo, hi) = Iterator::size_hint(self);
        hi.filter(|hi| *hi == lo).map(|n| n as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterators_are_sources() {
        let mut source: Box<dyn InputSource> =
            Box::new(vec!["a.test".to_string(), "b.test".to_string()].into_iter());
        assert_eq!(source.size_hint(), Some(2));
        assert_eq!(source.next_name().as_deref(), Some("a.test"));
        assert_eq!(source.next_name().as_deref(), Some("b.test"));
        assert_eq!(source.next_name(), None);
    }

    #[test]
    fn unbounded_iterators_have_no_hint() {
        let source = std::iter::repeat_with(|| "x.test".to_string());
        assert_eq!(InputSource::size_hint(&source), None);
    }
}
