//! Streaming scan input.
//!
//! Every execution mode drains its names through one [`InputSource`]:
//! the discrete-event engine ([`crate::Engine::run_names`]), the
//! real-socket scan pipeline in `zdns-framework`, and anything a test
//! wants to hand-roll. The trait is deliberately tiny — *pull one name*
//! — so inputs stay streaming end to end: a 234M-name CT corpus is a
//! generator, a file is a line iterator, and neither is ever
//! materialized into a `Vec`.
//!
//! [`ShardedSource`] layers deterministic horizontal partitioning on
//! top: shard `i` of `n` keeps exactly the names whose stable hash
//! lands in its bucket ([`shard_of`]), so `n` processes (or machines)
//! each streaming the *same* underlying source between them cover every
//! name exactly once — no coordination, no shared state, no input
//! pre-splitting.

/// A streaming source of scan inputs (one name per pull).
pub trait InputSource {
    /// The next input, or `None` when the source is exhausted (for
    /// good — sources are not restartable).
    fn next_name(&mut self) -> Option<String>;

    /// How many names this source expects to yield in total, when known
    /// up front (generators know; stdin does not). Advisory, for
    /// progress reporting only.
    fn size_hint(&self) -> Option<u64> {
        None
    }
}

/// Any string iterator is an input source, so `Vec::into_iter()`,
/// line-reader chains, and corpus generators all plug in directly.
impl<T: Iterator<Item = String>> InputSource for T {
    fn next_name(&mut self) -> Option<String> {
        self.next()
    }

    fn size_hint(&self) -> Option<u64> {
        let (lo, hi) = Iterator::size_hint(self);
        hi.filter(|hi| *hi == lo).map(|n| n as u64)
    }
}

/// Boxed trait objects pass through, so wrappers like [`ShardedSource`]
/// can stack over an already-erased `Box<dyn InputSource>`.
impl InputSource for Box<dyn InputSource + '_> {
    fn next_name(&mut self) -> Option<String> {
        (**self).next_name()
    }

    fn size_hint(&self) -> Option<u64> {
        (**self).size_hint()
    }
}

/// Which shard of `count` owns `name`.
///
/// The assignment is a pure function of the name bytes and the shard
/// count — stable across processes, machines, and runs — so shard
/// membership can be recomputed anywhere (a resumed shard re-derives
/// exactly the subset it owned before the restart). FNV-1a over the
/// raw bytes; names that differ only in ASCII case are treated as the
/// same DNS name and land on the same shard.
pub fn shard_of(name: &str, count: u32) -> u32 {
    const FNV_OFFSET: u64 = 0xcbf29ce484222325;
    const FNV_PRIME: u64 = 0x100000001b3;
    let mut h = FNV_OFFSET;
    for &b in name.as_bytes() {
        h ^= b.to_ascii_lowercase() as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    (h % count.max(1) as u64) as u32
}

/// A deterministic `i`-of-`n` partition over any [`InputSource`]: pulls
/// the inner source and yields only the names [`shard_of`] assigns to
/// shard `index`. Every shard streams the same underlying input (same
/// file, same generator seed); the hash filter is what divides the work.
pub struct ShardedSource<S> {
    inner: S,
    index: u32,
    count: u32,
}

impl<S: InputSource> ShardedSource<S> {
    /// Shard `index` (0-based) of `count` over `inner`.
    ///
    /// # Panics
    ///
    /// If `index >= count` or `count == 0` — a partition that could
    /// silently yield nothing (or everything) is a configuration error.
    pub fn new(inner: S, index: u32, count: u32) -> ShardedSource<S> {
        assert!(count >= 1, "shard count must be >= 1");
        assert!(index < count, "shard index {index} out of range 0..{count}");
        ShardedSource {
            inner,
            index,
            count,
        }
    }
}

impl<S: InputSource> InputSource for ShardedSource<S> {
    fn next_name(&mut self) -> Option<String> {
        loop {
            let name = self.inner.next_name()?;
            if shard_of(&name, self.count) == self.index {
                return Some(name);
            }
        }
    }

    fn size_hint(&self) -> Option<u64> {
        // The filter keeps ~1/count of the input, but the exact figure
        // depends on the names; a sharded source's total is unknown.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterators_are_sources() {
        let mut source: Box<dyn InputSource> =
            Box::new(vec!["a.test".to_string(), "b.test".to_string()].into_iter());
        assert_eq!(source.size_hint(), Some(2));
        assert_eq!(source.next_name().as_deref(), Some("a.test"));
        assert_eq!(source.next_name().as_deref(), Some("b.test"));
        assert_eq!(source.next_name(), None);
    }

    #[test]
    fn unbounded_iterators_have_no_hint() {
        let source = std::iter::repeat_with(|| "x.test".to_string());
        assert_eq!(InputSource::size_hint(&source), None);
    }

    #[test]
    fn shards_partition_disjointly_and_exhaustively() {
        let names: Vec<String> = (0..500).map(|i| format!("name{i}.example.test")).collect();
        for count in [1u32, 2, 3, 7] {
            let mut seen = std::collections::HashMap::new();
            for index in 0..count {
                let mut shard = ShardedSource::new(names.clone().into_iter(), index, count);
                while let Some(name) = shard.next_name() {
                    assert!(
                        seen.insert(name.clone(), index).is_none(),
                        "{name} emitted by two shards of {count}"
                    );
                }
            }
            assert_eq!(seen.len(), names.len(), "shards of {count} must cover all");
        }
    }

    #[test]
    fn shard_assignment_is_deterministic_and_case_insensitive() {
        assert_eq!(shard_of("example.com", 8), shard_of("example.com", 8));
        assert_eq!(shard_of("EXAMPLE.com", 8), shard_of("example.COM", 8));
        assert_eq!(shard_of("anything", 1), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_index_must_be_in_range() {
        let _ = ShardedSource::new(std::iter::empty::<String>(), 2, 2);
    }
}
