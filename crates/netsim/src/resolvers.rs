//! Models of public recursive resolvers (the "Google" and "Cloudflare"
//! columns of the evaluation).
//!
//! The paper treats public resolvers as black boxes with three observable
//! behaviours: response latency (cache hit vs. internal recursion), a
//! per-client-IP rate limit (Google's — the /32 scans lose 6× to it;
//! Cloudflare publishes that it does not rate limit), and failure under
//! aggregate overload (what MassDNS triggers in Table 2). Answers come from
//! the shared [`crate::oracle`] so every resolution mode agrees on ground
//! truth.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use rand::Rng;
use zdns_wire::{Message, Name, Question, Rcode};
use zdns_zones::Universe;

use crate::oracle;
use crate::ratelimit::TokenBucket;
use crate::time::{SimTime, MILLIS, SECONDS};

/// Configuration of one public resolver model.
#[derive(Debug, Clone)]
pub struct PublicResolverConfig {
    /// Service address (e.g. 8.8.8.8).
    pub addr: Ipv4Addr,
    /// Human label for reports ("google", "cloudflare").
    pub label: &'static str,
    /// Probability a query hits the resolver's warm cache. Unique-name
    /// scans mostly miss; the hits are shared infrastructure and repeat
    /// queries.
    pub hit_prob: f64,
    /// Anycast RTT floor in ms.
    pub rtt_floor_ms: f64,
    /// Mean extra anycast RTT in ms (exponential).
    pub rtt_mean_extra_ms: f64,
    /// Mean extra latency for a cache miss (the resolver's own recursion).
    pub miss_extra_ms: f64,
    /// Per-client-IP rate limit in queries/second; `None` = unlimited.
    pub per_client_qps: Option<f64>,
    /// Aggregate capacity in queries/second; excess queries are dropped or
    /// SERVFAILed. `None` = unbounded.
    pub capacity_qps: Option<f64>,
    /// Baseline SERVFAIL probability (upstream failures).
    pub servfail_prob: f64,
    /// Abuse mitigation: once a client IP has this many queries shed in a
    /// one-second window, everything from it is dropped for
    /// [`PublicResolverConfig::penalty`]. This is what turns MassDNS's
    /// blast-and-retry strategy into the paper's ~35% hard-failure rate —
    /// retries inside the penalty window cannot succeed.
    pub penalty_threshold: u32,
    /// Penalty-box duration.
    pub penalty: SimTime,
    /// How long a failed resolution is negatively cached (RFC 2308-style
    /// SERVFAIL caching). This is what correlates retry failures: once
    /// overload kills a name's recursion, immediate retries — MassDNS
    /// sends up to 50 — hit the cached SERVFAIL and burn out.
    pub servfail_cache_ttl: SimTime,
}

impl PublicResolverConfig {
    /// A Google Public DNS-like resolver: fast, warm, per-client limited.
    pub fn google(addr: Ipv4Addr) -> Self {
        PublicResolverConfig {
            addr,
            label: "google",
            hit_prob: 0.30,
            rtt_floor_ms: 12.0,
            rtt_mean_extra_ms: 10.0,
            miss_extra_ms: 360.0,
            per_client_qps: Some(15_000.0),
            capacity_qps: Some(300_000.0),
            servfail_prob: 0.006,
            penalty_threshold: 400,
            penalty: 8 * crate::time::SECONDS,
            servfail_cache_ttl: 15 * crate::time::SECONDS,
        }
    }

    /// A Cloudflare 1.1.1.1-like resolver: fast, warm, no client limits.
    pub fn cloudflare(addr: Ipv4Addr) -> Self {
        PublicResolverConfig {
            addr,
            label: "cloudflare",
            hit_prob: 0.32,
            rtt_floor_ms: 10.0,
            rtt_mean_extra_ms: 8.0,
            miss_extra_ms: 340.0,
            per_client_qps: None,
            capacity_qps: Some(280_000.0),
            servfail_prob: 0.005,
            penalty_threshold: 400,
            penalty: 8 * crate::time::SECONDS,
            servfail_cache_ttl: 15 * crate::time::SECONDS,
        }
    }

    /// A locally-installed Unbound-style resolver: near-zero RTT but a cold
    /// cache and modest capacity — and it contends for the scanner's own
    /// CPU (modelled by the engine's `local_resolver_cpu_share`).
    pub fn local_unbound() -> Self {
        PublicResolverConfig {
            addr: Ipv4Addr::new(127, 0, 0, 1),
            label: "unbound",
            hit_prob: 0.22,
            rtt_floor_ms: 0.2,
            rtt_mean_extra_ms: 0.3,
            miss_extra_ms: 420.0,
            per_client_qps: None,
            capacity_qps: Some(12_000.0),
            servfail_prob: 0.012,
            // A local daemon has no abuse mitigation.
            penalty_threshold: u32::MAX,
            penalty: 0,
            servfail_cache_ttl: 15 * crate::time::SECONDS,
        }
    }
}

/// What the resolver did with a query.
#[derive(Debug, Clone, PartialEq)]
pub enum ResolverOutcome {
    /// Answer delivered after the given service latency.
    Answer {
        /// The response message.
        message: Box<Message>,
        /// Latency from query arrival to response departure.
        latency: SimTime,
    },
    /// Query silently dropped (rate limit or overload).
    Dropped,
    /// SERVFAIL after the given latency.
    ServFail {
        /// Latency until the failure response.
        latency: SimTime,
    },
}

/// Per-client abuse-mitigation state.
#[derive(Debug, Default, Clone, Copy)]
struct PenaltyState {
    window_start: SimTime,
    sheds: u32,
    penalized_until: SimTime,
}

/// A running resolver model with per-client limiter state.
pub struct PublicResolverSim {
    /// Static configuration.
    pub config: PublicResolverConfig,
    buckets: HashMap<Ipv4Addr, TokenBucket>,
    penalties: HashMap<Ipv4Addr, PenaltyState>,
    servfail_cache: HashMap<Name, SimTime>,
    window_start: SimTime,
    window_count: u64,
    /// Total queries dropped by the per-client limiter (observability).
    pub rate_limited: u64,
    /// Total queries shed due to aggregate overload.
    pub overloaded: u64,
    /// Total queries dropped inside a client penalty window.
    pub penalized: u64,
}

impl PublicResolverSim {
    /// New model from a config.
    pub fn new(config: PublicResolverConfig) -> PublicResolverSim {
        PublicResolverSim {
            config,
            buckets: HashMap::new(),
            penalties: HashMap::new(),
            servfail_cache: HashMap::new(),
            window_start: 0,
            window_count: 0,
            rate_limited: 0,
            overloaded: 0,
            penalized: 0,
        }
    }

    /// Process one query arriving at `now` from `client`.
    pub fn handle<R: Rng>(
        &mut self,
        universe: &dyn Universe,
        client: Ipv4Addr,
        query: &Message,
        question: &Question,
        now: SimTime,
        rng: &mut R,
    ) -> ResolverOutcome {
        // Abuse-mitigation penalty box.
        if self.config.penalty_threshold != u32::MAX {
            let state = self.penalties.entry(client).or_default();
            if now < state.penalized_until {
                self.penalized += 1;
                return ResolverOutcome::Dropped;
            }
        }
        // Negative SERVFAIL cache: a recently failed name keeps failing
        // fast until the entry expires.
        // `Name` hashes and compares case-insensitively without
        // allocating, so the negative cache needs no lowercased String
        // key per query.
        if let Some(&until) = self.servfail_cache.get(&question.name) {
            if now < until {
                return ResolverOutcome::ServFail {
                    latency: self.rtt(rng),
                };
            }
            self.servfail_cache.remove(&question.name);
        }
        // Per-client rate limit (Google's behaviour: silent drop).
        if let Some(qps) = self.config.per_client_qps {
            let bucket = self
                .buckets
                .entry(client)
                .or_insert_with(|| TokenBucket::new(qps, qps / 4.0));
            if !bucket.try_take(now) {
                self.rate_limited += 1;
                return ResolverOutcome::Dropped;
            }
        }
        // Aggregate overload: sliding one-second windows.
        if let Some(capacity) = self.config.capacity_qps {
            if now.saturating_sub(self.window_start) >= SECONDS {
                self.window_start = now;
                self.window_count = 0;
            }
            self.window_count += 1;
            if self.window_count as f64 > capacity {
                self.overloaded += 1;
                // Track per-client shed counts; chronic offenders go into
                // the penalty box.
                if self.config.penalty_threshold != u32::MAX {
                    let penalty = self.config.penalty;
                    let threshold = self.config.penalty_threshold;
                    let state = self.penalties.entry(client).or_default();
                    if now.saturating_sub(state.window_start) >= SECONDS {
                        state.window_start = now;
                        state.sheds = 0;
                    }
                    state.sheds += 1;
                    if state.sheds > threshold {
                        state.penalized_until = now + penalty;
                    }
                }
                // The failed recursion is negatively cached; retries for
                // this name now fail until the entry expires.
                if self.config.servfail_cache_ttl > 0 {
                    // Bound the cache the way real resolvers do.
                    if self.servfail_cache.len() > 4_000_000 {
                        self.servfail_cache.clear();
                    }
                    self.servfail_cache
                        .insert(question.name.clone(), now + self.config.servfail_cache_ttl);
                }
                // Sheds load the way big anycast fleets do: mostly silent
                // drops, some SERVFAILs.
                return if rng.gen_bool(0.35) {
                    ResolverOutcome::ServFail {
                        latency: self.rtt(rng),
                    }
                } else {
                    ResolverOutcome::Dropped
                };
            }
        }
        if rng.gen_bool(self.config.servfail_prob) {
            return ResolverOutcome::ServFail {
                latency: self.rtt(rng) + (80.0 * MILLIS as f64) as SimTime,
            };
        }
        let hit = rng.gen_bool(self.config.hit_prob);
        let mut latency = self.rtt(rng);
        if !hit {
            latency += exp(self.config.miss_extra_ms, rng);
        }
        let ans = oracle::resolve(universe, question);
        let mut msg = Message {
            id: query.id,
            questions: query.questions.clone(),
            answers: ans.answers,
            authorities: ans.authorities,
            edns: query.edns.as_ref().map(|_| zdns_wire::Edns::default()),
            ..Message::default()
        };
        msg.flags.response = true;
        msg.flags.recursion_desired = true;
        msg.flags.recursion_available = true;
        msg.rcode = zdns_wire::RcodeField(if ans.rcode == Rcode::Refused {
            // Public resolvers surface lame/unreachable delegations as
            // SERVFAIL rather than passing REFUSED through.
            Rcode::ServFail
        } else {
            ans.rcode
        });
        ResolverOutcome::Answer {
            message: Box::new(msg),
            latency,
        }
    }

    fn rtt<R: Rng>(&self, rng: &mut R) -> SimTime {
        (self.config.rtt_floor_ms * MILLIS as f64) as SimTime
            + exp(self.config.rtt_mean_extra_ms, rng)
    }
}

fn exp<R: Rng>(mean_ms: f64, rng: &mut R) -> SimTime {
    let u: f64 = rng.gen_range(1e-12..1.0);
    ((-mean_ms * u.ln()) * MILLIS as f64) as SimTime
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use zdns_wire::{Name, RecordType};
    use zdns_zones::{SynthConfig, SyntheticUniverse};
    fn setup() -> (SyntheticUniverse, PublicResolverSim, SmallRng) {
        let u = SyntheticUniverse::new(SynthConfig::default());
        let r = PublicResolverSim::new(PublicResolverConfig::google("8.8.8.8".parse().unwrap()));
        (u, r, SmallRng::seed_from_u64(99))
    }

    fn ask(
        u: &SyntheticUniverse,
        r: &mut PublicResolverSim,
        rng: &mut SmallRng,
        name: &str,
        now: SimTime,
        client: Ipv4Addr,
    ) -> ResolverOutcome {
        let q = Question::new(name.parse::<Name>().unwrap(), RecordType::A);
        let msg = Message::query(1, q.clone());
        r.handle(u, client, &msg, &q, now, rng)
    }

    #[test]
    fn answers_existing_domains() {
        let (u, mut r, mut rng) = setup();
        let base = (0..20_000)
            .map(|i| format!("resv{i}.com"))
            .find(|n| u.domain_exists(&n.parse().unwrap()))
            .unwrap();
        // Retry a few times to dodge the baseline servfail probability.
        let client = "192.0.2.10".parse().unwrap();
        let ok = (0..5).any(|i| {
            matches!(
                ask(&u, &mut r, &mut rng, &base, i * SECONDS, client),
                ResolverOutcome::Answer { ref message, .. } if message.rcode() == Rcode::NoError
            )
        });
        assert!(ok);
    }

    #[test]
    fn per_client_rate_limit_drops() {
        let (u, mut r, mut rng) = setup();
        let client = "192.0.2.77".parse().unwrap();
        let mut dropped = 0;
        // Hammer 100K queries within one simulated second from one IP:
        // far beyond 15K qps.
        for i in 0..100_000u64 {
            let now = i * (SECONDS / 100_000);
            if matches!(
                ask(&u, &mut r, &mut rng, &format!("rl{i}.com"), now, client),
                ResolverOutcome::Dropped
            ) {
                dropped += 1;
            }
        }
        assert!(r.rate_limited > 50_000, "rate limited {}", r.rate_limited);
        assert!(dropped >= r.rate_limited as usize / 2);
    }

    #[test]
    fn cloudflare_has_no_client_limit() {
        let u = SyntheticUniverse::new(SynthConfig::default());
        let mut r =
            PublicResolverSim::new(PublicResolverConfig::cloudflare("1.1.1.1".parse().unwrap()));
        let mut rng = SmallRng::seed_from_u64(5);
        let client = "192.0.2.88".parse().unwrap();
        for i in 0..50_000u64 {
            let now = i * (SECONDS / 50_000);
            ask(&u, &mut r, &mut rng, &format!("cf{i}.com"), now, client);
        }
        assert_eq!(r.rate_limited, 0);
    }

    #[test]
    fn overload_sheds_queries() {
        let u = SyntheticUniverse::new(SynthConfig::default());
        let mut cfg = PublicResolverConfig::cloudflare("1.1.1.1".parse().unwrap());
        cfg.capacity_qps = Some(1_000.0);
        let mut r = PublicResolverSim::new(cfg);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut failed = 0;
        for i in 0..10_000u64 {
            // All inside one second from many client IPs.
            let client = Ipv4Addr::from(0xC000_0200u32 + (i % 64) as u32);
            let q = Question::new(format!("ov{i}.com").parse::<Name>().unwrap(), RecordType::A);
            let msg = Message::query(1, q.clone());
            match r.handle(&u, client, &msg, &q, i * 50_000, &mut rng) {
                ResolverOutcome::Dropped | ResolverOutcome::ServFail { .. } => failed += 1,
                ResolverOutcome::Answer { .. } => {}
            }
        }
        // 10K queries against a 1K qps budget: ~90% shed.
        assert!(failed > 8_000, "{failed}");
        assert!(r.overloaded > 0);
    }

    #[test]
    fn miss_latency_exceeds_hit_latency() {
        let (u, mut r, mut rng) = setup();
        let client = "192.0.2.99".parse().unwrap();
        let mut latencies: Vec<SimTime> = Vec::new();
        for i in 0..400 {
            if let ResolverOutcome::Answer { latency, .. } = ask(
                &u,
                &mut r,
                &mut rng,
                &format!("lat{i}.com"),
                i * SECONDS,
                client,
            ) {
                latencies.push(latency);
            }
        }
        latencies.sort_unstable();
        let p10 = latencies[latencies.len() / 10];
        let p90 = latencies[latencies.len() * 9 / 10];
        // Bimodal: cache hits ~20ms, misses hundreds of ms.
        assert!(p10 < 60 * MILLIS, "p10 {p10}");
        assert!(p90 > 150 * MILLIS, "p90 {p90}");
    }
}
