//! Reusable scatter/gather scratch for `sendmmsg(2)`/`recvmmsg(2)`.
//!
//! Both batched-I/O call sites — `zdns-core`'s `BatchIo` (the reactor's
//! syscall layer) and this crate's [`crate::RecvArena`] (the loopback
//! wire servers) — need the same `mmsghdr`/`iovec`/`sockaddr_in` vector
//! assembly before every vectored syscall. Keeping it here, allocated
//! once and rewritten per call, means the hot path pays zero allocator
//! round-trips per syscall and the `unsafe` pointer plumbing lives in
//! exactly one place.

use std::net::SocketAddr;

/// Pre-allocated `sockaddr_in`/`iovec`/`mmsghdr` arrays, rewritten in
/// place before each `sendmmsg`/`recvmmsg` call.
#[derive(Default)]
pub struct MmsgScratch {
    addrs: Vec<libc::sockaddr_in>,
    iovs: Vec<libc::iovec>,
    hdrs: Vec<libc::mmsghdr>,
}

// SAFETY: the raw pointers stored in `iovs`/`hdrs` are rebuilt by the
// `prepare_*` methods immediately before every syscall and are never
// dereferenced between calls, so moving the scratch across threads
// cannot expose a dangling pointer.
unsafe impl Send for MmsgScratch {}

impl MmsgScratch {
    /// Empty scratch; arrays grow to the largest batch ever prepared.
    pub fn new() -> MmsgScratch {
        MmsgScratch::default()
    }

    fn reset(&mut self, n: usize) {
        let zero_iov = libc::iovec {
            iov_base: std::ptr::null_mut(),
            iov_len: 0,
        };
        let zero_hdr = libc::mmsghdr {
            msg_hdr: libc::msghdr {
                msg_name: std::ptr::null_mut(),
                msg_namelen: 0,
                msg_iov: std::ptr::null_mut(),
                msg_iovlen: 0,
                msg_control: std::ptr::null_mut(),
                msg_controllen: 0,
                msg_flags: 0,
            },
            msg_len: 0,
        };
        self.addrs.resize(n, libc::sockaddr_in::zeroed());
        self.iovs.resize(n, zero_iov);
        self.hdrs.resize(n, zero_hdr);
    }

    fn link(&mut self, i: usize) {
        self.hdrs[i] = libc::mmsghdr {
            msg_hdr: libc::msghdr {
                msg_name: &mut self.addrs[i] as *mut libc::sockaddr_in as *mut libc::c_void,
                msg_namelen: std::mem::size_of::<libc::sockaddr_in>() as u32,
                msg_iov: &mut self.iovs[i],
                msg_iovlen: 1,
                msg_control: std::ptr::null_mut(),
                msg_controllen: 0,
                msg_flags: 0,
            },
            msg_len: 0,
        };
    }

    /// Point entry `i` at `bufs[i]` for receiving, for every buffer.
    /// Returns the `mmsghdr` slice ready to hand to `recvmmsg`; read the
    /// results back with [`MmsgScratch::peer`] / [`MmsgScratch::received_len`].
    pub fn prepare_recv(&mut self, bufs: &mut [Box<[u8]>]) -> &mut [libc::mmsghdr] {
        let n = bufs.len();
        self.reset(n);
        for (i, buf) in bufs.iter_mut().enumerate() {
            self.addrs[i] = libc::sockaddr_in::zeroed();
            self.iovs[i] = libc::iovec {
                iov_base: buf.as_mut_ptr() as *mut libc::c_void,
                iov_len: buf.len(),
            };
            self.link(i);
        }
        &mut self.hdrs[..n]
    }

    /// Build the send vector for `msgs` (callers pass IPv4 destinations
    /// only — non-IPv4 entries are the per-datagram fallback's problem).
    /// Returns the `mmsghdr` slice ready to hand to `sendmmsg`. The
    /// payload slices are only read by the kernel.
    pub fn prepare_send(&mut self, msgs: &[(&[u8], SocketAddr)]) -> &mut [libc::mmsghdr] {
        let n = msgs.len();
        self.reset(n);
        for (i, (bytes, dest)) in msgs.iter().enumerate() {
            let SocketAddr::V4(v4) = dest else {
                unreachable!("prepare_send takes IPv4 destinations only");
            };
            self.addrs[i] = libc::sockaddr_in::from_parts(*v4.ip(), v4.port());
            self.iovs[i] = libc::iovec {
                iov_base: bytes.as_ptr() as *mut libc::c_void,
                iov_len: bytes.len(),
            };
            self.link(i);
        }
        &mut self.hdrs[..n]
    }

    /// Like [`MmsgScratch::prepare_send`], but the payloads are
    /// `(offset, len)` slots into one shared arena buffer — the shape the
    /// reactor's scratch-encoded send path produces. Avoids materializing a
    /// `Vec<(&[u8], SocketAddr)>` per flush: the iovecs are pointed straight
    /// into the arena.
    pub fn prepare_send_slots(
        &mut self,
        arena: &[u8],
        slots: &[(u32, u32, SocketAddr)],
    ) -> &mut [libc::mmsghdr] {
        let n = slots.len();
        self.reset(n);
        for (i, (start, len, dest)) in slots.iter().enumerate() {
            let SocketAddr::V4(v4) = dest else {
                unreachable!("prepare_send_slots takes IPv4 destinations only");
            };
            let bytes = &arena[*start as usize..(*start + *len) as usize];
            self.addrs[i] = libc::sockaddr_in::from_parts(*v4.ip(), v4.port());
            self.iovs[i] = libc::iovec {
                iov_base: bytes.as_ptr() as *mut libc::c_void,
                iov_len: bytes.len(),
            };
            self.link(i);
        }
        &mut self.hdrs[..n]
    }

    /// Peer address recorded for received entry `i`, if it was IPv4.
    pub fn peer(&self, i: usize) -> Option<SocketAddr> {
        self.addrs[i].to_addr()
    }

    /// Bytes the kernel reported for entry `i`.
    pub fn received_len(&self, i: usize) -> usize {
        self.hdrs[i].msg_len as usize
    }
}
