//! Wall-clock anchoring for structures keyed on `SimTime`.
//!
//! Every time-aware structure in the workspace — the selective [`Cache`],
//! the pacer's token buckets, the reactor's timer wheel — speaks
//! nanoseconds-since-epoch (`SimTime`), which the discrete-event engine
//! supplies as virtual time. Serving runs on real time, so a [`Clock`]
//! pins an `Instant` epoch and maps monotonic elapsed time into the same
//! nanosecond domain. It is `Copy`: hand one clock to every worker,
//! cache-fill site, and expiry probe of a serve fleet and they all agree
//! on "now" without synchronization.
//!
//! [`Cache`]: crate::cache::Cache

use std::time::Instant;

use zdns_netsim::SimTime;

/// A monotonic wall clock expressed in the `SimTime` nanosecond domain.
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    epoch: Instant,
}

impl Clock {
    /// A clock whose epoch is the moment of creation.
    pub fn new() -> Clock {
        Clock {
            epoch: Instant::now(),
        }
    }

    /// A clock anchored at an existing epoch — how serve workers share
    /// the reactor's `started` instant so wheel deadlines and cache
    /// expiries live on one timeline.
    pub fn from_epoch(epoch: Instant) -> Clock {
        Clock { epoch }
    }

    /// Nanoseconds elapsed since the epoch. Monotonic; never goes
    /// backwards across copies sharing an epoch.
    pub fn now(&self) -> SimTime {
        self.epoch.elapsed().as_nanos() as SimTime
    }

    /// The anchoring instant, for handing to [`Clock::from_epoch`].
    pub fn epoch(&self) -> Instant {
        self.epoch
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let clock = Clock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn copies_share_the_timeline() {
        let clock = Clock::new();
        let copy = Clock::from_epoch(clock.epoch());
        let a = clock.now();
        let b = copy.now();
        // Same epoch: both readings sit on one timeline, so the later
        // call can never read an earlier time.
        assert!(b >= a, "{b} < {a}");
    }

    #[test]
    fn cache_expiry_runs_on_real_time() {
        use crate::cache::{Cache, CacheKey};
        use zdns_wire::{RData, Record, RecordType};
        let clock = Clock::new();
        let cache = Cache::new(64);
        cache.put(
            CacheKey {
                name: "example.test".parse().unwrap(),
                rtype: RecordType::A,
            },
            vec![Record::new(
                "example.test".parse().unwrap(),
                300,
                RData::A("192.0.2.1".parse().unwrap()),
            )],
            clock.now(),
        );
        assert!(cache
            .get(&"example.test".parse().unwrap(), RecordType::A, clock.now())
            .is_some());
    }
}
