//! The public resolver API.
//!
//! A [`Resolver`] wraps the shared [`ResolverCore`] (config + selective
//! cache + stats) and hands out lookup machines: feed them to the
//! discrete-event engine for scale experiments, or drive them over real
//! sockets with [`Resolver::lookup`].

use std::collections::VecDeque;
use std::net::{Ipv4Addr, SocketAddr};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use zdns_netsim::{ClientEvent, SimClient, StepStatus};
use zdns_wire::{Question, RecordType};

use crate::config::{ResolutionMode, ResolverConfig};
use crate::machine::{
    DirectMachine, ExternalMachine, IterativeMachine, ResolveTarget, ResolverCore, ResultSink,
};
use crate::result::LookupResult;
use crate::status::Status;
use crate::transport::{Transport, TransportError};

/// Maps a destination IP to a concrete socket address — identity (`ip:53`)
/// in production; tests remap simulated server IPs onto loopback ports.
pub type AddrMap = dyn Fn(Ipv4Addr) -> SocketAddr + Send + Sync;

/// The ZDNS resolver.
#[derive(Clone)]
pub struct Resolver {
    core: Arc<ResolverCore>,
}

impl Resolver {
    /// Build a resolver from a config.
    pub fn new(config: ResolverConfig) -> Resolver {
        Resolver {
            core: ResolverCore::new(config),
        }
    }

    /// The shared core (cache, stats, config).
    pub fn core(&self) -> &Arc<ResolverCore> {
        &self.core
    }

    /// Build a lookup machine for `question`, choosing iterative or
    /// external mode from the config. The machine implements
    /// [`SimClient`], so it can be handed directly to the simulator.
    pub fn machine(&self, question: Question, sink: Option<ResultSink>) -> Box<dyn SimClient> {
        match &self.core.config.mode {
            ResolutionMode::Iterative => Box::new(IterativeMachine::new(
                Arc::clone(&self.core),
                question,
                ResolveTarget::Answer,
                sink,
            )),
            ResolutionMode::External { .. } => {
                Box::new(ExternalMachine::new(Arc::clone(&self.core), question, sink))
            }
        }
    }

    /// Build a delegation-preserving iterative machine (for
    /// `--all-nameservers`-style modules).
    pub fn delegation_machine(
        &self,
        question: Question,
        sink: Option<ResultSink>,
    ) -> Box<dyn SimClient> {
        Box::new(IterativeMachine::new(
            Arc::clone(&self.core),
            question,
            ResolveTarget::Delegation,
            sink,
        ))
    }

    /// Build a direct probe of one server.
    pub fn direct_machine(
        &self,
        question: Question,
        server: Ipv4Addr,
        recursion_desired: bool,
        sink: Option<ResultSink>,
    ) -> Box<dyn SimClient> {
        Box::new(DirectMachine::new(
            Arc::clone(&self.core),
            question,
            server,
            recursion_desired,
            sink,
        ))
    }

    /// Perform one blocking lookup over a real transport. `addr_map`
    /// rewrites simulated server IPs to reachable socket addresses.
    pub fn lookup(
        &self,
        question: Question,
        transport: &mut dyn Transport,
        addr_map: &AddrMap,
    ) -> LookupResult {
        let slot: Arc<Mutex<Option<LookupResult>>> = Arc::new(Mutex::new(None));
        let slot_clone = Arc::clone(&slot);
        let sink: ResultSink = Arc::new(move |r| {
            *slot_clone.lock() = Some(r);
        });
        let mut machine = self.machine(question.clone(), Some(sink));
        let started = std::time::Instant::now();
        drive_blocking(machine.as_mut(), transport, addr_map);
        let result = slot.lock().take();
        result.unwrap_or_else(|| LookupResult {
            name: question.name.clone(),
            qtype: question.qtype,
            status: Status::Error,
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
            flags: None,
            resolver: None,
            protocol: "udp",
            trace: Vec::new(),
            delegation: None,
            queries_sent: 0,
            retries_used: 0,
            duration: started.elapsed().as_nanos() as u64,
            timestamp: 0,
        })
    }

    /// Convenience: blocking A-record lookup by name string.
    pub fn lookup_a(
        &self,
        name: &str,
        transport: &mut dyn Transport,
        addr_map: &AddrMap,
    ) -> LookupResult {
        match name.parse() {
            Ok(parsed) => self.lookup(Question::new(parsed, RecordType::A), transport, addr_map),
            Err(_) => LookupResult {
                name: zdns_wire::Name::root(),
                qtype: RecordType::A,
                status: Status::IllegalInput,
                answers: Vec::new(),
                authorities: Vec::new(),
                additionals: Vec::new(),
                flags: None,
                resolver: None,
                protocol: "udp",
                trace: Vec::new(),
                delegation: None,
                queries_sent: 0,
                retries_used: 0,
                duration: 0,
                timestamp: 0,
            },
        }
    }
}

/// Drive any lookup machine to completion over a blocking transport —
/// the real-socket counterpart of feeding the machine to the simulator.
/// Returns the machine's final outcome.
///
/// Queries the machine emits are serviced strictly in emission order (a
/// blocking transport can only have one exchange on the wire at a time);
/// everything emitted in one step is kept, not just the last query. I/O
/// failures surface as [`ClientEvent::TransportFailed`], so machines can
/// report `Status::Error` rather than mislabelling them as timeouts.
pub fn drive_blocking(
    machine: &mut dyn SimClient,
    transport: &mut dyn Transport,
    addr_map: &AddrMap,
) -> Option<zdns_netsim::JobOutcome> {
    drive_blocking_paced(machine, transport, addr_map, None, None)
}

/// Nanoseconds on a process-wide monotonic clock. The blocking driver's
/// pacer outlives any single lookup, so its bucket refills must see one
/// continuous timeline — not each lookup's private zero.
fn monotonic_nanos() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<std::time::Instant> = OnceLock::new();
    EPOCH
        .get_or_init(std::time::Instant::now)
        .elapsed()
        .as_nanos() as u64
}

/// [`drive_blocking`] with an optional pacer gating every send (the
/// blocking path's equivalent of the reactor's deferred send queue: it
/// just sleeps until release) and an optional report for the pacing
/// counters. Response/timeout outcomes feed the pacer's per-destination
/// backoff exactly as the reactor's do.
pub fn drive_blocking_paced(
    machine: &mut dyn SimClient,
    transport: &mut dyn Transport,
    addr_map: &AddrMap,
    mut pacer: Option<&mut crate::pacer::Pacer>,
    mut report: Option<&mut crate::driver::DriverReport>,
) -> Option<zdns_netsim::JobOutcome> {
    use zdns_pacing::{PaceDecision, SendGate};

    let started = std::time::Instant::now();
    let mut out = Vec::new();
    let mut status = machine.start(0, &mut out);
    let mut queue: std::collections::VecDeque<zdns_netsim::OutQuery> = VecDeque::new();
    loop {
        queue.extend(out.drain(..));
        if let StepStatus::Done(outcome) = status {
            return Some(outcome);
        }
        let Some(oq) = queue.pop_front() else {
            // A running machine with nothing in flight is a bug; fail
            // closed rather than spinning.
            return None;
        };
        if let Some(pacer) = pacer.as_deref_mut() {
            if let PaceDecision::Defer {
                until,
                host_limited,
            } = pacer.admit(oq.to, monotonic_nanos())
            {
                if let Some(report) = report.as_deref_mut() {
                    report.queries_deferred += 1;
                    if host_limited {
                        report.per_host_throttles += 1;
                    }
                }
                let wait = until.saturating_sub(monotonic_nanos());
                if wait > 0 {
                    std::thread::sleep(Duration::from_nanos(wait));
                }
            }
        }
        let dest = addr_map(oq.to);
        let timeout = Duration::from_nanos(oq.timeout);
        let query = oq.to_message();
        let exchanged = transport.exchange(&query, dest, oq.protocol, timeout);
        let now = started.elapsed().as_nanos() as u64;
        if let Some(pacer) = pacer.as_deref_mut() {
            // Any transport error counts as a failure signal, matching
            // the reactor's TCP side-pool feedback — ECONNREFUSED from a
            // dead destination should grow its penalty, not reset it.
            match &exchanged {
                Ok(_) => pacer.on_success(oq.to, monotonic_nanos()),
                Err(_) => pacer.on_failure(oq.to, monotonic_nanos()),
            }
        }
        let event = match exchanged {
            Ok(message) => ClientEvent::Response {
                tag: oq.tag,
                from: oq.to,
                message: zdns_wire::MsgRef::Owned(message),
                protocol: oq.protocol,
            },
            Err(TransportError::Timeout) => ClientEvent::Timeout { tag: oq.tag },
            Err(_) => ClientEvent::TransportFailed { tag: oq.tag },
        };
        status = machine.on_event(event, now, &mut out);
    }
}

/// A sink that collects results into a shared vector — the common pattern
/// for simulator runs and tests.
pub fn collecting_sink() -> (ResultSink, Arc<Mutex<Vec<LookupResult>>>) {
    let collected: Arc<Mutex<Vec<LookupResult>>> = Arc::new(Mutex::new(Vec::new()));
    let inner = Arc::clone(&collected);
    let sink: ResultSink = Arc::new(move |r| inner.lock().push(r));
    (sink, collected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn illegal_input_short_circuits() {
        let resolver = Resolver::new(ResolverConfig::external(vec!["192.0.2.1".parse().unwrap()]));
        let mut transport = NoopTransport;
        let map: Box<AddrMap> = Box::new(|ip| SocketAddr::new(ip.into(), 53));
        let r = resolver.lookup_a("bad..name", &mut transport, &map);
        assert_eq!(r.status, Status::IllegalInput);
    }

    struct NoopTransport;
    impl Transport for NoopTransport {
        fn exchange(
            &mut self,
            _q: &zdns_wire::Message,
            _to: SocketAddr,
            _p: zdns_netsim::Protocol,
            _t: Duration,
        ) -> Result<zdns_wire::Message, TransportError> {
            Err(TransportError::Timeout)
        }
    }

    #[test]
    fn external_lookup_times_out_cleanly() {
        let mut config = ResolverConfig::external(vec!["192.0.2.1".parse().unwrap()]);
        config.retries = 1;
        let resolver = Resolver::new(config);
        let mut transport = NoopTransport;
        let map: Box<AddrMap> = Box::new(|ip| SocketAddr::new(ip.into(), 53));
        let r = resolver.lookup_a("example.com", &mut transport, &map);
        assert_eq!(r.status, Status::Timeout);
        assert_eq!(r.queries_sent, 2); // initial + 1 retry
    }
}
