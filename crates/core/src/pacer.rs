//! Client-side pacing + adaptive backoff (polite scanning).
//!
//! The paper's central operational finding is that resolver-side rate
//! limiting dominates scan fidelity: Google Public DNS's per-client-IP
//! token buckets cost /32 scans a ~6× success-rate drop, and retries
//! *inside* the penalty window cannot succeed. The [`Pacer`] is the
//! client-side answer — keep the offered load under the budget instead
//! of discovering it through drops:
//!
//! * a **global budget** (packets/second) shared by every destination;
//! * **per-destination token buckets**, so one hot resolver cannot eat
//!   the whole budget while others idle;
//! * **adaptive per-destination backoff**: timeout/error streaks grow a
//!   penalty multiplicatively, successes decay it — the real-socket
//!   stand-in for ICMP source-quench-style signals.
//!
//! Admission is *reservation-based* ([`TokenBucket::reserve`]): a
//! deferred send gets a firm release time and its budget is debited at
//! admission, so a queue of deferred sends drains at exactly the
//! configured rate with no thundering herd and no re-polling.
//!
//! The same `Pacer` drives every execution mode: the reactor arms
//! release times on its timer wheel, `drive_blocking` sleeps until
//! release, and the discrete-event engine accepts it as a
//! [`SendGate`] so paced scans are reproducible under virtual time.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use zdns_pacing::{AtomicBucket, Nanos, PaceDecision, SendGate, SlotLease, TokenBucket, SECONDS};

/// Tunables for one [`Pacer`].
#[derive(Debug, Clone)]
pub struct PacerConfig {
    /// Global send budget in packets/second (0 = unlimited).
    pub rate_pps: f64,
    /// Per-destination send budget in packets/second (0 = unlimited).
    pub per_host_pps: f64,
    /// Enable adaptive per-destination backoff on timeout/error streaks.
    pub backoff: bool,
    /// Bucket burst in packets; 0 derives `max(1, rate / 20)` — a 50 ms
    /// burst window.
    pub burst: f64,
    /// First backoff penalty; doubles per consecutive failure.
    pub backoff_base: Nanos,
    /// Penalty growth cap.
    pub backoff_cap: Nanos,
}

impl Default for PacerConfig {
    fn default() -> Self {
        PacerConfig {
            rate_pps: 0.0,
            per_host_pps: 0.0,
            backoff: false,
            burst: 0.0,
            backoff_base: 200 * zdns_pacing::MILLIS,
            backoff_cap: 8 * SECONDS,
        }
    }
}

impl PacerConfig {
    /// True when any pacing or backoff behaviour is configured.
    pub fn enabled(&self) -> bool {
        self.rate_pps > 0.0 || self.per_host_pps > 0.0 || self.backoff
    }

    /// Split the budgets across `workers` parallel drivers so their
    /// aggregate send rate stays within the configured totals.
    pub fn split(&self, workers: usize) -> PacerConfig {
        let n = workers.max(1) as f64;
        PacerConfig {
            rate_pps: self.rate_pps / n,
            per_host_pps: self.per_host_pps / n,
            ..self.clone()
        }
    }

    fn burst_for(&self, rate: f64) -> f64 {
        if self.burst > 0.0 {
            self.burst
        } else {
            (rate / 20.0).max(1.0)
        }
    }
}

/// Per-destination pacing state.
struct HostState {
    bucket: Option<TokenBucket>,
    /// Backoff gate: no send to this destination before this instant.
    not_before: Nanos,
    /// Consecutive failures (timeouts/transport errors) without a
    /// success.
    streak: u32,
}

/// Hard cap on tracked destinations: idle entries are pruned first, and
/// if every survivor is still penalized (a spoofed-source flood can keep
/// the whole table "dirty"), the soonest-to-expire entries are evicted
/// outright so the table never grows past this bound.
const MAX_HOSTS: usize = 65_536;

/// How many arbitrary entries a full host table probes when forced to
/// evict a non-idle entry; the victim is the one whose penalty expires
/// soonest. Keeps forced eviction O(1) per insert.
const HOST_EVICT_PROBES: usize = 16;

/// FNV-1a with a splitmix64 finisher — the workspace's stable hash
/// ([`zdns_zones::hashing::h64`]), packaged as a [`std::hash::Hasher`]
/// for the pacer's per-destination tables. Destination IPs are
/// attacker-independent (the scanner picks them, and cookies already
/// gate off-path spoofing), so SipHash's keyed collision resistance buys
/// nothing on a lookup paid once per send; FNV + splitmix is a handful
/// of arithmetic ops on a 4-byte key.
#[derive(Debug, Clone)]
pub struct HostHasher(u64);

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x100000001b3;

impl Default for HostHasher {
    fn default() -> Self {
        HostHasher(FNV_OFFSET)
    }
}

impl Hasher for HostHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(&self) -> u64 {
        zdns_zones::hashing::splitmix64(self.0)
    }
}

/// [`BuildHasher`] for [`HostHasher`].
#[derive(Debug, Clone, Default)]
pub struct HostHash;

impl BuildHasher for HostHash {
    type Hasher = HostHasher;

    fn build_hasher(&self) -> HostHasher {
        HostHasher::default()
    }
}

type HostMap = HashMap<Ipv4Addr, HostState, HostHash>;

/// Fetch-or-create the pacing state for `dest` in a host table bounded
/// at `cap` entries, pruning idle entries first and force-evicting the
/// probed soonest-to-expire entry when the prune frees nothing. Shared
/// by the single-threaded [`Pacer`] (cap = [`MAX_HOSTS`]) and each
/// stripe of the [`ConcurrentPacer`] (cap = [`MAX_HOSTS`] / stripes).
fn host_state_in<'a>(
    hosts: &'a mut HostMap,
    evictions: &mut u64,
    config: &PacerConfig,
    cap: usize,
    dest: Ipv4Addr,
    now: Nanos,
) -> &'a mut HostState {
    if hosts.len() >= cap && !hosts.contains_key(&dest) {
        // Prune destinations that are idle: no penalty pending and no
        // failure streak worth remembering.
        let before = hosts.len();
        hosts.retain(|_, st| st.streak > 0 || st.not_before > now);
        *evictions += (before - hosts.len()) as u64;
        // The prune is opportunistic; under a flood that penalizes
        // every entry it frees nothing, so enforce the bound by
        // evicting the probed entry whose penalty expires soonest
        // (HashMap iteration order is effectively random).
        while hosts.len() >= cap {
            let victim = hosts
                .iter()
                .take(HOST_EVICT_PROBES)
                .min_by_key(|(_, st)| (st.not_before, st.streak))
                .map(|(ip, _)| *ip);
            let Some(ip) = victim else { break };
            hosts.remove(&ip);
            *evictions += 1;
        }
    }
    hosts.entry(dest).or_insert_with(|| HostState {
        bucket: (config.per_host_pps > 0.0)
            .then(|| TokenBucket::new(config.per_host_pps, config.burst_for(config.per_host_pps))),
        not_before: 0,
        streak: 0,
    })
}

/// A pacer shared by every worker of one scan — how the shared-queue
/// pipeline leases one whole-scan pacing budget dynamically instead of
/// splitting it statically with [`PacerConfig::split`]. Reserving from
/// the shared buckets *is* the lease: an idle worker simply does not
/// reserve, so active workers absorb the whole budget with no
/// rebalancing step. Backoff memory is shared too — a destination one
/// worker learns is struggling is immediately backed off for all of
/// them.
pub type SharedPacer = std::sync::Arc<parking_lot::Mutex<Pacer>>;

/// The client-side pacing + backoff subsystem. One per driver (reactor
/// worker / blocking driver / simulation engine); not thread-safe by
/// design — drivers own their pacer the way they own their socket, and
/// scans that want one scan-wide pacer share it as a [`SharedPacer`].
pub struct Pacer {
    config: PacerConfig,
    global: Option<TokenBucket>,
    hosts: HostMap,
    /// Destinations currently serving a backoff penalty (observability).
    pub backoff_events: u64,
    /// Host entries dropped to hold the table at its capacity bound —
    /// both idle prunes and forced evictions of still-penalized entries.
    pub host_evictions: u64,
}

impl Pacer {
    /// Build from a config.
    pub fn new(config: PacerConfig) -> Pacer {
        let global = (config.rate_pps > 0.0)
            .then(|| TokenBucket::new(config.rate_pps, config.burst_for(config.rate_pps)));
        Pacer {
            config,
            global,
            hosts: HostMap::default(),
            backoff_events: 0,
            host_evictions: 0,
        }
    }

    /// The configuration this pacer was built from.
    pub fn config(&self) -> &PacerConfig {
        &self.config
    }

    /// Destinations with live pacing state.
    pub fn tracked_hosts(&self) -> usize {
        self.hosts.len()
    }

    /// Spill the adaptive-backoff memory: every destination still
    /// serving a penalty (or carrying a failure streak) as
    /// `(destination, streak, remaining penalty)` relative to `now`.
    /// This is what a scan checkpoint persists so a resumed scan
    /// re-approaches struggling destinations as carefully as the
    /// interrupted one was — instead of re-discovering every penalty
    /// through a fresh burst of drops.
    pub fn backoff_snapshot(&self, now: Nanos) -> Vec<(Ipv4Addr, u32, Nanos)> {
        self.hosts
            .iter()
            .filter(|(_, st)| st.streak > 0 || st.not_before > now)
            .map(|(ip, st)| (*ip, st.streak, st.not_before.saturating_sub(now)))
            .collect()
    }

    /// Re-seed backoff memory from a [`Pacer::backoff_snapshot`]:
    /// each entry's penalty resumes with `remaining` nanoseconds left
    /// from `now`, and its failure streak is restored so the next
    /// failure continues the multiplicative curve where it left off.
    /// Entries never *shorten* state learned since `now` (restore is
    /// monotone), and a pacer without backoff enabled ignores them.
    pub fn restore_backoff(&mut self, entries: &[(Ipv4Addr, u32, Nanos)], now: Nanos) {
        if !self.config.backoff {
            return;
        }
        for &(ip, streak, remaining) in entries {
            let state = self.host_state(ip, now);
            state.streak = state.streak.max(streak);
            state.not_before = state.not_before.max(now.saturating_add(remaining));
        }
    }

    fn host_state(&mut self, dest: Ipv4Addr, now: Nanos) -> &mut HostState {
        host_state_in(
            &mut self.hosts,
            &mut self.host_evictions,
            &self.config,
            MAX_HOSTS,
            dest,
            now,
        )
    }
}

impl SendGate for Pacer {
    fn admit(&mut self, dest: Ipv4Addr, now: Nanos) -> PaceDecision {
        if !self.config.enabled() {
            return PaceDecision::Ready;
        }
        // Reservations are *chained*, not max'd independently: the host
        // bucket reserves starting from whatever instant the global
        // budget (and any backoff penalty) already pushed the send to.
        // Taking a max of independent reservations would let a slower
        // constraint collapse many spaced release times onto one instant
        // — e.g. every retry held behind an 8s penalty firing together
        // when it expires — and a thundering herd at a struggling
        // destination is exactly what the pacer exists to prevent.
        let mut release = match self.global.as_mut() {
            Some(bucket) => bucket.reserve(now),
            None => now,
        };
        let mut host_limited = false;
        if self.config.per_host_pps > 0.0 || self.config.backoff {
            let state = self.host_state(dest, now);
            let floor = release.max(state.not_before);
            let host_release = match state.bucket.as_mut() {
                Some(bucket) => bucket.reserve(floor),
                None => floor,
            };
            if host_release > release {
                host_limited = host_release > now;
                release = host_release;
            }
        }
        if release <= now {
            PaceDecision::Ready
        } else {
            PaceDecision::Defer {
                until: release,
                host_limited,
            }
        }
    }

    fn on_success(&mut self, dest: Ipv4Addr, _now: Nanos) {
        if !self.config.backoff {
            return;
        }
        if let Some(state) = self.hosts.get_mut(&dest) {
            // Decay: a success halves the remembered failure streak.
            state.streak /= 2;
        }
    }

    fn on_failure(&mut self, dest: Ipv4Addr, now: Nanos) {
        if !self.config.backoff {
            return;
        }
        let (base, cap) = (self.config.backoff_base, self.config.backoff_cap);
        let state = self.host_state(dest, now);
        state.streak = state.streak.saturating_add(1);
        // Multiplicative increase: base × 2^(streak-1), capped.
        let penalty = base
            .saturating_mul(1u64 << (state.streak - 1).min(24))
            .min(cap);
        state.not_before = state.not_before.max(now + penalty);
        self.backoff_events += 1;
    }
}

/// Stripe count for the [`ConcurrentPacer`] host table. Power of two so
/// stripe selection is a mask off the same FNV/splitmix hash the
/// in-stripe map uses — the same keying as the 64-way selective cache.
const STRIPES: usize = 64;

/// Per-stripe share of the [`MAX_HOSTS`] bound; each stripe enforces it
/// independently so the whole table never exceeds [`MAX_HOSTS`] without
/// any cross-stripe coordination.
const STRIPE_CAP: usize = MAX_HOSTS / STRIPES;

/// Default number of global-budget tokens a worker leases per CAS; the
/// actual block is clamped to the bucket's burst so low-rate scans keep
/// per-send granularity (see [`ConcurrentPacer::new`]).
pub const TOKEN_BLOCK: u32 = 8;

/// One stripe of the concurrent pacer's per-destination table.
#[derive(Default)]
struct HostStripe {
    hosts: HostMap,
    /// Stripe-local spills of the shared counters, summed on read so the
    /// hot path never touches a cross-stripe atomic while holding the
    /// stripe lock.
    evictions: u64,
    backoff_events: u64,
}

/// A worker's private slice of the global budget: a run of token slots
/// leased from the [`AtomicBucket`] in one CAS. Consuming a slot is pure
/// local arithmetic; unused slots go back on park/idle via
/// [`ConcurrentPacer::return_block`].
#[derive(Debug, Default, Clone, Copy)]
pub struct TokenBlock {
    base: i64,
    used: u32,
    count: u32,
}

impl TokenBlock {
    /// Slots leased but not yet consumed.
    pub fn unused(&self) -> u32 {
        self.count - self.used
    }
}

/// The scan-wide pacer without the scan-wide lock: semantically a
/// [`SharedPacer`] (one global budget, shared per-destination backoff
/// memory), structurally three independent layers —
///
/// 1. the **global budget** is a lock-free [`AtomicBucket`]; workers
///    lease token *blocks* (default [`TOKEN_BLOCK`], clamped to burst)
///    so the CAS is paid once per block, not per send;
/// 2. the **per-destination table** is striped 64 ways by the
///    FNV/splitmix host hash, each stripe behind its own short mutex —
///    two workers contend only when pacing the same stripe, and the
///    reservation chain (global release → backoff floor → host bucket)
///    runs unchanged inside the stripe, preserving the no-herd contract;
/// 3. **telemetry** (`cas_retries`, `stripe_waits`, `blocks_leased`)
///    makes residual contention observable in driver reports.
///
/// Shared as `Arc<ConcurrentPacer>`; each worker drives it through a
/// [`ConcurrentGate`] holding that worker's current [`TokenBlock`].
pub struct ConcurrentPacer {
    config: PacerConfig,
    global: Option<AtomicBucket>,
    block_size: u32,
    stripes: Vec<Mutex<HostStripe>>,
    hasher: HostHash,
    stripe_waits: AtomicU64,
    blocks_leased: AtomicU64,
}

impl ConcurrentPacer {
    /// Build from a config. The token-block size is
    /// `min(`[`TOKEN_BLOCK`]`, burst)`: leasing more than the burst
    /// would hand one worker slots deep into the future while the others
    /// starve, and a low-rate scan (burst derives `rate/20`) degrades
    /// gracefully to per-send granularity.
    pub fn new(config: PacerConfig) -> ConcurrentPacer {
        let global = (config.rate_pps > 0.0)
            .then(|| AtomicBucket::new(config.rate_pps, config.burst_for(config.rate_pps)));
        let block_size = (config.burst_for(config.rate_pps) as u32).clamp(1, TOKEN_BLOCK);
        ConcurrentPacer {
            config,
            global,
            block_size,
            stripes: (0..STRIPES)
                .map(|_| Mutex::new(HostStripe::default()))
                .collect(),
            hasher: HostHash,
            stripe_waits: AtomicU64::new(0),
            blocks_leased: AtomicU64::new(0),
        }
    }

    /// The configuration this pacer was built from.
    pub fn config(&self) -> &PacerConfig {
        &self.config
    }

    fn lock_stripe(&self, dest: Ipv4Addr) -> parking_lot::MutexGuard<'_, HostStripe> {
        let idx = (self.hasher.hash_one(dest) as usize) & (STRIPES - 1);
        let stripe = &self.stripes[idx];
        match stripe.try_lock() {
            Some(guard) => guard,
            None => {
                self.stripe_waits.fetch_add(1, Ordering::Relaxed);
                stripe.lock()
            }
        }
    }

    /// Take one global-budget slot from the worker's block, leasing a
    /// fresh block when it runs dry. Returns the slot's release time.
    fn global_release(&self, block: &mut TokenBlock, now: Nanos) -> Nanos {
        let Some(bucket) = self.global.as_ref() else {
            return now;
        };
        if block.used >= block.count {
            let lease = bucket.reserve(now, self.block_size);
            self.blocks_leased.fetch_add(1, Ordering::Relaxed);
            *block = TokenBlock {
                base: lease.base,
                used: 0,
                count: lease.count,
            };
        }
        block.used += 1;
        let lease = SlotLease {
            base: block.base,
            count: block.count,
        };
        bucket.slot_release(lease, block.used, now)
    }

    /// Admit one send to `dest` at `now`, consuming from `block`. Same
    /// chained-reservation semantics as [`Pacer`]'s [`SendGate::admit`]:
    /// global slot → backoff floor → host bucket, so deferred sends stay
    /// spaced and penalty expiry never releases a herd.
    pub fn admit(&self, block: &mut TokenBlock, dest: Ipv4Addr, now: Nanos) -> PaceDecision {
        if !self.config.enabled() {
            return PaceDecision::Ready;
        }
        let mut release = self.global_release(block, now);
        let mut host_limited = false;
        if self.config.per_host_pps > 0.0 || self.config.backoff {
            let mut stripe = self.lock_stripe(dest);
            let stripe = &mut *stripe;
            let state = host_state_in(
                &mut stripe.hosts,
                &mut stripe.evictions,
                &self.config,
                STRIPE_CAP,
                dest,
                now,
            );
            let floor = release.max(state.not_before);
            let host_release = match state.bucket.as_mut() {
                Some(bucket) => bucket.reserve(floor),
                None => floor,
            };
            if host_release > release {
                host_limited = host_release > now;
                release = host_release;
            }
        }
        if release <= now {
            PaceDecision::Ready
        } else {
            PaceDecision::Defer {
                until: release,
                host_limited,
            }
        }
    }

    /// Feedback: a response from `dest` was delivered to its lookup.
    pub fn on_success(&self, dest: Ipv4Addr, _now: Nanos) {
        if !self.config.backoff {
            return;
        }
        if let Some(state) = self.lock_stripe(dest).hosts.get_mut(&dest) {
            // Decay: a success halves the remembered failure streak.
            state.streak /= 2;
        }
    }

    /// Feedback: a query to `dest` timed out or failed in transport.
    /// The penalty lands in the shared stripe, so every worker backs off
    /// the destination at its next admit — scan-wide backoff memory,
    /// exactly as under the mutex pacer.
    pub fn on_failure(&self, dest: Ipv4Addr, now: Nanos) {
        if !self.config.backoff {
            return;
        }
        let (base, cap) = (self.config.backoff_base, self.config.backoff_cap);
        let mut stripe = self.lock_stripe(dest);
        let stripe = &mut *stripe;
        let state = host_state_in(
            &mut stripe.hosts,
            &mut stripe.evictions,
            &self.config,
            STRIPE_CAP,
            dest,
            now,
        );
        state.streak = state.streak.saturating_add(1);
        // Multiplicative increase: base × 2^(streak-1), capped.
        let penalty = base
            .saturating_mul(1u64 << (state.streak - 1).min(24))
            .min(cap);
        state.not_before = state.not_before.max(now + penalty);
        stripe.backoff_events += 1;
    }

    /// Return a block's unused slots to the global budget — called when
    /// a worker parks, idles, or finishes, riding the same "give back
    /// what you aren't using" path as the credit pool.
    pub fn return_block(&self, block: &mut TokenBlock) {
        if let Some(bucket) = self.global.as_ref() {
            let unused = block.unused();
            if unused > 0 {
                bucket.unreserve(unused);
            }
        }
        *block = TokenBlock::default();
    }

    /// Destinations with live pacing state, across all stripes.
    pub fn tracked_hosts(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().hosts.len()).sum()
    }

    /// Scan-wide backoff memory as `(destination, streak, remaining)` —
    /// see [`Pacer::backoff_snapshot`]; identical wire format, so scan
    /// checkpoints are interchangeable between pacer implementations.
    pub fn backoff_snapshot(&self, now: Nanos) -> Vec<(Ipv4Addr, u32, Nanos)> {
        let mut out = Vec::new();
        for stripe in &self.stripes {
            let stripe = stripe.lock();
            out.extend(
                stripe
                    .hosts
                    .iter()
                    .filter(|(_, st)| st.streak > 0 || st.not_before > now)
                    .map(|(ip, st)| (*ip, st.streak, st.not_before.saturating_sub(now))),
            );
        }
        out
    }

    /// Re-seed backoff memory from a snapshot — monotone and gated on
    /// backoff being enabled, like [`Pacer::restore_backoff`].
    pub fn restore_backoff(&self, entries: &[(Ipv4Addr, u32, Nanos)], now: Nanos) {
        if !self.config.backoff {
            return;
        }
        for &(ip, streak, remaining) in entries {
            let mut stripe = self.lock_stripe(ip);
            let stripe = &mut *stripe;
            let state = host_state_in(
                &mut stripe.hosts,
                &mut stripe.evictions,
                &self.config,
                STRIPE_CAP,
                ip,
                now,
            );
            state.streak = state.streak.max(streak);
            state.not_before = state.not_before.max(now.saturating_add(remaining));
        }
    }

    /// Destinations currently serving a backoff penalty (observability).
    pub fn backoff_events(&self) -> u64 {
        self.stripes.iter().map(|s| s.lock().backoff_events).sum()
    }

    /// Host entries dropped to hold the table at its capacity bound.
    pub fn host_evictions(&self) -> u64 {
        self.stripes.iter().map(|s| s.lock().evictions).sum()
    }

    /// Global-bucket CAS retries — lost races on the atomic budget.
    pub fn cas_retries(&self) -> u64 {
        self.global.as_ref().map_or(0, AtomicBucket::cas_retries)
    }

    /// Contended stripe-lock acquisitions (a `try_lock` that had to
    /// fall back to blocking).
    pub fn stripe_waits(&self) -> u64 {
        self.stripe_waits.load(Ordering::Relaxed)
    }

    /// Token blocks leased from the global budget.
    pub fn blocks_leased(&self) -> u64 {
        self.blocks_leased.load(Ordering::Relaxed)
    }
}

/// One worker's handle on a shared [`ConcurrentPacer`]: the `Arc` plus
/// that worker's current [`TokenBlock`]. Implements [`SendGate`], so it
/// drops into every place a [`Pacer`] does — including the virtual-time
/// simulation engine — with no behavioural difference beyond losing the
/// lock.
pub struct ConcurrentGate {
    pacer: Arc<ConcurrentPacer>,
    block: TokenBlock,
}

impl ConcurrentGate {
    /// A new gate over `pacer` with an empty token block (the first
    /// admit leases one).
    pub fn new(pacer: Arc<ConcurrentPacer>) -> ConcurrentGate {
        ConcurrentGate {
            pacer,
            block: TokenBlock::default(),
        }
    }

    /// The shared pacer behind this gate.
    pub fn pacer(&self) -> &Arc<ConcurrentPacer> {
        &self.pacer
    }

    /// Give unused block tokens back to the global budget (park/idle).
    pub fn return_tokens(&mut self) {
        self.pacer.return_block(&mut self.block);
    }
}

impl Drop for ConcurrentGate {
    fn drop(&mut self) {
        // A worker that exits mid-block must not strand budget.
        self.return_tokens();
    }
}

impl SendGate for ConcurrentGate {
    fn admit(&mut self, dest: Ipv4Addr, now: Nanos) -> PaceDecision {
        self.pacer.admit(&mut self.block, dest, now)
    }

    fn on_success(&mut self, dest: Ipv4Addr, now: Nanos) {
        self.pacer.on_success(dest, now);
    }

    fn on_failure(&mut self, dest: Ipv4Addr, now: Nanos) {
        self.pacer.on_failure(dest, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IP_A: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 1);
    const IP_B: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 2);

    fn releases(pacer: &mut Pacer, dest: Ipv4Addr, n: usize, now: Nanos) -> Vec<Nanos> {
        (0..n)
            .map(|_| match pacer.admit(dest, now) {
                PaceDecision::Ready => now,
                PaceDecision::Defer { until, .. } => until,
            })
            .collect()
    }

    #[test]
    fn backoff_snapshot_round_trips_through_restore() {
        let config = PacerConfig {
            backoff: true,
            backoff_base: 200 * zdns_pacing::MILLIS,
            backoff_cap: 8 * SECONDS,
            ..PacerConfig::default()
        };
        let mut pacer = Pacer::new(config.clone());
        // Three failures at IP_A: streak 3, penalty 800ms from the last.
        for _ in 0..3 {
            pacer.on_failure(IP_A, 0);
        }
        pacer.on_failure(IP_B, 0);
        let snap = pacer.backoff_snapshot(100 * zdns_pacing::MILLIS);
        assert_eq!(snap.len(), 2);
        let a = snap.iter().find(|(ip, _, _)| *ip == IP_A).unwrap();
        assert_eq!(a.1, 3);
        assert_eq!(a.2, 700 * zdns_pacing::MILLIS, "remaining, not absolute");

        // A fresh pacer (a resumed scan) picks the penalties back up.
        let mut resumed = Pacer::new(config);
        resumed.restore_backoff(&snap, 0);
        match resumed.admit(IP_A, 0) {
            PaceDecision::Defer { until, .. } => {
                assert_eq!(until, 700 * zdns_pacing::MILLIS);
            }
            other => panic!("restored penalty must defer: {other:?}"),
        }
        // The restored streak continues the curve: next failure at IP_A
        // is the 4th -> 1.6s penalty.
        resumed.on_failure(IP_A, 0);
        let again = resumed.backoff_snapshot(0);
        let a = again.iter().find(|(ip, _, _)| *ip == IP_A).unwrap();
        assert_eq!(a.1, 4);
        assert_eq!(a.2, 1_600 * zdns_pacing::MILLIS);

        // Restore is monotone and gated on backoff being enabled.
        let mut disabled = Pacer::new(PacerConfig::default());
        disabled.restore_backoff(&snap, 0);
        assert_eq!(disabled.tracked_hosts(), 0);
    }

    #[test]
    fn disabled_pacer_never_defers() {
        let mut pacer = Pacer::new(PacerConfig::default());
        for i in 0..1_000 {
            assert_eq!(pacer.admit(IP_A, i), PaceDecision::Ready);
        }
        assert_eq!(pacer.tracked_hosts(), 0, "disabled pacer tracks nothing");
    }

    #[test]
    fn global_budget_spreads_sends_at_rate() {
        let mut pacer = Pacer::new(PacerConfig {
            rate_pps: 100.0,
            burst: 1.0,
            ..PacerConfig::default()
        });
        let times = releases(&mut pacer, IP_A, 51, 0);
        assert_eq!(times[0], 0);
        // 50 deferred sends at 100 pps: the last releases at ~500ms.
        let last = *times.last().unwrap();
        let expected = 500 * zdns_pacing::MILLIS;
        assert!(
            (last as i64 - expected as i64).unsigned_abs() < 5 * zdns_pacing::MILLIS,
            "{last}"
        );
        // Strictly increasing, 1/rate apart.
        for pair in times.windows(2) {
            assert!(pair[1] > pair[0]);
        }
    }

    #[test]
    fn per_host_budget_is_independent_per_destination() {
        let mut pacer = Pacer::new(PacerConfig {
            per_host_pps: 10.0,
            burst: 1.0,
            ..PacerConfig::default()
        });
        assert_eq!(pacer.admit(IP_A, 0), PaceDecision::Ready);
        // Second send to A defers on A's bucket...
        let PaceDecision::Defer { host_limited, .. } = pacer.admit(IP_A, 0) else {
            panic!("expected deferral");
        };
        assert!(host_limited);
        // ...but B is untouched.
        assert_eq!(pacer.admit(IP_B, 0), PaceDecision::Ready);
    }

    #[test]
    fn backoff_grows_multiplicatively_and_decays_on_success() {
        let config = PacerConfig {
            backoff: true,
            backoff_base: 100 * zdns_pacing::MILLIS,
            ..PacerConfig::default()
        };
        let mut pacer = Pacer::new(config);
        pacer.on_failure(IP_A, 0);
        let PaceDecision::Defer { until: p1, .. } = pacer.admit(IP_A, 0) else {
            panic!("penalty must defer");
        };
        pacer.on_failure(IP_A, 0);
        let PaceDecision::Defer { until: p2, .. } = pacer.admit(IP_A, 0) else {
            panic!("penalty must defer");
        };
        assert_eq!(p1, 100 * zdns_pacing::MILLIS);
        assert_eq!(p2, 200 * zdns_pacing::MILLIS, "doubled on second failure");
        // Successes decay the streak; after the penalty expires the next
        // failure starts from a shorter penalty again.
        pacer.on_success(IP_A, p2);
        pacer.on_success(IP_A, p2);
        let later = p2 + SECONDS;
        pacer.on_failure(IP_A, later);
        let PaceDecision::Defer { until: p3, .. } = pacer.admit(IP_A, later) else {
            panic!("penalty must defer");
        };
        assert_eq!(p3 - later, 100 * zdns_pacing::MILLIS, "decayed to base");
        // Unpenalized destinations are unaffected throughout.
        assert_eq!(pacer.admit(IP_B, later), PaceDecision::Ready);
    }

    #[test]
    fn penalty_expiry_does_not_release_a_herd() {
        // Sends held behind a backoff penalty must come out spaced at
        // the per-host rate when the penalty lifts, not all at once.
        let mut pacer = Pacer::new(PacerConfig {
            per_host_pps: 100.0, // 10ms spacing
            burst: 1.0,
            backoff: true,
            backoff_base: SECONDS,
            ..PacerConfig::default()
        });
        pacer.on_failure(IP_A, 0); // not_before = 1s
        let times = releases(&mut pacer, IP_A, 10, 0);
        assert!(times[0] >= SECONDS, "penalty must hold the first send");
        for pair in times.windows(2) {
            assert!(
                pair[1] >= pair[0] + SECONDS / 100 - 2,
                "herd after penalty expiry: {times:?}"
            );
        }
    }

    #[test]
    fn backoff_penalty_caps() {
        let mut pacer = Pacer::new(PacerConfig {
            backoff: true,
            backoff_base: SECONDS,
            backoff_cap: 4 * SECONDS,
            ..PacerConfig::default()
        });
        for _ in 0..40 {
            pacer.on_failure(IP_A, 0);
        }
        let PaceDecision::Defer { until, .. } = pacer.admit(IP_A, 0) else {
            panic!("penalty must defer");
        };
        assert_eq!(until, 4 * SECONDS, "penalty capped");
    }

    #[test]
    fn split_divides_budgets_across_workers() {
        let config = PacerConfig {
            rate_pps: 1000.0,
            per_host_pps: 100.0,
            ..PacerConfig::default()
        };
        let per_worker = config.split(4);
        assert_eq!(per_worker.rate_pps, 250.0);
        assert_eq!(per_worker.per_host_pps, 25.0);
        assert!(per_worker.enabled());
    }

    #[test]
    fn host_table_is_hard_capped_under_all_penalized_flood() {
        // A spoofed-source flood where *every* destination carries a live
        // penalty: the idle prune frees nothing, so the hard cap must
        // evict penalized entries to bound memory.
        let mut pacer = Pacer::new(PacerConfig {
            backoff: true,
            backoff_base: 3_600 * SECONDS,
            backoff_cap: 7_200 * SECONDS,
            ..PacerConfig::default()
        });
        for i in 0..(MAX_HOSTS + 500) as u32 {
            let ip = Ipv4Addr::from(0x0A00_0000 + i);
            pacer.on_failure(ip, 0);
        }
        assert!(
            pacer.tracked_hosts() <= MAX_HOSTS,
            "tracked {}",
            pacer.tracked_hosts()
        );
        assert!(pacer.host_evictions >= 500, "{}", pacer.host_evictions);
    }

    #[test]
    fn host_table_prunes_idle_entries() {
        let mut pacer = Pacer::new(PacerConfig {
            per_host_pps: 1000.0,
            ..PacerConfig::default()
        });
        for i in 0..(MAX_HOSTS + 100) as u32 {
            let ip = Ipv4Addr::from(0x0A00_0000 + i);
            let _ = pacer.admit(ip, u64::from(i) * SECONDS);
        }
        assert!(pacer.tracked_hosts() <= MAX_HOSTS + 100);
        assert!(
            pacer.tracked_hosts() < MAX_HOSTS,
            "idle hosts must be pruned, got {}",
            pacer.tracked_hosts()
        );
    }

    fn gate_releases(
        gate: &mut ConcurrentGate,
        dest: Ipv4Addr,
        n: usize,
        now: Nanos,
    ) -> Vec<Nanos> {
        (0..n)
            .map(|_| match gate.admit(dest, now) {
                PaceDecision::Ready => now,
                PaceDecision::Defer { until, .. } => until,
            })
            .collect()
    }

    #[test]
    fn concurrent_global_budget_spreads_sends_at_rate() {
        let pacer = Arc::new(ConcurrentPacer::new(PacerConfig {
            rate_pps: 100.0,
            burst: 1.0,
            ..PacerConfig::default()
        }));
        let mut gate = ConcurrentGate::new(pacer);
        let times = gate_releases(&mut gate, IP_A, 51, 0);
        assert_eq!(times[0], 0);
        let last = *times.last().unwrap();
        let expected = 500 * zdns_pacing::MILLIS;
        assert!(
            (last as i64 - expected as i64).unsigned_abs() < 5 * zdns_pacing::MILLIS,
            "{last}"
        );
        for pair in times.windows(2) {
            assert!(pair[1] > pair[0]);
        }
    }

    #[test]
    fn concurrent_penalty_expiry_does_not_release_a_herd() {
        let pacer = Arc::new(ConcurrentPacer::new(PacerConfig {
            per_host_pps: 100.0,
            burst: 1.0,
            backoff: true,
            backoff_base: SECONDS,
            ..PacerConfig::default()
        }));
        pacer.on_failure(IP_A, 0);
        let mut gate = ConcurrentGate::new(Arc::clone(&pacer));
        let times = gate_releases(&mut gate, IP_A, 10, 0);
        assert!(times[0] >= SECONDS, "penalty must hold the first send");
        for pair in times.windows(2) {
            assert!(
                pair[1] >= pair[0] + SECONDS / 100 - 2,
                "herd after penalty expiry: {times:?}"
            );
        }
    }

    #[test]
    fn concurrent_backoff_memory_is_shared_across_gates() {
        // Worker A's failures must back the destination off for worker B
        // — the scan-wide backoff memory the mutex pacer provided.
        let pacer = Arc::new(ConcurrentPacer::new(PacerConfig {
            backoff: true,
            backoff_base: SECONDS,
            ..PacerConfig::default()
        }));
        let mut a = ConcurrentGate::new(Arc::clone(&pacer));
        let mut b = ConcurrentGate::new(Arc::clone(&pacer));
        a.on_failure(IP_A, 0);
        match b.admit(IP_A, 0) {
            PaceDecision::Defer {
                until,
                host_limited,
            } => {
                assert_eq!(until, SECONDS);
                assert!(host_limited);
            }
            other => panic!("worker B must see A's penalty: {other:?}"),
        }
        assert_eq!(pacer.backoff_events(), 1);
    }

    #[test]
    fn concurrent_snapshot_round_trips_into_legacy_pacer() {
        // The two implementations speak the same checkpoint format.
        let config = PacerConfig {
            backoff: true,
            backoff_base: 200 * zdns_pacing::MILLIS,
            ..PacerConfig::default()
        };
        let pacer = Arc::new(ConcurrentPacer::new(config.clone()));
        for _ in 0..3 {
            pacer.on_failure(IP_A, 0);
        }
        let snap = pacer.backoff_snapshot(100 * zdns_pacing::MILLIS);
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0], (IP_A, 3, 700 * zdns_pacing::MILLIS));

        let mut legacy = Pacer::new(config.clone());
        legacy.restore_backoff(&snap, 0);
        assert_eq!(legacy.backoff_snapshot(0), snap);

        let resumed = ConcurrentPacer::new(config);
        resumed.restore_backoff(&snap, 0);
        let mut gate = ConcurrentGate::new(Arc::new(resumed));
        match gate.admit(IP_A, 0) {
            PaceDecision::Defer { until, .. } => assert_eq!(until, 700 * zdns_pacing::MILLIS),
            other => panic!("restored penalty must defer: {other:?}"),
        }
    }

    #[test]
    fn concurrent_host_table_is_hard_capped() {
        let pacer = ConcurrentPacer::new(PacerConfig {
            backoff: true,
            backoff_base: 3_600 * SECONDS,
            backoff_cap: 7_200 * SECONDS,
            ..PacerConfig::default()
        });
        for i in 0..(MAX_HOSTS + 500) as u32 {
            pacer.on_failure(Ipv4Addr::from(0x0A00_0000 + i), 0);
        }
        assert!(
            pacer.tracked_hosts() <= MAX_HOSTS,
            "tracked {}",
            pacer.tracked_hosts()
        );
        assert!(pacer.host_evictions() >= 500, "{}", pacer.host_evictions());
    }

    #[test]
    fn returned_blocks_give_budget_back() {
        let pacer = Arc::new(ConcurrentPacer::new(PacerConfig {
            rate_pps: 100.0, // burst derives rate/20 = 5 -> block of 5
            ..PacerConfig::default()
        }));
        let mut hoarder = ConcurrentGate::new(Arc::clone(&pacer));
        let _ = hoarder.admit(IP_A, 0); // leases a block, uses 1 slot
        assert_eq!(pacer.blocks_leased(), 1);
        drop(hoarder); // unused slots return on drop
        let mut gate = ConcurrentGate::new(Arc::clone(&pacer));
        let times = gate_releases(&mut gate, IP_B, 4, 0);
        assert_eq!(
            times,
            vec![0, 0, 0, 0],
            "returned burst tokens must be immediately spendable"
        );
    }

    #[test]
    fn disabled_concurrent_pacer_never_defers() {
        let pacer = Arc::new(ConcurrentPacer::new(PacerConfig::default()));
        let mut gate = ConcurrentGate::new(Arc::clone(&pacer));
        for i in 0..1_000 {
            assert_eq!(gate.admit(IP_A, i), PaceDecision::Ready);
        }
        assert_eq!(pacer.tracked_hosts(), 0);
        assert_eq!(pacer.blocks_leased(), 0);
    }
}
