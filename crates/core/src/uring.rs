//! The io_uring backend behind [`crate::transport::BatchIo`].
//!
//! Where the mmsg backend crosses the kernel boundary once per tick per
//! direction, [`UringIo`] moves both directions through ring memory:
//!
//! * **sends** — the reactor's staged [`SendSlot`]s become `SENDMSG`
//!   SQEs (with `MSG_DONTWAIT`, so a full socket buffer surfaces as a
//!   per-datagram `-EAGAIN` CQE instead of blocking the ring), submitted
//!   and settled with one `io_uring_enter` per flush;
//! * **receives** — a standing pool of `batch_size` re-armed `RECVMSG`
//!   SQEs drains into the backend's recv arena. Reaping completions is
//!   pure memory traffic; the only receive-side syscall is the
//!   occasional submission of re-arms, and even that rides the next send
//!   flush's `enter` whenever enough of the pool is still in flight.
//!
//! The reactor's event loop sleeps on the *ring* fd (CQEs, not socket
//! readability, are what make a uring tick runnable) — see
//! [`UringIo::ring_fd`].
//!
//! Everything kernel-visible — the mmap'd rings, the SQE array, the recv
//! arena, every `msghdr`/`iovec`/`sockaddr_in` — lives in allocations
//! made at construction and never resized, so the steady state performs
//! zero heap allocations (enforced by `crates/core/tests/zero_alloc.rs`)
//! and no pointer handed to the kernel can dangle while an op is in
//! flight. Teardown cancels the standing pool and waits for every armed
//! op to retire before unmapping.

#![cfg(any(target_os = "linux", target_os = "android"))]

use std::collections::VecDeque;
use std::io;
use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicU32, Ordering};

use crate::transport::{
    settle_ring_send, BatchSendStatus, RecvBatch, RingStats, RingSubmit, SendBatchStats, SendSlot,
    MAX_BATCH, MAX_UDP_DATAGRAM,
};

/// `user_data` tag for send SQEs; low 20 bits carry the chunk index,
/// bits 20..52 a flush epoch (so a CQE surfacing after its flush was
/// abandoned cannot corrupt a later flush's results).
const SEND_TAG: u64 = 1 << 62;
/// `user_data` tag for teardown `ASYNC_CANCEL` SQEs.
const CANCEL_TAG: u64 = 1 << 61;
/// `user_data` tag for the construction-time NOP probe.
const NOP_TAG: u64 = 1 << 60;

/// Lifecycle of one recv-arena buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BufState {
    /// No SQE in flight, contents dead — a candidate for re-arming.
    Idle,
    /// A `RECVMSG` SQE references this buffer.
    Armed,
    /// Completed: holds a datagram not yet consumed by the caller.
    Ready,
}

/// One mmap'd ring region.
struct Mmap {
    ptr: *mut u8,
    len: usize,
}

impl Mmap {
    fn map(fd: i32, len: usize, offset: i64) -> io::Result<Mmap> {
        // SAFETY: a fresh anonymous mapping over the ring fd; the kernel
        // validates offset/len against the ring geometry.
        let ptr = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                len,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_SHARED | libc::MAP_POPULATE,
                fd,
                offset,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mmap {
            ptr: ptr as *mut u8,
            len,
        })
    }

    fn unmap(&mut self) {
        if !self.ptr.is_null() {
            // SAFETY: exactly the region returned by mmap above.
            unsafe { libc::munmap(self.ptr as *mut libc::c_void, self.len) };
            self.ptr = std::ptr::null_mut();
        }
    }

    /// Pointer `off` bytes into the mapping.
    fn at(&self, off: u32) -> *mut u8 {
        // The offsets come from the kernel's own io_uring_params; they
        // are always in bounds for the ring the same call sized.
        debug_assert!((off as usize) < self.len);
        unsafe { self.ptr.add(off as usize) }
    }
}

#[inline]
fn load_acquire(p: *const u32) -> u32 {
    // SAFETY: p points into live, u32-aligned ring memory shared with
    // the kernel; AtomicU32 has the same layout as u32.
    unsafe { (*(p as *const AtomicU32)).load(Ordering::Acquire) }
}

#[inline]
fn store_release(p: *mut u32, v: u32) {
    // SAFETY: as above; this side is the only userspace writer.
    unsafe { (*(p as *const AtomicU32)).store(v, Ordering::Release) }
}

/// The io_uring submit/complete backend. See the module docs.
pub struct UringIo {
    fd: i32,
    sqpoll: bool,
    sq_map: Mmap,
    /// `None` when the kernel advertises `IORING_FEAT_SINGLE_MMAP` (the
    /// CQ shares `sq_map`).
    cq_map: Option<Mmap>,
    sqe_map: Mmap,
    // Raw ring pointers (into the maps above).
    sq_khead: *const u32,
    sq_ktail: *mut u32,
    sq_kflags: *const u32,
    sq_array: *mut u32,
    sq_mask: u32,
    sq_entries: u32,
    sqes: *mut libc::io_uring_sqe,
    cq_khead: *mut u32,
    cq_ktail: *const u32,
    cq_mask: u32,
    cqes: *const libc::io_uring_cqe,
    /// Our producer tail (published to `sq_ktail` on every push).
    local_tail: u32,
    /// SQEs the kernel has consumed (advanced by `enter` returns).
    submitted: u32,
    // Receive pool — all storage allocated once, addresses stable.
    batch_size: usize,
    bufs: Vec<Box<[u8]>>,
    buf_state: Box<[BufState]>,
    /// Buffers in [`BufState::Armed`].
    armed: usize,
    recv_hdrs: Box<[libc::msghdr]>,
    recv_iovs: Box<[libc::iovec]>,
    recv_addrs: Box<[libc::sockaddr_in]>,
    /// The batch most recently returned to the caller (arena indices the
    /// caller may still be reading).
    ready: Vec<(u32, usize, SocketAddr)>,
    /// Completed datagrams not yet handed out (e.g. reaped while a send
    /// flush waited for its own CQEs), in arrival order.
    spill: VecDeque<(u32, usize, SocketAddr)>,
    /// First hard receive error since the last `recv_into_arena`.
    recv_err: Option<io::Error>,
    // Send scratch — persistent so SQEs can point at it until settled.
    send_hdrs: Box<[libc::msghdr]>,
    send_iovs: Box<[libc::iovec]>,
    send_addrs: Box<[libc::sockaddr_in]>,
    send_res: Vec<i32>,
    send_outstanding: usize,
    send_epoch: u32,
    completions: Vec<(u32, i32)>,
    /// The socket fd the standing recv pool is armed against.
    bound_fd: Option<RawFd>,
    stats: RingStats,
}

// SAFETY: every raw pointer targets either heap allocations owned by
// this struct (boxed slices that are never resized) or the mmap'd rings,
// both valid from any thread; the ring fd is thread-agnostic and all
// mutation goes through `&mut self`, so there is no concurrent access.
unsafe impl Send for UringIo {}

impl UringIo {
    /// Set up a ring sized for `batch_size`-datagram ticks. Errors are
    /// the caller's signal to fall back (`ENOSYS`, `EPERM`, `EINVAL` on
    /// old or locked-down kernels).
    pub fn new(batch_size: usize) -> io::Result<UringIo> {
        UringIo::with_flags(batch_size, 0)
    }

    /// Like [`UringIo::new`] but with kernel-side submission polling
    /// ([`libc::IORING_SETUP_SQPOLL`]): published SQEs are consumed with
    /// zero `enter` syscalls while the poller is awake. Costs one
    /// busy-polling kernel thread per ring; opt-in.
    pub fn new_sqpoll(batch_size: usize) -> io::Result<UringIo> {
        UringIo::with_flags(batch_size, libc::IORING_SETUP_SQPOLL)
    }

    fn with_flags(batch_size: usize, extra_flags: u32) -> io::Result<UringIo> {
        let batch_size = batch_size.clamp(1, MAX_BATCH);
        // Depth: a full send flush plus a full recv re-arm wave must fit
        // without an intermediate enter.
        let entries = ((2 * batch_size).next_power_of_two().max(8) as u32).min(4096);
        let sqpoll = extra_flags & libc::IORING_SETUP_SQPOLL != 0;
        let mut params = libc::io_uring_params {
            flags: extra_flags | libc::IORING_SETUP_CLAMP,
            sq_thread_idle: if sqpoll { 50 } else { 0 },
            ..Default::default()
        };
        // SAFETY: params is a live, fully initialized parameter block.
        let fd = unsafe { libc::io_uring_setup(entries, &mut params) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        match UringIo::finish_setup(fd, sqpoll, batch_size, &params) {
            Ok(io) => Ok(io),
            Err(e) => {
                // SAFETY: fd came from io_uring_setup above and the
                // failed construction mapped nothing that outlives it.
                unsafe { libc::close(fd) };
                Err(e)
            }
        }
    }

    fn finish_setup(
        fd: i32,
        sqpoll: bool,
        batch_size: usize,
        params: &libc::io_uring_params,
    ) -> io::Result<UringIo> {
        let sq_len = params.sq_off.array as usize + params.sq_entries as usize * 4;
        let cq_len = params.cq_off.cqes as usize
            + params.cq_entries as usize * std::mem::size_of::<libc::io_uring_cqe>();
        let single = params.features & libc::IORING_FEAT_SINGLE_MMAP != 0;
        let mut sq_map = Mmap::map(
            fd,
            if single { sq_len.max(cq_len) } else { sq_len },
            libc::IORING_OFF_SQ_RING,
        )?;
        let cq_map = if single {
            None
        } else {
            match Mmap::map(fd, cq_len, libc::IORING_OFF_CQ_RING) {
                Ok(m) => Some(m),
                Err(e) => {
                    sq_map.unmap();
                    return Err(e);
                }
            }
        };
        let sqe_map = match Mmap::map(
            fd,
            params.sq_entries as usize * std::mem::size_of::<libc::io_uring_sqe>(),
            libc::IORING_OFF_SQES,
        ) {
            Ok(m) => m,
            Err(e) => {
                sq_map.unmap();
                if let Some(mut m) = cq_map {
                    m.unmap();
                }
                return Err(e);
            }
        };
        let cq_base = cq_map.as_ref().unwrap_or(&sq_map);
        let mut io = UringIo {
            fd,
            sqpoll,
            sq_khead: sq_map.at(params.sq_off.head) as *const u32,
            sq_ktail: sq_map.at(params.sq_off.tail) as *mut u32,
            sq_kflags: sq_map.at(params.sq_off.flags) as *const u32,
            sq_array: sq_map.at(params.sq_off.array) as *mut u32,
            sq_mask: params.sq_entries - 1,
            sq_entries: params.sq_entries,
            sqes: sqe_map.ptr as *mut libc::io_uring_sqe,
            cq_khead: cq_base.at(params.cq_off.head) as *mut u32,
            cq_ktail: cq_base.at(params.cq_off.tail) as *const u32,
            cq_mask: params.cq_entries - 1,
            cqes: cq_base.at(params.cq_off.cqes) as *const libc::io_uring_cqe,
            sq_map,
            cq_map,
            sqe_map,
            local_tail: 0,
            submitted: 0,
            batch_size,
            bufs: (0..batch_size)
                .map(|_| vec![0u8; MAX_UDP_DATAGRAM].into_boxed_slice())
                .collect(),
            buf_state: vec![BufState::Idle; batch_size].into_boxed_slice(),
            armed: 0,
            recv_hdrs: vec![zeroed_msghdr(); batch_size].into_boxed_slice(),
            recv_iovs: vec![zeroed_iovec(); batch_size].into_boxed_slice(),
            recv_addrs: vec![libc::sockaddr_in::zeroed(); batch_size].into_boxed_slice(),
            ready: Vec::with_capacity(batch_size),
            spill: VecDeque::with_capacity(2 * batch_size),
            recv_err: None,
            send_hdrs: vec![zeroed_msghdr(); batch_size].into_boxed_slice(),
            send_iovs: vec![zeroed_iovec(); batch_size].into_boxed_slice(),
            send_addrs: vec![libc::sockaddr_in::zeroed(); batch_size].into_boxed_slice(),
            send_res: vec![i32::MIN; batch_size],
            send_outstanding: 0,
            send_epoch: 0,
            completions: Vec::with_capacity(batch_size),
            bound_fd: None,
            stats: RingStats::default(),
        };
        io.probe()?;
        Ok(io)
    }

    /// One NOP round-trip so a ring whose `enter` is seccomp-filtered (or
    /// otherwise unusable) fails at construction — where the caller's
    /// fallback logic lives — instead of mid-scan.
    fn probe(&mut self) -> io::Result<()> {
        if !self.push_sqe(|sqe| {
            sqe.opcode = libc::IORING_OP_NOP;
            sqe.user_data = NOP_TAG;
        }) {
            return Err(io::Error::from_raw_os_error(libc::EINVAL));
        }
        self.enter(1)?;
        self.reap();
        Ok(())
    }

    /// The ring fd — what the reactor's sleep must poll: with a standing
    /// recv pool, datagrams complete into the ring, so the *socket* never
    /// becomes readable.
    pub fn ring_fd(&self) -> RawFd {
        self.fd
    }

    /// Arena depth / maximum datagrams per flush chunk.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Completed datagrams reaped but not yet returned — when true the
    /// caller should drain before sleeping (the CQ ring is empty, so a
    /// poll on the ring fd would not wake for them).
    pub fn has_buffered_recv(&self) -> bool {
        !self.spill.is_empty()
    }

    /// Cumulative ring telemetry.
    pub fn stats(&self) -> RingStats {
        self.stats
    }

    /// SQEs pushed but not yet consumed by the kernel.
    fn pending(&self) -> u32 {
        self.local_tail.wrapping_sub(self.submitted)
    }

    /// Write one SQE at the tail. Returns false when the SQ is full.
    fn push_sqe(&mut self, fill: impl FnOnce(&mut libc::io_uring_sqe)) -> bool {
        let head = load_acquire(self.sq_khead);
        if self.local_tail.wrapping_sub(head) >= self.sq_entries {
            return false;
        }
        let idx = (self.local_tail & self.sq_mask) as usize;
        // SAFETY: idx is masked into the SQE array / index array, both
        // sized sq_entries; the slot is ours until the kernel consumes
        // the published tail.
        unsafe {
            let sqe = &mut *self.sqes.add(idx);
            *sqe = libc::io_uring_sqe::zeroed();
            fill(sqe);
            *self.sq_array.add(idx) = idx as u32;
        }
        self.local_tail = self.local_tail.wrapping_add(1);
        store_release(self.sq_ktail, self.local_tail);
        true
    }

    /// Submit everything pending and, when `min_complete > 0`, wait for
    /// that many CQEs to be available. Retries `EINTR`.
    fn enter(&mut self, min_complete: u32) -> io::Result<()> {
        if self.sqpoll {
            // The poller consumes published SQEs on its own; an enter is
            // only needed to wake it up or to wait for completions.
            self.stats.sqes += self.pending() as u64;
            self.submitted = self.local_tail;
            let need_wakeup = load_acquire(self.sq_kflags) & libc::IORING_SQ_NEED_WAKEUP != 0;
            if !need_wakeup && min_complete == 0 {
                return Ok(()); // the zero-syscall path
            }
            let mut flags = 0;
            if need_wakeup {
                flags |= libc::IORING_ENTER_SQ_WAKEUP;
            }
            if min_complete > 0 {
                flags |= libc::IORING_ENTER_GETEVENTS;
            }
            loop {
                self.stats.enters += 1;
                // SAFETY: fd is our live ring.
                let r = unsafe { libc::io_uring_enter(self.fd, 0, min_complete, flags) };
                if r >= 0 {
                    return Ok(());
                }
                let e = io::Error::last_os_error();
                if e.raw_os_error() != Some(libc::EINTR) {
                    return Err(e);
                }
            }
        }
        let mut to_submit = self.pending();
        let flags = if min_complete > 0 {
            libc::IORING_ENTER_GETEVENTS
        } else {
            0
        };
        loop {
            self.stats.enters += 1;
            // SAFETY: fd is our live ring; to_submit never exceeds the
            // published tail.
            let r = unsafe { libc::io_uring_enter(self.fd, to_submit, min_complete, flags) };
            if r < 0 {
                let e = io::Error::last_os_error();
                if e.raw_os_error() == Some(libc::EINTR) {
                    continue;
                }
                return Err(e);
            }
            self.submitted = self.submitted.wrapping_add(r as u32);
            self.stats.sqes += r as u64;
            to_submit = self.pending();
            // A partial consume (rare) retries while progress is made.
            if to_submit > 0 && r > 0 {
                continue;
            }
            return Ok(());
        }
    }

    /// Drain the CQ ring, dispatching each completion. Pure memory ops.
    fn reap(&mut self) -> usize {
        let tail = load_acquire(self.cq_ktail);
        // SAFETY: we are the only head writer; plain read is fine.
        let mut head = unsafe { *(self.cq_khead as *const u32) };
        let mut n = 0usize;
        while head != tail {
            // SAFETY: masked index into the CQE array; entries up to the
            // acquired tail are published by the kernel.
            let cqe = unsafe { *self.cqes.add((head & self.cq_mask) as usize) };
            head = head.wrapping_add(1);
            n += 1;
            self.dispatch_cqe(cqe.user_data, cqe.res);
        }
        if n > 0 {
            store_release(self.cq_khead, head);
            self.stats.cqe_batches += 1;
        }
        n
    }

    fn dispatch_cqe(&mut self, user_data: u64, res: i32) {
        if user_data < self.batch_size as u64 {
            let idx = user_data as usize;
            debug_assert_eq!(self.buf_state[idx], BufState::Armed);
            self.armed -= 1;
            if res >= 0 {
                let len = (res as usize).min(self.bufs[idx].len());
                self.buf_state[idx] = BufState::Ready;
                let peer = self.recv_addrs[idx].to_addr().unwrap_or_else(|| {
                    // Non-IPv4 peer on a v4 socket: keep the slot but make
                    // it decode to nothing, like the mmsg path.
                    SocketAddr::new(Ipv4Addr::UNSPECIFIED.into(), 0)
                });
                let len = if self.recv_addrs[idx].to_addr().is_some() {
                    len
                } else {
                    0
                };
                self.spill.push_back((idx as u32, len, peer));
            } else {
                // Failed receive: the buffer holds nothing — back to the
                // re-arm pool. ECANCELED/EINTR/EAGAIN are lifecycle noise,
                // anything else surfaces once per recv call.
                self.buf_state[idx] = BufState::Idle;
                let errno = -res;
                if errno != libc::EAGAIN
                    && errno != libc::EINTR
                    && errno != libc::ECANCELED
                    && self.recv_err.is_none()
                {
                    self.recv_err = Some(io::Error::from_raw_os_error(errno));
                }
            }
        } else if user_data & SEND_TAG != 0 {
            let epoch = ((user_data >> 20) & 0xffff_ffff) as u32;
            let idx = (user_data & 0xf_ffff) as usize;
            if epoch == self.send_epoch && idx < self.send_res.len() {
                self.send_res[idx] = res;
                self.send_outstanding = self.send_outstanding.saturating_sub(1);
            }
        }
        // NOP / CANCEL completions need no action.
    }

    /// Arm a `RECVMSG` SQE for every idle buffer (without submitting).
    fn arm_idle(&mut self, fd: RawFd) {
        for idx in 0..self.batch_size {
            if self.buf_state[idx] != BufState::Idle {
                continue;
            }
            self.recv_addrs[idx] = libc::sockaddr_in::zeroed();
            self.recv_iovs[idx] = libc::iovec {
                iov_base: self.bufs[idx].as_mut_ptr() as *mut libc::c_void,
                iov_len: self.bufs[idx].len(),
            };
            self.recv_hdrs[idx] = libc::msghdr {
                msg_name: &mut self.recv_addrs[idx] as *mut libc::sockaddr_in as *mut libc::c_void,
                msg_namelen: std::mem::size_of::<libc::sockaddr_in>() as u32,
                msg_iov: &mut self.recv_iovs[idx],
                msg_iovlen: 1,
                msg_control: std::ptr::null_mut(),
                msg_controllen: 0,
                msg_flags: 0,
            };
            let hdr = &mut self.recv_hdrs[idx] as *mut libc::msghdr;
            if !self.push_sqe(|sqe| {
                sqe.opcode = libc::IORING_OP_RECVMSG;
                sqe.fd = fd;
                sqe.addr = hdr as usize as u64;
                sqe.len = 1;
                sqe.user_data = idx as u64;
            }) {
                return; // SQ full; the rest re-arm next round
            }
            self.buf_state[idx] = BufState::Armed;
            self.armed += 1;
        }
    }

    fn bind_check(&mut self, socket: &UdpSocket) {
        let fd = socket.as_raw_fd();
        match self.bound_fd {
            None => self.bound_fd = Some(fd),
            Some(bound) => debug_assert_eq!(
                bound, fd,
                "UringIo's standing recv pool is bound to one socket"
            ),
        }
    }

    /// Arm and submit the standing recv pool. Called once before a scan's
    /// event loop so the first sleep has CQEs to wake on; idempotent.
    pub fn prime(&mut self, socket: &UdpSocket) {
        self.bind_check(socket);
        self.arm_idle(socket.as_raw_fd());
        if self.pending() > 0 {
            let _ = self.enter(0);
        }
    }

    /// Re-arm consumed buffers, reap completions, and surface up to
    /// `batch_size` datagrams. Never blocks.
    pub fn recv_into_arena(&mut self, socket: &UdpSocket) -> RecvBatch {
        let enters0 = self.stats.enters;
        self.bind_check(socket);
        // The previous batch has been fully consumed by the caller.
        for (idx, _, _) in self.ready.drain(..) {
            self.buf_state[idx as usize] = BufState::Idle;
        }
        self.arm_idle(socket.as_raw_fd());
        // Submit re-arms only when the in-kernel pool runs low; otherwise
        // they ride the next send flush's enter — that is how a tick's
        // sends and receives share one syscall.
        let in_kernel = (self.armed as u32).saturating_sub(self.pending());
        if self.pending() > 0 && (in_kernel as usize) < self.batch_size.div_ceil(2) {
            let _ = self.enter(0);
        }
        self.reap();
        while self.ready.len() < self.batch_size {
            match self.spill.pop_front() {
                Some(entry) => self.ready.push(entry),
                None => break,
            }
        }
        RecvBatch {
            count: self.ready.len(),
            syscalls: self.stats.enters - enters0,
            err: self.recv_err.take(),
        }
    }

    /// Bytes of the `i`-th datagram of the current batch.
    pub fn arena_bytes(&self, i: usize) -> &[u8] {
        let (idx, len, _) = self.ready[i];
        &self.bufs[idx as usize][..len]
    }

    /// Peer of the `i`-th datagram of the current batch.
    pub fn arena_peer(&self, i: usize) -> SocketAddr {
        self.ready[i].2
    }

    /// Submit one chunk of sends as `SENDMSG` SQEs and wait for their
    /// CQEs (so the payload memory, borrowed from the caller, is dead to
    /// the kernel before this returns). `entry(i)` yields the `i`-th
    /// datagram as `(payload ptr, payload len, destination)`.
    fn submit_send_chunk(
        &mut self,
        socket: &UdpSocket,
        chunk_len: usize,
        mut entry: impl FnMut(usize) -> (*const u8, usize, SocketAddr),
        completions: &mut Vec<(u32, i32)>,
    ) -> io::Result<RingSubmit> {
        let fd = socket.as_raw_fd();
        // A non-IPv4 head goes out singly through std (same as the mmsg
        // path's fallback for addresses sockaddr_in cannot carry).
        let (ptr0, len0, dest0) = entry(0);
        if !dest0.is_ipv4() {
            // SAFETY: the caller guarantees the payload outlives the call.
            let bytes = unsafe { std::slice::from_raw_parts(ptr0, len0) };
            let res = match socket.send_to(bytes, dest0) {
                Ok(n) => n as i32,
                Err(e) => -e.raw_os_error().unwrap_or(libc::EINVAL),
            };
            completions.push((0, res));
            return Ok(RingSubmit {
                accepted: 1,
                sq_full: false,
            });
        }
        self.send_epoch = self.send_epoch.wrapping_add(1);
        let epoch = self.send_epoch;
        let mut accepted = 0usize;
        let mut sq_full = false;
        for i in 0..chunk_len {
            let (ptr, len, dest) = entry(i);
            let SocketAddr::V4(v4) = dest else {
                break; // IPv4 run ends; the caller retries from here
            };
            self.send_addrs[i] = libc::sockaddr_in::from_parts(*v4.ip(), v4.port());
            self.send_iovs[i] = libc::iovec {
                iov_base: ptr as *mut libc::c_void,
                iov_len: len,
            };
            self.send_hdrs[i] = libc::msghdr {
                msg_name: &mut self.send_addrs[i] as *mut libc::sockaddr_in as *mut libc::c_void,
                msg_namelen: std::mem::size_of::<libc::sockaddr_in>() as u32,
                msg_iov: &mut self.send_iovs[i],
                msg_iovlen: 1,
                msg_control: std::ptr::null_mut(),
                msg_controllen: 0,
                msg_flags: 0,
            };
            let hdr = &mut self.send_hdrs[i] as *mut libc::msghdr;
            let pushed = self.push_sqe(|sqe| {
                sqe.opcode = libc::IORING_OP_SENDMSG;
                sqe.fd = fd;
                sqe.addr = hdr as usize as u64;
                sqe.len = 1;
                sqe.op_flags = libc::MSG_DONTWAIT as u32;
                sqe.user_data = SEND_TAG | ((epoch as u64) << 20) | i as u64;
            });
            if !pushed {
                self.stats.sq_full_stalls += 1;
                sq_full = true;
                break;
            }
            accepted += 1;
        }
        if accepted == 0 {
            // Nothing fit at all: surface as would-block so the whole
            // suffix is requeued in order.
            return Err(io::Error::from(io::ErrorKind::WouldBlock));
        }
        self.send_res[..accepted].fill(i32::MIN);
        self.send_outstanding = accepted;
        while self.send_outstanding > 0 {
            if let Err(e) = self.enter(1) {
                self.send_outstanding = 0;
                self.send_epoch = self.send_epoch.wrapping_add(1); // orphan late CQEs
                return Err(e);
            }
            self.reap();
        }
        for (i, res) in self.send_res[..accepted].iter().enumerate() {
            completions.push((i as u32, *res));
        }
        Ok(RingSubmit { accepted, sq_full })
    }

    /// [`crate::transport::BatchIo::send_slots`] over the ring: the
    /// reactor's zero-alloc flush path.
    pub fn send_slots(
        &mut self,
        socket: &UdpSocket,
        arena: &[u8],
        slots: &[SendSlot],
        statuses: &mut Vec<BatchSendStatus>,
        on_syscall: &mut dyn FnMut(usize),
    ) -> SendBatchStats {
        let enters0 = self.stats.enters;
        let batch_size = self.batch_size;
        let mut completions = std::mem::take(&mut self.completions);
        let mut ring = |chunk: &[SendSlot], comps: &mut Vec<(u32, i32)>| {
            self.submit_send_chunk(
                socket,
                chunk.len(),
                |i| {
                    let (start, len, dest) = chunk[i];
                    let bytes = &arena[start as usize..(start + len) as usize];
                    (bytes.as_ptr(), bytes.len(), dest)
                },
                comps,
            )
        };
        let mut stats = settle_ring_send(
            batch_size,
            &mut ring,
            slots,
            statuses,
            on_syscall,
            &mut completions,
        );
        self.completions = completions;
        stats.syscalls = self.stats.enters - enters0;
        stats
    }

    /// [`crate::transport::BatchIo::send_batch`] over the ring
    /// (borrowed-slice datagrams).
    pub fn send_batch(
        &mut self,
        socket: &UdpSocket,
        msgs: &[(&[u8], SocketAddr)],
        statuses: &mut Vec<BatchSendStatus>,
        on_syscall: &mut dyn FnMut(usize),
    ) -> SendBatchStats {
        let enters0 = self.stats.enters;
        let batch_size = self.batch_size;
        let mut completions = std::mem::take(&mut self.completions);
        let mut ring = |chunk: &[(&[u8], SocketAddr)], comps: &mut Vec<(u32, i32)>| {
            self.submit_send_chunk(
                socket,
                chunk.len(),
                |i| {
                    let (bytes, dest) = chunk[i];
                    (bytes.as_ptr(), bytes.len(), dest)
                },
                comps,
            )
        };
        let mut stats = settle_ring_send(
            batch_size,
            &mut ring,
            msgs,
            statuses,
            on_syscall,
            &mut completions,
        );
        self.completions = completions;
        stats.syscalls = self.stats.enters - enters0;
        stats
    }
}

impl Drop for UringIo {
    fn drop(&mut self) {
        // Cancel the standing recv pool and wait for every armed op to
        // retire: the kernel must be done with the arena and the msghdr
        // storage before either is freed.
        for idx in 0..self.batch_size {
            if self.buf_state[idx] != BufState::Armed {
                continue;
            }
            let target = idx as u64;
            self.push_sqe(|sqe| {
                sqe.opcode = libc::IORING_OP_ASYNC_CANCEL;
                sqe.fd = -1;
                sqe.addr = target;
                sqe.user_data = CANCEL_TAG | target;
            });
        }
        let mut spins = 0;
        while self.armed > 0 && spins < 4096 {
            if self.enter(1).is_err() {
                break;
            }
            self.reap();
            spins += 1;
        }
        self.sqe_map.unmap();
        if let Some(cq) = self.cq_map.as_mut() {
            cq.unmap();
        }
        self.sq_map.unmap();
        // SAFETY: our ring fd, closed exactly once.
        unsafe { libc::close(self.fd) };
    }
}

fn zeroed_msghdr() -> libc::msghdr {
    libc::msghdr {
        msg_name: std::ptr::null_mut(),
        msg_namelen: 0,
        msg_iov: std::ptr::null_mut(),
        msg_iovlen: 0,
        msg_control: std::ptr::null_mut(),
        msg_controllen: 0,
        msg_flags: 0,
    }
}

fn zeroed_iovec() -> libc::iovec {
    libc::iovec {
        iov_base: std::ptr::null_mut(),
        iov_len: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loopback_pair() -> (UdpSocket, UdpSocket) {
        let rx = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let tx = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        rx.set_nonblocking(true).unwrap();
        tx.set_nonblocking(true).unwrap();
        (rx, tx)
    }

    fn try_ring(batch: usize) -> Option<UringIo> {
        match UringIo::new(batch) {
            Ok(io) => Some(io),
            Err(e) => {
                eprintln!("io_uring unavailable here ({e}); skipping");
                None
            }
        }
    }

    #[test]
    fn ring_round_trips_datagrams_in_order() {
        let Some(mut ring_rx) = try_ring(8) else {
            return;
        };
        let Some(mut ring_tx) = try_ring(8) else {
            return;
        };
        let (rx, tx) = loopback_pair();
        let rx_addr = rx.local_addr().unwrap();
        ring_rx.prime(&rx);

        let payloads: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; 16 + i as usize]).collect();
        let msgs: Vec<(&[u8], SocketAddr)> =
            payloads.iter().map(|p| (p.as_slice(), rx_addr)).collect();
        let mut statuses = Vec::new();
        let stats = ring_tx.send_batch(&tx, &msgs, &mut statuses, &mut |_| {});
        assert_eq!(stats.sent, 20);
        assert!(statuses.iter().all(|s| *s == BatchSendStatus::Sent));

        let mut got = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while got.len() < 20 && std::time::Instant::now() < deadline {
            let batch = ring_rx.recv_into_arena(&rx);
            assert!(batch.err.is_none(), "{:?}", batch.err);
            for i in 0..batch.count {
                got.push(ring_rx.arena_bytes(i).to_vec());
                assert_eq!(ring_rx.arena_peer(i), tx.local_addr().unwrap());
            }
            if batch.count == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        assert_eq!(got, payloads);
    }

    #[test]
    fn teardown_with_armed_pool_is_clean() {
        let Some(mut ring) = try_ring(16) else {
            return;
        };
        let (rx, _tx) = loopback_pair();
        ring.prime(&rx);
        drop(ring); // must cancel 16 armed RECVMSG ops without hanging
    }

    #[test]
    fn sqpoll_setup_either_works_or_reports() {
        match UringIo::new_sqpoll(8) {
            Ok(mut ring) => {
                let (rx, tx) = loopback_pair();
                let rx_addr = rx.local_addr().unwrap();
                ring.prime(&rx);
                let payload = [7u8; 12];
                let mut statuses = Vec::new();
                let mut tx_ring = match UringIo::new_sqpoll(8) {
                    Ok(r) => r,
                    Err(_) => return,
                };
                tx_ring.send_batch(&tx, &[(&payload[..], rx_addr)], &mut statuses, &mut |_| {});
                assert_eq!(statuses, vec![BatchSendStatus::Sent]);
            }
            Err(e) => {
                // Unprivileged SQPOLL needs ≥ 5.11; either outcome is fine.
                eprintln!("sqpoll unavailable ({e})");
            }
        }
    }
}
