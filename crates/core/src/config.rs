//! Resolver configuration.

use std::net::Ipv4Addr;

use zdns_netsim::{SimTime, MILLIS, SECONDS};
use zdns_wire::Name;

/// Where answers come from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolutionMode {
    /// ZDNS performs its own recursion from the root (the paper's
    /// "Iterative" rows) and exposes the lookup chain.
    Iterative,
    /// Queries are forwarded (RD=1) to external recursive resolvers,
    /// load-balanced across the list (the "Google"/"Cloudflare" rows).
    External {
        /// Upstream resolver addresses.
        servers: Vec<Ipv4Addr>,
    },
}

/// Tunables for the resolver library. Defaults mirror the ZDNS CLI.
#[derive(Debug, Clone)]
pub struct ResolverConfig {
    /// Iterative or external resolution.
    pub mode: ResolutionMode,
    /// Per-query timeout for external lookups.
    pub timeout: SimTime,
    /// Per-query timeout for one step of an iterative walk.
    pub iteration_timeout: SimTime,
    /// Total time budget for one lookup.
    pub lookup_budget: SimTime,
    /// Retries per query before rotating servers (Table 2 uses up to 5).
    pub retries: u32,
    /// Maximum referral depth in one walk.
    pub max_depth: u32,
    /// Total queries allowed per lookup (runaway guard).
    pub max_queries_per_lookup: u32,
    /// Cache capacity in entries (Figure 2 sweeps 50K–1M).
    pub cache_size: usize,
    /// Retry truncated UDP responses over TCP.
    pub tcp_on_truncated: bool,
    /// Use TCP for everything (the optional mode from §3.4).
    pub tcp_only: bool,
    /// Record the full lookup chain (Appendix C's trace output).
    pub trace: bool,
    /// Attach DNS cookies (RFC 7873) to queries and echo learned server
    /// cookies on retries to the same server.
    pub edns_cookies: bool,
    /// Derive client cookies from this secret with a keyed hash over the
    /// destination address (RFC 7873 §6) instead of the default
    /// deterministic per-name hash. `None` keeps the reproducible
    /// per-name derivation; `Some` is what a production scanner wants —
    /// an off-path attacker who sees one lookup's cookie learns nothing
    /// about the cookie any other destination will be sent.
    pub cookie_secret: Option<[u8; 16]>,
    /// Root hints for iterative mode.
    pub root_hints: Vec<(Name, Ipv4Addr)>,
}

impl Default for ResolverConfig {
    fn default() -> Self {
        ResolverConfig {
            mode: ResolutionMode::Iterative,
            timeout: 3 * SECONDS,
            iteration_timeout: 1_500 * MILLIS,
            lookup_budget: 15 * SECONDS,
            retries: 3,
            max_depth: 16,
            max_queries_per_lookup: 64,
            cache_size: 600_000,
            tcp_on_truncated: true,
            tcp_only: false,
            trace: true,
            edns_cookies: true,
            cookie_secret: None,
            root_hints: Vec::new(),
        }
    }
}

impl ResolverConfig {
    /// External-mode config against the given servers.
    pub fn external(servers: Vec<Ipv4Addr>) -> ResolverConfig {
        ResolverConfig {
            mode: ResolutionMode::External { servers },
            ..ResolverConfig::default()
        }
    }

    /// Iterative-mode config with the given root hints.
    pub fn iterative(root_hints: Vec<(Name, Ipv4Addr)>) -> ResolverConfig {
        ResolverConfig {
            mode: ResolutionMode::Iterative,
            root_hints,
            ..ResolverConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ResolverConfig::default();
        assert_eq!(c.retries, 3);
        assert_eq!(c.cache_size, 600_000);
        assert!(c.tcp_on_truncated);
        assert!(c.timeout > c.iteration_timeout);
        assert!(c.lookup_budget > c.timeout);
    }

    #[test]
    fn constructors_set_mode() {
        let e = ResolverConfig::external(vec!["8.8.8.8".parse().unwrap()]);
        assert!(matches!(e.mode, ResolutionMode::External { .. }));
        let i = ResolverConfig::iterative(vec![]);
        assert!(matches!(i.mode, ResolutionMode::Iterative));
    }
}
