//! Transports over real OS sockets.
//!
//! `UdpTransport` implements the paper's socket-reuse optimization: one
//! long-lived unconnected UDP socket per lookup routine, bound once to a
//! static source port and reused for every destination, with TCP
//! connections created only on demand (truncation fallback).
//!
//! [`BatchIo`] is the reactor's batched syscall layer: it coalesces
//! same-tick sends into single `sendmmsg(2)` calls and drains the socket
//! through a reusable `recvmmsg(2)` arena, with an automatic per-datagram
//! fallback (`send_to`/`recv_from`) for non-Linux targets and for
//! `--batch-size 1`.

use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpStream, UdpSocket};
use std::time::{Duration, Instant};

use zdns_netsim::Protocol;
use zdns_wire::{Message, WireError};

// ---------------------------------------------------------------------------
// Readiness wait
// ---------------------------------------------------------------------------

#[cfg(unix)]
pub(crate) mod readiness {
    use std::os::fd::RawFd;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;

    extern "C" {
        fn poll(
            fds: *mut PollFd,
            nfds: std::ffi::c_ulong,
            timeout: std::ffi::c_int,
        ) -> std::ffi::c_int;
    }

    fn wait_for(fd: RawFd, events: i16, timeout_ms: i32) -> bool {
        let mut pfd = PollFd {
            fd,
            events,
            revents: 0,
        };
        // SAFETY: `pfd` is a valid pollfd for the duration of the call and
        // `nfds` matches the array length (1).
        let r = unsafe { poll(&mut pfd, 1, timeout_ms.max(0)) };
        r > 0 && (pfd.revents & events) != 0
    }

    /// Block until `fd` is readable or `timeout_ms` elapses. Hand-rolled
    /// `poll(2)` so the reactor needs no external event-loop crate.
    pub fn wait_readable(fd: RawFd, timeout_ms: i32) -> bool {
        wait_for(fd, POLLIN, timeout_ms)
    }

    /// Block until `fd` is writable or `timeout_ms` elapses.
    pub fn wait_writable(fd: RawFd, timeout_ms: i32) -> bool {
        wait_for(fd, POLLOUT, timeout_ms)
    }
}

#[cfg(not(unix))]
pub(crate) mod readiness {
    /// Portable fallback: nap briefly and let the non-blocking read probe.
    pub fn wait_readable(_fd: i32, timeout_ms: i32) -> bool {
        std::thread::sleep(std::time::Duration::from_millis(
            timeout_ms.clamp(0, 2) as u64
        ));
        true
    }

    /// Portable fallback for writability.
    pub fn wait_writable(_fd: i32, timeout_ms: i32) -> bool {
        std::thread::sleep(std::time::Duration::from_millis(
            timeout_ms.clamp(0, 1) as u64
        ));
        true
    }
}

/// Wait for `socket` to become writable (bounded by `timeout_ms`).
fn wait_socket_writable(socket: &UdpSocket, timeout_ms: i32) {
    #[cfg(unix)]
    {
        use std::os::fd::AsRawFd;
        readiness::wait_writable(socket.as_raw_fd(), timeout_ms);
    }
    #[cfg(not(unix))]
    {
        let _ = socket;
        readiness::wait_writable(0, timeout_ms);
    }
}

/// Transport-level failures.
#[derive(Debug)]
pub enum TransportError {
    /// No (matching) response before the deadline.
    Timeout,
    /// Socket-level error.
    Io(std::io::Error),
    /// A response arrived but would not decode.
    Decode(WireError),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Timeout => f.write_str("timed out"),
            TransportError::Io(e) => write!(f, "io error: {e}"),
            TransportError::Decode(e) => write!(f, "decode error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A blocking request/response exchange.
pub trait Transport: Send {
    /// Send `query` to `to` and wait for the matching response.
    fn exchange(
        &mut self,
        query: &Message,
        to: SocketAddr,
        protocol: Protocol,
        timeout: Duration,
    ) -> Result<Message, TransportError>;
}

/// One long-lived UDP socket, reused across all lookups on this routine.
pub struct UdpTransport {
    socket: UdpSocket,
    buf: Box<[u8; 65_535]>,
}

impl UdpTransport {
    /// Bind to an ephemeral port on the given source address.
    pub fn bind(source: Ipv4Addr) -> std::io::Result<UdpTransport> {
        let socket = UdpSocket::bind((source, 0))?;
        Ok(UdpTransport {
            socket,
            buf: Box::new([0u8; 65_535]),
        })
    }

    /// The bound local address (the reused source port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    fn exchange_udp(
        &mut self,
        query: &Message,
        to: SocketAddr,
        timeout: Duration,
    ) -> Result<Message, TransportError> {
        let bytes = query.encode().map_err(TransportError::Decode)?;
        self.socket
            .send_to(&bytes, to)
            .map_err(TransportError::Io)?;
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(TransportError::Timeout);
            }
            self.socket
                .set_read_timeout(Some(remaining))
                .map_err(TransportError::Io)?;
            match self.socket.recv_from(&mut self.buf[..]) {
                Ok((len, peer)) => {
                    // The socket is unconnected (that is the point of the
                    // reuse trick), so unrelated datagrams — late responses
                    // from earlier lookups — must be filtered here.
                    if peer != to {
                        continue;
                    }
                    match Message::decode(&self.buf[..len]) {
                        Ok(msg) if msg.id == query.id && msg.flags.response => return Ok(msg),
                        Ok(_) => continue, // stale transaction or echoed query
                        Err(e) => return Err(TransportError::Decode(e)),
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(TransportError::Timeout);
                }
                Err(e) => return Err(TransportError::Io(e)),
            }
        }
    }

    fn exchange_tcp(
        &mut self,
        query: &Message,
        to: SocketAddr,
        timeout: Duration,
    ) -> Result<Message, TransportError> {
        blocking_tcp_exchange(query, to, timeout)
    }
}

/// One blocking TCP request/response exchange: connect, length-prefixed
/// write, length-prefixed read. Used for truncation fallback by both the
/// blocking transport and the reactor's TCP side-pool.
pub fn blocking_tcp_exchange(
    query: &Message,
    to: SocketAddr,
    timeout: Duration,
) -> Result<Message, TransportError> {
    let bytes = query.encode().map_err(TransportError::Decode)?;
    let mut stream = TcpStream::connect_timeout(&to, timeout).map_err(TransportError::Io)?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(TransportError::Io)?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(TransportError::Io)?;
    stream
        .write_all(&(bytes.len() as u16).to_be_bytes())
        .map_err(TransportError::Io)?;
    stream.write_all(&bytes).map_err(TransportError::Io)?;
    let mut len_buf = [0u8; 2];
    stream.read_exact(&mut len_buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::WouldBlock || e.kind() == std::io::ErrorKind::TimedOut {
            TransportError::Timeout
        } else {
            TransportError::Io(e)
        }
    })?;
    let len = u16::from_be_bytes(len_buf) as usize;
    let mut msg = vec![0u8; len];
    stream.read_exact(&mut msg).map_err(TransportError::Io)?;
    Message::decode(&msg).map_err(TransportError::Decode)
}

impl Transport for UdpTransport {
    fn exchange(
        &mut self,
        query: &Message,
        to: SocketAddr,
        protocol: Protocol,
        timeout: Duration,
    ) -> Result<Message, TransportError> {
        match protocol {
            Protocol::Udp => self.exchange_udp(query, to, timeout),
            Protocol::Tcp => self.exchange_tcp(query, to, timeout),
        }
    }
}

// ---------------------------------------------------------------------------
// Batched syscall I/O
// ---------------------------------------------------------------------------

/// Largest UDP datagram (and therefore receive-arena slot).
const MAX_UDP_DATAGRAM: usize = 65_535;

/// Hard ceiling on datagrams per syscall (the kernel caps `vlen` at
/// `UIO_MAXIOV` = 1024 anyway).
const MAX_BATCH: usize = 1_024;

/// How one datagram in a flushed send batch ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSendStatus {
    /// On the wire.
    Sent,
    /// The socket send buffer was full after a writability wait —
    /// backpressure, not failure. Once one datagram hits backpressure the
    /// rest of the flush is marked the same way (the buffer is full for
    /// them too) so the whole suffix can be requeued in order.
    Backpressure,
    /// A real socket error on this datagram.
    Failed,
}

/// Telemetry from one [`BatchIo::send_batch`] flush.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SendBatchStats {
    /// Send syscalls issued (including the one that reported blocked).
    pub syscalls: u64,
    /// Datagrams that made it onto the wire.
    pub sent: u64,
}

/// Result of one [`BatchIo::recv_into_arena`] call.
#[derive(Debug)]
pub struct RecvBatch {
    /// Datagrams now sitting in the arena (`0..count` are valid).
    pub count: usize,
    /// Receive syscalls issued (the batched path uses exactly one; the
    /// fallback path uses one per datagram plus the terminal probe).
    pub syscalls: u64,
    /// Hard socket error hit after `count` datagrams, if any. A short
    /// batch with `err == None` is a normal drain (the queue emptied),
    /// **not** an error — `WouldBlock` is never reported here.
    pub err: Option<std::io::Error>,
}

/// The vectored-send primitive [`BatchIo`] drives: attempt the given
/// datagrams front-first, return how many consecutive ones were sent
/// (≥ 1) or the error that stopped the first. Injectable so tests can
/// script short returns and `WouldBlock` mid-batch deterministically.
pub type VectoredSend<'a> = dyn FnMut(&[(&[u8], SocketAddr)]) -> std::io::Result<usize> + 'a;

/// One datagram staged in a shared encode arena: `(offset, length,
/// destination)`. The reactor encodes a whole flush into one scratch
/// buffer and hands [`BatchIo::send_slots`] this slot list, so no
/// per-flush `Vec<(&[u8], SocketAddr)>` ever needs to be materialized.
pub type SendSlot = (u32, u32, SocketAddr);

/// Batched syscall layer for one non-blocking UDP socket.
///
/// Sends staged by the caller are coalesced into `sendmmsg(2)` calls;
/// receives drain into a reusable arena of `batch_size` pre-allocated
/// buffers via `recvmmsg(2)`. On non-Linux targets — or when constructed
/// with [`BatchIo::per_datagram`] / `batch_size == 1` — the same API runs
/// over plain `send_to`/`recv_from`, one datagram per syscall, with
/// identical per-datagram semantics (the property tests in
/// `crates/core/tests/batch_io.rs` hold the two paths to the same
/// delivered sequences).
pub struct BatchIo {
    batch_size: usize,
    batched: bool,
    arena: Vec<Box<[u8]>>,
    lens: Vec<usize>,
    peers: Vec<SocketAddr>,
    /// Pre-allocated FFI vectors, rewritten in place before every
    /// syscall — the hot path never touches the allocator.
    #[cfg(any(target_os = "linux", target_os = "android"))]
    scratch: zdns_netsim::MmsgScratch,
}

impl BatchIo {
    /// Build with the best supported mode: batched `sendmmsg`/`recvmmsg`
    /// on Linux when `batch_size > 1`, per-datagram syscalls otherwise.
    pub fn new(batch_size: usize) -> BatchIo {
        let batch_size = batch_size.clamp(1, MAX_BATCH);
        BatchIo::build(batch_size, libc::MMSG_SUPPORTED && batch_size > 1)
    }

    /// Force the per-datagram fallback path (used for `--batch-size 1`,
    /// for A/B benchmarks, and by the equivalence property tests).
    pub fn per_datagram(batch_size: usize) -> BatchIo {
        BatchIo::build(batch_size.clamp(1, MAX_BATCH), false)
    }

    fn build(batch_size: usize, batched: bool) -> BatchIo {
        BatchIo {
            batch_size,
            batched,
            arena: (0..batch_size)
                .map(|_| vec![0u8; MAX_UDP_DATAGRAM].into_boxed_slice())
                .collect(),
            lens: vec![0; batch_size],
            peers: vec![SocketAddr::new(Ipv4Addr::UNSPECIFIED.into(), 0); batch_size],
            #[cfg(any(target_os = "linux", target_os = "android"))]
            scratch: zdns_netsim::MmsgScratch::new(),
        }
    }

    /// Datagrams per syscall this layer aims for (also the arena depth).
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Whether the `sendmmsg`/`recvmmsg` path is active.
    pub fn is_batched(&self) -> bool {
        self.batched
    }

    // -- send ---------------------------------------------------------------

    /// Flush `msgs` to the wire in batches, appending one
    /// [`BatchSendStatus`] per datagram (in order) to `statuses`.
    /// `on_syscall` observes the fill of each successful syscall — the
    /// datagrams-per-syscall histogram feed.
    pub fn send_batch(
        &mut self,
        socket: &UdpSocket,
        msgs: &[(&[u8], SocketAddr)],
        statuses: &mut Vec<BatchSendStatus>,
        on_syscall: &mut dyn FnMut(usize),
    ) -> SendBatchStats {
        // One writability wait per flush: the first post-wait WouldBlock
        // marks the whole remaining suffix as backpressure instead of
        // stalling the event loop once per datagram.
        let mut waited = false;
        #[cfg(any(target_os = "linux", target_os = "android"))]
        if self.batched {
            let scratch = &mut self.scratch;
            let mut primitive = |chunk: &[(&[u8], SocketAddr)]| loop {
                match send_many_once(socket, scratch, chunk) {
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock && !waited => {
                        waited = true;
                        wait_socket_writable(socket, 1);
                    }
                    other => return other,
                }
            };
            return settle_send(self.batch_size, &mut primitive, msgs, statuses, on_syscall);
        }
        let mut primitive = |chunk: &[(&[u8], SocketAddr)]| loop {
            let (bytes, dest) = chunk[0];
            match socket.send_to(bytes, dest).map(|_| 1) {
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock && !waited => {
                    waited = true;
                    wait_socket_writable(socket, 1);
                }
                other => return other,
            }
        };
        settle_send(self.batch_size, &mut primitive, msgs, statuses, on_syscall)
    }

    /// The settling engine behind [`BatchIo::send_batch`], with the
    /// vectored-send primitive injected. Chunks `msgs` by `batch_size`,
    /// retries short returns from the next unsent datagram, maps a
    /// `WouldBlock` to backpressure for the entire unsent suffix, and
    /// maps any other error to a single failed datagram (then keeps
    /// going). Public so the property tests can script syscall outcomes.
    pub fn send_batch_with(
        &mut self,
        send: &mut VectoredSend<'_>,
        msgs: &[(&[u8], SocketAddr)],
        statuses: &mut Vec<BatchSendStatus>,
        on_syscall: &mut dyn FnMut(usize),
    ) -> SendBatchStats {
        settle_send(self.batch_size, send, msgs, statuses, on_syscall)
    }

    /// [`BatchIo::send_batch`] over [`SendSlot`]s into a shared encode
    /// arena — the reactor's zero-alloc flush path. Identical settling
    /// semantics; the iovecs are built pointing straight into `arena`.
    pub fn send_slots(
        &mut self,
        socket: &UdpSocket,
        arena: &[u8],
        slots: &[SendSlot],
        statuses: &mut Vec<BatchSendStatus>,
        on_syscall: &mut dyn FnMut(usize),
    ) -> SendBatchStats {
        let mut waited = false;
        #[cfg(any(target_os = "linux", target_os = "android"))]
        if self.batched {
            let scratch = &mut self.scratch;
            let mut primitive = |chunk: &[SendSlot]| loop {
                match send_many_once_slots(socket, scratch, arena, chunk) {
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock && !waited => {
                        waited = true;
                        wait_socket_writable(socket, 1);
                    }
                    other => return other,
                }
            };
            return settle_send_slots(self.batch_size, &mut primitive, slots, statuses, on_syscall);
        }
        let mut primitive = |chunk: &[SendSlot]| loop {
            let (start, len, dest) = chunk[0];
            let bytes = &arena[start as usize..(start + len) as usize];
            match socket.send_to(bytes, dest).map(|_| 1) {
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock && !waited => {
                    waited = true;
                    wait_socket_writable(socket, 1);
                }
                other => return other,
            }
        };
        settle_send_slots(self.batch_size, &mut primitive, slots, statuses, on_syscall)
    }

    // -- receive ------------------------------------------------------------

    /// Drain up to `batch_size` datagrams from `socket` into the arena.
    /// Never blocks; see [`RecvBatch`] for how short batches and errors
    /// are told apart.
    pub fn recv_into_arena(&mut self, socket: &UdpSocket) -> RecvBatch {
        if self.batched {
            if let Some(batch) = self.recv_many_once(socket) {
                return batch;
            }
        }
        let mut count = 0;
        let mut syscalls = 0;
        while count < self.batch_size {
            syscalls += 1;
            match socket.recv_from(&mut self.arena[count]) {
                Ok((len, peer)) => {
                    self.lens[count] = len;
                    self.peers[count] = peer;
                    count += 1;
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return RecvBatch {
                        count,
                        syscalls,
                        err: None,
                    };
                }
                Err(e) => {
                    return RecvBatch {
                        count,
                        syscalls,
                        err: Some(e),
                    };
                }
            }
        }
        RecvBatch {
            count,
            syscalls,
            err: None,
        }
    }

    /// Bytes of the `i`-th datagram in the arena (valid after a
    /// [`BatchIo::recv_into_arena`] returning `count > i`).
    pub fn arena_bytes(&self, i: usize) -> &[u8] {
        &self.arena[i][..self.lens[i]]
    }

    /// Peer address of the `i`-th datagram in the arena.
    pub fn arena_peer(&self, i: usize) -> SocketAddr {
        self.peers[i]
    }

    /// One `recvmmsg` call filling the arena. `None` means the platform
    /// path is unavailable and the caller should fall back.
    #[cfg(any(target_os = "linux", target_os = "android"))]
    fn recv_many_once(&mut self, socket: &UdpSocket) -> Option<RecvBatch> {
        use std::os::fd::AsRawFd;
        let hdrs = self.scratch.prepare_recv(&mut self.arena);
        // SAFETY: every mmsghdr points at live, correctly-sized storage
        // (arena buffers and the reusable scratch arrays) that outlives
        // the call; vlen matches the slice length.
        let r = unsafe {
            libc::recvmmsg(
                socket.as_raw_fd(),
                hdrs.as_mut_ptr(),
                hdrs.len() as libc::c_uint,
                libc::MSG_DONTWAIT,
                std::ptr::null_mut(),
            )
        };
        if r < 0 {
            let e = std::io::Error::last_os_error();
            let err = match e.kind() {
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => None,
                _ => Some(e),
            };
            return Some(RecvBatch {
                count: 0,
                syscalls: 1,
                err,
            });
        }
        let count = r as usize;
        for i in 0..count {
            self.lens[i] = self.scratch.received_len(i).min(MAX_UDP_DATAGRAM);
            if let Some(peer) = self.scratch.peer(i) {
                self.peers[i] = peer;
            } else {
                // Non-IPv4 peer on a v4 socket should be impossible; mark
                // the slot empty so it decodes to nothing.
                self.lens[i] = 0;
            }
        }
        Some(RecvBatch {
            count,
            syscalls: 1,
            err: None,
        })
    }

    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    fn recv_many_once(&mut self, _socket: &UdpSocket) -> Option<RecvBatch> {
        None
    }
}

/// The settling engine behind [`BatchIo::send_batch`] (borrowed-slice
/// datagrams).
fn settle_send(
    batch_size: usize,
    send: &mut VectoredSend<'_>,
    msgs: &[(&[u8], SocketAddr)],
    statuses: &mut Vec<BatchSendStatus>,
    on_syscall: &mut dyn FnMut(usize),
) -> SendBatchStats {
    settle_engine(batch_size, send, msgs, statuses, on_syscall)
}

/// The settling engine behind [`BatchIo::send_slots`] (arena slots).
fn settle_send_slots(
    batch_size: usize,
    send: &mut dyn FnMut(&[SendSlot]) -> std::io::Result<usize>,
    slots: &[SendSlot],
    statuses: &mut Vec<BatchSendStatus>,
    on_syscall: &mut dyn FnMut(usize),
) -> SendBatchStats {
    settle_engine(batch_size, send, slots, statuses, on_syscall)
}

/// The settling engine shared by every send path: chunk `msgs` by
/// `batch_size`, retry short returns from the next unsent datagram, map
/// `WouldBlock` to backpressure for the entire unsent suffix, and map
/// any other error to a single failed datagram (then keep going). An
/// `Ok(0)` return violates the [`VectoredSend`] contract and is settled
/// as one failed datagram rather than silently marked sent.
fn settle_engine<T>(
    batch_size: usize,
    send: &mut dyn FnMut(&[T]) -> std::io::Result<usize>,
    msgs: &[T],
    statuses: &mut Vec<BatchSendStatus>,
    on_syscall: &mut dyn FnMut(usize),
) -> SendBatchStats {
    let mut stats = SendBatchStats::default();
    let mut pos = 0;
    while pos < msgs.len() {
        let end = (pos + batch_size).min(msgs.len());
        match send(&msgs[pos..end]) {
            Ok(0) => {
                debug_assert!(
                    false,
                    "vectored send returned Ok(0), violating its contract"
                );
                stats.syscalls += 1;
                statuses.push(BatchSendStatus::Failed);
                pos += 1;
            }
            Ok(n) => {
                let n = n.min(end - pos);
                stats.syscalls += 1;
                stats.sent += n as u64;
                on_syscall(n);
                statuses.extend(std::iter::repeat_n(BatchSendStatus::Sent, n));
                pos += n;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                stats.syscalls += 1;
                statuses.extend(std::iter::repeat_n(
                    BatchSendStatus::Backpressure,
                    msgs.len() - pos,
                ));
                return stats;
            }
            Err(_) => {
                stats.syscalls += 1;
                statuses.push(BatchSendStatus::Failed);
                pos += 1;
            }
        }
    }
    stats
}

/// [`send_many_once`] over arena slots: one `sendmmsg` attempt on the
/// longest IPv4 prefix of `slots`, iovecs pointed straight into `arena`.
#[cfg(any(target_os = "linux", target_os = "android"))]
fn send_many_once_slots(
    socket: &UdpSocket,
    scratch: &mut zdns_netsim::MmsgScratch,
    arena: &[u8],
    slots: &[SendSlot],
) -> std::io::Result<usize> {
    use std::os::fd::AsRawFd;
    let run = slots
        .iter()
        .take_while(|(_, _, dest)| dest.is_ipv4())
        .count()
        .min(MAX_BATCH);
    if run == 0 {
        let (start, len, dest) = slots[0];
        let bytes = &arena[start as usize..(start + len) as usize];
        return socket.send_to(bytes, dest).map(|_| 1);
    }
    let hdrs = scratch.prepare_send_slots(arena, &slots[..run]);
    // SAFETY: every mmsghdr points at live storage (the arena and the
    // reusable scratch arrays) that outlives the call; the arena is only
    // read; vlen matches the slice length.
    let r = unsafe {
        libc::sendmmsg(
            socket.as_raw_fd(),
            hdrs.as_mut_ptr(),
            hdrs.len() as libc::c_uint,
            libc::MSG_DONTWAIT,
        )
    };
    if r < 0 {
        Err(std::io::Error::last_os_error())
    } else {
        Ok(r as usize)
    }
}

/// One `sendmmsg` attempt on the longest IPv4 prefix of `msgs` (a
/// non-IPv4 head is sent singly through `std`). Returns datagrams sent.
#[cfg(any(target_os = "linux", target_os = "android"))]
fn send_many_once(
    socket: &UdpSocket,
    scratch: &mut zdns_netsim::MmsgScratch,
    msgs: &[(&[u8], SocketAddr)],
) -> std::io::Result<usize> {
    use std::os::fd::AsRawFd;
    let run = msgs
        .iter()
        .take_while(|(_, dest)| dest.is_ipv4())
        .count()
        .min(MAX_BATCH);
    if run == 0 {
        let (bytes, dest) = msgs[0];
        return socket.send_to(bytes, dest).map(|_| 1);
    }
    let hdrs = scratch.prepare_send(&msgs[..run]);
    // SAFETY: every mmsghdr points at live storage (payload slices and
    // the reusable scratch arrays) that outlives the call; the payload
    // buffers are only read; vlen matches the slice length.
    let r = unsafe {
        libc::sendmmsg(
            socket.as_raw_fd(),
            hdrs.as_mut_ptr(),
            hdrs.len() as libc::c_uint,
            libc::MSG_DONTWAIT,
        )
    };
    if r < 0 {
        Err(std::io::Error::last_os_error())
    } else {
        Ok(r as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_is_bound_once_and_reused() {
        let mut t = UdpTransport::bind(Ipv4Addr::LOCALHOST).unwrap();
        let port_before = t.local_addr().unwrap().port();
        // Exchanges against a dead port time out without rebinding.
        let query = Message::query(
            1,
            zdns_wire::Question::new("x.test".parse().unwrap(), zdns_wire::RecordType::A),
        );
        let dead: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let err = t
            .exchange(&query, dead, Protocol::Udp, Duration::from_millis(50))
            .unwrap_err();
        assert!(matches!(err, TransportError::Timeout));
        assert_eq!(t.local_addr().unwrap().port(), port_before);
    }

    #[test]
    fn tcp_connect_refused_is_io_error() {
        let mut t = UdpTransport::bind(Ipv4Addr::LOCALHOST).unwrap();
        let query = Message::query(
            2,
            zdns_wire::Question::new("x.test".parse().unwrap(), zdns_wire::RecordType::A),
        );
        // Port 1 on localhost: almost certainly closed → refused / error.
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let err = t
            .exchange(&query, dead, Protocol::Tcp, Duration::from_millis(200))
            .unwrap_err();
        assert!(matches!(
            err,
            TransportError::Io(_) | TransportError::Timeout
        ));
    }
}
