//! Transports over real OS sockets.
//!
//! `UdpTransport` implements the paper's socket-reuse optimization: one
//! long-lived unconnected UDP socket per lookup routine, bound once to a
//! static source port and reused for every destination, with TCP
//! connections created only on demand (truncation fallback).
//!
//! [`BatchIo`] is the reactor's batched syscall layer: it coalesces
//! same-tick sends into single `sendmmsg(2)` calls and drains the socket
//! through a reusable `recvmmsg(2)` arena, with an automatic per-datagram
//! fallback (`send_to`/`recv_from`) for non-Linux targets and for
//! `--batch-size 1`.

use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpStream, UdpSocket};
use std::time::{Duration, Instant};

use zdns_netsim::Protocol;
use zdns_wire::{Message, WireError};

// ---------------------------------------------------------------------------
// Readiness wait
// ---------------------------------------------------------------------------

#[cfg(unix)]
pub(crate) mod readiness {
    use std::os::fd::RawFd;
    use std::time::{Duration, Instant};

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;

    extern "C" {
        fn poll(
            fds: *mut PollFd,
            nfds: std::ffi::c_ulong,
            timeout: std::ffi::c_int,
        ) -> std::ffi::c_int;
    }

    /// How a readiness wait ended. A timeout and a poll failure are
    /// different facts: the former means "nothing arrived", the latter
    /// means the wait itself could not be trusted.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Wait {
        /// The requested events are ready.
        Ready,
        /// The full timeout elapsed with no readiness.
        TimedOut,
        /// `poll(2)` itself failed (not `EINTR` — that is retried).
        Error,
    }

    /// The retry loop around one poll attempt, with the attempt injected
    /// so tests can script `EINTR` sequences deterministically.
    ///
    /// `poll_once(remaining_ms)` returns `Ok(ready?)` or the poll error.
    /// An `EINTR` result retries with the *remaining* budget — a signal
    /// landing mid-wait no longer burns the caller's whole timeout by
    /// reporting "not ready" early.
    pub fn wait_with(
        timeout_ms: i32,
        poll_once: &mut dyn FnMut(i32) -> Result<bool, std::io::Error>,
    ) -> Wait {
        let budget = timeout_ms.max(0);
        let deadline = Instant::now() + Duration::from_millis(budget as u64);
        let mut remaining = budget;
        loop {
            match poll_once(remaining) {
                Ok(true) => return Wait::Ready,
                Ok(false) => return Wait::TimedOut,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                    let left = deadline.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        return Wait::TimedOut;
                    }
                    // Round up so a sub-millisecond remainder still polls
                    // once more instead of degenerating to a busy loop.
                    remaining = left.as_micros().div_ceil(1_000).min(budget as u128) as i32;
                }
                Err(_) => return Wait::Error,
            }
        }
    }

    fn wait_for(fd: RawFd, events: i16, timeout_ms: i32) -> Wait {
        wait_with(timeout_ms, &mut |ms| {
            let mut pfd = PollFd {
                fd,
                events,
                revents: 0,
            };
            // SAFETY: `pfd` is a valid pollfd for the duration of the call
            // and `nfds` matches the array length (1).
            let r = unsafe { poll(&mut pfd, 1, ms.max(0)) };
            if r < 0 {
                Err(std::io::Error::last_os_error())
            } else {
                Ok(r > 0 && (pfd.revents & events) != 0)
            }
        })
    }

    /// Block until `fd` is readable or `timeout_ms` elapses. Hand-rolled
    /// `poll(2)` so the reactor needs no external event-loop crate.
    pub fn wait_readable(fd: RawFd, timeout_ms: i32) -> bool {
        wait_for(fd, POLLIN, timeout_ms) == Wait::Ready
    }

    /// Block until `fd` is writable or `timeout_ms` elapses.
    pub fn wait_writable(fd: RawFd, timeout_ms: i32) -> bool {
        wait_for(fd, POLLOUT, timeout_ms) == Wait::Ready
    }
}

#[cfg(not(unix))]
pub(crate) mod readiness {
    /// Portable fallback: nap briefly and let the non-blocking read probe.
    pub fn wait_readable(_fd: i32, timeout_ms: i32) -> bool {
        std::thread::sleep(std::time::Duration::from_millis(
            timeout_ms.clamp(0, 2) as u64
        ));
        true
    }

    /// Portable fallback for writability.
    pub fn wait_writable(_fd: i32, timeout_ms: i32) -> bool {
        std::thread::sleep(std::time::Duration::from_millis(
            timeout_ms.clamp(0, 1) as u64
        ));
        true
    }
}

/// Wait for `socket` to become writable (bounded by `timeout_ms`).
fn wait_socket_writable(socket: &UdpSocket, timeout_ms: i32) {
    #[cfg(unix)]
    {
        use std::os::fd::AsRawFd;
        readiness::wait_writable(socket.as_raw_fd(), timeout_ms);
    }
    #[cfg(not(unix))]
    {
        let _ = socket;
        readiness::wait_writable(0, timeout_ms);
    }
}

/// Transport-level failures.
#[derive(Debug)]
pub enum TransportError {
    /// No (matching) response before the deadline.
    Timeout,
    /// Socket-level error.
    Io(std::io::Error),
    /// A response arrived but would not decode.
    Decode(WireError),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Timeout => f.write_str("timed out"),
            TransportError::Io(e) => write!(f, "io error: {e}"),
            TransportError::Decode(e) => write!(f, "decode error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A blocking request/response exchange.
pub trait Transport: Send {
    /// Send `query` to `to` and wait for the matching response.
    fn exchange(
        &mut self,
        query: &Message,
        to: SocketAddr,
        protocol: Protocol,
        timeout: Duration,
    ) -> Result<Message, TransportError>;
}

/// One long-lived UDP socket, reused across all lookups on this routine.
pub struct UdpTransport {
    socket: UdpSocket,
    buf: Box<[u8; 65_535]>,
}

impl UdpTransport {
    /// Bind to an ephemeral port on the given source address.
    pub fn bind(source: Ipv4Addr) -> std::io::Result<UdpTransport> {
        let socket = UdpSocket::bind((source, 0))?;
        Ok(UdpTransport {
            socket,
            buf: Box::new([0u8; 65_535]),
        })
    }

    /// The bound local address (the reused source port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    fn exchange_udp(
        &mut self,
        query: &Message,
        to: SocketAddr,
        timeout: Duration,
    ) -> Result<Message, TransportError> {
        let bytes = query.encode().map_err(TransportError::Decode)?;
        self.socket
            .send_to(&bytes, to)
            .map_err(TransportError::Io)?;
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(TransportError::Timeout);
            }
            self.socket
                .set_read_timeout(Some(remaining))
                .map_err(TransportError::Io)?;
            match self.socket.recv_from(&mut self.buf[..]) {
                Ok((len, peer)) => {
                    // The socket is unconnected (that is the point of the
                    // reuse trick), so unrelated datagrams — late responses
                    // from earlier lookups — must be filtered here.
                    if peer != to {
                        continue;
                    }
                    match Message::decode(&self.buf[..len]) {
                        Ok(msg) if msg.id == query.id && msg.flags.response => return Ok(msg),
                        Ok(_) => continue, // stale transaction or echoed query
                        Err(e) => return Err(TransportError::Decode(e)),
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(TransportError::Timeout);
                }
                Err(e) => return Err(TransportError::Io(e)),
            }
        }
    }

    fn exchange_tcp(
        &mut self,
        query: &Message,
        to: SocketAddr,
        timeout: Duration,
    ) -> Result<Message, TransportError> {
        blocking_tcp_exchange(query, to, timeout)
    }
}

/// One blocking TCP request/response exchange: connect, length-prefixed
/// write, length-prefixed read. Used for truncation fallback by both the
/// blocking transport and the reactor's TCP side-pool.
pub fn blocking_tcp_exchange(
    query: &Message,
    to: SocketAddr,
    timeout: Duration,
) -> Result<Message, TransportError> {
    let bytes = query.encode().map_err(TransportError::Decode)?;
    let mut stream = TcpStream::connect_timeout(&to, timeout).map_err(TransportError::Io)?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(TransportError::Io)?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(TransportError::Io)?;
    stream
        .write_all(&(bytes.len() as u16).to_be_bytes())
        .map_err(TransportError::Io)?;
    stream.write_all(&bytes).map_err(TransportError::Io)?;
    let mut len_buf = [0u8; 2];
    stream.read_exact(&mut len_buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::WouldBlock || e.kind() == std::io::ErrorKind::TimedOut {
            TransportError::Timeout
        } else {
            TransportError::Io(e)
        }
    })?;
    let len = u16::from_be_bytes(len_buf) as usize;
    let mut msg = vec![0u8; len];
    stream.read_exact(&mut msg).map_err(TransportError::Io)?;
    Message::decode(&msg).map_err(TransportError::Decode)
}

impl Transport for UdpTransport {
    fn exchange(
        &mut self,
        query: &Message,
        to: SocketAddr,
        protocol: Protocol,
        timeout: Duration,
    ) -> Result<Message, TransportError> {
        match protocol {
            Protocol::Udp => self.exchange_udp(query, to, timeout),
            Protocol::Tcp => self.exchange_tcp(query, to, timeout),
        }
    }
}

// ---------------------------------------------------------------------------
// Batched syscall I/O
// ---------------------------------------------------------------------------

/// Largest UDP datagram (and therefore receive-arena slot).
pub(crate) const MAX_UDP_DATAGRAM: usize = 65_535;

/// Hard ceiling on datagrams per syscall (the kernel caps `vlen` at
/// `UIO_MAXIOV` = 1024 anyway).
pub(crate) const MAX_BATCH: usize = 1_024;

/// Which syscall strategy [`BatchIo`] should run — the `--io-backend`
/// flag's value, resolved against what the running kernel supports by
/// [`BatchIo::with_backend`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IoBackend {
    /// Best available: io_uring when the kernel offers it, else
    /// `sendmmsg`/`recvmmsg`, else per-datagram syscalls.
    #[default]
    Auto,
    /// Plain `send_to`/`recv_from`, one datagram per syscall.
    Syscall,
    /// `sendmmsg(2)`/`recvmmsg(2)` vectored batches.
    Mmsg,
    /// io_uring submission/completion rings. Falls back like [`IoBackend::Auto`]
    /// when ring setup fails (old kernel, seccomp, `ENOSYS`/`EPERM`).
    Uring,
}

impl IoBackend {
    /// Parse a `--io-backend` flag value.
    pub fn parse(s: &str) -> Option<IoBackend> {
        match s {
            "auto" => Some(IoBackend::Auto),
            "syscall" => Some(IoBackend::Syscall),
            "mmsg" => Some(IoBackend::Mmsg),
            "uring" => Some(IoBackend::Uring),
            _ => None,
        }
    }

    /// The flag spelling of this choice.
    pub fn as_str(&self) -> &'static str {
        match self {
            IoBackend::Auto => "auto",
            IoBackend::Syscall => "syscall",
            IoBackend::Mmsg => "mmsg",
            IoBackend::Uring => "uring",
        }
    }
}

/// Cumulative io_uring telemetry (zero everywhere on other backends):
/// the ring-health counters surfaced in `DriverReport` and the `--real`
/// summary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingStats {
    /// SQEs the kernel consumed.
    pub sqes: u64,
    /// `io_uring_enter` syscalls issued.
    pub enters: u64,
    /// Non-empty CQ reaps (each drains every pending CQE).
    pub cqe_batches: u64,
    /// Times the SQ ring was full mid-flush (the unsubmitted suffix was
    /// requeued).
    pub sq_full_stalls: u64,
}

/// What one ring submission attempt accepted — the io_uring analogue of
/// [`VectoredSend`]'s `Ok(n)` return. See [`settle_ring_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingSubmit {
    /// Datagrams turned into SQEs and settled (a completion exists for
    /// chunk indices `0..accepted`).
    pub accepted: usize,
    /// The SQ ring filled before the whole chunk fit: the caller must
    /// requeue everything past `accepted` in order, not retry it now.
    pub sq_full: bool,
}

/// How one datagram in a flushed send batch ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSendStatus {
    /// On the wire.
    Sent,
    /// The socket send buffer was full after a writability wait —
    /// backpressure, not failure. Once one datagram hits backpressure the
    /// rest of the flush is marked the same way (the buffer is full for
    /// them too) so the whole suffix can be requeued in order.
    Backpressure,
    /// A real socket error on this datagram.
    Failed,
}

/// Telemetry from one [`BatchIo::send_batch`] flush.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SendBatchStats {
    /// Send syscalls issued (including the one that reported blocked).
    pub syscalls: u64,
    /// Datagrams that made it onto the wire.
    pub sent: u64,
}

/// Result of one [`BatchIo::recv_into_arena`] call.
#[derive(Debug)]
pub struct RecvBatch {
    /// Datagrams now sitting in the arena (`0..count` are valid).
    pub count: usize,
    /// Receive syscalls issued (the batched path uses exactly one; the
    /// fallback path uses one per datagram plus the terminal probe).
    pub syscalls: u64,
    /// Hard socket error hit after `count` datagrams, if any. A short
    /// batch with `err == None` is a normal drain (the queue emptied),
    /// **not** an error — `WouldBlock` is never reported here.
    pub err: Option<std::io::Error>,
}

/// The vectored-send primitive [`BatchIo`] drives: attempt the given
/// datagrams front-first, return how many consecutive ones were sent
/// (≥ 1) or the error that stopped the first. Injectable so tests can
/// script short returns and `WouldBlock` mid-batch deterministically.
pub type VectoredSend<'a> = dyn FnMut(&[(&[u8], SocketAddr)]) -> std::io::Result<usize> + 'a;

/// One datagram staged in a shared encode arena: `(offset, length,
/// destination)`. The reactor encodes a whole flush into one scratch
/// buffer and hands [`BatchIo::send_slots`] this slot list, so no
/// per-flush `Vec<(&[u8], SocketAddr)>` ever needs to be materialized.
pub type SendSlot = (u32, u32, SocketAddr);

/// The arena-and-scratch machinery shared by the per-datagram and mmsg
/// backends of [`BatchIo`]: `batch_size` pre-allocated receive buffers
/// plus the reusable FFI vectors for `sendmmsg`/`recvmmsg`. Constructed
/// through [`BatchIo`]; not useful on its own.
pub struct ArenaIo {
    batch_size: usize,
    batched: bool,
    arena: Vec<Box<[u8]>>,
    lens: Vec<usize>,
    peers: Vec<SocketAddr>,
    /// Pre-allocated FFI vectors, rewritten in place before every
    /// syscall — the hot path never touches the allocator.
    #[cfg(any(target_os = "linux", target_os = "android"))]
    scratch: zdns_netsim::MmsgScratch,
}

impl ArenaIo {
    fn build(batch_size: usize, batched: bool) -> ArenaIo {
        ArenaIo {
            batch_size,
            batched,
            arena: (0..batch_size)
                .map(|_| vec![0u8; MAX_UDP_DATAGRAM].into_boxed_slice())
                .collect(),
            lens: vec![0; batch_size],
            peers: vec![SocketAddr::new(Ipv4Addr::UNSPECIFIED.into(), 0); batch_size],
            #[cfg(any(target_os = "linux", target_os = "android"))]
            scratch: zdns_netsim::MmsgScratch::new(),
        }
    }

    // -- send ---------------------------------------------------------------

    fn send_batch(
        &mut self,
        socket: &UdpSocket,
        msgs: &[(&[u8], SocketAddr)],
        statuses: &mut Vec<BatchSendStatus>,
        on_syscall: &mut dyn FnMut(usize),
    ) -> SendBatchStats {
        // One writability wait per flush: the first post-wait WouldBlock
        // marks the whole remaining suffix as backpressure instead of
        // stalling the event loop once per datagram.
        let mut waited = false;
        #[cfg(any(target_os = "linux", target_os = "android"))]
        if self.batched {
            let scratch = &mut self.scratch;
            let mut primitive = |chunk: &[(&[u8], SocketAddr)]| loop {
                match send_many_once(socket, scratch, chunk) {
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock && !waited => {
                        waited = true;
                        wait_socket_writable(socket, 1);
                    }
                    other => return other,
                }
            };
            return settle_send(self.batch_size, &mut primitive, msgs, statuses, on_syscall);
        }
        let mut primitive = |chunk: &[(&[u8], SocketAddr)]| loop {
            let (bytes, dest) = chunk[0];
            match socket.send_to(bytes, dest).map(|_| 1) {
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock && !waited => {
                    waited = true;
                    wait_socket_writable(socket, 1);
                }
                other => return other,
            }
        };
        settle_send(self.batch_size, &mut primitive, msgs, statuses, on_syscall)
    }

    fn send_slots(
        &mut self,
        socket: &UdpSocket,
        arena: &[u8],
        slots: &[SendSlot],
        statuses: &mut Vec<BatchSendStatus>,
        on_syscall: &mut dyn FnMut(usize),
    ) -> SendBatchStats {
        let mut waited = false;
        #[cfg(any(target_os = "linux", target_os = "android"))]
        if self.batched {
            let scratch = &mut self.scratch;
            let mut primitive = |chunk: &[SendSlot]| loop {
                match send_many_once_slots(socket, scratch, arena, chunk) {
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock && !waited => {
                        waited = true;
                        wait_socket_writable(socket, 1);
                    }
                    other => return other,
                }
            };
            return settle_send_slots(self.batch_size, &mut primitive, slots, statuses, on_syscall);
        }
        let mut primitive = |chunk: &[SendSlot]| loop {
            let (start, len, dest) = chunk[0];
            let bytes = &arena[start as usize..(start + len) as usize];
            match socket.send_to(bytes, dest).map(|_| 1) {
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock && !waited => {
                    waited = true;
                    wait_socket_writable(socket, 1);
                }
                other => return other,
            }
        };
        settle_send_slots(self.batch_size, &mut primitive, slots, statuses, on_syscall)
    }

    // -- receive ------------------------------------------------------------

    fn recv_into_arena(&mut self, socket: &UdpSocket) -> RecvBatch {
        if self.batched {
            if let Some(batch) = self.recv_many_once(socket) {
                return batch;
            }
        }
        let mut count = 0;
        let mut syscalls = 0;
        while count < self.batch_size {
            syscalls += 1;
            match socket.recv_from(&mut self.arena[count]) {
                Ok((len, peer)) => {
                    self.lens[count] = len;
                    self.peers[count] = peer;
                    count += 1;
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return RecvBatch {
                        count,
                        syscalls,
                        err: None,
                    };
                }
                Err(e) => {
                    return RecvBatch {
                        count,
                        syscalls,
                        err: Some(e),
                    };
                }
            }
        }
        RecvBatch {
            count,
            syscalls,
            err: None,
        }
    }

    fn arena_bytes(&self, i: usize) -> &[u8] {
        &self.arena[i][..self.lens[i]]
    }

    fn arena_peer(&self, i: usize) -> SocketAddr {
        self.peers[i]
    }

    /// One `recvmmsg` call filling the arena. `None` means the platform
    /// path is unavailable and the caller should fall back.
    #[cfg(any(target_os = "linux", target_os = "android"))]
    fn recv_many_once(&mut self, socket: &UdpSocket) -> Option<RecvBatch> {
        use std::os::fd::AsRawFd;
        let hdrs = self.scratch.prepare_recv(&mut self.arena);
        // SAFETY: every mmsghdr points at live, correctly-sized storage
        // (arena buffers and the reusable scratch arrays) that outlives
        // the call; vlen matches the slice length.
        let r = unsafe {
            libc::recvmmsg(
                socket.as_raw_fd(),
                hdrs.as_mut_ptr(),
                hdrs.len() as libc::c_uint,
                libc::MSG_DONTWAIT,
                std::ptr::null_mut(),
            )
        };
        if r < 0 {
            let e = std::io::Error::last_os_error();
            let err = match e.kind() {
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => None,
                _ => Some(e),
            };
            return Some(RecvBatch {
                count: 0,
                syscalls: 1,
                err,
            });
        }
        let count = r as usize;
        for i in 0..count {
            self.lens[i] = self.scratch.received_len(i).min(MAX_UDP_DATAGRAM);
            if let Some(peer) = self.scratch.peer(i) {
                self.peers[i] = peer;
            } else {
                // Non-IPv4 peer on a v4 socket should be impossible; mark
                // the slot empty so it decodes to nothing.
                self.lens[i] = 0;
            }
        }
        Some(RecvBatch {
            count,
            syscalls: 1,
            err: None,
        })
    }

    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    fn recv_many_once(&mut self, _socket: &UdpSocket) -> Option<RecvBatch> {
        None
    }
}

/// Batched syscall layer for one non-blocking UDP socket — one of three
/// strategies behind a single API:
///
/// * [`BatchIo::PerDatagram`] — plain `send_to`/`recv_from`, one
///   datagram per syscall (the non-Linux path and `--batch-size 1`);
/// * [`BatchIo::Mmsg`] — same-tick sends coalesced into `sendmmsg(2)`,
///   receives drained through a reusable `recvmmsg(2)` arena;
/// * [`BatchIo::Uring`] — io_uring submission/completion rings: sends
///   become `SENDMSG` SQEs, receives a standing pool of re-armed
///   `RECVMSG` SQEs, both settled with at most one `io_uring_enter` per
///   tick (see [`crate::uring`]).
///
/// Select with [`BatchIo::with_backend`] (the `--io-backend` flag);
/// [`BatchIo::new`] keeps the historical default (mmsg where supported).
/// All variants share per-datagram semantics — the property tests in
/// `crates/core/tests/batch_io.rs` hold every path to the same delivered
/// sequences.
pub enum BatchIo {
    /// Per-datagram `send_to`/`recv_from` fallback.
    PerDatagram(ArenaIo),
    /// Vectored `sendmmsg`/`recvmmsg` batches.
    #[cfg(any(target_os = "linux", target_os = "android"))]
    Mmsg(ArenaIo),
    /// io_uring submit/complete rings.
    #[cfg(any(target_os = "linux", target_os = "android"))]
    Uring(Box<crate::uring::UringIo>),
}

impl BatchIo {
    /// Build with the best *vectored-syscall* mode: `sendmmsg`/`recvmmsg`
    /// on Linux when `batch_size > 1`, per-datagram syscalls otherwise.
    /// (io_uring is opted into through [`BatchIo::with_backend`].)
    pub fn new(batch_size: usize) -> BatchIo {
        let batch_size = batch_size.clamp(1, MAX_BATCH);
        #[cfg(any(target_os = "linux", target_os = "android"))]
        if libc::MMSG_SUPPORTED && batch_size > 1 {
            return BatchIo::Mmsg(ArenaIo::build(batch_size, true));
        }
        BatchIo::PerDatagram(ArenaIo::build(batch_size, false))
    }

    /// Force the per-datagram fallback path (used for `--batch-size 1`,
    /// for A/B benchmarks, and by the equivalence property tests).
    pub fn per_datagram(batch_size: usize) -> BatchIo {
        BatchIo::PerDatagram(ArenaIo::build(batch_size.clamp(1, MAX_BATCH), false))
    }

    /// Resolve an [`IoBackend`] choice against the running kernel:
    /// `Uring`/`Auto` probe ring setup and degrade cleanly to mmsg (then
    /// per-datagram) when it fails — `ENOSYS` on old kernels, `EPERM`
    /// under seccomp. `batch_size == 1` always means per-datagram.
    pub fn with_backend(choice: IoBackend, batch_size: usize) -> BatchIo {
        #[cfg(any(target_os = "linux", target_os = "android"))]
        {
            BatchIo::with_backend_detected(choice, batch_size, &mut crate::uring::UringIo::new)
        }
        #[cfg(not(any(target_os = "linux", target_os = "android")))]
        {
            let _ = choice;
            BatchIo::new(batch_size)
        }
    }

    /// [`BatchIo::with_backend`] with ring construction injected, so the
    /// fallback tests can force `ENOSYS` deterministically on kernels
    /// where real io_uring would succeed.
    #[cfg(any(target_os = "linux", target_os = "android"))]
    pub fn with_backend_detected(
        choice: IoBackend,
        batch_size: usize,
        make_uring: &mut dyn FnMut(usize) -> std::io::Result<crate::uring::UringIo>,
    ) -> BatchIo {
        let batch_size = batch_size.clamp(1, MAX_BATCH);
        match choice {
            IoBackend::Syscall => BatchIo::per_datagram(batch_size),
            IoBackend::Mmsg => BatchIo::new(batch_size),
            IoBackend::Auto | IoBackend::Uring => {
                if batch_size > 1 {
                    if let Ok(ring) = make_uring(batch_size) {
                        return BatchIo::Uring(Box::new(ring));
                    }
                }
                BatchIo::new(batch_size)
            }
        }
    }

    /// The resolved strategy, as spelled in the `--real` summary:
    /// `"syscall"`, `"mmsg"`, or `"uring"`.
    pub fn backend_name(&self) -> &'static str {
        match self {
            BatchIo::PerDatagram(_) => "syscall",
            #[cfg(any(target_os = "linux", target_os = "android"))]
            BatchIo::Mmsg(_) => "mmsg",
            #[cfg(any(target_os = "linux", target_os = "android"))]
            BatchIo::Uring(_) => "uring",
        }
    }

    /// Datagrams per syscall this layer aims for (also the arena depth).
    pub fn batch_size(&self) -> usize {
        match self {
            BatchIo::PerDatagram(a) => a.batch_size,
            #[cfg(any(target_os = "linux", target_os = "android"))]
            BatchIo::Mmsg(a) => a.batch_size,
            #[cfg(any(target_os = "linux", target_os = "android"))]
            BatchIo::Uring(u) => u.batch_size(),
        }
    }

    /// Whether a batched path (mmsg or uring) is active.
    pub fn is_batched(&self) -> bool {
        !matches!(self, BatchIo::PerDatagram(_))
    }

    /// The fd the reactor's idle sleep should poll. For the syscall and
    /// mmsg backends that is the socket itself; for io_uring it is the
    /// *ring* fd — armed receives complete into the CQ ring without ever
    /// making the socket readable, so polling the socket would sleep
    /// through arrivals.
    #[cfg(unix)]
    pub fn poll_fd(&self, socket: &UdpSocket) -> std::os::fd::RawFd {
        use std::os::fd::AsRawFd;
        match self {
            #[cfg(any(target_os = "linux", target_os = "android"))]
            BatchIo::Uring(u) => u.ring_fd(),
            _ => socket.as_raw_fd(),
        }
    }

    /// Arm the receive side before a scan's event loop starts. Only the
    /// io_uring backend needs this (its standing `RECVMSG` pool must be
    /// submitted before the first sleep); elsewhere it is a no-op.
    pub fn prime_recv(&mut self, socket: &UdpSocket) {
        match self {
            #[cfg(any(target_os = "linux", target_os = "android"))]
            BatchIo::Uring(u) => u.prime(socket),
            _ => {
                let _ = socket;
            }
        }
    }

    /// Datagrams already reaped into backend memory but not yet returned
    /// by [`BatchIo::recv_into_arena`] — when true, drain before
    /// sleeping: no fd poll will wake for data the kernel already
    /// delivered.
    pub fn has_buffered_recv(&self) -> bool {
        match self {
            #[cfg(any(target_os = "linux", target_os = "android"))]
            BatchIo::Uring(u) => u.has_buffered_recv(),
            _ => false,
        }
    }

    /// Cumulative ring telemetry; `None` off the io_uring backend.
    pub fn ring_stats(&self) -> Option<RingStats> {
        match self {
            #[cfg(any(target_os = "linux", target_os = "android"))]
            BatchIo::Uring(u) => Some(u.stats()),
            _ => None,
        }
    }

    // -- send ---------------------------------------------------------------

    /// Flush `msgs` to the wire in batches, appending one
    /// [`BatchSendStatus`] per datagram (in order) to `statuses`.
    /// `on_syscall` observes the fill of each successful syscall — the
    /// datagrams-per-syscall histogram feed.
    pub fn send_batch(
        &mut self,
        socket: &UdpSocket,
        msgs: &[(&[u8], SocketAddr)],
        statuses: &mut Vec<BatchSendStatus>,
        on_syscall: &mut dyn FnMut(usize),
    ) -> SendBatchStats {
        match self {
            BatchIo::PerDatagram(a) => a.send_batch(socket, msgs, statuses, on_syscall),
            #[cfg(any(target_os = "linux", target_os = "android"))]
            BatchIo::Mmsg(a) => a.send_batch(socket, msgs, statuses, on_syscall),
            #[cfg(any(target_os = "linux", target_os = "android"))]
            BatchIo::Uring(u) => u.send_batch(socket, msgs, statuses, on_syscall),
        }
    }

    /// The settling engine behind [`BatchIo::send_batch`], with the
    /// vectored-send primitive injected. Chunks `msgs` by `batch_size`,
    /// retries short returns from the next unsent datagram, maps a
    /// `WouldBlock` to backpressure for the entire unsent suffix, and
    /// maps any other error to a single failed datagram (then keeps
    /// going). Public so the property tests can script syscall outcomes.
    pub fn send_batch_with(
        &mut self,
        send: &mut VectoredSend<'_>,
        msgs: &[(&[u8], SocketAddr)],
        statuses: &mut Vec<BatchSendStatus>,
        on_syscall: &mut dyn FnMut(usize),
    ) -> SendBatchStats {
        settle_send(self.batch_size(), send, msgs, statuses, on_syscall)
    }

    /// [`BatchIo::send_batch`] over [`SendSlot`]s into a shared encode
    /// arena — the reactor's zero-alloc flush path. Identical settling
    /// semantics; the iovecs (or SQEs) are built pointing straight into
    /// `arena`.
    pub fn send_slots(
        &mut self,
        socket: &UdpSocket,
        arena: &[u8],
        slots: &[SendSlot],
        statuses: &mut Vec<BatchSendStatus>,
        on_syscall: &mut dyn FnMut(usize),
    ) -> SendBatchStats {
        match self {
            BatchIo::PerDatagram(a) => a.send_slots(socket, arena, slots, statuses, on_syscall),
            #[cfg(any(target_os = "linux", target_os = "android"))]
            BatchIo::Mmsg(a) => a.send_slots(socket, arena, slots, statuses, on_syscall),
            #[cfg(any(target_os = "linux", target_os = "android"))]
            BatchIo::Uring(u) => u.send_slots(socket, arena, slots, statuses, on_syscall),
        }
    }

    // -- receive ------------------------------------------------------------

    /// Drain up to `batch_size` datagrams from `socket` into the arena.
    /// Never blocks; see [`RecvBatch`] for how short batches and errors
    /// are told apart.
    pub fn recv_into_arena(&mut self, socket: &UdpSocket) -> RecvBatch {
        match self {
            BatchIo::PerDatagram(a) => a.recv_into_arena(socket),
            #[cfg(any(target_os = "linux", target_os = "android"))]
            BatchIo::Mmsg(a) => a.recv_into_arena(socket),
            #[cfg(any(target_os = "linux", target_os = "android"))]
            BatchIo::Uring(u) => u.recv_into_arena(socket),
        }
    }

    /// Bytes of the `i`-th datagram in the arena (valid after a
    /// [`BatchIo::recv_into_arena`] returning `count > i`).
    pub fn arena_bytes(&self, i: usize) -> &[u8] {
        match self {
            BatchIo::PerDatagram(a) => a.arena_bytes(i),
            #[cfg(any(target_os = "linux", target_os = "android"))]
            BatchIo::Mmsg(a) => a.arena_bytes(i),
            #[cfg(any(target_os = "linux", target_os = "android"))]
            BatchIo::Uring(u) => u.arena_bytes(i),
        }
    }

    /// Peer address of the `i`-th datagram in the arena.
    pub fn arena_peer(&self, i: usize) -> SocketAddr {
        match self {
            BatchIo::PerDatagram(a) => a.arena_peer(i),
            #[cfg(any(target_os = "linux", target_os = "android"))]
            BatchIo::Mmsg(a) => a.arena_peer(i),
            #[cfg(any(target_os = "linux", target_os = "android"))]
            BatchIo::Uring(u) => u.arena_peer(i),
        }
    }
}

/// The settling engine behind [`BatchIo::send_batch`] (borrowed-slice
/// datagrams).
fn settle_send(
    batch_size: usize,
    send: &mut VectoredSend<'_>,
    msgs: &[(&[u8], SocketAddr)],
    statuses: &mut Vec<BatchSendStatus>,
    on_syscall: &mut dyn FnMut(usize),
) -> SendBatchStats {
    settle_engine(batch_size, send, msgs, statuses, on_syscall)
}

/// The settling engine behind [`BatchIo::send_slots`] (arena slots).
fn settle_send_slots(
    batch_size: usize,
    send: &mut dyn FnMut(&[SendSlot]) -> std::io::Result<usize>,
    slots: &[SendSlot],
    statuses: &mut Vec<BatchSendStatus>,
    on_syscall: &mut dyn FnMut(usize),
) -> SendBatchStats {
    settle_engine(batch_size, send, slots, statuses, on_syscall)
}

/// The settling engine shared by every send path: chunk `msgs` by
/// `batch_size`, retry short returns from the next unsent datagram, map
/// `WouldBlock` to backpressure for the entire unsent suffix, and map
/// any other error to a single failed datagram (then keep going). An
/// `Ok(0)` return violates the [`VectoredSend`] contract and is settled
/// as one failed datagram rather than silently marked sent.
fn settle_engine<T>(
    batch_size: usize,
    send: &mut dyn FnMut(&[T]) -> std::io::Result<usize>,
    msgs: &[T],
    statuses: &mut Vec<BatchSendStatus>,
    on_syscall: &mut dyn FnMut(usize),
) -> SendBatchStats {
    let mut stats = SendBatchStats::default();
    let mut pos = 0;
    while pos < msgs.len() {
        let end = (pos + batch_size).min(msgs.len());
        match send(&msgs[pos..end]) {
            Ok(0) => {
                debug_assert!(
                    false,
                    "vectored send returned Ok(0), violating its contract"
                );
                stats.syscalls += 1;
                statuses.push(BatchSendStatus::Failed);
                pos += 1;
            }
            Ok(n) => {
                let n = n.min(end - pos);
                stats.syscalls += 1;
                stats.sent += n as u64;
                on_syscall(n);
                statuses.extend(std::iter::repeat_n(BatchSendStatus::Sent, n));
                pos += n;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                stats.syscalls += 1;
                statuses.extend(std::iter::repeat_n(
                    BatchSendStatus::Backpressure,
                    msgs.len() - pos,
                ));
                return stats;
            }
            Err(_) => {
                stats.syscalls += 1;
                statuses.push(BatchSendStatus::Failed);
                pos += 1;
            }
        }
    }
    stats
}

/// A ring-submission primitive as [`settle_ring_send`] consumes it: takes
/// one chunk, pushes `(chunk_index, cqe_res)` completion pairs, reports
/// how far submission got.
pub type RingSubmitFn<'a, T> =
    dyn FnMut(&[T], &mut Vec<(u32, i32)>) -> std::io::Result<RingSubmit> + 'a;

/// The settling engine for the io_uring send path, with ring submission
/// injected so tests can script CQE outcomes (sq-full mid-batch, per-CQE
/// errors) deterministically.
///
/// Contract for `ring(chunk, completions)`: submit a non-empty prefix of
/// `chunk` and settle it, pushing one `(chunk_index, cqe_res)` pair per
/// accepted datagram (any order — this engine sorts), then report how
/// far it got via [`RingSubmit`]. `Err(WouldBlock)` means nothing at all
/// could be submitted.
///
/// Settling semantics, per the reactor's rollback contract:
/// * CQE `res >= 0` → [`BatchSendStatus::Sent`];
/// * CQE `-EAGAIN`/`-ENOBUFS` → [`BatchSendStatus::Backpressure`] for
///   that datagram only (`MSG_DONTWAIT` sends settle independently);
/// * any other negative CQE → [`BatchSendStatus::Failed`] for that
///   datagram only — a hard error never poisons its neighbours;
/// * `sq_full` → the entire unsubmitted suffix is marked backpressure
///   and returned whole, in order, for requeueing.
pub fn settle_ring_send<T>(
    batch_size: usize,
    ring: &mut RingSubmitFn<'_, T>,
    msgs: &[T],
    statuses: &mut Vec<BatchSendStatus>,
    on_syscall: &mut dyn FnMut(usize),
    completions: &mut Vec<(u32, i32)>,
) -> SendBatchStats {
    // Raw Linux errnos: scripted CQEs carry the same negated values the
    // kernel writes, so the classification cannot drift between tests
    // and the live ring.
    const ERR_AGAIN: i32 = 11;
    const ERR_NOBUFS: i32 = 105;
    let mut stats = SendBatchStats::default();
    let mut pos = 0;
    while pos < msgs.len() {
        let end = (pos + batch_size).min(msgs.len());
        completions.clear();
        match ring(&msgs[pos..end], completions) {
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                stats.syscalls += 1;
                statuses.extend(std::iter::repeat_n(
                    BatchSendStatus::Backpressure,
                    msgs.len() - pos,
                ));
                return stats;
            }
            Err(_) => {
                stats.syscalls += 1;
                statuses.push(BatchSendStatus::Failed);
                pos += 1;
            }
            Ok(RingSubmit { accepted, sq_full }) => {
                stats.syscalls += 1;
                if accepted == 0 {
                    debug_assert!(false, "ring submit accepted nothing without would-block");
                    statuses.push(BatchSendStatus::Failed);
                    pos += 1;
                    continue;
                }
                let accepted = accepted.min(end - pos);
                completions.sort_unstable_by_key(|&(i, _)| i);
                let mut sent_here = 0usize;
                for k in 0..accepted {
                    // Look the CQE up by chunk index, not by position: one
                    // missing completion must not shift every later one. A
                    // missing completion is a contract violation; settle it
                    // as failed rather than sent.
                    let res = match completions.binary_search_by_key(&(k as u32), |&(i, _)| i) {
                        Ok(slot) => completions[slot].1,
                        Err(_) => i32::MIN,
                    };
                    if res >= 0 {
                        statuses.push(BatchSendStatus::Sent);
                        sent_here += 1;
                    } else if res == -ERR_AGAIN || res == -ERR_NOBUFS {
                        statuses.push(BatchSendStatus::Backpressure);
                    } else {
                        statuses.push(BatchSendStatus::Failed);
                    }
                }
                stats.sent += sent_here as u64;
                if sent_here > 0 {
                    on_syscall(sent_here);
                }
                pos += accepted;
                if sq_full {
                    statuses.extend(std::iter::repeat_n(
                        BatchSendStatus::Backpressure,
                        msgs.len() - pos,
                    ));
                    return stats;
                }
            }
        }
    }
    stats
}

/// Pin the calling thread to one CPU core (`sched_setaffinity(2)` with a
/// single-bit mask). Best-effort plumbing behind `--pin-cores`: callers
/// treat an error as "run unpinned", never fatal.
pub fn pin_to_core(core: usize) -> std::io::Result<()> {
    #[cfg(any(target_os = "linux", target_os = "android"))]
    {
        let mut mask = [0u64; 16]; // up to 1024 cores
        let word = core / 64;
        if word >= mask.len() {
            return Err(std::io::Error::from(std::io::ErrorKind::InvalidInput));
        }
        mask[word] = 1u64 << (core % 64);
        // SAFETY: pid 0 targets the calling thread; the mask pointer and
        // size describe a live, correctly-sized buffer.
        let r = unsafe { libc::sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) };
        if r != 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(())
    }
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    {
        let _ = core;
        Err(std::io::Error::from(std::io::ErrorKind::Unsupported))
    }
}

/// [`send_many_once`] over arena slots: one `sendmmsg` attempt on the
/// longest IPv4 prefix of `slots`, iovecs pointed straight into `arena`.
#[cfg(any(target_os = "linux", target_os = "android"))]
fn send_many_once_slots(
    socket: &UdpSocket,
    scratch: &mut zdns_netsim::MmsgScratch,
    arena: &[u8],
    slots: &[SendSlot],
) -> std::io::Result<usize> {
    use std::os::fd::AsRawFd;
    let run = slots
        .iter()
        .take_while(|(_, _, dest)| dest.is_ipv4())
        .count()
        .min(MAX_BATCH);
    if run == 0 {
        let (start, len, dest) = slots[0];
        let bytes = &arena[start as usize..(start + len) as usize];
        return socket.send_to(bytes, dest).map(|_| 1);
    }
    let hdrs = scratch.prepare_send_slots(arena, &slots[..run]);
    // SAFETY: every mmsghdr points at live storage (the arena and the
    // reusable scratch arrays) that outlives the call; the arena is only
    // read; vlen matches the slice length.
    let r = unsafe {
        libc::sendmmsg(
            socket.as_raw_fd(),
            hdrs.as_mut_ptr(),
            hdrs.len() as libc::c_uint,
            libc::MSG_DONTWAIT,
        )
    };
    if r < 0 {
        Err(std::io::Error::last_os_error())
    } else {
        Ok(r as usize)
    }
}

/// One `sendmmsg` attempt on the longest IPv4 prefix of `msgs` (a
/// non-IPv4 head is sent singly through `std`). Returns datagrams sent.
#[cfg(any(target_os = "linux", target_os = "android"))]
fn send_many_once(
    socket: &UdpSocket,
    scratch: &mut zdns_netsim::MmsgScratch,
    msgs: &[(&[u8], SocketAddr)],
) -> std::io::Result<usize> {
    use std::os::fd::AsRawFd;
    let run = msgs
        .iter()
        .take_while(|(_, dest)| dest.is_ipv4())
        .count()
        .min(MAX_BATCH);
    if run == 0 {
        let (bytes, dest) = msgs[0];
        return socket.send_to(bytes, dest).map(|_| 1);
    }
    let hdrs = scratch.prepare_send(&msgs[..run]);
    // SAFETY: every mmsghdr points at live storage (payload slices and
    // the reusable scratch arrays) that outlives the call; the payload
    // buffers are only read; vlen matches the slice length.
    let r = unsafe {
        libc::sendmmsg(
            socket.as_raw_fd(),
            hdrs.as_mut_ptr(),
            hdrs.len() as libc::c_uint,
            libc::MSG_DONTWAIT,
        )
    };
    if r < 0 {
        Err(std::io::Error::last_os_error())
    } else {
        Ok(r as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_is_bound_once_and_reused() {
        let mut t = UdpTransport::bind(Ipv4Addr::LOCALHOST).unwrap();
        let port_before = t.local_addr().unwrap().port();
        // Exchanges against a dead port time out without rebinding.
        let query = Message::query(
            1,
            zdns_wire::Question::new("x.test".parse().unwrap(), zdns_wire::RecordType::A),
        );
        let dead: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let err = t
            .exchange(&query, dead, Protocol::Udp, Duration::from_millis(50))
            .unwrap_err();
        assert!(matches!(err, TransportError::Timeout));
        assert_eq!(t.local_addr().unwrap().port(), port_before);
    }

    #[cfg(unix)]
    #[test]
    fn readiness_retries_eintr_with_remaining_budget() {
        use super::readiness::{wait_with, Wait};
        // Two EINTRs, then ready: the wait must survive the signals and
        // still report readiness (the old code reported "not ready" on
        // the first EINTR and burned the whole budget).
        let mut calls = 0;
        let mut budgets = Vec::new();
        let got = wait_with(50, &mut |ms| {
            calls += 1;
            budgets.push(ms);
            if calls < 3 {
                Err(std::io::Error::from(std::io::ErrorKind::Interrupted))
            } else {
                Ok(true)
            }
        });
        assert_eq!(got, Wait::Ready);
        assert_eq!(calls, 3);
        // Retries never poll with more than the original budget.
        assert!(budgets.iter().all(|&ms| ms <= 50), "{budgets:?}");
    }

    #[cfg(unix)]
    #[test]
    fn readiness_eintr_past_deadline_times_out() {
        use super::readiness::{wait_with, Wait};
        // A zero-budget wait interrupted once has no time left to retry.
        let mut calls = 0;
        let got = wait_with(0, &mut |_| {
            calls += 1;
            Err(std::io::Error::from(std::io::ErrorKind::Interrupted))
        });
        assert_eq!(got, Wait::TimedOut);
        assert_eq!(calls, 1);
    }

    #[cfg(unix)]
    #[test]
    fn readiness_poll_error_is_not_a_timeout() {
        use super::readiness::{wait_with, Wait};
        let got = wait_with(50, &mut |_| {
            Err(std::io::Error::from_raw_os_error(9)) // EBADF
        });
        assert_eq!(got, Wait::Error);
    }

    #[test]
    fn pin_to_core_zero_succeeds_on_linux() {
        let supported = cfg!(any(target_os = "linux", target_os = "android"));
        match pin_to_core(0) {
            Ok(()) => assert!(supported, "pin succeeded on an unsupported platform"),
            // Restricted sandboxes may refuse; only "unsupported" is
            // asserted to line up with the platform.
            Err(e) if e.kind() == std::io::ErrorKind::Unsupported => {
                assert!(!supported, "linux must never report Unsupported")
            }
            Err(_) => {}
        }
    }

    #[test]
    fn io_backend_parses_all_flag_values() {
        assert_eq!(IoBackend::parse("auto"), Some(IoBackend::Auto));
        assert_eq!(IoBackend::parse("syscall"), Some(IoBackend::Syscall));
        assert_eq!(IoBackend::parse("mmsg"), Some(IoBackend::Mmsg));
        assert_eq!(IoBackend::parse("uring"), Some(IoBackend::Uring));
        assert_eq!(IoBackend::parse("epoll"), None);
        for b in [
            IoBackend::Auto,
            IoBackend::Syscall,
            IoBackend::Mmsg,
            IoBackend::Uring,
        ] {
            assert_eq!(IoBackend::parse(b.as_str()), Some(b));
        }
    }

    #[test]
    fn tcp_connect_refused_is_io_error() {
        let mut t = UdpTransport::bind(Ipv4Addr::LOCALHOST).unwrap();
        let query = Message::query(
            2,
            zdns_wire::Question::new("x.test".parse().unwrap(), zdns_wire::RecordType::A),
        );
        // Port 1 on localhost: almost certainly closed → refused / error.
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let err = t
            .exchange(&query, dead, Protocol::Tcp, Duration::from_millis(200))
            .unwrap_err();
        assert!(matches!(
            err,
            TransportError::Io(_) | TransportError::Timeout
        ));
    }
}
