//! Blocking transports over real OS sockets.
//!
//! `UdpTransport` implements the paper's socket-reuse optimization: one
//! long-lived unconnected UDP socket per lookup routine, bound once to a
//! static source port and reused for every destination, with TCP
//! connections created only on demand (truncation fallback).

use std::io::{Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpStream, UdpSocket};
use std::time::{Duration, Instant};

use zdns_netsim::Protocol;
use zdns_wire::{Message, WireError};

/// Transport-level failures.
#[derive(Debug)]
pub enum TransportError {
    /// No (matching) response before the deadline.
    Timeout,
    /// Socket-level error.
    Io(std::io::Error),
    /// A response arrived but would not decode.
    Decode(WireError),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Timeout => f.write_str("timed out"),
            TransportError::Io(e) => write!(f, "io error: {e}"),
            TransportError::Decode(e) => write!(f, "decode error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A blocking request/response exchange.
pub trait Transport: Send {
    /// Send `query` to `to` and wait for the matching response.
    fn exchange(
        &mut self,
        query: &Message,
        to: SocketAddr,
        protocol: Protocol,
        timeout: Duration,
    ) -> Result<Message, TransportError>;
}

/// One long-lived UDP socket, reused across all lookups on this routine.
pub struct UdpTransport {
    socket: UdpSocket,
    buf: Box<[u8; 65_535]>,
}

impl UdpTransport {
    /// Bind to an ephemeral port on the given source address.
    pub fn bind(source: Ipv4Addr) -> std::io::Result<UdpTransport> {
        let socket = UdpSocket::bind((source, 0))?;
        Ok(UdpTransport {
            socket,
            buf: Box::new([0u8; 65_535]),
        })
    }

    /// The bound local address (the reused source port).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    fn exchange_udp(
        &mut self,
        query: &Message,
        to: SocketAddr,
        timeout: Duration,
    ) -> Result<Message, TransportError> {
        let bytes = query.encode().map_err(TransportError::Decode)?;
        self.socket
            .send_to(&bytes, to)
            .map_err(TransportError::Io)?;
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(TransportError::Timeout);
            }
            self.socket
                .set_read_timeout(Some(remaining))
                .map_err(TransportError::Io)?;
            match self.socket.recv_from(&mut self.buf[..]) {
                Ok((len, peer)) => {
                    // The socket is unconnected (that is the point of the
                    // reuse trick), so unrelated datagrams — late responses
                    // from earlier lookups — must be filtered here.
                    if peer != to {
                        continue;
                    }
                    match Message::decode(&self.buf[..len]) {
                        Ok(msg) if msg.id == query.id && msg.flags.response => return Ok(msg),
                        Ok(_) => continue, // stale transaction or echoed query
                        Err(e) => return Err(TransportError::Decode(e)),
                    }
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(TransportError::Timeout);
                }
                Err(e) => return Err(TransportError::Io(e)),
            }
        }
    }

    fn exchange_tcp(
        &mut self,
        query: &Message,
        to: SocketAddr,
        timeout: Duration,
    ) -> Result<Message, TransportError> {
        blocking_tcp_exchange(query, to, timeout)
    }
}

/// One blocking TCP request/response exchange: connect, length-prefixed
/// write, length-prefixed read. Used for truncation fallback by both the
/// blocking transport and the reactor's TCP side-pool.
pub fn blocking_tcp_exchange(
    query: &Message,
    to: SocketAddr,
    timeout: Duration,
) -> Result<Message, TransportError> {
    let bytes = query.encode().map_err(TransportError::Decode)?;
    let mut stream = TcpStream::connect_timeout(&to, timeout).map_err(TransportError::Io)?;
    stream
        .set_read_timeout(Some(timeout))
        .map_err(TransportError::Io)?;
    stream
        .set_write_timeout(Some(timeout))
        .map_err(TransportError::Io)?;
    stream
        .write_all(&(bytes.len() as u16).to_be_bytes())
        .map_err(TransportError::Io)?;
    stream.write_all(&bytes).map_err(TransportError::Io)?;
    let mut len_buf = [0u8; 2];
    stream.read_exact(&mut len_buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::WouldBlock || e.kind() == std::io::ErrorKind::TimedOut {
            TransportError::Timeout
        } else {
            TransportError::Io(e)
        }
    })?;
    let len = u16::from_be_bytes(len_buf) as usize;
    let mut msg = vec![0u8; len];
    stream.read_exact(&mut msg).map_err(TransportError::Io)?;
    Message::decode(&msg).map_err(TransportError::Decode)
}

impl Transport for UdpTransport {
    fn exchange(
        &mut self,
        query: &Message,
        to: SocketAddr,
        protocol: Protocol,
        timeout: Duration,
    ) -> Result<Message, TransportError> {
        match protocol {
            Protocol::Udp => self.exchange_udp(query, to, timeout),
            Protocol::Tcp => self.exchange_tcp(query, to, timeout),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_is_bound_once_and_reused() {
        let mut t = UdpTransport::bind(Ipv4Addr::LOCALHOST).unwrap();
        let port_before = t.local_addr().unwrap().port();
        // Exchanges against a dead port time out without rebinding.
        let query = Message::query(
            1,
            zdns_wire::Question::new("x.test".parse().unwrap(), zdns_wire::RecordType::A),
        );
        let dead: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let err = t
            .exchange(&query, dead, Protocol::Udp, Duration::from_millis(50))
            .unwrap_err();
        assert!(matches!(err, TransportError::Timeout));
        assert_eq!(t.local_addr().unwrap().port(), port_before);
    }

    #[test]
    fn tcp_connect_refused_is_io_error() {
        let mut t = UdpTransport::bind(Ipv4Addr::LOCALHOST).unwrap();
        let query = Message::query(
            2,
            zdns_wire::Question::new("x.test".parse().unwrap(), zdns_wire::RecordType::A),
        );
        // Port 1 on localhost: almost certainly closed → refused / error.
        let dead: SocketAddr = "127.0.0.1:1".parse().unwrap();
        let err = t
            .exchange(&query, dead, Protocol::Tcp, Duration::from_millis(200))
            .unwrap_err();
        assert!(matches!(
            err,
            TransportError::Io(_) | TransportError::Timeout
        ));
    }
}
