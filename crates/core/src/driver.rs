//! The driver abstraction: one interface over the two ways ZDNS pushes
//! lookup machines through real sockets.
//!
//! * [`BlockingDriver`] — one machine at a time over a blocking
//!   [`Transport`]; what [`crate::Resolver::lookup`] uses for single
//!   lookups, and the worker-per-lookup fallback for scans.
//! * [`crate::reactor::Reactor`] — an event loop that multiplexes
//!   hundreds-to-thousands of in-flight machines over one non-blocking UDP
//!   socket (the paper's architecture: thousands of lookup routines,
//!   long-lived sockets).
//!
//! Both implement [`Driver`], so scan orchestration in `zdns-framework`
//! can pick either without caring which.

use zdns_netsim::{JobOutcome, SimClient};

use crate::pacer::Pacer;
use crate::resolver::{drive_blocking_paced, AddrMap};
use crate::transport::Transport;

/// Power-of-two histogram of datagrams per syscall, the observability
/// feed for the reactor's batched I/O layer: bucket `i` counts syscalls
/// that moved `2^i ..= 2^(i+1)-1` datagrams (the last bucket is
/// open-ended at ≥ 128).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchHistogram {
    buckets: [u64; 8],
}

impl BatchHistogram {
    /// Bucket labels, index-aligned with [`BatchHistogram::buckets`].
    pub const LABELS: [&'static str; 8] = [
        "1", "2-3", "4-7", "8-15", "16-31", "32-63", "64-127", "128+",
    ];

    /// Record one syscall that moved `n` datagrams.
    pub fn record(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        let mut idx = 0;
        let mut bound = 2;
        while idx < 7 && n >= bound {
            idx += 1;
            bound *= 2;
        }
        self.buckets[idx] += 1;
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &BatchHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }

    /// Syscalls recorded.
    pub fn total(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The raw bucket counts.
    pub fn buckets(&self) -> &[u64; 8] {
        &self.buckets
    }

    /// Compact `label:count` rendering of the non-empty buckets.
    pub fn summary(&self) -> String {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| format!("{}:{}", Self::LABELS[i], n))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// What a driver's machine source returns on each pull.
pub enum Admission {
    /// A machine to drive.
    Admit(Box<dyn SimClient>),
    /// Nothing available right now; ask again shortly (an upstream input
    /// channel is momentarily empty but not closed).
    Later,
    /// No more machines will ever arrive.
    Exhausted,
}

/// Counters every driver reports after a scan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DriverReport {
    /// Machines driven to completion.
    pub completed: u64,
    /// Machines that finished with a successful outcome.
    pub successes: u64,
    /// Datagrams received and routed to a live machine.
    pub datagrams_delivered: u64,
    /// Datagrams that matched no in-flight query (late, stale, or spoofed).
    pub stale_datagrams: u64,
    /// TCP side-pool completions whose owning machine had already retired
    /// — completions, not datagrams, so they get their own counter.
    pub stale_tcp_completions: u64,
    /// Datagrams that would not decode.
    pub decode_errors: u64,
    /// Transient socket-level receive errors (e.g. ICMP unreachable
    /// surfaced as ECONNREFUSED) — distinct from undecodable datagrams.
    pub socket_errors: u64,
    /// Per-query timeouts fired.
    pub timeouts_fired: u64,
    /// Exchanges routed to the blocking TCP side-pool (truncation
    /// fallback).
    pub tcp_fallbacks: u64,
    /// Highest number of concurrently in-flight machines observed.
    pub peak_in_flight: usize,
    /// UDP sends held back by the pacer (each deferral counts once, at
    /// admission).
    pub queries_deferred: u64,
    /// Deepest the deferred-send queue ever got.
    pub max_deferred_depth: usize,
    /// Deferrals whose binding constraint was per-destination (host
    /// bucket or backoff penalty) rather than the global budget.
    pub per_host_throttles: u64,
    /// Sends requeued after send-buffer backpressure (WouldBlock) —
    /// counted as backpressure, not as lookup errors.
    pub backpressure_requeues: u64,
    /// Send syscalls issued by the batched I/O layer (`sendmmsg` calls,
    /// or individual `send_to` calls on the fallback path).
    pub send_syscalls: u64,
    /// Datagrams put on the wire. `datagrams_sent / send_syscalls` is the
    /// realized send-side batching factor.
    pub datagrams_sent: u64,
    /// Receive syscalls issued (`recvmmsg` calls, or `recv_from` calls —
    /// including terminal would-block probes — on the fallback path).
    pub recv_syscalls: u64,
    /// Datagrams pulled off the socket (delivered + stale + undecodable).
    pub datagrams_received: u64,
    /// Receive batches that came back shorter than the arena — the queue
    /// emptied mid-batch. A normal sign of keeping up, tracked separately
    /// so a short `recvmmsg` return is never mistaken for a socket error.
    pub recv_partial_batches: u64,
    /// Datagrams-per-syscall distribution on the send side.
    pub send_batch_fill: BatchHistogram,
    /// Datagrams-per-drain-batch distribution on the receive side.
    pub recv_batch_fill: BatchHistogram,
    /// Admission credits leased from the scan-wide pool (shared-queue
    /// pipeline only; zero under a static split).
    pub credit_leases: u64,
    /// Credits returned to the pool (retired lookups plus idle returns).
    pub credit_returns: u64,
    /// Credits returned *early* because every outstanding send of a
    /// lookup was parked behind a backoff penalty — the stranded-window
    /// capacity siblings absorb.
    pub idle_credit_returns: u64,
    /// Matured deferred sends that had to wait for an admission credit
    /// before going back on the wire (the pool was momentarily empty).
    pub credit_stalls: u64,
    /// Admissions beyond this driver's static fair share of the window —
    /// inputs effectively stolen from a sibling that was not using its
    /// slice.
    pub inputs_stolen: u64,
    /// Global-budget CAS-loop retries in the concurrent pacer — lost
    /// races on the atomic token bucket. Scan-wide (read once off the
    /// shared pacer when the scan aggregates, not per-worker).
    pub pacer_cas_retries: u64,
    /// Contended stripe-lock acquisitions in the concurrent pacer's
    /// per-destination table. Scan-wide, like `pacer_cas_retries`.
    pub pacer_stripe_waits: u64,
    /// Token blocks leased from the concurrent pacer's global budget —
    /// `datagrams_sent / token_blocks_leased` approximates the CAS
    /// amortization factor. Scan-wide, like `pacer_cas_retries`.
    pub token_blocks_leased: u64,
    /// The resolved I/O backend name (`"syscall"`, `"mmsg"`, `"uring"`;
    /// empty for drivers without a batch layer).
    pub io_backend: &'static str,
    /// io_uring SQEs the kernel consumed (zero off the uring backend).
    pub ring_sqes: u64,
    /// `io_uring_enter` syscalls issued. `ring_sqes / ring_enters` is the
    /// realized ring batching factor, the uring analogue of
    /// `datagrams_sent / send_syscalls`.
    pub ring_enters: u64,
    /// Non-empty CQ reaps (each drains every pending completion).
    pub cqe_batches: u64,
    /// Flushes stalled by a full SQ ring (the unsubmitted suffix was
    /// requeued in order).
    pub sq_full_stalls: u64,
}

impl DriverReport {
    /// Fold another driver's counters into this one (sums, except
    /// `peak_in_flight` which takes the max) — how a scan aggregates its
    /// per-worker reports.
    pub fn merge(&mut self, other: &DriverReport) {
        self.completed += other.completed;
        self.successes += other.successes;
        self.datagrams_delivered += other.datagrams_delivered;
        self.stale_datagrams += other.stale_datagrams;
        self.stale_tcp_completions += other.stale_tcp_completions;
        self.decode_errors += other.decode_errors;
        self.socket_errors += other.socket_errors;
        self.timeouts_fired += other.timeouts_fired;
        self.tcp_fallbacks += other.tcp_fallbacks;
        self.peak_in_flight = self.peak_in_flight.max(other.peak_in_flight);
        self.queries_deferred += other.queries_deferred;
        self.max_deferred_depth = self.max_deferred_depth.max(other.max_deferred_depth);
        self.per_host_throttles += other.per_host_throttles;
        self.backpressure_requeues += other.backpressure_requeues;
        self.send_syscalls += other.send_syscalls;
        self.datagrams_sent += other.datagrams_sent;
        self.recv_syscalls += other.recv_syscalls;
        self.datagrams_received += other.datagrams_received;
        self.recv_partial_batches += other.recv_partial_batches;
        self.send_batch_fill.merge(&other.send_batch_fill);
        self.recv_batch_fill.merge(&other.recv_batch_fill);
        self.credit_leases += other.credit_leases;
        self.credit_returns += other.credit_returns;
        self.idle_credit_returns += other.idle_credit_returns;
        self.credit_stalls += other.credit_stalls;
        self.inputs_stolen += other.inputs_stolen;
        self.pacer_cas_retries += other.pacer_cas_retries;
        self.pacer_stripe_waits += other.pacer_stripe_waits;
        self.token_blocks_leased += other.token_blocks_leased;
        if self.io_backend.is_empty() {
            self.io_backend = other.io_backend;
        }
        self.ring_sqes += other.ring_sqes;
        self.ring_enters += other.ring_enters;
        self.cqe_batches += other.cqe_batches;
        self.sq_full_stalls += other.sq_full_stalls;
    }
}

/// Drives lookup machines over real I/O until the source is exhausted.
pub trait Driver {
    /// Pull machines from `source` (respecting the driver's own concurrency
    /// model) and invoke `on_done` with each machine's outcome — `None`
    /// when a machine wedged (running with nothing in flight).
    fn run_scan(
        &mut self,
        source: &mut dyn FnMut() -> Admission,
        on_done: &mut dyn FnMut(Option<JobOutcome>),
    ) -> DriverReport;
}

/// The one-lookup-at-a-time driver: each admitted machine is driven to
/// completion over the blocking transport before the next is pulled.
pub struct BlockingDriver<T: Transport> {
    transport: T,
    addr_map: std::sync::Arc<AddrMap>,
    pacer: Option<Pacer>,
}

impl<T: Transport> BlockingDriver<T> {
    /// Build from a transport and address mapping.
    pub fn new(transport: T, addr_map: std::sync::Arc<AddrMap>) -> BlockingDriver<T> {
        BlockingDriver {
            transport,
            addr_map,
            pacer: None,
        }
    }

    /// Gate every send through `pacer` (sleeping until release), so the
    /// blocking driver honours the same budgets as the reactor.
    pub fn with_pacer(mut self, pacer: Pacer) -> BlockingDriver<T> {
        self.pacer = Some(pacer);
        self
    }
}

impl<T: Transport> Driver for BlockingDriver<T> {
    fn run_scan(
        &mut self,
        source: &mut dyn FnMut() -> Admission,
        on_done: &mut dyn FnMut(Option<JobOutcome>),
    ) -> DriverReport {
        let mut report = DriverReport::default();
        loop {
            match source() {
                Admission::Admit(mut machine) => {
                    report.peak_in_flight = report.peak_in_flight.max(1);
                    let outcome = drive_blocking_paced(
                        machine.as_mut(),
                        &mut self.transport,
                        &*self.addr_map,
                        self.pacer.as_mut(),
                        Some(&mut report),
                    );
                    report.completed += 1;
                    if matches!(&outcome, Some(o) if o.success) {
                        report.successes += 1;
                    }
                    on_done(outcome);
                }
                Admission::Later => {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                Admission::Exhausted => return report,
            }
        }
    }
}
