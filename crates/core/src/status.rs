//! Lookup status codes — the `status` field of every ZDNS output line.

use serde::{Deserialize, Serialize};
use zdns_wire::Rcode;

/// Outcome classification for one lookup, matching ZDNS's status strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Status {
    /// Got an answer (or an authoritative empty answer).
    NoError,
    /// Authoritative denial — still a *successful* measurement.
    NxDomain,
    /// Upstream resolution failed.
    ServFail,
    /// Server refused (policy / lame delegation).
    Refused,
    /// All retries timed out.
    Timeout,
    /// The iterative walk exceeded its query or time budget.
    IterativeTimeout,
    /// Response was truncated and TCP fallback was disabled or failed.
    Truncated,
    /// Response arrived but could not be parsed.
    ParseError,
    /// The input name was not a valid DNS name.
    IllegalInput,
    /// Some other error.
    Error,
}

impl Status {
    /// Every variant, in declaration order — index-aligned with
    /// [`Status::index`], so fixed per-status tables (e.g. lock-free
    /// counters) can be sized and iterated without a map.
    pub const ALL: [Status; 10] = [
        Status::NoError,
        Status::NxDomain,
        Status::ServFail,
        Status::Refused,
        Status::Timeout,
        Status::IterativeTimeout,
        Status::Truncated,
        Status::ParseError,
        Status::IllegalInput,
        Status::Error,
    ];

    /// Position of this variant in [`Status::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// The paper's success criterion (§4): NOERROR or NXDOMAIN.
    pub fn is_success(self) -> bool {
        matches!(self, Status::NoError | Status::NxDomain)
    }

    /// The ZDNS status string.
    pub fn as_str(self) -> &'static str {
        match self {
            Status::NoError => "NOERROR",
            Status::NxDomain => "NXDOMAIN",
            Status::ServFail => "SERVFAIL",
            Status::Refused => "REFUSED",
            Status::Timeout => "TIMEOUT",
            Status::IterativeTimeout => "ITERATIVE_TIMEOUT",
            Status::Truncated => "TRUNCATED",
            Status::ParseError => "PARSE_ERROR",
            Status::IllegalInput => "ILLEGAL_INPUT",
            Status::Error => "ERROR",
        }
    }

    /// Map a final response code to a status.
    pub fn from_rcode(rcode: Rcode) -> Status {
        match rcode {
            Rcode::NoError => Status::NoError,
            Rcode::NxDomain => Status::NxDomain,
            Rcode::ServFail => Status::ServFail,
            Rcode::Refused => Status::Refused,
            _ => Status::Error,
        }
    }
}

impl std::fmt::Display for Status {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_criterion_matches_paper() {
        assert!(Status::NoError.is_success());
        assert!(Status::NxDomain.is_success());
        assert!(!Status::ServFail.is_success());
        assert!(!Status::Timeout.is_success());
        assert!(!Status::IterativeTimeout.is_success());
        assert!(!Status::Refused.is_success());
    }

    #[test]
    fn rcode_mapping() {
        assert_eq!(Status::from_rcode(Rcode::NoError), Status::NoError);
        assert_eq!(Status::from_rcode(Rcode::NxDomain), Status::NxDomain);
        assert_eq!(Status::from_rcode(Rcode::ServFail), Status::ServFail);
        assert_eq!(Status::from_rcode(Rcode::Refused), Status::Refused);
        assert_eq!(Status::from_rcode(Rcode::NotImp), Status::Error);
    }

    #[test]
    fn strings_match_zdns() {
        assert_eq!(Status::NoError.as_str(), "NOERROR");
        assert_eq!(Status::IterativeTimeout.as_str(), "ITERATIVE_TIMEOUT");
    }

    #[test]
    fn all_is_index_aligned() {
        for (i, status) in Status::ALL.iter().enumerate() {
            assert_eq!(status.index(), i);
        }
    }
}
