//! Lookup state machines.
//!
//! Each lookup is a state machine fed with responses/timeouts — the shape
//! that lets one implementation run under both the discrete-event simulator
//! (tens of thousands of concurrent routines) and a blocking driver over
//! real sockets.
//!
//! * [`IterativeMachine`] — ZDNS's own recursion: start at the deepest
//!   cached zone cut (or the roots), follow referrals, chase CNAMEs,
//!   resolve glueless NS hosts with nested walks, record the lookup chain,
//!   and cache *only* NS/glue RRsets (§3.4 selective caching).
//! * [`ExternalMachine`] — RD=1 queries against external recursive
//!   resolvers with retry/rotation (the Google/Cloudflare rows).
//! * [`DirectMachine`] — one server, one question, n retries; the building
//!   block for the §5 `--all-nameservers` extension and misc modules.
//!
//! Responses arrive as [`MsgRef`] — a borrowed [`zdns_wire::MessageView`]
//! on the reactor's UDP hot path, an owned [`zdns_wire::Message`] elsewhere.
//! Machines inspect the borrowed form and **promote** records to owned
//! values only when they keep them: the CNAME chain, referral NS/glue
//! RRsets headed for the cache, and the final [`LookupResult`] (which is
//! not even built unless a result sink is attached). Queries go out as
//! [`OutQuery`] field bundles, not messages — on the reactor they are
//! encoded straight into a scratch buffer, so the steady-state send path
//! performs zero heap allocations.

use std::net::Ipv4Addr;
use std::sync::Arc;

use zdns_netsim::{ClientEvent, JobOutcome, OutQuery, Protocol, SimClient, SimTime, StepStatus};
use zdns_wire::{Cookie, MsgRef, Name, Question, RData, Rcode, Record, RecordType};

use crate::cache::{Cache, CacheKey};
use crate::config::{ResolutionMode, ResolverConfig};
use crate::result::{DelegationInfo, LookupResult};
use crate::stats::Stats;
use crate::status::Status;
use crate::trace::{step_for, TraceStep};

/// Shared state behind every machine: config, selective cache, counters.
pub struct ResolverCore {
    /// Resolver configuration.
    pub config: ResolverConfig,
    /// The selective infrastructure cache.
    pub cache: Cache,
    /// Run-time counters.
    pub stats: Stats,
}

impl ResolverCore {
    /// Build from a config.
    pub fn new(config: ResolverConfig) -> Arc<ResolverCore> {
        let cache = Cache::new(config.cache_size);
        Arc::new(ResolverCore {
            config,
            cache,
            stats: Stats::default(),
        })
    }

    /// The machine-side cookie state for a lookup of `name`, if cookies
    /// are enabled: keyed per-destination derivation when a secret is
    /// configured (RFC 7873 §6), the reproducible per-name hash
    /// otherwise.
    fn cookie_state(&self, name: &Name) -> Option<CookieState> {
        self.config
            .edns_cookies
            .then(|| match self.config.cookie_secret {
                Some(secret) => CookieState::keyed(secret),
                None => CookieState::per_name(client_cookie_for(name)),
            })
    }
}

/// Callback invoked with the full result of each finished lookup.
pub type ResultSink = Arc<dyn Fn(LookupResult) + Send + Sync>;

fn query_id(name: &Name, counter: u32) -> u16 {
    // Deterministic per-(name, attempt) transaction ids.
    let mut h: u32 = 0x811C_9DC5;
    for l in name.labels() {
        for &b in l.iter() {
            h ^= b.to_ascii_lowercase() as u32;
            h = h.wrapping_mul(0x0100_0193);
        }
    }
    (h ^ counter.rotate_left(16)) as u16
}

/// Deterministic 8-octet client cookie for a lookup (FNV-1a 64 over the
/// lowercased name; real deployments would mix in a secret, but the sim
/// and loopback paths value reproducibility).
fn client_cookie_for(name: &Name) -> [u8; 8] {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for l in name.labels() {
        for &b in l.iter() {
            h ^= b.to_ascii_lowercase() as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= 0xFF;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h.to_be_bytes()
}

/// One SipHash compression round.
#[inline]
fn sip_round(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// Keyed client-cookie derivation (RFC 7873 §6): SipHash-2-4 — the PRF
/// the RFC recommends — keyed with the 16-octet client secret over the
/// destination address. Every destination gets a distinct client cookie
/// computed allocation-free per query, and (unlike a plain mixing hash)
/// observing one destination's cookie reveals nothing about any
/// other's: recovering cross-destination state requires breaking the
/// PRF, not inverting a bijection.
fn keyed_client_cookie(secret: &[u8; 16], dest: Ipv4Addr) -> [u8; 8] {
    let k0 = u64::from_le_bytes(secret[..8].try_into().expect("8 bytes"));
    let k1 = u64::from_le_bytes(secret[8..].try_into().expect("8 bytes"));
    let mut v = [
        k0 ^ 0x736f_6d65_7073_6575,
        k1 ^ 0x646f_7261_6e64_6f6d,
        k0 ^ 0x6c79_6765_6e65_7261,
        k1 ^ 0x7465_6462_7974_6573,
    ];
    // The 4-octet address fits one final block: message bytes
    // little-endian in the low lanes, message length in the top byte.
    let octets = dest.octets();
    let b: u64 = (4u64 << 56) | u64::from(u32::from_le_bytes(octets));
    v[3] ^= b;
    sip_round(&mut v);
    sip_round(&mut v);
    v[0] ^= b;
    v[2] ^= 0xff;
    for _ in 0..4 {
        sip_round(&mut v);
    }
    (v[0] ^ v[1] ^ v[2] ^ v[3]).to_be_bytes()
}

/// How a lookup derives the client half of its cookies.
#[derive(Debug, Clone, Copy)]
enum CookieKey {
    /// One fixed cookie per lookup, hashed from the queried name — fully
    /// reproducible (the sim/loopback default).
    PerName([u8; 8]),
    /// Keyed per-destination derivation from a scan-wide secret
    /// (`--cookie-secret`, RFC 7873 §6).
    Keyed([u8; 16]),
}

/// RFC 7873 client-side cookie state: our client cookie derivation, plus
/// the last full (client + server) cookie learned, pinned to the server
/// it came from. Retries to that server echo the full cookie; queries to
/// anyone else carry the bare client cookie.
#[derive(Debug, Clone, Copy)]
struct CookieState {
    key: CookieKey,
    learned: Option<(Ipv4Addr, Cookie)>,
}

impl CookieState {
    fn per_name(client: [u8; 8]) -> CookieState {
        CookieState {
            key: CookieKey::PerName(client),
            learned: None,
        }
    }

    fn keyed(secret: [u8; 16]) -> CookieState {
        CookieState {
            key: CookieKey::Keyed(secret),
            learned: None,
        }
    }

    /// The client half we send to `dest`.
    fn client_for(&self, dest: Ipv4Addr) -> [u8; 8] {
        match &self.key {
            CookieKey::PerName(client) => *client,
            CookieKey::Keyed(secret) => keyed_client_cookie(secret, dest),
        }
    }

    /// The cookie to attach to a query for `dest`.
    fn for_dest(&self, dest: Ipv4Addr) -> Cookie {
        match &self.learned {
            Some((server, cookie)) if *server == dest => *cookie,
            _ => Cookie::client(self.client_for(dest)),
        }
    }

    /// Record the cookie a response from `from` carried. Only cookies
    /// that echo the client part we send *that destination* and actually
    /// contain a server part are kept.
    fn learn(&mut self, from: Ipv4Addr, cookie: Option<Cookie>) {
        if let Some(cookie) = cookie {
            if cookie.client_part() == self.client_for(from) && cookie.has_server_part() {
                self.learned = Some((from, cookie));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// External mode
// ---------------------------------------------------------------------------

/// RD=1 lookups against external recursive resolvers.
pub struct ExternalMachine {
    core: Arc<ResolverCore>,
    question: Question,
    servers: Vec<Ipv4Addr>,
    server_idx: usize,
    attempt: u32,
    retries_used: u32,
    queries: u32,
    started: SimTime,
    tag: u64,
    over_tcp: bool,
    transport_failed: bool,
    cookies: Option<CookieState>,
    sink: Option<ResultSink>,
}

impl ExternalMachine {
    /// Build a machine for `question`.
    pub fn new(
        core: Arc<ResolverCore>,
        question: Question,
        sink: Option<ResultSink>,
    ) -> ExternalMachine {
        let servers = match &core.config.mode {
            ResolutionMode::External { servers } => servers.clone(),
            ResolutionMode::Iterative => Vec::new(),
        };
        // Load-balance the starting server across lookups.
        let server_idx = if servers.is_empty() {
            0
        } else {
            query_id(&question.name, 0) as usize % servers.len()
        };
        let cookies = core.cookie_state(&question.name);
        ExternalMachine {
            core,
            question,
            servers,
            server_idx,
            attempt: 0,
            retries_used: 0,
            queries: 0,
            started: 0,
            tag: 0,
            over_tcp: false,
            transport_failed: false,
            cookies,
            sink,
        }
    }

    fn current_server(&self) -> Ipv4Addr {
        self.servers[self.server_idx % self.servers.len()]
    }

    /// The cookie this machine's most recent query carried (tests).
    #[doc(hidden)]
    pub fn last_cookie_for(&self, dest: Ipv4Addr) -> Option<Cookie> {
        self.cookies.as_ref().map(|c| c.for_dest(dest))
    }

    fn send(&mut self, out: &mut Vec<OutQuery>) {
        self.queries += 1;
        self.tag += 1;
        let to = self.current_server();
        let protocol = if self.over_tcp || self.core.config.tcp_only {
            Protocol::Tcp
        } else {
            Protocol::Udp
        };
        out.push(OutQuery {
            to,
            id: query_id(&self.question.name, self.queries),
            question: self.question.clone(),
            recursion_desired: true,
            cookie: self.cookies.as_ref().map(|c| c.for_dest(to)),
            protocol,
            timeout: self.core.config.timeout,
            tag: self.tag,
        });
        self.core
            .stats
            .queries_sent
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn finish(
        &mut self,
        now: SimTime,
        status: Status,
        response: Option<(&MsgRef<'_>, Ipv4Addr)>,
    ) -> StepStatus {
        self.core.stats.record_lookup(status);
        if let Some(sink) = &self.sink {
            // Promotion happens here — and only here — because the result
            // is being kept. Sink-less lookups (scans that only count
            // statuses) never materialize the sections at all.
            let result = LookupResult {
                name: self.question.name.clone(),
                qtype: self.question.qtype,
                status,
                answers: response.map(|(m, _)| m.answers_vec()).unwrap_or_default(),
                authorities: response
                    .map(|(m, _)| m.authorities_vec())
                    .unwrap_or_default(),
                additionals: response
                    .map(|(m, _)| m.additionals_vec())
                    .unwrap_or_default(),
                flags: response.map(|(m, _)| m.flags()),
                resolver: response.map(|(_, ip)| format!("{ip}:53")),
                protocol: if self.over_tcp { "tcp" } else { "udp" },
                trace: Vec::new(),
                delegation: None,
                queries_sent: self.queries,
                retries_used: self.retries_used,
                duration: now.saturating_sub(self.started),
                timestamp: now,
            };
            sink(result);
        }
        StepStatus::Done(JobOutcome {
            success: status.is_success(),
            status: status.as_str(),
        })
    }
}

impl SimClient for ExternalMachine {
    fn start(&mut self, now: SimTime, out: &mut Vec<OutQuery>) -> StepStatus {
        self.started = now;
        if self.servers.is_empty() {
            return self.finish(now, Status::Error, None);
        }
        self.send(out);
        StepStatus::Running
    }

    fn on_event(
        &mut self,
        event: ClientEvent<'_>,
        now: SimTime,
        out: &mut Vec<OutQuery>,
    ) -> StepStatus {
        let failed = matches!(event, ClientEvent::TransportFailed { .. });
        match event {
            ClientEvent::Response {
                tag,
                from,
                message,
                protocol,
            } => {
                if tag != self.tag {
                    return StepStatus::Running; // stale
                }
                if let Some(cookies) = self.cookies.as_mut() {
                    cookies.learn(from, message.cookie());
                }
                let flags = message.flags();
                if flags.truncated && protocol == Protocol::Udp && self.core.config.tcp_on_truncated
                {
                    // Retry over TCP against the same resolver.
                    self.over_tcp = true;
                    self.core
                        .stats
                        .tcp_fallbacks
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    self.send(out);
                    return StepStatus::Running;
                }
                if flags.truncated {
                    return self.finish(now, Status::Truncated, Some((&message, from)));
                }
                let status = Status::from_rcode(message.rcode());
                self.finish(now, status, Some((&message, from)))
            }
            ClientEvent::Timeout { tag } | ClientEvent::TransportFailed { tag } => {
                if tag != self.tag {
                    return StepStatus::Running;
                }
                if failed {
                    self.transport_failed = true;
                }
                self.attempt += 1;
                self.retries_used += 1;
                self.core
                    .stats
                    .retries
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if self.attempt <= self.core.config.retries {
                    // Rotate to the next upstream (ZDNS load-balances
                    // retries across its resolver list).
                    self.server_idx += 1;
                    self.send(out);
                    StepStatus::Running
                } else if self.transport_failed {
                    // At least one attempt died to an I/O failure rather
                    // than silence: report ERROR, not TIMEOUT.
                    self.finish(now, Status::Error, None)
                } else {
                    self.finish(now, Status::Timeout, None)
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Iterative mode
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct Candidate {
    ns: Name,
    addr: Option<Ipv4Addr>,
    dead: bool,
}

struct Walk {
    q: Question,
    chain: Vec<Record>,
    cname_hops: u32,
    zone: Name,
    depth: u32,
    candidates: Vec<Candidate>,
    cand_idx: usize,
    attempt: u32,
    /// Which candidate of the parent walk this NS-address walk serves.
    parent_cand: Option<usize>,
}

/// What the iterative machine is after.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolveTarget {
    /// Resolve to a final answer (normal lookups).
    Answer,
    /// Resolve normally but keep the final delegation for the caller (the
    /// §5 `--all-nameservers` extension builds on this).
    Delegation,
}

/// ZDNS's own caching iterative resolver as a state machine.
pub struct IterativeMachine {
    core: Arc<ResolverCore>,
    original: Question,
    stack: Vec<Walk>,
    trace: Vec<TraceStep>,
    queries: u32,
    retries_used: u32,
    started: SimTime,
    tag: u64,
    over_tcp: bool,
    cookies: Option<CookieState>,
    sink: Option<ResultSink>,
    #[allow(dead_code)]
    target: ResolveTarget,
}

impl IterativeMachine {
    /// Build a machine for `question`.
    pub fn new(
        core: Arc<ResolverCore>,
        question: Question,
        target: ResolveTarget,
        sink: Option<ResultSink>,
    ) -> IterativeMachine {
        let cookies = core.cookie_state(&question.name);
        IterativeMachine {
            core,
            original: question,
            stack: Vec::new(),
            trace: Vec::new(),
            queries: 0,
            retries_used: 0,
            started: 0,
            tag: 0,
            over_tcp: false,
            cookies,
            sink,
            target,
        }
    }

    fn new_walk(&mut self, q: Question, parent_cand: Option<usize>, now: SimTime) -> Walk {
        let (zone, candidates, cached) = match self.core.cache.deepest_cut(&q.name, now) {
            Some((cut, ns_records)) => {
                let candidates = self.candidates_from_ns(&ns_records, &[], now);
                (cut, candidates, true)
            }
            None => {
                let candidates = self
                    .core
                    .config
                    .root_hints
                    .iter()
                    .map(|(ns, addr)| Candidate {
                        ns: ns.clone(),
                        addr: Some(*addr),
                        dead: false,
                    })
                    .collect();
                (Name::root(), candidates, false)
            }
        };
        if cached && self.core.config.trace {
            self.trace
                .push(step_for(&q, &zone, 1, "cache".to_string(), 1, true, None));
        }
        let mut walk = Walk {
            q,
            chain: Vec::new(),
            cname_hops: 0,
            zone,
            depth: 0,
            candidates,
            cand_idx: 0,
            attempt: 0,
            parent_cand,
        };
        Self::rotate_candidates(&mut walk);
        walk
    }

    /// Spread load across a zone's nameservers deterministically.
    fn rotate_candidates(walk: &mut Walk) {
        if walk.candidates.len() > 1 {
            let r = query_id(&walk.q.name, walk.depth) as usize % walk.candidates.len();
            walk.candidates.rotate_left(r);
        }
        // Glued candidates first: querying them needs no extra resolution.
        walk.candidates.sort_by_key(|c| c.addr.is_none());
    }

    fn candidates_from_ns(
        &self,
        ns_records: &[Record],
        glue: &[Record],
        now: SimTime,
    ) -> Vec<Candidate> {
        let mut out = Vec::new();
        for rec in ns_records {
            let RData::Ns(ns_name) = &rec.rdata else {
                continue;
            };
            let mut addr = glue.iter().find_map(|g| {
                if g.name == *ns_name {
                    match &g.rdata {
                        RData::A(a) => Some(*a),
                        _ => None,
                    }
                } else {
                    None
                }
            });
            if addr.is_none() {
                // Borrowing accessor: this glue probe runs once per NS per
                // referral on the iterative hot path, and `get` would
                // clone the whole RRset just to pick one address.
                addr = self
                    .core
                    .cache
                    .with_records(ns_name, RecordType::A, now, |records, _| {
                        records.iter().find_map(|r| match &r.rdata {
                            RData::A(a) => Some(*a),
                            _ => None,
                        })
                    })
                    .flatten();
            }
            out.push(Candidate {
                ns: ns_name.clone(),
                addr,
                dead: false,
            });
        }
        out
    }

    fn send_current(&mut self, out: &mut Vec<OutQuery>) {
        let walk = self.stack.last().expect("active walk");
        let candidate = &walk.candidates[walk.cand_idx];
        let addr = candidate.addr.expect("send_current requires an address");
        self.queries += 1;
        self.tag += 1;
        let protocol = if self.over_tcp || self.core.config.tcp_only {
            Protocol::Tcp
        } else {
            Protocol::Udp
        };
        out.push(OutQuery {
            to: addr,
            id: query_id(&walk.q.name, self.queries),
            question: walk.q.clone(),
            recursion_desired: false,
            cookie: self.cookies.as_ref().map(|c| c.for_dest(addr)),
            protocol,
            timeout: self.core.config.iteration_timeout,
            tag: self.tag,
        });
        self.core
            .stats
            .queries_sent
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Drive the machine forward until a query is in flight or the lookup
    /// completes.
    fn advance(&mut self, now: SimTime, out: &mut Vec<OutQuery>) -> StepStatus {
        loop {
            if self.queries >= self.core.config.max_queries_per_lookup
                || now.saturating_sub(self.started) > self.core.config.lookup_budget
            {
                return self.finish(now, Status::IterativeTimeout, None);
            }
            let stack_len = self.stack.len();
            let walk = self.stack.last_mut().expect("active walk");

            // Find a usable candidate: first a live one with an address...
            let next_with_addr = walk
                .candidates
                .iter()
                .enumerate()
                .skip(walk.cand_idx)
                .find(|(_, c)| !c.dead && c.addr.is_some())
                .map(|(i, _)| i);
            if let Some(i) = next_with_addr {
                walk.cand_idx = i;
                self.over_tcp = self.core.config.tcp_only;
                self.send_current(out);
                return StepStatus::Running;
            }
            // ...then a live glueless one we can resolve.
            let glueless = walk
                .candidates
                .iter()
                .enumerate()
                .find(|(_, c)| !c.dead && c.addr.is_none())
                .map(|(i, c)| (i, c.ns.clone()));
            if let Some((i, ns_name)) = glueless {
                // Guard against resolution cycles: the NS host must not sit
                // inside the zone we are currently stuck on, and nesting is
                // bounded.
                if stack_len >= 4 || ns_name.is_subdomain_of(&walk.zone) {
                    walk.candidates[i].dead = true;
                    continue;
                }
                walk.cand_idx = i;
                let sub_q = Question::new(ns_name, RecordType::A);
                let sub = self.new_walk(sub_q, Some(i), now);
                self.stack.push(sub);
                continue;
            }
            // All candidates dead: this walk failed.
            let failed = self.stack.pop().expect("active walk");
            if self.stack.is_empty() {
                return self.finish(now, Status::ServFail, None);
            }
            // Mark the parent candidate as unresolvable.
            if let Some(ci) = failed.parent_cand {
                if let Some(parent) = self.stack.last_mut() {
                    parent.candidates[ci].dead = true;
                }
            }
        }
    }

    fn current_candidate_exhausted(&mut self) {
        let walk = self.stack.last_mut().expect("active walk");
        walk.candidates[walk.cand_idx].dead = true;
        walk.cand_idx = 0; // rescan from the start; dead ones are skipped
        walk.attempt = 0;
        self.over_tcp = false;
    }

    fn record_trace(&mut self, message: &MsgRef<'_>, from: Ipv4Addr) {
        if !self.core.config.trace {
            return;
        }
        let walk = self.stack.last().expect("active walk");
        self.trace.push(step_for(
            &walk.q,
            &walk.zone,
            walk.depth + 1,
            format!("{from}:53"),
            walk.attempt + 1,
            false,
            message.to_message().ok(),
        ));
    }

    /// Complete a walk with an authoritative outcome.
    fn finish_walk(
        &mut self,
        now: SimTime,
        status: Status,
        message: Option<(&MsgRef<'_>, Ipv4Addr)>,
        out: &mut Vec<OutQuery>,
    ) -> StepStatus {
        let walk = self.stack.pop().expect("active walk");
        if self.stack.is_empty() {
            let mut answers = walk.chain.clone();
            if let Some((m, _)) = message {
                answers.extend(m.answers_vec());
            }
            let delegation = Some(DelegationInfo {
                zone: walk.zone.clone(),
                nameservers: walk
                    .candidates
                    .iter()
                    .map(|c| (c.ns.clone(), c.addr))
                    .collect(),
            });
            return self.finish_with(now, status, message, answers, delegation);
        }
        // NS-address sub-walk: hand addresses to the parent candidate.
        let mut addrs: Vec<Ipv4Addr> = Vec::new();
        if status == Status::NoError {
            for r in &walk.chain {
                if let RData::A(a) = r.rdata {
                    addrs.push(a);
                }
            }
            if let Some((m, _)) = message {
                addrs.extend(m.answers().filter_map(|r| r.a_addr()));
            }
        }
        if let Some(ci) = walk.parent_cand {
            let parent = self.stack.last_mut().expect("parent walk");
            match addrs.first() {
                Some(&a) => parent.candidates[ci].addr = Some(a),
                None => parent.candidates[ci].dead = true,
            }
        }
        self.advance(now, out)
    }

    fn finish(
        &mut self,
        now: SimTime,
        status: Status,
        message: Option<(&MsgRef<'_>, Ipv4Addr)>,
    ) -> StepStatus {
        // Failure outside a completed walk: salvage whatever chain exists.
        let answers = self
            .stack
            .first()
            .map(|w| w.chain.clone())
            .unwrap_or_default();
        let delegation = self.stack.first().map(|w| DelegationInfo {
            zone: w.zone.clone(),
            nameservers: w
                .candidates
                .iter()
                .map(|c| (c.ns.clone(), c.addr))
                .collect(),
        });
        self.finish_with(now, status, message, answers, delegation)
    }

    fn finish_with(
        &mut self,
        now: SimTime,
        status: Status,
        message: Option<(&MsgRef<'_>, Ipv4Addr)>,
        answers: Vec<Record>,
        delegation: Option<DelegationInfo>,
    ) -> StepStatus {
        self.core.stats.record_lookup(status);
        if let Some(sink) = &self.sink {
            let result = LookupResult {
                name: self.original.name.clone(),
                qtype: self.original.qtype,
                status,
                answers,
                authorities: message
                    .map(|(m, _)| m.authorities_vec())
                    .unwrap_or_default(),
                additionals: message
                    .map(|(m, _)| m.additionals_vec())
                    .unwrap_or_default(),
                flags: message.map(|(m, _)| m.flags()),
                resolver: message.map(|(_, ip)| format!("{ip}:53")),
                protocol: if self.over_tcp { "tcp" } else { "udp" },
                trace: std::mem::take(&mut self.trace),
                delegation,
                queries_sent: self.queries,
                retries_used: self.retries_used,
                duration: now.saturating_sub(self.started),
                timestamp: now,
            };
            sink(result);
        }
        self.stack.clear();
        StepStatus::Done(JobOutcome {
            success: status.is_success(),
            status: status.as_str(),
        })
    }

    /// Selective caching (§3.4): NS RRsets at zone cuts plus in-bailiwick
    /// glue addresses — never the leaf answers.
    fn cache_referral(
        &self,
        cut: &Name,
        ns_records: &[Record],
        glue: &[Record],
        bailiwick: &Name,
        now: SimTime,
    ) {
        self.core.cache.put(
            CacheKey {
                name: cut.clone(),
                rtype: RecordType::NS,
            },
            ns_records.to_vec(),
            now,
        );
        // Group glue by (name, type) and cache each address RRset.
        for rec in glue {
            if !matches!(rec.rtype, RecordType::A | RecordType::AAAA) {
                continue;
            }
            // Bailiwick rule: only names the referring zone may speak for.
            if !rec.name.is_subdomain_of(bailiwick) {
                continue;
            }
            let same: Vec<Record> = glue
                .iter()
                .filter(|g| g.name == rec.name && g.rtype == rec.rtype)
                .cloned()
                .collect();
            self.core.cache.put(
                CacheKey {
                    name: rec.name.clone(),
                    rtype: rec.rtype,
                },
                same,
                now,
            );
        }
    }

    fn handle_response(
        &mut self,
        message: MsgRef<'_>,
        from: Ipv4Addr,
        protocol: Protocol,
        now: SimTime,
        out: &mut Vec<OutQuery>,
    ) -> StepStatus {
        self.record_trace(&message, from);
        if let Some(cookies) = self.cookies.as_mut() {
            cookies.learn(from, message.cookie());
        }

        // Truncation → TCP fallback against the same server.
        if message.flags().truncated {
            if protocol == Protocol::Udp && self.core.config.tcp_on_truncated {
                self.over_tcp = true;
                self.core
                    .stats
                    .tcp_fallbacks
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                self.send_current(out);
                return StepStatus::Running;
            }
            return self.finish(now, Status::Truncated, Some((&message, from)));
        }

        match message.rcode() {
            Rcode::NxDomain => {
                return self.finish_walk(now, Status::NxDomain, Some((&message, from)), out)
            }
            Rcode::NoError => {}
            _ => {
                // REFUSED / SERVFAIL / anything else: lame or broken server.
                self.current_candidate_exhausted();
                return self.advance(now, out);
            }
        }

        let walk = self.stack.last_mut().expect("active walk");
        let wants = walk.q.qtype;
        // One borrowed pass over the answer section: nothing is promoted
        // unless this response turns out to be a CNAME restart or a keeper.
        let mut has_final = false;
        let mut trailing_cname: Option<Name> = None;
        let mut answers_empty = true;
        for rec in message.answers() {
            answers_empty = false;
            if rec.rtype() == wants || wants == RecordType::ANY {
                has_final = true;
            }
            if wants != RecordType::CNAME {
                if let Some(target) = rec.cname_target() {
                    trailing_cname = Some(target);
                }
            }
        }

        if !answers_empty {
            if has_final {
                return self.finish_walk(now, Status::NoError, Some((&message, from)), out);
            }
            if let Some(target) = trailing_cname {
                // CNAME restart: keep the chain, walk again for the target.
                walk.chain.extend(message.answers_vec());
                walk.cname_hops += 1;
                if walk.cname_hops > 8 {
                    return self.finish(now, Status::ServFail, Some((&message, from)));
                }
                let q = Question {
                    name: target,
                    qtype: wants,
                    qclass: walk.q.qclass,
                };
                let chain = std::mem::take(&mut walk.chain);
                let hops = walk.cname_hops;
                let parent_cand = walk.parent_cand;
                let mut fresh = self.new_walk(q, parent_cand, now);
                fresh.chain = chain;
                fresh.cname_hops = hops;
                *self.stack.last_mut().expect("active walk") = fresh;
                return self.advance(now, out);
            }
            // Answers of some other type: return them as-is.
            return self.finish_walk(now, Status::NoError, Some((&message, from)), out);
        }

        // No answers: referral or negative.
        let authoritative = message.flags().authoritative;
        let ns_refs: Vec<Record> = message
            .authorities()
            .filter(|r| r.rtype() == RecordType::NS)
            .filter_map(|r| r.to_record())
            .collect();
        if !ns_refs.is_empty() && !authoritative {
            let cut = ns_refs[0].name.clone();
            // Validity: the cut must enclose the qname and be strictly
            // deeper than the current zone — otherwise it is a lame upward
            // or sideways referral.
            let valid = walk.q.name.is_subdomain_of(&cut)
                && cut.is_subdomain_of(&walk.zone)
                && cut != walk.zone;
            if !valid {
                self.current_candidate_exhausted();
                return self.advance(now, out);
            }
            if walk.depth + 1 > self.core.config.max_depth {
                return self.finish(now, Status::IterativeTimeout, Some((&message, from)));
            }
            let bailiwick = walk.zone.clone();
            walk.zone = cut.clone();
            walk.depth += 1;
            walk.attempt = 0;
            walk.cand_idx = 0;
            self.over_tcp = false;
            // Referral RRsets are kept (candidates + selective cache), so
            // this is exactly the promote-on-keep point.
            let glue = message.additionals_vec();
            let candidates = self.candidates_from_ns(&ns_refs, &glue, now);
            let w = self.stack.last_mut().expect("active walk");
            w.candidates = candidates;
            Self::rotate_candidates(w);
            self.cache_referral(&cut, &ns_refs, &glue, &bailiwick, now);
            return self.advance(now, out);
        }
        if authoritative {
            // NODATA.
            return self.finish_walk(now, Status::NoError, Some((&message, from)), out);
        }
        // Neither referral nor authoritative data: broken server.
        self.current_candidate_exhausted();
        self.advance(now, out)
    }
}

impl SimClient for IterativeMachine {
    fn start(&mut self, now: SimTime, out: &mut Vec<OutQuery>) -> StepStatus {
        self.started = now;
        if self.core.config.root_hints.is_empty() {
            return self.finish(now, Status::Error, None);
        }
        let walk = self.new_walk(self.original.clone(), None, now);
        self.stack.push(walk);
        self.advance(now, out)
    }

    fn on_event(
        &mut self,
        event: ClientEvent<'_>,
        now: SimTime,
        out: &mut Vec<OutQuery>,
    ) -> StepStatus {
        match event {
            ClientEvent::Response {
                tag,
                from,
                message,
                protocol,
            } => {
                if tag != self.tag {
                    return StepStatus::Running;
                }
                self.handle_response(message, from, protocol, now, out)
            }
            ClientEvent::Timeout { tag } => {
                if tag != self.tag {
                    return StepStatus::Running;
                }
                self.retries_used += 1;
                self.core
                    .stats
                    .retries
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let retries = self.core.config.retries;
                let walk = self.stack.last_mut().expect("active walk");
                walk.attempt += 1;
                if walk.attempt < retries {
                    self.send_current(out);
                    StepStatus::Running
                } else {
                    self.current_candidate_exhausted();
                    self.advance(now, out)
                }
            }
            ClientEvent::TransportFailed { tag } => {
                if tag != self.tag {
                    return StepStatus::Running;
                }
                // An I/O failure is not silence — the server (or the route
                // to it) is broken, so skip straight to the next candidate
                // instead of burning retries on it.
                self.retries_used += 1;
                self.core
                    .stats
                    .retries
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                self.current_candidate_exhausted();
                self.advance(now, out)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Direct mode
// ---------------------------------------------------------------------------

/// One question to one specific server with retries — the probe primitive
/// behind `--all-nameservers` (§5) and misc modules like `version.bind`.
pub struct DirectMachine {
    core: Arc<ResolverCore>,
    question: Question,
    server: Ipv4Addr,
    recursion_desired: bool,
    attempt: u32,
    retries_used: u32,
    queries: u32,
    started: SimTime,
    tag: u64,
    over_tcp: bool,
    transport_failed: bool,
    cookies: Option<CookieState>,
    sink: Option<ResultSink>,
}

impl DirectMachine {
    /// Build a probe of `server` for `question`.
    pub fn new(
        core: Arc<ResolverCore>,
        question: Question,
        server: Ipv4Addr,
        recursion_desired: bool,
        sink: Option<ResultSink>,
    ) -> DirectMachine {
        let cookies = core.cookie_state(&question.name);
        DirectMachine {
            core,
            question,
            server,
            recursion_desired,
            attempt: 0,
            retries_used: 0,
            queries: 0,
            started: 0,
            tag: 0,
            over_tcp: false,
            transport_failed: false,
            cookies,
            sink,
        }
    }

    /// The cookie the next query will carry (tests).
    #[doc(hidden)]
    pub fn next_cookie(&self) -> Option<Cookie> {
        self.cookies.as_ref().map(|c| c.for_dest(self.server))
    }

    fn send(&mut self, out: &mut Vec<OutQuery>) {
        self.queries += 1;
        self.tag += 1;
        out.push(OutQuery {
            to: self.server,
            id: query_id(&self.question.name, self.queries),
            question: self.question.clone(),
            recursion_desired: self.recursion_desired,
            cookie: self.cookies.as_ref().map(|c| c.for_dest(self.server)),
            protocol: if self.over_tcp || self.core.config.tcp_only {
                Protocol::Tcp
            } else {
                Protocol::Udp
            },
            timeout: self.core.config.timeout,
            tag: self.tag,
        });
        self.core
            .stats
            .queries_sent
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn finish(&mut self, now: SimTime, status: Status, message: Option<&MsgRef<'_>>) -> StepStatus {
        self.core.stats.record_lookup(status);
        if let Some(sink) = &self.sink {
            let result = LookupResult {
                name: self.question.name.clone(),
                qtype: self.question.qtype,
                status,
                answers: message.map(|m| m.answers_vec()).unwrap_or_default(),
                authorities: message.map(|m| m.authorities_vec()).unwrap_or_default(),
                additionals: message.map(|m| m.additionals_vec()).unwrap_or_default(),
                flags: message.map(|m| m.flags()),
                resolver: Some(format!("{}:53", self.server)),
                protocol: if self.over_tcp { "tcp" } else { "udp" },
                trace: Vec::new(),
                delegation: None,
                queries_sent: self.queries,
                retries_used: self.retries_used,
                duration: now.saturating_sub(self.started),
                timestamp: now,
            };
            sink(result);
        }
        StepStatus::Done(JobOutcome {
            success: status.is_success(),
            status: status.as_str(),
        })
    }
}

impl SimClient for DirectMachine {
    fn start(&mut self, now: SimTime, out: &mut Vec<OutQuery>) -> StepStatus {
        self.started = now;
        self.send(out);
        StepStatus::Running
    }

    fn on_event(
        &mut self,
        event: ClientEvent<'_>,
        now: SimTime,
        out: &mut Vec<OutQuery>,
    ) -> StepStatus {
        let failed = matches!(event, ClientEvent::TransportFailed { .. });
        match event {
            ClientEvent::Response {
                tag,
                from,
                message,
                protocol,
            } => {
                if tag != self.tag {
                    return StepStatus::Running;
                }
                if let Some(cookies) = self.cookies.as_mut() {
                    cookies.learn(from, message.cookie());
                }
                if message.flags().truncated
                    && protocol == Protocol::Udp
                    && self.core.config.tcp_on_truncated
                {
                    self.over_tcp = true;
                    self.send(out);
                    return StepStatus::Running;
                }
                let status = Status::from_rcode(message.rcode());
                self.finish(now, status, Some(&message))
            }
            ClientEvent::Timeout { tag } | ClientEvent::TransportFailed { tag } => {
                if tag != self.tag {
                    return StepStatus::Running;
                }
                if failed {
                    self.transport_failed = true;
                }
                self.attempt += 1;
                self.retries_used += 1;
                if self.attempt <= self.core.config.retries {
                    self.send(out);
                    StepStatus::Running
                } else if self.transport_failed {
                    self.finish(now, Status::Error, None)
                } else {
                    self.finish(now, Status::Timeout, None)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyed_cookie_is_reference_siphash24() {
        // The SipHash-2-4 paper's test vector: key 00..0f over the
        // 4-byte message 00 01 02 03 yields cf2794e0277187b7 (as a u64).
        // Our 4-octet message is the destination address, so the same
        // inputs must reproduce the reference output exactly — this
        // pins the derivation to the real PRF, not a lookalike.
        let secret: [u8; 16] = core::array::from_fn(|i| i as u8);
        let cookie = keyed_client_cookie(&secret, Ipv4Addr::new(0, 1, 2, 3));
        assert_eq!(cookie, 0xcf27_94e0_2771_87b7u64.to_be_bytes());
    }

    #[test]
    fn keyed_cookie_differs_per_destination_and_secret() {
        let a = keyed_client_cookie(&[1; 16], Ipv4Addr::new(192, 0, 2, 1));
        let b = keyed_client_cookie(&[1; 16], Ipv4Addr::new(192, 0, 2, 2));
        let c = keyed_client_cookie(&[2; 16], Ipv4Addr::new(192, 0, 2, 1));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(
            a,
            keyed_client_cookie(&[1; 16], Ipv4Addr::new(192, 0, 2, 1))
        );
    }
}
