//! Lookup results: what one ZDNS output line carries.

use std::net::Ipv4Addr;

use serde_json::{json, Value};
use zdns_wire::{json as wire_json, Flags, Name, Record, RecordType};

use zdns_netsim::{as_secs_f64, SimTime};

use crate::status::Status;
use crate::trace::TraceStep;

/// The final nameserver delegation a lookup ended at (iterative mode) —
/// the raw material for the §5 `--all-nameservers` extension.
#[derive(Debug, Clone)]
pub struct DelegationInfo {
    /// The leaf zone cut.
    pub zone: Name,
    /// Its nameservers and any addresses learned for them.
    pub nameservers: Vec<(Name, Option<Ipv4Addr>)>,
}

/// The complete outcome of one lookup.
#[derive(Debug, Clone)]
pub struct LookupResult {
    /// The name queried.
    pub name: Name,
    /// Query type.
    pub qtype: RecordType,
    /// Final status.
    pub status: Status,
    /// Answer records (CNAME chains flattened in order).
    pub answers: Vec<Record>,
    /// Authority records from the final response.
    pub authorities: Vec<Record>,
    /// Additional records from the final response.
    pub additionals: Vec<Record>,
    /// Header flags of the final response.
    pub flags: Option<Flags>,
    /// The server that produced the final response (`ip:53`).
    pub resolver: Option<String>,
    /// `udp` or `tcp`.
    pub protocol: &'static str,
    /// The exposed lookup chain (iterative mode with tracing on).
    pub trace: Vec<TraceStep>,
    /// Final delegation (iterative mode).
    pub delegation: Option<DelegationInfo>,
    /// Queries sent for this lookup.
    pub queries_sent: u32,
    /// Retries consumed by timeouts.
    pub retries_used: u32,
    /// Lookup duration in virtual time.
    pub duration: SimTime,
    /// Completion timestamp in virtual time.
    pub timestamp: SimTime,
}

impl LookupResult {
    /// Render the ZDNS JSON output line.
    pub fn to_json(&self) -> Value {
        let mut data = serde_json::Map::new();
        if !self.answers.is_empty() {
            data.insert(
                "answers".into(),
                Value::Array(self.answers.iter().map(wire_json::record_to_json).collect()),
            );
        }
        if !self.authorities.is_empty() {
            data.insert(
                "authorities".into(),
                Value::Array(
                    self.authorities
                        .iter()
                        .map(wire_json::record_to_json)
                        .collect(),
                ),
            );
        }
        if !self.additionals.is_empty() {
            data.insert(
                "additionals".into(),
                Value::Array(
                    self.additionals
                        .iter()
                        .map(wire_json::record_to_json)
                        .collect(),
                ),
            );
        }
        if let (Some(flags), Some(resolver)) = (&self.flags, &self.resolver) {
            let rcode = match self.status {
                Status::NxDomain => zdns_wire::Rcode::NxDomain,
                Status::ServFail => zdns_wire::Rcode::ServFail,
                Status::Refused => zdns_wire::Rcode::Refused,
                _ => zdns_wire::Rcode::NoError,
            };
            data.insert("flags".into(), wire_json::flags_to_json(flags, rcode));
            data.insert("protocol".into(), json!(self.protocol));
            data.insert("resolver".into(), json!(resolver));
        }
        let mut out = json!({
            "name": self.name.to_string(),
            "class": "IN",
            "status": self.status.as_str(),
            "data": Value::Object(data),
            "duration": as_secs_f64(self.duration),
            "timestamp": as_secs_f64(self.timestamp),
        });
        if !self.trace.is_empty() {
            out["trace"] = Value::Array(self.trace.iter().map(|s| s.to_json()).collect());
        }
        out
    }

    /// All A/AAAA addresses in the answers.
    pub fn addresses(&self) -> Vec<std::net::IpAddr> {
        self.answers
            .iter()
            .filter_map(|r| match &r.rdata {
                zdns_wire::RData::A(a) => Some(std::net::IpAddr::V4(*a)),
                zdns_wire::RData::Aaaa(a) => Some(std::net::IpAddr::V6(*a)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zdns_wire::RData;

    fn sample() -> LookupResult {
        LookupResult {
            name: "google.com".parse().unwrap(),
            qtype: RecordType::A,
            status: Status::NoError,
            answers: vec![Record::new(
                "google.com".parse().unwrap(),
                300,
                RData::A("216.58.195.78".parse().unwrap()),
            )],
            authorities: Vec::new(),
            additionals: Vec::new(),
            flags: Some(Flags {
                response: true,
                authoritative: true,
                ..Flags::default()
            }),
            resolver: Some("216.239.34.10:53".to_string()),
            protocol: "udp",
            trace: Vec::new(),
            delegation: None,
            queries_sent: 3,
            retries_used: 0,
            duration: 120_000_000,
            timestamp: 5_000_000_000,
        }
    }

    #[test]
    fn json_line_shape() {
        let v = sample().to_json();
        assert_eq!(v["name"], "google.com");
        assert_eq!(v["status"], "NOERROR");
        assert_eq!(v["class"], "IN");
        assert_eq!(v["data"]["answers"][0]["answer"], "216.58.195.78");
        assert_eq!(v["data"]["resolver"], "216.239.34.10:53");
        assert_eq!(v["data"]["flags"]["authoritative"], true);
        assert!(v.get("trace").is_none(), "no empty trace key");
    }

    #[test]
    fn addresses_helper() {
        let addrs = sample().addresses();
        assert_eq!(addrs.len(), 1);
        assert_eq!(addrs[0].to_string(), "216.58.195.78");
    }
}
