//! The reactor's server role: `zdns serve`'s engine-side half.
//!
//! A [`ServerRole`] turns a reactor socket bidirectional. Inbound
//! datagrams that fail the `(peer, txid)` demux — queries (QR=0) rather
//! than late responses — are dispatched here instead of being counted as
//! stale, and each one walks the serve dataflow:
//!
//! ```text
//! listener → per-client token bucket → packet cache probe → [hot hit:
//!   memcpy + ID/cookie patch] / → record cache probe → [hit: scratch-
//!   encode + memoize] / [miss: forwarding machine behind the same
//!   reactor] → send
//! ```
//!
//! * **Fairness gate** — a [`ClientBuckets`] table (response-rate-limiting
//!   flavor: over-budget UDP queries are dropped, never queued; TCP is the
//!   client's escape hatch and is never gated).
//! * **Packet front** — repeat queries are answered from the
//!   [`PacketCache`]: the fully encoded response is memoized on first
//!   scratch-encode, and a hot hit is a memcpy plus a 2-byte ID patch,
//!   flag patch, cookie splice, and TC re-check — no shard lock, no
//!   record iteration, no per-record encode. `packet_cache_capacity: 0`
//!   disables the layer (the A/B lever).
//! * **Cache front** — remaining hits are answered from the resolver's
//!   selective [`Cache`](crate::cache::Cache) via the non-cloning
//!   [`with_records`](crate::cache::Cache::with_records) accessor and
//!   encoded straight into a reusable [`ScratchBuf`]: both hit paths
//!   perform zero heap allocations at steady state (the `zero_alloc`
//!   suite enforces it).
//! * **Forwarding behind** — misses admit an ordinary lookup machine
//!   (External-mode stub + CNAME chase) into the *same* reactor; its
//!   result sink fills the cache and parks the answer on a pending queue
//!   the next [`Reactor::serve_tick`](crate::reactor::Reactor::serve_tick)
//!   drains back to the client.
//! * **TCP serving** — a non-blocking listener plus a connection table on
//!   the same event loop: length-prefixed reads with partial-frame carry,
//!   buffered writes with partial-write carry, idle reaping. UDP replies
//!   that exceed the client's advertised payload size come back truncated
//!   (TC set) so the client retries here.
//!
//! Time is real: a [`Clock`] maps monotonic wall time into the `SimTime`
//! nanosecond domain the cache, buckets, and timer wheel already speak.

use std::io::{Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use zdns_netsim::{SimClient, SimTime, SECONDS};
use zdns_pacing::ClientBuckets;
use zdns_wire::{
    min_answer_ttl, Cookie, Edns, Flags, Header, Message, MessageView, Question, Rcode, RcodeField,
    Record, RecordClass, RecordType, ScratchBuf, CLIENT_COOKIE_LEN, DEFAULT_UDP_PAYLOAD,
    OPTION_COOKIE,
};

use crate::cache::CacheKey;
use crate::clock::Clock;
use crate::machine::ResultSink;
use crate::packet_cache::{PacketCache, PacketEntry, PacketLookup};
use crate::resolver::Resolver;
use crate::result::LookupResult;
use crate::status::Status;

/// The serve-mode server cookie (RFC 7873): appended to every echoed
/// client cookie. Deterministic so tests can assert the echo end-to-end;
/// distinct from the netsim fixture's `ZDNSSRVR`.
pub const SERVER_COOKIE: [u8; 8] = *b"ZDNSSERV";

/// Minimum UDP payload size assumed for clients that advertise none
/// (RFC 1035 classic limit).
const MIN_UDP_PAYLOAD: usize = 512;

/// Ceiling on bytes read from one TCP connection per tick, so a
/// fire-hosing client cannot starve its neighbours on the shared loop.
const TCP_READ_BUDGET: usize = 64 * 1024;

/// Default packet-cache slot count ([`ServeConfig::packet_cache_capacity`]).
pub const DEFAULT_PACKET_CACHE_CAPACITY: usize = 65_536;

/// Tunables for one server role.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Per-client UDP query budget (tokens/second). `0` disables the gate.
    pub client_pps: f64,
    /// Hard cap on tracked client buckets (see [`ClientBuckets`]).
    pub client_capacity: usize,
    /// UDP payload size advertised in our response OPT.
    pub udp_payload: u16,
    /// Maximum concurrent TCP connections per worker.
    pub max_tcp_conns: usize,
    /// Idle nanoseconds before a TCP connection is reaped.
    pub tcp_idle: SimTime,
    /// Datagrams drained from a dedicated listener socket per tick.
    pub max_datagrams_per_tick: usize,
    /// Slots in the shared pre-encoded packet cache riding in front of
    /// the record cache. `0` disables it, keeping the scratch-encode path
    /// as the A/B lever.
    pub packet_cache_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            client_pps: 0.0,
            client_capacity: 4_096,
            udp_payload: DEFAULT_UDP_PAYLOAD,
            max_tcp_conns: 64,
            tcp_idle: 10 * SECONDS,
            max_datagrams_per_tick: 256,
            packet_cache_capacity: DEFAULT_PACKET_CACHE_CAPACITY,
        }
    }
}

/// Serve-side counters, shared (`Arc`) with whoever started the worker.
#[derive(Debug, Default)]
pub struct ServeStats {
    queries: AtomicU64,
    cache_hits: AtomicU64,
    forwarded: AtomicU64,
    responses: AtomicU64,
    truncated: AtomicU64,
    rate_limited: AtomicU64,
    overloaded: AtomicU64,
    malformed: AtomicU64,
    servfail: AtomicU64,
    tcp_accepted: AtomicU64,
    tcp_closed: AtomicU64,
    packet_hits: AtomicU64,
    packet_fills: AtomicU64,
    packet_expired: AtomicU64,
    /// The fleet-shared packet cache, linked so `packet_invalidations`
    /// can be read off the same stats handle as the other counters.
    packet: OnceLock<Arc<PacketCache>>,
}

macro_rules! stat_reader {
    ($(#[$doc:meta] $name:ident),* $(,)?) => {
        $(#[$doc]
        pub fn $name(&self) -> u64 {
            self.$name.load(Ordering::Relaxed)
        })*
    };
}

impl ServeStats {
    stat_reader! {
        /// Well-formed queries received (UDP + TCP).
        queries,
        /// Queries answered straight from the cache.
        cache_hits,
        /// Queries forwarded to an upstream via a lookup machine.
        forwarded,
        /// Responses sent (UDP datagrams + TCP frames queued).
        responses,
        /// UDP responses sent with TC set (client should retry over TCP).
        truncated,
        /// UDP queries dropped by the per-client token bucket.
        rate_limited,
        /// Queries dropped because the forwarding window was full.
        overloaded,
        /// Datagrams/frames that failed to parse as a DNS query.
        malformed,
        /// Forwarded lookups that came back as SERVFAIL.
        servfail,
        /// TCP connections accepted.
        tcp_accepted,
        /// TCP connections closed (error, EOF, idle reap, or cap).
        tcp_closed,
        /// Cache hits served straight from a pre-encoded packet.
        packet_hits,
        /// Canonical responses memoized into the packet cache.
        packet_fills,
        /// Packet lookups that found an entry past its TTL deadline.
        packet_expired,
    }

    /// Packet entries dropped because the record cache promoted a fresher
    /// RRset. The packet cache (and this counter) is shared by the whole
    /// fleet — sum the per-worker readers above, but take this one from
    /// any single worker.
    pub fn packet_invalidations(&self) -> u64 {
        self.packet.get().map_or(0, |pc| pc.invalidations())
    }

    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// Where a query arrived and where its answer must go back.
#[derive(Debug, Clone, Copy)]
enum Via {
    Udp,
    Tcp { slot: usize, generation: u64 },
}

/// Everything needed to synthesize the response to a forwarded query once
/// its lookup machine finishes.
struct ClientContext {
    peer: SocketAddr,
    via: Via,
    txid: u16,
    flags: Flags,
    question: Question,
    udp_limit: usize,
    edns: bool,
    cookie: Option<Cookie>,
}

/// A finished forwarded lookup waiting for the serve tick to encode and
/// send its response.
struct PendingAnswer {
    ctx: ClientContext,
    result: LookupResult,
}

/// How the record-cache hit branch produced its response bytes.
enum HitEncoding {
    /// Packet cache disabled: the reply was scratch-encoded directly for
    /// this client, truncation already resolved (the A/B lever path).
    Direct { truncated: bool },
    /// The canonical form (ID 0, cookie-less, bare OPT tail) was encoded
    /// for memoization; the caller builds the [`PacketEntry`] and serves
    /// this client through the same patch path every future hit takes.
    Canonical { deadline: SimTime },
}

/// What [`ServerRole::handle_query`] decided about one inbound query.
enum HandleOutcome {
    /// A response was encoded into the role's scratch buffer; the caller
    /// sends `scratch.message_bytes()` back over the query's transport.
    Respond,
    /// A forwarding machine was queued for admission; the answer comes
    /// back through the pending queue later.
    Forwarded,
    /// Gated, malformed, or otherwise dropped — nothing to send.
    Dropped,
}

struct TcpConn {
    stream: TcpStream,
    peer: SocketAddr,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    last_seen: SimTime,
    /// Peer half-closed its write side; keep the connection only long
    /// enough to flush answers still in flight.
    closed_read: bool,
}

/// The server half of a bidirectional reactor: fairness gate, cache
/// front, forwarding queue, and the TCP connection table. Install one
/// with [`Reactor::set_server_role`](crate::reactor::Reactor::set_server_role)
/// and drive it with [`Reactor::serve_tick`](crate::reactor::Reactor::serve_tick)
/// or [`Reactor::run_serve`](crate::reactor::Reactor::run_serve).
pub struct ServerRole {
    resolver: Resolver,
    clock: Clock,
    config: ServeConfig,
    gate: ClientBuckets,
    /// Fleet-shared pre-encoded answer cache (`None` = disabled, the
    /// scratch-encode A/B lever).
    packet: Option<Arc<PacketCache>>,
    stats: Arc<ServeStats>,
    pending: Arc<Mutex<Vec<PendingAnswer>>>,
    admissions: Vec<Box<dyn SimClient>>,
    /// Dedicated listener socket (sharded mode). `None` = dual-role: the
    /// reactor's own socket is the listener and responses leave it too.
    listener: Option<UdpSocket>,
    tcp: Option<TcpListener>,
    conns: Vec<Option<TcpConn>>,
    conn_generations: Vec<u64>,
    scratch: ScratchBuf,
    recv_buf: Vec<u8>,
}

impl ServerRole {
    /// Build a server role around a forwarding resolver (External mode
    /// pointing at the upstreams) and a real-time clock.
    pub fn new(resolver: Resolver, clock: Clock, config: ServeConfig) -> ServerRole {
        let gate = ClientBuckets::new(config.client_pps, config.client_capacity);
        // The packet cache lives on the shared record cache so every
        // worker of a fleet sees one table, and `Cache::put` can
        // invalidate memoized answers at promotion time.
        let packet = (config.packet_cache_capacity > 0).then(|| {
            resolver
                .core()
                .cache
                .attach_packet_cache(config.packet_cache_capacity)
        });
        let stats = Arc::new(ServeStats::default());
        if let Some(pc) = &packet {
            let _ = stats.packet.set(Arc::clone(pc));
        }
        ServerRole {
            resolver,
            clock,
            config,
            gate,
            packet,
            stats,
            pending: Arc::new(Mutex::new(Vec::new())),
            admissions: Vec::new(),
            listener: None,
            tcp: None,
            conns: Vec::new(),
            conn_generations: Vec::new(),
            scratch: ScratchBuf::new(),
            recv_buf: vec![0u8; 65_535],
        }
    }

    /// Attach a dedicated UDP listener socket (sharded mode: each worker
    /// binds its own `SO_REUSEPORT` listener while the reactor keeps its
    /// ephemeral upstream socket). Responses to queries drained from this
    /// socket are sent from it.
    pub fn with_udp_listener(mut self, socket: UdpSocket) -> std::io::Result<ServerRole> {
        socket.set_nonblocking(true)?;
        zdns_netsim::set_recv_buffer(&socket, 8 << 20);
        self.listener = Some(socket);
        Ok(self)
    }

    /// Attach a non-blocking TCP listener serviced on the same event loop.
    pub fn with_tcp_listener(mut self, listener: TcpListener) -> std::io::Result<ServerRole> {
        listener.set_nonblocking(true)?;
        self.tcp = Some(listener);
        Ok(self)
    }

    /// The shared counters for this role.
    pub fn stats(&self) -> Arc<ServeStats> {
        Arc::clone(&self.stats)
    }

    /// The clock this role (and its cache fills) runs on.
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// The forwarding resolver behind the listener.
    pub fn resolver(&self) -> &Resolver {
        &self.resolver
    }

    /// Count a query dropped because the reactor's forwarding window was
    /// full (the admission loop could not host its machine).
    pub(crate) fn note_overload(&self) {
        ServeStats::bump(&self.stats.overloaded);
    }

    /// Pop one forwarding machine queued by a cache miss.
    pub(crate) fn pop_admission(&mut self) -> Option<Box<dyn SimClient>> {
        self.admissions.pop()
    }

    /// Whether the role has work the reactor's poll cannot see on its own
    /// socket: a dedicated listener, live TCP connections, or queued
    /// answers/admissions. Callers cap their sleep when this is true.
    pub(crate) fn wants_fast_tick(&self) -> bool {
        self.listener.is_some()
            || self.tcp.is_some()
            || !self.admissions.is_empty()
            || !self.pending.lock().is_empty()
    }

    /// One inbound UDP query (dual-role socket or dedicated listener):
    /// handle it and send any immediate response from `socket`.
    pub(crate) fn on_udp_datagram(
        &mut self,
        socket: &UdpSocket,
        raw: &[u8],
        peer: SocketAddr,
        now: SimTime,
    ) {
        // Count before sending: a client that has the answer in hand (and
        // a test reading the counter) must never observe the response as
        // uncounted. The Arc clone keeps `stats` reachable while the
        // returned slice borrows `self`.
        let stats = Arc::clone(&self.stats);
        if let Some(bytes) = self.handle_datagram(raw, peer, now) {
            ServeStats::bump(&stats.responses);
            let _ = socket.send_to(bytes, peer);
        }
    }

    /// Transport-free serve entry: run one raw UDP query through the full
    /// gate → packet cache → record cache dataflow and return the encoded
    /// response (borrowed from the role's scratch buffer) if one was
    /// produced immediately. Forwarded and dropped queries return `None`.
    /// This is the seam benches and tests use to measure the hot path
    /// without a socket send per query.
    pub fn handle_datagram(&mut self, raw: &[u8], peer: SocketAddr, now: SimTime) -> Option<&[u8]> {
        match self.handle_query(raw, peer, Via::Udp, now) {
            HandleOutcome::Respond => Some(self.scratch.message_bytes()),
            _ => None,
        }
    }

    /// Per-tick role work: drain the dedicated listener (if any), service
    /// the TCP table, and flush finished forwarded answers. `fallback` is
    /// the reactor's socket — the response path in dual-role mode.
    pub(crate) fn poll(&mut self, fallback: &UdpSocket, now: SimTime) {
        self.drain_listener(now);
        self.pump_tcp(now);
        self.flush_answers(fallback, now);
    }

    fn drain_listener(&mut self, now: SimTime) {
        let Some(listener) = self.listener.take() else {
            return;
        };
        let mut buf = std::mem::take(&mut self.recv_buf);
        for _ in 0..self.config.max_datagrams_per_tick {
            match listener.recv_from(&mut buf) {
                Ok((n, peer)) => self.on_udp_datagram(&listener, &buf[..n], peer, now),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        self.recv_buf = buf;
        self.listener = Some(listener);
    }

    /// Parse, gate, probe the cache, and either answer or forward one
    /// query. On [`HandleOutcome::Respond`] the encoded reply sits in
    /// `self.scratch` ([`ScratchBuf::message_bytes`]).
    fn handle_query(
        &mut self,
        raw: &[u8],
        peer: SocketAddr,
        via: Via,
        now: SimTime,
    ) -> HandleOutcome {
        let Ok(view) = MessageView::parse(raw) else {
            ServeStats::bump(&self.stats.malformed);
            return HandleOutcome::Dropped;
        };
        if view.flags().response {
            // A response reaching the server role (possible on a dedicated
            // listener) is noise, not a query.
            ServeStats::bump(&self.stats.malformed);
            return HandleOutcome::Dropped;
        }
        ServeStats::bump(&self.stats.queries);

        // Response-rate-limiting flavor: UDP only — dropping (not queueing)
        // over-budget clients caps reflection amplification, and TCP is
        // exactly the retry path we want abusers pushed onto.
        if matches!(via, Via::Udp) {
            if let IpAddr::V4(client) = peer.ip() {
                if !self.gate.admit(client, now) {
                    ServeStats::bump(&self.stats.rate_limited);
                    return HandleOutcome::Dropped;
                }
            }
        }

        let edns = view.has_edns();
        let udp_limit = match via {
            Via::Udp => (view.udp_payload_size().unwrap_or(0) as usize).max(MIN_UDP_PAYLOAD),
            Via::Tcp { .. } => usize::MAX,
        };
        // Cookie echo: the client half they sent plus our server half,
        // assembled on the stack (RFC 7873 §5.2).
        let cookie = view.cookie().and_then(|c| {
            let mut full = [0u8; CLIENT_COOKIE_LEN + SERVER_COOKIE.len()];
            full[..CLIENT_COOKIE_LEN].copy_from_slice(c.client_part());
            full[CLIENT_COOKIE_LEN..].copy_from_slice(&SERVER_COOKIE);
            Cookie::from_wire(&full)
        });

        let Some(qv) = view.question() else {
            // No question to answer: FORMERR with an empty question section.
            let _ = encode_response(
                &mut self.scratch,
                view.id(),
                view.flags(),
                Rcode::FormErr,
                None,
                &[],
                edns.then_some((self.config.udp_payload, cookie)),
                udp_limit,
            );
            return HandleOutcome::Respond;
        };
        // Alloc-free for names within the inline bound — the common case.
        let qname = qv.name.to_name();

        // Packet front: a memoized answer skips the shard lock, the
        // record walk, and the encode — memcpy, ID/flags patch, cookie
        // splice, TC re-check. IN-class only, matching the record cache's
        // implicit keying; anything else falls through to the record path.
        let in_class = qv.qclass == RecordClass::IN;
        if in_class {
            if let Some(pc) = &self.packet {
                match pc.lookup(&qname, qv.qtype, now) {
                    PacketLookup::Hit(entry) => {
                        let truncated = entry.serve_into(
                            &mut self.scratch,
                            view.id(),
                            view.flags(),
                            edns,
                            cookie.as_ref(),
                            udp_limit,
                        );
                        ServeStats::bump(&self.stats.cache_hits);
                        ServeStats::bump(&self.stats.packet_hits);
                        if truncated {
                            ServeStats::bump(&self.stats.truncated);
                        }
                        return HandleOutcome::Respond;
                    }
                    PacketLookup::Expired => ServeStats::bump(&self.stats.packet_expired),
                    PacketLookup::Miss => {}
                }
            }
        }

        // Cache front: encode the hit straight off the shared entry, under
        // the shard lock, with no cloning and no LRU touch. With the
        // packet cache enabled the encode is the canonical (memoizable)
        // form; entry construction and the per-client patch both happen
        // after the shard lock drops.
        let memoize = in_class && self.packet.is_some();
        let hit = {
            let scratch = &mut self.scratch;
            let payload = self.config.udp_payload;
            let id = view.id();
            let flags = view.flags();
            self.resolver.core().cache.with_records(
                &qname,
                qv.qtype,
                now,
                |records: &[Record], expires: SimTime| {
                    if memoize {
                        scratch.reset();
                        encode_sections(
                            scratch,
                            0,
                            flags,
                            Rcode::NoError,
                            Some((&qname, qv.qtype.to_u16(), qv.qclass.to_u16())),
                            records,
                            Some((payload, None)),
                            false,
                        );
                        HitEncoding::Canonical { deadline: expires }
                    } else {
                        HitEncoding::Direct {
                            truncated: encode_response(
                                scratch,
                                id,
                                flags,
                                Rcode::NoError,
                                Some((&qname, qv.qtype.to_u16(), qv.qclass.to_u16())),
                                records,
                                edns.then_some((payload, cookie)),
                                udp_limit,
                            ),
                        }
                    }
                },
            )
        };
        match hit {
            Some(HitEncoding::Direct { truncated }) => {
                ServeStats::bump(&self.stats.cache_hits);
                if truncated {
                    ServeStats::bump(&self.stats.truncated);
                }
                return HandleOutcome::Respond;
            }
            Some(HitEncoding::Canonical { deadline }) => {
                // Memoize before answering: even when this UDP reply must
                // truncate, the full canonical answer is already cached,
                // so the client's TCP retry hits the packet path (the
                // PR 7 fill-before-truncate learning). The deadline is
                // the record entry's own expiry, re-derived from (and
                // capped by) the encoded answers' minimum TTL.
                let min_ttl = min_answer_ttl(self.scratch.message_bytes()).unwrap_or(0);
                let deadline = deadline.min(now + u64::from(min_ttl) * SECONDS);
                let entry = Arc::new(PacketEntry::new(
                    qname,
                    qv.qtype,
                    deadline,
                    self.scratch.message_bytes(),
                ));
                if let Some(pc) = &self.packet {
                    pc.fill(Arc::clone(&entry));
                    ServeStats::bump(&self.stats.packet_fills);
                }
                let truncated = entry.serve_into(
                    &mut self.scratch,
                    view.id(),
                    view.flags(),
                    edns,
                    cookie.as_ref(),
                    udp_limit,
                );
                ServeStats::bump(&self.stats.cache_hits);
                if truncated {
                    ServeStats::bump(&self.stats.truncated);
                }
                return HandleOutcome::Respond;
            }
            None => {}
        }

        // Miss: forward through an ordinary lookup machine on this same
        // reactor. The sink fills the cache and parks the answer for the
        // next serve tick. Allocation here is fine — this is the cold path
        // the cache exists to make rare.
        let question = Question {
            name: qname,
            qtype: qv.qtype,
            qclass: qv.qclass,
        };
        let ctx = ClientContext {
            peer,
            via,
            txid: view.id(),
            flags: view.flags(),
            question: question.clone(),
            udp_limit,
            edns,
            cookie,
        };
        let ctx_cell = Mutex::new(Some(ctx));
        let pending = Arc::clone(&self.pending);
        let core = Arc::clone(self.resolver.core());
        let clock = self.clock;
        let sink: ResultSink = Arc::new(move |result: LookupResult| {
            if result.status == Status::NoError && !result.answers.is_empty() {
                // Promotion-time cache fill; `put` itself refuses types the
                // selective cache does not admit.
                core.cache.put(
                    CacheKey {
                        name: result.name.clone(),
                        rtype: result.qtype,
                    },
                    result.answers.clone(),
                    clock.now(),
                );
            }
            if let Some(ctx) = ctx_cell.lock().take() {
                pending.lock().push(PendingAnswer { ctx, result });
            }
        });
        let machine = self.resolver.machine(question, Some(sink));
        self.admissions.push(machine);
        ServeStats::bump(&self.stats.forwarded);
        HandleOutcome::Forwarded
    }

    /// Encode and deliver every forwarded answer whose machine finished.
    fn flush_answers(&mut self, fallback: &UdpSocket, now: SimTime) {
        if self.pending.lock().is_empty() {
            return;
        }
        let drained: Vec<PendingAnswer> = std::mem::take(&mut *self.pending.lock());
        for PendingAnswer { ctx, result } in drained {
            let rcode = match result.status {
                Status::NoError => Rcode::NoError,
                Status::NxDomain => Rcode::NxDomain,
                Status::Refused => Rcode::Refused,
                _ => Rcode::ServFail,
            };
            if rcode == Rcode::ServFail {
                ServeStats::bump(&self.stats.servfail);
            }
            let mut flags = ctx.flags;
            flags.response = true;
            flags.authoritative = false;
            flags.truncated = false;
            flags.recursion_available = true;
            flags.authenticated = false;
            let edns = ctx.edns.then(|| {
                let mut e = Edns {
                    udp_payload_size: self.config.udp_payload,
                    ..Edns::default()
                };
                if let Some(c) = ctx.cookie {
                    e.set_cookie(c);
                }
                e
            });
            let msg = Message {
                id: ctx.txid,
                flags,
                rcode: RcodeField(rcode),
                questions: vec![ctx.question],
                answers: result.answers,
                authorities: result.authorities,
                additionals: Vec::new(),
                edns,
            };
            match ctx.via {
                Via::Udp => {
                    self.scratch.reset();
                    let Ok(truncated) = msg.encode_udp_into(&mut self.scratch, ctx.udp_limit)
                    else {
                        continue;
                    };
                    if truncated {
                        ServeStats::bump(&self.stats.truncated);
                    }
                    let socket = self.listener.as_ref().unwrap_or(fallback);
                    // Count before sending (see `on_udp_datagram`).
                    ServeStats::bump(&self.stats.responses);
                    let _ = socket.send_to(self.scratch.message_bytes(), ctx.peer);
                }
                Via::Tcp { slot, generation } => {
                    if self.conn_generations.get(slot) != Some(&generation) {
                        continue; // connection closed while the lookup ran
                    }
                    let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
                        continue;
                    };
                    self.scratch.reset();
                    if msg.encode_into(&mut self.scratch).is_err() {
                        continue;
                    }
                    let bytes = self.scratch.message_bytes();
                    conn.write_buf
                        .extend_from_slice(&(bytes.len() as u16).to_be_bytes());
                    conn.write_buf.extend_from_slice(bytes);
                    conn.last_seen = now;
                    ServeStats::bump(&self.stats.responses);
                }
            }
        }
    }

    // -- TCP ---------------------------------------------------------------

    fn pump_tcp(&mut self, now: SimTime) {
        if self.tcp.is_none() {
            return;
        }
        self.accept_tcp(now);
        for slot in 0..self.conns.len() {
            let Some(mut conn) = self.conns[slot].take() else {
                continue;
            };
            let generation = self.conn_generations[slot];
            let mut alive = self.pump_conn(&mut conn, slot, generation, now);
            if alive && now.saturating_sub(conn.last_seen) > self.config.tcp_idle {
                alive = false;
            }
            if alive {
                self.conns[slot] = Some(conn);
            } else {
                self.conn_generations[slot] += 1;
                ServeStats::bump(&self.stats.tcp_closed);
            }
        }
    }

    fn accept_tcp(&mut self, now: SimTime) {
        let Some(listener) = self.tcp.take() else {
            return;
        };
        loop {
            match listener.accept() {
                Ok((stream, peer)) => {
                    let live = self.conns.iter().filter(|c| c.is_some()).count();
                    if live >= self.config.max_tcp_conns {
                        // Shed at the accept edge: dropping the socket sends
                        // RST/FIN now instead of wedging the new client.
                        ServeStats::bump(&self.stats.tcp_closed);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let conn = TcpConn {
                        stream,
                        peer,
                        read_buf: Vec::new(),
                        write_buf: Vec::new(),
                        write_pos: 0,
                        last_seen: now,
                        closed_read: false,
                    };
                    match self.conns.iter().position(Option::is_none) {
                        Some(slot) => self.conns[slot] = Some(conn),
                        None => {
                            self.conns.push(Some(conn));
                            self.conn_generations.push(0);
                        }
                    }
                    ServeStats::bump(&self.stats.tcp_accepted);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        self.tcp = Some(listener);
    }

    /// Service one connection: flush buffered writes, read what is
    /// available (bounded per tick), and answer every complete
    /// length-prefixed frame. Returns whether the connection stays alive.
    fn pump_conn(
        &mut self,
        conn: &mut TcpConn,
        slot: usize,
        generation: u64,
        now: SimTime,
    ) -> bool {
        // Writes first: answers queued by earlier ticks (forwarded
        // lookups) leave before new reads can queue more.
        while conn.write_pos < conn.write_buf.len() {
            match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                Ok(0) => return false,
                Ok(n) => {
                    conn.write_pos += n;
                    conn.last_seen = now;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        if conn.write_pos > 0 && conn.write_pos == conn.write_buf.len() {
            conn.write_buf.clear();
            conn.write_pos = 0;
        }

        let mut tmp = [0u8; 4096];
        let mut budget = TCP_READ_BUDGET;
        loop {
            // Answer every complete frame already buffered.
            while conn.read_buf.len() >= 2 {
                let need = 2 + u16::from_be_bytes([conn.read_buf[0], conn.read_buf[1]]) as usize;
                if conn.read_buf.len() < need {
                    break;
                }
                conn.last_seen = now;
                let outcome = self.handle_query(
                    &conn.read_buf[2..need],
                    conn.peer,
                    Via::Tcp { slot, generation },
                    now,
                );
                if let HandleOutcome::Respond = outcome {
                    let bytes = self.scratch.message_bytes();
                    conn.write_buf
                        .extend_from_slice(&(bytes.len() as u16).to_be_bytes());
                    conn.write_buf.extend_from_slice(bytes);
                    ServeStats::bump(&self.stats.responses);
                }
                conn.read_buf.drain(..need);
            }
            if conn.closed_read || budget == 0 {
                break;
            }
            match conn.stream.read(&mut tmp) {
                Ok(0) => {
                    conn.closed_read = true;
                }
                Ok(n) => {
                    conn.read_buf.extend_from_slice(&tmp[..n]);
                    budget = budget.saturating_sub(n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        // Half-closed and fully flushed: nothing more can happen here.
        if conn.closed_read && conn.write_pos == conn.write_buf.len() {
            return false;
        }
        // Unflushed writes on a connection we still hold: try again next
        // tick.
        true
    }
}

/// Encode a response directly from wire primitives into `scratch` —
/// header, echoed question, borrowed answer records, and a hand-rolled
/// OPT with the cookie echo. Zero heap allocations. If the encoded
/// message exceeds `udp_limit` it is re-encoded empty with TC set
/// (all-or-nothing truncation: cached RRsets are small, and the client's
/// TCP retry gets the full answer). Returns whether truncation happened.
#[allow(clippy::too_many_arguments)]
fn encode_response(
    scratch: &mut ScratchBuf,
    id: u16,
    query_flags: Flags,
    rcode: Rcode,
    question: Option<(&zdns_wire::Name, u16, u16)>,
    answers: &[Record],
    edns: Option<(u16, Option<Cookie>)>,
    udp_limit: usize,
) -> bool {
    scratch.reset();
    encode_sections(
        scratch,
        id,
        query_flags,
        rcode,
        question,
        answers,
        edns,
        false,
    );
    if scratch.message_bytes().len() > udp_limit {
        scratch.abort_message();
        encode_sections(scratch, id, query_flags, rcode, question, &[], edns, true);
        return true;
    }
    false
}

#[allow(clippy::too_many_arguments)]
fn encode_sections(
    scratch: &mut ScratchBuf,
    id: u16,
    query_flags: Flags,
    rcode: Rcode,
    question: Option<(&zdns_wire::Name, u16, u16)>,
    answers: &[Record],
    edns: Option<(u16, Option<Cookie>)>,
    tc: bool,
) {
    scratch.begin_message();
    let mut flags = query_flags;
    flags.response = true;
    flags.authoritative = false;
    flags.truncated = tc;
    flags.recursion_available = true;
    flags.authenticated = false;
    let header = Header {
        id,
        flags,
        rcode_low: (rcode.to_u16() & 0x0F) as u8,
        qdcount: question.is_some() as u16,
        ancount: answers.len() as u16,
        nscount: 0,
        arcount: edns.is_some() as u16,
    };
    // Writes into a growable scratch cannot fail below the 64 KiB message
    // cap, and a cached RRset plus OPT sits far under it; a pathological
    // overflow yields a short buffer the client discards as malformed.
    let _ = header.encode(scratch);
    if let Some((name, qtype, qclass)) = question {
        let _ = scratch.write_name(name);
        let _ = scratch.write_u16(qtype);
        let _ = scratch.write_u16(qclass);
    }
    for record in answers {
        let _ = record.encode(scratch);
    }
    if let Some((payload, cookie)) = edns {
        // Hand-rolled OPT pseudo-record: root name, type OPT, requestor
        // payload size in CLASS, zeroed TTL (extended rcode 0, version 0,
        // no flags), then the cookie option if the query carried one.
        let _ = scratch.write_u8(0);
        let _ = scratch.write_u16(RecordType::OPT.to_u16());
        let _ = scratch.write_u16(payload);
        let _ = scratch.write_u32(0);
        match cookie {
            Some(c) => {
                let bytes = c.as_bytes();
                let _ = scratch.write_u16(4 + bytes.len() as u16);
                let _ = scratch.write_u16(OPTION_COOKIE);
                let _ = scratch.write_u16(bytes.len() as u16);
                let _ = scratch.write_bytes(bytes);
            }
            None => {
                let _ = scratch.write_u16(0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ResolverConfig;
    use zdns_wire::Name;

    fn question(name: &str) -> Question {
        Question::new(name.parse().unwrap(), RecordType::A)
    }

    fn role_with_cache() -> ServerRole {
        let resolver = Resolver::new(ResolverConfig::external(vec!["192.0.2.53"
            .parse()
            .unwrap()]));
        ServerRole::new(resolver, Clock::new(), ServeConfig::default())
    }

    fn query_bytes(id: u16, name: &str, cookie: Option<Cookie>) -> Vec<u8> {
        let mut scratch = ScratchBuf::new();
        zdns_wire::encode_query_into(&mut scratch, id, &question(name), true, cookie.as_ref())
            .unwrap();
        scratch.take_bytes()
    }

    #[test]
    fn cache_hit_is_answered_in_place_with_cookie_echo() {
        let mut role = role_with_cache();
        let now = role.clock.now();
        let name: Name = "cached.example".parse().unwrap();
        role.resolver.core().cache.put(
            CacheKey {
                name: name.clone(),
                rtype: RecordType::A,
            },
            vec![Record::new(
                name.clone(),
                300,
                zdns_wire::RData::A("192.0.2.7".parse().unwrap()),
            )],
            now,
        );
        let cookie = Cookie::client(*b"clientCK");
        let raw = query_bytes(0x4242, "cached.example", Some(cookie));
        let peer: SocketAddr = "127.0.0.1:50000".parse().unwrap();
        let outcome = role.handle_query(&raw, peer, Via::Udp, now);
        assert!(matches!(outcome, HandleOutcome::Respond));
        let reply = MessageView::parse(role.scratch.message_bytes()).unwrap();
        assert_eq!(reply.id(), 0x4242);
        assert!(reply.flags().response);
        assert!(reply.flags().recursion_available);
        assert_eq!(reply.answer_count(), 1);
        let echoed = reply.cookie().expect("cookie echoed");
        assert_eq!(echoed.client_part(), b"clientCK");
        assert_eq!(echoed.server_part(), &SERVER_COOKIE[..]);
        assert_eq!(role.stats.cache_hits(), 1);
        assert_eq!(role.stats.forwarded(), 0);
    }

    #[test]
    fn cache_miss_queues_a_forwarding_machine() {
        let mut role = role_with_cache();
        let now = role.clock.now();
        let raw = query_bytes(7, "missing.example", None);
        let peer: SocketAddr = "127.0.0.1:50001".parse().unwrap();
        let outcome = role.handle_query(&raw, peer, Via::Udp, now);
        assert!(matches!(outcome, HandleOutcome::Forwarded));
        assert!(role.pop_admission().is_some());
        assert_eq!(role.stats.forwarded(), 1);
    }

    #[test]
    fn oversized_hit_truncates_to_the_advertised_limit() {
        let mut role = role_with_cache();
        let now = role.clock.now();
        let name: Name = "fat.example".parse().unwrap();
        let records: Vec<Record> = (0..120)
            .map(|i| {
                Record::new(
                    name.clone(),
                    300,
                    zdns_wire::RData::A(std::net::Ipv4Addr::new(10, 0, (i >> 8) as u8, i as u8)),
                )
            })
            .collect();
        role.resolver.core().cache.put(
            CacheKey {
                name: name.clone(),
                rtype: RecordType::A,
            },
            records,
            now,
        );
        // EDNS advertises 1232; 120 A records (~16 bytes each compressed)
        // exceed it, so the UDP answer must come back empty with TC set.
        let raw = query_bytes(9, "fat.example", None);
        let peer: SocketAddr = "127.0.0.1:50002".parse().unwrap();
        let outcome = role.handle_query(&raw, peer, Via::Udp, now);
        assert!(matches!(outcome, HandleOutcome::Respond));
        let reply = MessageView::parse(role.scratch.message_bytes()).unwrap();
        assert!(reply.flags().truncated);
        assert_eq!(reply.answer_count(), 0);
        assert_eq!(role.stats.truncated(), 1);
        // The same query over TCP gets the full answer.
        let outcome = role.handle_query(
            &raw,
            peer,
            Via::Tcp {
                slot: 0,
                generation: 0,
            },
            now,
        );
        assert!(matches!(outcome, HandleOutcome::Respond));
        let reply = MessageView::parse(role.scratch.message_bytes()).unwrap();
        assert!(!reply.flags().truncated);
        assert_eq!(reply.answer_count(), 120);
    }

    #[test]
    fn per_client_gate_drops_udp_but_never_tcp() {
        let resolver = Resolver::new(ResolverConfig::external(vec!["192.0.2.53"
            .parse()
            .unwrap()]));
        let config = ServeConfig {
            client_pps: 1.0,
            ..ServeConfig::default()
        };
        let mut role = ServerRole::new(resolver, Clock::new(), config);
        let now = role.clock.now();
        let name: Name = "gated.example".parse().unwrap();
        role.resolver.core().cache.put(
            CacheKey {
                name: name.clone(),
                rtype: RecordType::A,
            },
            vec![Record::new(
                name,
                300,
                zdns_wire::RData::A("192.0.2.8".parse().unwrap()),
            )],
            now,
        );
        let raw = query_bytes(1, "gated.example", None);
        let peer: SocketAddr = "127.0.0.1:50003".parse().unwrap();
        assert!(matches!(
            role.handle_query(&raw, peer, Via::Udp, now),
            HandleOutcome::Respond
        ));
        // Bucket of 1 pps: the immediate second UDP query is dropped...
        assert!(matches!(
            role.handle_query(&raw, peer, Via::Udp, now),
            HandleOutcome::Dropped
        ));
        assert_eq!(role.stats.rate_limited(), 1);
        // ...but TCP is never gated.
        assert!(matches!(
            role.handle_query(
                &raw,
                peer,
                Via::Tcp {
                    slot: 0,
                    generation: 0
                },
                now
            ),
            HandleOutcome::Respond
        ));
    }

    #[test]
    fn questionless_query_gets_formerr() {
        let mut role = role_with_cache();
        let now = role.clock.now();
        let mut scratch = ScratchBuf::new();
        scratch.begin_message();
        Header {
            id: 77,
            ..Header::default()
        }
        .encode(&mut scratch)
        .unwrap();
        let raw = scratch.take_bytes();
        let peer: SocketAddr = "127.0.0.1:50004".parse().unwrap();
        let outcome = role.handle_query(&raw, peer, Via::Udp, now);
        assert!(matches!(outcome, HandleOutcome::Respond));
        let reply = MessageView::parse(role.scratch.message_bytes()).unwrap();
        assert_eq!(reply.id(), 77);
        assert_eq!(reply.rcode(), Rcode::FormErr);
        assert_eq!(reply.question_count(), 0);
    }
}
