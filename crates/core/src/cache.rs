//! The selective infrastructure cache (§3.4 "Selective Caching").
//!
//! ZDNS caches **only NS records and glue addresses** so iterative walks can
//! skip the root/TLD layers, but never caches answers for the leaf names
//! being scanned — a measurement tool queries mostly unique names, and
//! caching them would only thrash the structures that matter.
//!
//! The cache is a sharded, TTL-aware LRU. Shards keep lock hold times short
//! when tens of thousands of lookup routines share one resolver; eviction
//! and expiry are exact so Figure 2's cache-size sweep measures the policy,
//! not implementation noise.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use zdns_wire::{Name, Record, RecordType};

use zdns_netsim::{SimTime, SECONDS};

/// Cache key: owner name + record type (class is always IN here).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Owner name, case-normalized by `Name`'s hash/eq.
    pub name: Name,
    /// Record type (NS, A, or AAAA under the selective policy).
    pub rtype: RecordType,
}

#[derive(Debug, Clone)]
struct Entry {
    records: Vec<Record>,
    expires: SimTime,
    stamp: u64,
}

struct Shard {
    map: HashMap<CacheKey, Entry>,
    lru: BTreeMap<u64, CacheKey>,
    clock: u64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            map: HashMap::new(),
            lru: BTreeMap::new(),
            clock: 0,
        }
    }

    fn touch(&mut self, key: &CacheKey) {
        if let Some(entry) = self.map.get_mut(key) {
            self.lru.remove(&entry.stamp);
            self.clock += 1;
            entry.stamp = self.clock;
            self.lru.insert(self.clock, key.clone());
        }
    }
}

/// Counters exposed for Figure 2's hit-rate series.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Lookup calls that found a live entry.
    pub hits: AtomicU64,
    /// Lookup calls that missed (absent or expired).
    pub misses: AtomicU64,
    /// Entries evicted by the LRU bound.
    pub evictions: AtomicU64,
}

impl CacheStats {
    /// Hit fraction so far.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits.load(Ordering::Relaxed) as f64;
        let m = self.misses.load(Ordering::Relaxed) as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

/// The sharded selective cache.
pub struct Cache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    /// Shared counters.
    pub stats: CacheStats,
}

/// Number of shards; power of two for cheap masking.
const SHARDS: usize = 64;

impl Cache {
    /// Build a cache bounded to roughly `capacity` total entries.
    pub fn new(capacity: usize) -> Cache {
        let per_shard_capacity = (capacity / SHARDS).max(1);
        Cache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            per_shard_capacity,
            stats: CacheStats::default(),
        }
    }

    /// Total capacity (approximate: per-shard bound × shards).
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * SHARDS
    }

    /// Current entry count across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shard `key` routes to. `Name`'s hash is case-insensitive and
    /// allocation-free, so case-variant spellings of one name always land
    /// on the same shard without building a lowercased key — exposed so
    /// tests can pin that property down.
    pub fn shard_index(&self, key: &CacheKey) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) & (SHARDS - 1)
    }

    fn shard_for(&self, key: &CacheKey) -> &Mutex<Shard> {
        &self.shards[self.shard_index(key)]
    }

    /// The selective policy: only infrastructure RRsets are admitted.
    pub fn admits(rtype: RecordType) -> bool {
        rtype.is_infrastructure()
    }

    /// Insert an RRset (all records must share the key). Non-infrastructure
    /// types are silently refused — that is the point of the policy.
    pub fn put(&self, key: CacheKey, records: Vec<Record>, now: SimTime) {
        if !Self::admits(key.rtype) || records.is_empty() {
            return;
        }
        let ttl = records.iter().map(|r| r.ttl).min().unwrap_or(0) as u64;
        if ttl == 0 {
            return;
        }
        let expires = now + ttl * SECONDS;
        let mut shard = self.shard_for(&key).lock();
        shard.clock += 1;
        let stamp = shard.clock;
        if let Some(old) = shard.map.insert(
            key.clone(),
            Entry {
                records,
                expires,
                stamp,
            },
        ) {
            shard.lru.remove(&old.stamp);
        }
        shard.lru.insert(stamp, key);
        // Evict beyond capacity.
        while shard.map.len() > self.per_shard_capacity {
            let Some((&oldest, _)) = shard.lru.iter().next() else {
                break;
            };
            if let Some(victim) = shard.lru.remove(&oldest) {
                shard.map.remove(&victim);
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Look up a live RRset, refreshing its LRU position.
    pub fn get(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<Vec<Record>> {
        let found = self.probe(name, rtype, now);
        if found.is_some() {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// [`Cache::get`] without touching the hit/miss counters (LRU refresh
    /// and expiry still apply) — for multi-probe operations that must
    /// count as one logical lookup.
    fn probe(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<Vec<Record>> {
        let key = CacheKey {
            name: name.clone(),
            rtype,
        };
        let mut shard = self.shard_for(&key).lock();
        match shard.map.get(&key) {
            Some(entry) if entry.expires > now => {
                let records = entry.records.clone();
                shard.touch(&key);
                Some(records)
            }
            Some(_) => {
                // Expired: drop it.
                if let Some(old) = shard.map.remove(&key) {
                    shard.lru.remove(&old.stamp);
                }
                None
            }
            None => None,
        }
    }

    /// Run `f` over a live RRset in place — the serve path's cache hit,
    /// which must not clone the records ([`Cache::get`] does) or the
    /// steady-state zero-allocation property dies in the cache. Counts
    /// one hit or miss like `get`, and drops expired entries the same
    /// way, but deliberately skips the LRU refresh: re-stamping recency
    /// allocates a `BTreeMap` node, so entries read through here keep
    /// their insertion stamp and look older to eviction than they are —
    /// an accepted trade for a hot path that answers from borrowed data.
    /// `f` runs under the shard lock; keep it short.
    pub fn with_records<R>(
        &self,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
        f: impl FnOnce(&[Record]) -> R,
    ) -> Option<R> {
        let key = CacheKey {
            name: name.clone(),
            rtype,
        };
        let mut shard = self.shard_for(&key).lock();
        match shard.map.get(&key) {
            Some(entry) if entry.expires > now => {
                let out = f(&entry.records);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(out)
            }
            Some(_) => {
                // Expired: drop it.
                if let Some(old) = shard.map.remove(&key) {
                    shard.lru.remove(&old.stamp);
                }
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Find the deepest cached NS RRset enclosing `qname` (the zone cut an
    /// iterative walk can start from). Returns `(cut, ns_records)`.
    ///
    /// Counts exactly one hit (a usable cut was found) or one miss (none
    /// was) per call: probing every suffix depth must not inflate
    /// `CacheStats.misses` by the number of unexplored depths, or the
    /// Figure-2 hit-rate sweep measures the walk, not the policy.
    pub fn deepest_cut(&self, qname: &Name, now: SimTime) -> Option<(Name, Vec<Record>)> {
        for depth in (1..=qname.label_count()).rev() {
            let candidate = qname.suffix(depth);
            if let Some(records) = self.probe(&candidate, RecordType::NS, now) {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                return Some((candidate, records));
            }
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zdns_wire::RData;

    fn ns_record(zone: &str, target: &str, ttl: u32) -> Record {
        Record::new(
            zone.parse().unwrap(),
            ttl,
            RData::Ns(target.parse().unwrap()),
        )
    }

    fn a_record(name: &str, addr: &str, ttl: u32) -> Record {
        Record::new(name.parse().unwrap(), ttl, RData::A(addr.parse().unwrap()))
    }

    fn key(name: &str, rtype: RecordType) -> CacheKey {
        CacheKey {
            name: name.parse().unwrap(),
            rtype,
        }
    }

    #[test]
    fn selective_policy_rejects_leaf_types() {
        assert!(Cache::admits(RecordType::NS));
        assert!(Cache::admits(RecordType::A));
        assert!(Cache::admits(RecordType::AAAA));
        assert!(!Cache::admits(RecordType::PTR));
        assert!(!Cache::admits(RecordType::TXT));
        assert!(!Cache::admits(RecordType::MX));
        assert!(!Cache::admits(RecordType::CAA));
        let cache = Cache::new(64);
        cache.put(
            key("example.com", RecordType::TXT),
            vec![Record::new(
                "example.com".parse().unwrap(),
                300,
                RData::Txt(zdns_wire::rdata::TxtData::from_text("x")),
            )],
            0,
        );
        assert!(cache.is_empty());
    }

    #[test]
    fn put_get_roundtrip() {
        let cache = Cache::new(64);
        let recs = vec![ns_record("com", "a.gtld-servers.net", 172800)];
        cache.put(key("com", RecordType::NS), recs.clone(), 0);
        assert_eq!(
            cache.get(&"com".parse().unwrap(), RecordType::NS, SECONDS),
            Some(recs)
        );
        assert_eq!(cache.stats.hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn ttl_expiry() {
        let cache = Cache::new(64);
        cache.put(
            key("com", RecordType::NS),
            vec![ns_record("com", "a.gtld-servers.net", 10)],
            0,
        );
        assert!(cache
            .get(&"com".parse().unwrap(), RecordType::NS, 9 * SECONDS)
            .is_some());
        assert!(cache
            .get(&"com".parse().unwrap(), RecordType::NS, 11 * SECONDS)
            .is_none());
        // Expired entry is gone entirely.
        assert!(cache.is_empty());
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        // One shard: capacity under SHARDS entries rounds to 1 per shard;
        // use keys that land anywhere and a big enough run to force
        // evictions.
        let cache = Cache::new(SHARDS); // 1 per shard
        for i in 0..10 * SHARDS {
            cache.put(
                key(&format!("zone{i}.test"), RecordType::NS),
                vec![ns_record(&format!("zone{i}.test"), "ns.zone.test", 3600)],
                0,
            );
        }
        assert!(cache.len() <= cache.capacity());
        assert!(cache.stats.evictions.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn lru_touch_protects_hot_entries() {
        let cache = Cache::new(SHARDS * 2);
        // Fill one shard deterministically by reusing the same name with
        // different types (same shard not guaranteed, so instead verify
        // semantics: a touched entry survives longer than untouched ones).
        cache.put(
            key("hot.test", RecordType::NS),
            vec![ns_record("hot.test", "ns.hot.test", 3600)],
            0,
        );
        for i in 0..SHARDS * 20 {
            // Keep touching the hot entry while inserting others.
            let _ = cache.get(&"hot.test".parse().unwrap(), RecordType::NS, 0);
            cache.put(
                key(&format!("cold{i}.test"), RecordType::NS),
                vec![ns_record(&format!("cold{i}.test"), "ns.c.test", 3600)],
                0,
            );
        }
        assert!(
            cache
                .get(&"hot.test".parse().unwrap(), RecordType::NS, 0)
                .is_some(),
            "hot entry evicted despite constant use"
        );
    }

    #[test]
    fn deepest_cut_walks_up() {
        let cache = Cache::new(1024);
        cache.put(
            key("com", RecordType::NS),
            vec![ns_record("com", "a.gtld-servers.net", 172800)],
            0,
        );
        cache.put(
            key("example.com", RecordType::NS),
            vec![ns_record("example.com", "ns1.example.com", 172800)],
            0,
        );
        let (cut, _) = cache
            .deepest_cut(&"www.example.com".parse().unwrap(), 0)
            .unwrap();
        assert_eq!(cut, "example.com".parse().unwrap());
        let (cut2, _) = cache.deepest_cut(&"other.com".parse().unwrap(), 0).unwrap();
        assert_eq!(cut2, "com".parse().unwrap());
        assert!(cache
            .deepest_cut(&"example.org".parse().unwrap(), 0)
            .is_none());
    }

    #[test]
    fn deepest_cut_counts_one_stat_per_call() {
        let cache = Cache::new(1024);
        cache.put(
            key("com", RecordType::NS),
            vec![ns_record("com", "a.gtld-servers.net", 172800)],
            0,
        );
        // A miss probes every suffix depth but must count once, or the
        // Figure-2 hit-rate sweep is skewed by unexplored depths.
        assert!(cache
            .deepest_cut(&"a.b.c.d.example.org".parse().unwrap(), 0)
            .is_none());
        assert_eq!(cache.stats.misses.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats.hits.load(Ordering::Relaxed), 0);
        // A hit at any depth counts one hit — and none of the deeper
        // probes that missed on the way down.
        assert!(cache
            .deepest_cut(&"www.deep.example.com".parse().unwrap(), 0)
            .is_some());
        assert_eq!(cache.stats.misses.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats.hits.load(Ordering::Relaxed), 1);
        assert!((cache.stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn glue_addresses_cacheable() {
        let cache = Cache::new(64);
        cache.put(
            key("ns1.example.com", RecordType::A),
            vec![a_record("ns1.example.com", "198.51.100.1", 172800)],
            0,
        );
        assert!(cache
            .get(&"ns1.example.com".parse().unwrap(), RecordType::A, 0)
            .is_some());
    }

    #[test]
    fn zero_ttl_not_cached() {
        let cache = Cache::new(64);
        cache.put(
            key("com", RecordType::NS),
            vec![ns_record("com", "a.gtld-servers.net", 0)],
            0,
        );
        assert!(cache.is_empty());
    }

    #[test]
    fn with_records_reads_in_place() {
        let cache = Cache::new(64);
        cache.put(
            key("com", RecordType::NS),
            vec![ns_record("com", "a.gtld-servers.net", 10)],
            0,
        );
        let com: Name = "com".parse().unwrap();
        let n = cache.with_records(&com, RecordType::NS, 0, |recs| recs.len());
        assert_eq!(n, Some(1));
        assert_eq!(cache.stats.hits.load(Ordering::Relaxed), 1);
        assert!(cache
            .with_records(&"org".parse().unwrap(), RecordType::NS, 0, |_| ())
            .is_none());
        assert_eq!(cache.stats.misses.load(Ordering::Relaxed), 1);
        // Expiry drops the entry exactly like `get`.
        assert!(cache
            .with_records(&com, RecordType::NS, 11 * SECONDS, |_| ())
            .is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.stats.misses.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn hit_rate_math() {
        let cache = Cache::new(64);
        cache.put(
            key("com", RecordType::NS),
            vec![ns_record("com", "x.test", 3600)],
            0,
        );
        let _ = cache.get(&"com".parse().unwrap(), RecordType::NS, 0); // hit
        let _ = cache.get(&"org".parse().unwrap(), RecordType::NS, 0); // miss
        assert!((cache.stats.hit_rate() - 0.5).abs() < 1e-9);
    }
}
