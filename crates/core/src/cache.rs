//! The selective infrastructure cache (§3.4 "Selective Caching").
//!
//! ZDNS caches **only NS records and glue addresses** so iterative walks can
//! skip the root/TLD layers, but never caches answers for the leaf names
//! being scanned — a measurement tool queries mostly unique names, and
//! caching them would only thrash the structures that matter.
//!
//! The cache is a sharded, TTL-aware LRU. Shards keep lock hold times short
//! when tens of thousands of lookup routines share one resolver; eviction
//! and expiry are exact so Figure 2's cache-size sweep measures the policy,
//! not implementation noise.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use zdns_wire::{Name, Record, RecordType};

use crate::packet_cache::PacketCache;
use zdns_netsim::{SimTime, SECONDS};

/// Cache key: owner name + record type (class is always IN here).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Owner name, case-normalized by `Name`'s hash/eq.
    pub name: Name,
    /// Record type (NS, A, or AAAA under the selective policy).
    pub rtype: RecordType,
}

#[derive(Debug, Clone)]
struct Entry {
    records: Vec<Record>,
    expires: SimTime,
    stamp: u64,
}

struct Shard {
    map: HashMap<CacheKey, Entry>,
    lru: BTreeMap<u64, CacheKey>,
    clock: u64,
}

impl Shard {
    fn new() -> Shard {
        Shard {
            map: HashMap::new(),
            lru: BTreeMap::new(),
            clock: 0,
        }
    }

    fn touch(&mut self, key: &CacheKey) {
        if let Some(entry) = self.map.get_mut(key) {
            self.lru.remove(&entry.stamp);
            self.clock += 1;
            entry.stamp = self.clock;
            self.lru.insert(self.clock, key.clone());
        }
    }
}

/// Counters exposed for Figure 2's hit-rate series.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Lookup calls that found a live entry.
    pub hits: AtomicU64,
    /// Lookup calls that missed (absent or expired).
    pub misses: AtomicU64,
    /// Entries evicted by the LRU bound.
    pub evictions: AtomicU64,
}

impl CacheStats {
    /// Hit fraction so far.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits.load(Ordering::Relaxed) as f64;
        let m = self.misses.load(Ordering::Relaxed) as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

/// The sharded selective cache.
pub struct Cache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry counts, maintained at every insert/remove so
    /// [`Cache::len`] (telemetry, status lines) never sweeps the locks.
    counts: Vec<AtomicUsize>,
    per_shard_capacity: usize,
    /// The serve-path packet cache riding in front of this record cache,
    /// installed once per fleet ([`Cache::attach_packet_cache`]). Living
    /// here means [`Cache::put`] can invalidate memoized answers whenever
    /// it promotes a fresher RRset, with no extra plumbing through the
    /// resolver or the reactor.
    packet: OnceLock<Arc<PacketCache>>,
    /// Shared counters.
    pub stats: CacheStats,
}

/// Number of shards; power of two for cheap masking.
const SHARDS: usize = 64;

impl Cache {
    /// Build a cache bounded to roughly `capacity` total entries.
    pub fn new(capacity: usize) -> Cache {
        let per_shard_capacity = (capacity / SHARDS).max(1);
        Cache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            counts: (0..SHARDS).map(|_| AtomicUsize::new(0)).collect(),
            per_shard_capacity,
            packet: OnceLock::new(),
            stats: CacheStats::default(),
        }
    }

    /// Install (idempotently) the shared packet cache for this record
    /// cache and return it. Every serve worker of a fleet calls this with
    /// the same capacity; the first call wins, so they all share one
    /// table and one invalidation hook.
    pub fn attach_packet_cache(&self, capacity: usize) -> Arc<PacketCache> {
        Arc::clone(
            self.packet
                .get_or_init(|| Arc::new(PacketCache::new(capacity))),
        )
    }

    /// The attached packet cache, if any worker installed one.
    pub fn packet_cache(&self) -> Option<&Arc<PacketCache>> {
        self.packet.get()
    }

    /// Total capacity (approximate: per-shard bound × shards).
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * SHARDS
    }

    /// Current entry count across shards — summed from relaxed per-shard
    /// counters, so telemetry reads (status lines, tests) never sweep all
    /// 64 shard locks.
    pub fn len(&self) -> usize {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shard `key` routes to. `Name`'s hash is case-insensitive and
    /// allocation-free, so case-variant spellings of one name always land
    /// on the same shard without building a lowercased key — exposed so
    /// tests can pin that property down.
    pub fn shard_index(&self, key: &CacheKey) -> usize {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) & (SHARDS - 1)
    }

    /// The selective policy: only infrastructure RRsets are admitted.
    pub fn admits(rtype: RecordType) -> bool {
        rtype.is_infrastructure()
    }

    /// Insert an RRset (all records must share the key). Non-infrastructure
    /// types are silently refused — that is the point of the policy.
    pub fn put(&self, key: CacheKey, records: Vec<Record>, now: SimTime) {
        if !Self::admits(key.rtype) || records.is_empty() {
            return;
        }
        let ttl = records.iter().map(|r| r.ttl).min().unwrap_or(0) as u64;
        if ttl == 0 {
            return;
        }
        let expires = now + ttl * SECONDS;
        let idx = self.shard_index(&key);
        // Snapshot the key for the packet-cache hook before it moves into
        // the LRU (inline names copy without allocating).
        let stale_packet = self.packet.get().map(|_| (key.name.clone(), key.rtype));
        {
            let mut shard = self.shards[idx].lock();
            shard.clock += 1;
            let stamp = shard.clock;
            if let Some(old) = shard.map.insert(
                key.clone(),
                Entry {
                    records,
                    expires,
                    stamp,
                },
            ) {
                shard.lru.remove(&old.stamp);
            } else {
                self.counts[idx].fetch_add(1, Ordering::Relaxed);
            }
            shard.lru.insert(stamp, key);
            // Evict beyond capacity.
            while shard.map.len() > self.per_shard_capacity {
                let Some((&oldest, _)) = shard.lru.iter().next() else {
                    break;
                };
                if let Some(victim) = shard.lru.remove(&oldest) {
                    shard.map.remove(&victim);
                    self.counts[idx].fetch_sub(1, Ordering::Relaxed);
                    self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        // Promote, *then* invalidate (outside the shard lock): a reader
        // racing between the two can only memoize the fresh RRset, and a
        // fresh entry dropped by this invalidation just refills on the
        // next query. The reverse order could leave a stale packet entry
        // memoized from the old records.
        if let Some((name, rtype)) = stale_packet {
            if let Some(pc) = self.packet.get() {
                pc.invalidate(&name, rtype);
            }
        }
    }

    /// Look up a live RRset, refreshing its LRU position. Clones the
    /// records — fine for tests and the netsim harness, wrong for the
    /// resolver/serve hot paths, which all go through the borrowing
    /// [`Cache::with_records`] instead (audited: the iterative walk's
    /// glue probe and the serve cache front both do).
    pub fn get(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<Vec<Record>> {
        let found = self.probe(name, rtype, now);
        if found.is_some() {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// [`Cache::get`] without touching the hit/miss counters (LRU refresh
    /// and expiry still apply) — for multi-probe operations that must
    /// count as one logical lookup.
    fn probe(&self, name: &Name, rtype: RecordType, now: SimTime) -> Option<Vec<Record>> {
        let key = CacheKey {
            name: name.clone(),
            rtype,
        };
        let idx = self.shard_index(&key);
        let mut shard = self.shards[idx].lock();
        match shard.map.get(&key) {
            Some(entry) if entry.expires > now => {
                let records = entry.records.clone();
                shard.touch(&key);
                Some(records)
            }
            Some(_) => {
                // Expired: drop it.
                if let Some(old) = shard.map.remove(&key) {
                    shard.lru.remove(&old.stamp);
                    self.counts[idx].fetch_sub(1, Ordering::Relaxed);
                }
                None
            }
            None => None,
        }
    }

    /// Run `f` over a live RRset in place — the serve path's cache hit,
    /// which must not clone the records ([`Cache::get`] does) or the
    /// steady-state zero-allocation property dies in the cache. Counts
    /// one hit or miss like `get`, and drops expired entries the same
    /// way, but deliberately skips the LRU refresh: re-stamping recency
    /// allocates a `BTreeMap` node, so entries read through here keep
    /// their insertion stamp and look older to eviction than they are —
    /// an accepted trade for a hot path that answers from borrowed data.
    /// `f` runs under the shard lock; keep it short. Alongside the
    /// records, `f` receives the entry's absolute expiry — the packet
    /// cache derives its memoized answer's deadline from it, so a
    /// pre-encoded response can never outlive the RRset behind it.
    pub fn with_records<R>(
        &self,
        name: &Name,
        rtype: RecordType,
        now: SimTime,
        f: impl FnOnce(&[Record], SimTime) -> R,
    ) -> Option<R> {
        let key = CacheKey {
            name: name.clone(),
            rtype,
        };
        let idx = self.shard_index(&key);
        let mut shard = self.shards[idx].lock();
        match shard.map.get(&key) {
            Some(entry) if entry.expires > now => {
                let out = f(&entry.records, entry.expires);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(out)
            }
            Some(_) => {
                // Expired: drop it.
                if let Some(old) = shard.map.remove(&key) {
                    shard.lru.remove(&old.stamp);
                    self.counts[idx].fetch_sub(1, Ordering::Relaxed);
                }
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Find the deepest cached NS RRset enclosing `qname` (the zone cut an
    /// iterative walk can start from). Returns `(cut, ns_records)`.
    ///
    /// Counts exactly one hit (a usable cut was found) or one miss (none
    /// was) per call: probing every suffix depth must not inflate
    /// `CacheStats.misses` by the number of unexplored depths, or the
    /// Figure-2 hit-rate sweep measures the walk, not the policy.
    pub fn deepest_cut(&self, qname: &Name, now: SimTime) -> Option<(Name, Vec<Record>)> {
        for depth in (1..=qname.label_count()).rev() {
            let candidate = qname.suffix(depth);
            if let Some(records) = self.probe(&candidate, RecordType::NS, now) {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                return Some((candidate, records));
            }
        }
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zdns_wire::RData;

    fn ns_record(zone: &str, target: &str, ttl: u32) -> Record {
        Record::new(
            zone.parse().unwrap(),
            ttl,
            RData::Ns(target.parse().unwrap()),
        )
    }

    fn a_record(name: &str, addr: &str, ttl: u32) -> Record {
        Record::new(name.parse().unwrap(), ttl, RData::A(addr.parse().unwrap()))
    }

    fn key(name: &str, rtype: RecordType) -> CacheKey {
        CacheKey {
            name: name.parse().unwrap(),
            rtype,
        }
    }

    #[test]
    fn selective_policy_rejects_leaf_types() {
        assert!(Cache::admits(RecordType::NS));
        assert!(Cache::admits(RecordType::A));
        assert!(Cache::admits(RecordType::AAAA));
        assert!(!Cache::admits(RecordType::PTR));
        assert!(!Cache::admits(RecordType::TXT));
        assert!(!Cache::admits(RecordType::MX));
        assert!(!Cache::admits(RecordType::CAA));
        let cache = Cache::new(64);
        cache.put(
            key("example.com", RecordType::TXT),
            vec![Record::new(
                "example.com".parse().unwrap(),
                300,
                RData::Txt(zdns_wire::rdata::TxtData::from_text("x")),
            )],
            0,
        );
        assert!(cache.is_empty());
    }

    #[test]
    fn put_get_roundtrip() {
        let cache = Cache::new(64);
        let recs = vec![ns_record("com", "a.gtld-servers.net", 172800)];
        cache.put(key("com", RecordType::NS), recs.clone(), 0);
        assert_eq!(
            cache.get(&"com".parse().unwrap(), RecordType::NS, SECONDS),
            Some(recs)
        );
        assert_eq!(cache.stats.hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn ttl_expiry() {
        let cache = Cache::new(64);
        cache.put(
            key("com", RecordType::NS),
            vec![ns_record("com", "a.gtld-servers.net", 10)],
            0,
        );
        assert!(cache
            .get(&"com".parse().unwrap(), RecordType::NS, 9 * SECONDS)
            .is_some());
        assert!(cache
            .get(&"com".parse().unwrap(), RecordType::NS, 11 * SECONDS)
            .is_none());
        // Expired entry is gone entirely.
        assert!(cache.is_empty());
    }

    #[test]
    fn lru_eviction_prefers_stale_entries() {
        // One shard: capacity under SHARDS entries rounds to 1 per shard;
        // use keys that land anywhere and a big enough run to force
        // evictions.
        let cache = Cache::new(SHARDS); // 1 per shard
        for i in 0..10 * SHARDS {
            cache.put(
                key(&format!("zone{i}.test"), RecordType::NS),
                vec![ns_record(&format!("zone{i}.test"), "ns.zone.test", 3600)],
                0,
            );
        }
        assert!(cache.len() <= cache.capacity());
        assert!(cache.stats.evictions.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn lru_touch_protects_hot_entries() {
        let cache = Cache::new(SHARDS * 2);
        // Fill one shard deterministically by reusing the same name with
        // different types (same shard not guaranteed, so instead verify
        // semantics: a touched entry survives longer than untouched ones).
        cache.put(
            key("hot.test", RecordType::NS),
            vec![ns_record("hot.test", "ns.hot.test", 3600)],
            0,
        );
        for i in 0..SHARDS * 20 {
            // Keep touching the hot entry while inserting others.
            let _ = cache.get(&"hot.test".parse().unwrap(), RecordType::NS, 0);
            cache.put(
                key(&format!("cold{i}.test"), RecordType::NS),
                vec![ns_record(&format!("cold{i}.test"), "ns.c.test", 3600)],
                0,
            );
        }
        assert!(
            cache
                .get(&"hot.test".parse().unwrap(), RecordType::NS, 0)
                .is_some(),
            "hot entry evicted despite constant use"
        );
    }

    #[test]
    fn deepest_cut_walks_up() {
        let cache = Cache::new(1024);
        cache.put(
            key("com", RecordType::NS),
            vec![ns_record("com", "a.gtld-servers.net", 172800)],
            0,
        );
        cache.put(
            key("example.com", RecordType::NS),
            vec![ns_record("example.com", "ns1.example.com", 172800)],
            0,
        );
        let (cut, _) = cache
            .deepest_cut(&"www.example.com".parse().unwrap(), 0)
            .unwrap();
        assert_eq!(cut, "example.com".parse().unwrap());
        let (cut2, _) = cache.deepest_cut(&"other.com".parse().unwrap(), 0).unwrap();
        assert_eq!(cut2, "com".parse().unwrap());
        assert!(cache
            .deepest_cut(&"example.org".parse().unwrap(), 0)
            .is_none());
    }

    #[test]
    fn deepest_cut_counts_one_stat_per_call() {
        let cache = Cache::new(1024);
        cache.put(
            key("com", RecordType::NS),
            vec![ns_record("com", "a.gtld-servers.net", 172800)],
            0,
        );
        // A miss probes every suffix depth but must count once, or the
        // Figure-2 hit-rate sweep is skewed by unexplored depths.
        assert!(cache
            .deepest_cut(&"a.b.c.d.example.org".parse().unwrap(), 0)
            .is_none());
        assert_eq!(cache.stats.misses.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats.hits.load(Ordering::Relaxed), 0);
        // A hit at any depth counts one hit — and none of the deeper
        // probes that missed on the way down.
        assert!(cache
            .deepest_cut(&"www.deep.example.com".parse().unwrap(), 0)
            .is_some());
        assert_eq!(cache.stats.misses.load(Ordering::Relaxed), 1);
        assert_eq!(cache.stats.hits.load(Ordering::Relaxed), 1);
        assert!((cache.stats.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn glue_addresses_cacheable() {
        let cache = Cache::new(64);
        cache.put(
            key("ns1.example.com", RecordType::A),
            vec![a_record("ns1.example.com", "198.51.100.1", 172800)],
            0,
        );
        assert!(cache
            .get(&"ns1.example.com".parse().unwrap(), RecordType::A, 0)
            .is_some());
    }

    #[test]
    fn zero_ttl_not_cached() {
        let cache = Cache::new(64);
        cache.put(
            key("com", RecordType::NS),
            vec![ns_record("com", "a.gtld-servers.net", 0)],
            0,
        );
        assert!(cache.is_empty());
    }

    #[test]
    fn with_records_reads_in_place() {
        let cache = Cache::new(64);
        cache.put(
            key("com", RecordType::NS),
            vec![ns_record("com", "a.gtld-servers.net", 10)],
            0,
        );
        let com: Name = "com".parse().unwrap();
        let n = cache.with_records(&com, RecordType::NS, 0, |recs, expires| {
            // The closure sees the entry's absolute expiry (fill + ttl).
            assert_eq!(expires, 10 * SECONDS);
            recs.len()
        });
        assert_eq!(n, Some(1));
        assert_eq!(cache.stats.hits.load(Ordering::Relaxed), 1);
        assert!(cache
            .with_records(&"org".parse().unwrap(), RecordType::NS, 0, |_, _| ())
            .is_none());
        assert_eq!(cache.stats.misses.load(Ordering::Relaxed), 1);
        // Expiry drops the entry exactly like `get`.
        assert!(cache
            .with_records(&com, RecordType::NS, 11 * SECONDS, |_, _| ())
            .is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.stats.misses.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn len_counters_track_every_insert_remove_path() {
        let cache = Cache::new(SHARDS); // 1 entry per shard: forces evictions
        assert_eq!(cache.len(), 0);
        cache.put(
            key("com", RecordType::NS),
            vec![ns_record("com", "a.gtld-servers.net", 10)],
            0,
        );
        assert_eq!(cache.len(), 1);
        // Replacing the same key must not double-count.
        cache.put(
            key("com", RecordType::NS),
            vec![ns_record("com", "b.gtld-servers.net", 10)],
            0,
        );
        assert_eq!(cache.len(), 1);
        // Expiry via `get` decrements.
        assert!(cache
            .get(&"com".parse().unwrap(), RecordType::NS, 11 * SECONDS)
            .is_none());
        assert_eq!(cache.len(), 0);
        // Expiry via `with_records` decrements too.
        cache.put(
            key("org", RecordType::NS),
            vec![ns_record("org", "ns.org.test", 10)],
            0,
        );
        assert!(cache
            .with_records(
                &"org".parse().unwrap(),
                RecordType::NS,
                11 * SECONDS,
                |_, _| ()
            )
            .is_none());
        assert_eq!(cache.len(), 0);
        // Evictions keep the count honest under churn.
        for i in 0..10 * SHARDS {
            cache.put(
                key(&format!("zone{i}.test"), RecordType::NS),
                vec![ns_record(&format!("zone{i}.test"), "ns.zone.test", 3600)],
                0,
            );
        }
        let true_len: usize = (0..cache.shards.len())
            .map(|i| cache.shards[i].lock().map.len())
            .sum();
        assert_eq!(cache.len(), true_len);
    }

    #[test]
    fn put_invalidates_the_packet_cache_for_its_key() {
        use crate::packet_cache::{PacketLookup, OPT_TAIL_LEN};

        let cache = Cache::new(64);
        let pc = cache.attach_packet_cache(64);
        // Attaching twice hands back the same shared table.
        assert!(std::sync::Arc::ptr_eq(&pc, &cache.attach_packet_cache(8)));

        let name: Name = "ns1.example.com".parse().unwrap();
        let fake = vec![0u8; 12 + name.wire_len() + 4 + OPT_TAIL_LEN];
        pc.fill(std::sync::Arc::new(crate::packet_cache::PacketEntry::new(
            name.clone(),
            RecordType::A,
            SimTime::MAX,
            &fake,
        )));
        assert!(matches!(
            pc.lookup(&name, RecordType::A, 0),
            PacketLookup::Hit(_)
        ));
        // Promoting a fresher RRset for the same key drops the memoized
        // packet; an unrelated key leaves it alone.
        cache.put(
            key("other.example.com", RecordType::A),
            vec![a_record("other.example.com", "198.51.100.9", 300)],
            0,
        );
        assert!(matches!(
            pc.lookup(&name, RecordType::A, 0),
            PacketLookup::Hit(_)
        ));
        cache.put(
            key("ns1.example.com", RecordType::A),
            vec![a_record("ns1.example.com", "198.51.100.1", 300)],
            0,
        );
        assert!(matches!(
            pc.lookup(&name, RecordType::A, 0),
            PacketLookup::Miss
        ));
        assert_eq!(pc.invalidations(), 1);
    }

    #[test]
    fn hit_rate_math() {
        let cache = Cache::new(64);
        cache.put(
            key("com", RecordType::NS),
            vec![ns_record("com", "x.test", 3600)],
            0,
        );
        let _ = cache.get(&"com".parse().unwrap(), RecordType::NS, 0); // hit
        let _ = cache.get(&"org".parse().unwrap(), RecordType::NS, 0); // miss
        assert!((cache.stats.hit_rate() - 0.5).abs() < 1e-9);
    }
}
