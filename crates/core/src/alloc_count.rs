//! A counting global allocator for allocation-budget tests and benches.
//!
//! The zero-alloc message lifecycle makes a measurable claim — *the
//! steady-state reactor loop performs zero heap allocations per lookup on
//! the view path* — and this module is how the claim is enforced rather
//! than asserted in prose. Install [`CountingAllocator`] as the
//! `#[global_allocator]` of a test or bench binary and read
//! [`thread_allocations`] around the measured region.
//!
//! Counts are **per thread** (a `const`-initialized `thread_local`, so the
//! counter itself never allocates or recurses): a loopback scan runs wire
//! servers on sibling threads whose allocations must not pollute the
//! reactor thread's measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
    static BYTES: Cell<u64> = const { Cell::new(0) };
    static TRAP: Cell<bool> = const { Cell::new(false) };
}

/// Debugging aid: while enabled (per thread), every allocation prints a
/// captured backtrace to stderr. The trap disarms itself around the
/// capture (which itself allocates) and re-arms afterwards, so it is safe
/// to leave on across a whole measured region to enumerate every
/// offending call site.
pub fn trap_allocations(enabled: bool) {
    TRAP.with(|t| t.set(enabled));
}

fn fire_trap(size: usize) {
    if TRAP.with(|t| t.replace(false)) {
        eprintln!(
            "[alloc_count] allocation of {size} bytes:\n{}",
            std::backtrace::Backtrace::force_capture()
        );
        TRAP.with(|t| t.set(true));
    }
}

/// A `System`-backed allocator that counts allocations per thread.
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: zdns_core::alloc_count::CountingAllocator =
///     zdns_core::alloc_count::CountingAllocator;
/// ```
pub struct CountingAllocator;

// SAFETY: defers entirely to `System`; the bookkeeping only touches
// const-initialized thread-local cells, which never allocate.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        BYTES.with(|c| c.set(c.get() + layout.size() as u64));
        fire_trap(layout.size());
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        BYTES.with(|c| c.set(c.get() + layout.size() as u64));
        fire_trap(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is a fresh reservation from the measured region's point
        // of view; count it like an allocation.
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        BYTES.with(|c| c.set(c.get() + new_size as u64));
        fire_trap(new_size);
        System.realloc(ptr, layout, new_size)
    }
}

/// Heap allocations performed by the **current thread** since it started
/// (meaningful only under [`CountingAllocator`]; always 0 otherwise).
pub fn thread_allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

/// Bytes requested from the allocator by the current thread.
pub fn thread_alloc_bytes() -> u64 {
    BYTES.with(Cell::get)
}

#[cfg(test)]
mod tests {
    // The allocator itself is exercised by `tests/zero_alloc.rs`, which
    // installs it globally; unit tests here would read zeros under the
    // default allocator.
    use super::*;

    #[test]
    fn counters_read_without_panicking() {
        let _ = thread_allocations();
        let _ = thread_alloc_bytes();
    }
}
