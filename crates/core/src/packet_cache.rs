//! The packet cache: pre-encoded answers for the serve hot path.
//!
//! The record cache answers a warmed serve hit correctly, but every hit
//! still takes a shard mutex, walks the RRset under the lock, and
//! re-encodes the whole response through [`ScratchBuf`]. Production
//! resolvers (unbound's msgcache is the canonical example) answer repeats
//! from a memoized *message* instead. This module is that layer: a
//! fixed-size, read-mostly table in front of the record cache that stores
//! the fully encoded wire response — sans the two per-client fields,
//! header ID and cookie — keyed on `(qname, qtype)` (class is always IN,
//! like the record cache behind it).
//!
//! A hot hit becomes: copy the canonical bytes into the scratch buffer,
//! patch the 2-byte ID and the 2 flag bytes, splice the client's cookie
//! onto the OPT tail, and re-check the result against the client's
//! advertised UDP payload for truncation. No shard lock, no record
//! iteration, no per-record encoding — and zero heap allocations (the
//! `zero_alloc` suite enforces it).
//!
//! Concurrency model — *lock-light reads, never blocked readers*: each
//! slot pairs a relaxed [`AtomicU64`] key fingerprint with a tiny
//! [`Mutex`] around the entry `Arc`. Readers prefilter on the
//! fingerprint, then `try_lock` just long enough to clone the `Arc`; if a
//! writer holds the slot the reader treats it as a miss and falls back to
//! the record path rather than parking. Writers (fills, invalidations)
//! take the slot lock for the few instructions an `Arc` swap needs.
//! Entries expire by their embedded-TTL deadline, checked on read, and
//! are invalidated whenever the record cache promotes a fresher RRset for
//! the same key ([`Cache::put`](crate::cache::Cache::put) hooks into
//! [`PacketCache::invalidate`]).
//!
//! Case handling: the table's hash follows [`Name`]'s case-insensitive
//! semantics, but a hit additionally requires a byte-exact qname match
//! ([`Name::eq_exact_case`]) — a response must echo the client's question
//! spelling verbatim (0x20 mixed-case defence), and the cheapest way to
//! guarantee that from a memoized message is to only serve clients who
//! spelled the name the way the cached copy did. Case-variant spellings
//! fall back to the record path and refill with their own spelling.

use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use zdns_netsim::SimTime;
use zdns_wire::{
    cookie_option_len, write_cookie_option, Cookie, Flags, Name, RecordType, ScratchBuf,
};

/// Octets of the bare OPT pseudo-record the serve path appends last:
/// root owner (1) + TYPE (2) + CLASS/payload (2) + TTL (4) + RDLENGTH (2).
/// Canonical entries always end with one, so EDNS-less clients are served
/// by trimming it and cookie clients by patching its RDLENGTH.
pub const OPT_TAIL_LEN: usize = 11;

/// Slots inspected per key: one cache line of fingerprints' worth of
/// linear probing before a fill evicts the earliest-expiring neighbour.
const PROBE_WINDOW: usize = 8;

/// One memoized response: the canonical encoding plus everything needed
/// to validate a hit and re-personalize the bytes for a specific client.
///
/// Canonical form: header ID `0`, flag bytes as first encoded (patched on
/// every serve, including the fill's own), QDCOUNT 1, full answer
/// section, and a cookie-less OPT tail as the final [`OPT_TAIL_LEN`]
/// octets.
pub struct PacketEntry {
    /// Exact spelling the canonical question section echoes.
    name: Name,
    qtype: RecordType,
    /// Absolute expiry (fill time + the answers' minimum TTL, capped to
    /// the record-cache entry's own expiry), checked on every read.
    deadline: SimTime,
    /// Offset just past the question section — the truncated reply is
    /// `bytes[..question_end]` plus patched counts and OPT.
    question_end: usize,
    bytes: Box<[u8]>,
}

impl std::fmt::Debug for PacketEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PacketEntry")
            .field("name", &self.name)
            .field("qtype", &self.qtype)
            .field("deadline", &self.deadline)
            .field("len", &self.bytes.len())
            .finish()
    }
}

impl PacketEntry {
    /// Wrap an already-encoded canonical response. `bytes` must be the
    /// full message for `name`/`qtype` ending in a bare OPT tail.
    pub fn new(name: Name, qtype: RecordType, deadline: SimTime, bytes: &[u8]) -> PacketEntry {
        let question_end = 12 + name.wire_len() + 4;
        debug_assert!(bytes.len() >= question_end + OPT_TAIL_LEN);
        PacketEntry {
            name,
            qtype,
            deadline,
            question_end,
            bytes: bytes.into(),
        }
    }

    /// Absolute expiry deadline.
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }

    /// The canonical encoded response (ID 0, no cookie, bare OPT tail).
    pub fn canonical_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Re-personalize the canonical bytes for one client, straight into
    /// `scratch`: copy, patch ID and flags, trim or cookie-splice the OPT
    /// tail, and re-check the advertised `udp_limit` (all-or-nothing
    /// truncation, exactly like the scratch-encode path). Returns whether
    /// the reply was truncated. Zero heap allocations once `scratch` has
    /// grown to steady-state size.
    pub fn serve_into(
        &self,
        scratch: &mut ScratchBuf,
        id: u16,
        query_flags: Flags,
        edns: bool,
        cookie: Option<&Cookie>,
        udp_limit: usize,
    ) -> bool {
        scratch.reset();
        let base = scratch.begin_message();
        let cookie = if edns { cookie } else { None };
        let full_len = if edns {
            self.bytes.len() + cookie.map_or(0, cookie_option_len)
        } else {
            self.bytes.len() - OPT_TAIL_LEN
        };
        let truncated = full_len > udp_limit;
        if truncated {
            // Header + echoed question only, with the counts re-patched.
            let _ = scratch.write_bytes(&self.bytes[..self.question_end]);
            scratch.patch_u16(base + 6, 0); // ANCOUNT
            scratch.patch_u16(base + 10, edns as u16); // ARCOUNT
            if edns {
                let opt = &self.bytes[self.bytes.len() - OPT_TAIL_LEN..];
                let _ = scratch.write_bytes(opt);
                Self::splice_cookie(scratch, cookie);
            }
        } else if edns {
            let _ = scratch.write_bytes(&self.bytes);
            Self::splice_cookie(scratch, cookie);
        } else {
            let _ = scratch.write_bytes(&self.bytes[..self.bytes.len() - OPT_TAIL_LEN]);
            scratch.patch_u16(base + 10, 0); // ARCOUNT: OPT trimmed
        }
        scratch.patch_u16(base, id);
        let mut flags = query_flags;
        flags.response = true;
        flags.authoritative = false;
        flags.truncated = truncated;
        flags.recursion_available = true;
        flags.authenticated = false;
        scratch.patch_u16(base + 2, u16::from_be_bytes(flags.pack(0)));
        truncated
    }

    /// Append the cookie option to an OPT tail sitting at the end of
    /// `scratch` and fix up its RDLENGTH.
    fn splice_cookie(scratch: &mut ScratchBuf, cookie: Option<&Cookie>) {
        if let Some(c) = cookie {
            let rdlen_pos = scratch.len() - 2;
            let _ = write_cookie_option(scratch, c);
            scratch.patch_u16(rdlen_pos, cookie_option_len(c) as u16);
        }
    }
}

/// What a [`PacketCache::lookup`] found.
#[derive(Debug)]
pub enum PacketLookup {
    /// Live entry — serve it with [`PacketEntry::serve_into`].
    Hit(Arc<PacketEntry>),
    /// The key was present but past its TTL deadline; the slot has been
    /// cleared and the caller should take the record path (and refill).
    Expired,
    /// Nothing cached (includes case-variant spellings and slots a writer
    /// was touching — the record path is the universal fallback).
    Miss,
}

struct Slot {
    /// Key-hash prefilter; `0` means empty. Written under the slot lock,
    /// read before taking it.
    fingerprint: AtomicU64,
    entry: Mutex<Option<Arc<PacketEntry>>>,
}

/// The serve-path packet cache. See the module docs for the layout; one
/// instance is shared by every worker of a serve fleet (it lives on the
/// shared record [`Cache`](crate::cache::Cache) so promotion-time
/// invalidation needs no extra plumbing).
pub struct PacketCache {
    slots: Box<[Slot]>,
    mask: usize,
    invalidations: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for PacketCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PacketCache")
            .field("slots", &self.slots.len())
            .field("len", &self.len())
            .field("invalidations", &self.invalidations())
            .field("evictions", &self.evictions())
            .finish()
    }
}

impl PacketCache {
    /// Build a table of at least `capacity` slots (rounded up to a power
    /// of two, minimum one probe window).
    pub fn new(capacity: usize) -> PacketCache {
        let slots = capacity.max(PROBE_WINDOW).next_power_of_two();
        PacketCache {
            slots: (0..slots)
                .map(|_| Slot {
                    fingerprint: AtomicU64::new(0),
                    entry: Mutex::new(None),
                })
                .collect(),
            mask: slots - 1,
            invalidations: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Slot count (capacity after rounding).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Occupied slots — approximate under concurrent writes; exact when
    /// quiescent (tests).
    pub fn len(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.fingerprint.load(Ordering::Relaxed) != 0)
            .count()
    }

    /// True when no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries dropped because the record cache promoted a fresher RRset
    /// for their key.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Live entries displaced by fills of a different key (probe window
    /// full).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Case-insensitive key hash (never 0 — 0 marks an empty slot).
    fn key_hash(name: &Name, qtype: RecordType) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut h);
        qtype.to_u16().hash(&mut h);
        let v = h.finish();
        if v == 0 {
            1
        } else {
            v
        }
    }

    /// Probe for a live entry. Never blocks: contended slots read as
    /// misses. Expired entries are cleared on sight and reported so the
    /// caller can count them apart from plain misses.
    pub fn lookup(&self, name: &Name, qtype: RecordType, now: SimTime) -> PacketLookup {
        let hash = Self::key_hash(name, qtype);
        let start = hash as usize & self.mask;
        for i in 0..PROBE_WINDOW {
            let slot = &self.slots[(start + i) & self.mask];
            if slot.fingerprint.load(Ordering::Acquire) != hash {
                continue;
            }
            let Some(guard) = slot.entry.try_lock() else {
                continue;
            };
            let Some(entry) = guard.as_ref().map(Arc::clone) else {
                continue;
            };
            drop(guard);
            if entry.qtype != qtype || !entry.name.eq_exact_case(name) {
                continue;
            }
            if now >= entry.deadline {
                self.clear_if_current(slot, &entry);
                return PacketLookup::Expired;
            }
            return PacketLookup::Hit(entry);
        }
        PacketLookup::Miss
    }

    /// Install (or refresh) an entry. Prefers the key's existing slot,
    /// then an empty one; with the probe window full it displaces the
    /// neighbour expiring soonest.
    pub fn fill(&self, entry: Arc<PacketEntry>) {
        let hash = Self::key_hash(&entry.name, entry.qtype);
        let start = hash as usize & self.mask;
        let mut target = None;
        let mut empty = None;
        for i in 0..PROBE_WINDOW {
            let idx = (start + i) & self.mask;
            let fp = self.slots[idx].fingerprint.load(Ordering::Acquire);
            if fp == hash {
                target = Some(idx);
                break;
            }
            if fp == 0 && empty.is_none() {
                empty = Some(idx);
            }
        }
        let idx = target.or(empty).unwrap_or_else(|| {
            // Window full of other keys: evict the earliest deadline.
            let mut victim = start & self.mask;
            let mut earliest = SimTime::MAX;
            for i in 0..PROBE_WINDOW {
                let idx = (start + i) & self.mask;
                let deadline = self.slots[idx]
                    .entry
                    .lock()
                    .as_ref()
                    .map_or(0, |e| e.deadline);
                if deadline < earliest {
                    earliest = deadline;
                    victim = idx;
                }
            }
            victim
        });
        let slot = &self.slots[idx];
        let mut guard = slot.entry.lock();
        if guard.is_some() && slot.fingerprint.load(Ordering::Acquire) != hash {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        *guard = Some(entry);
        slot.fingerprint.store(hash, Ordering::Release);
    }

    /// Drop every entry for `(name, rtype)` — called by
    /// [`Cache::put`](crate::cache::Cache::put) when it promotes a fresher
    /// RRset, so a memoized answer never outlives the records behind it.
    /// Case-insensitive, like the record cache's own keying.
    pub fn invalidate(&self, name: &Name, rtype: RecordType) {
        let hash = Self::key_hash(name, rtype);
        let start = hash as usize & self.mask;
        for i in 0..PROBE_WINDOW {
            let slot = &self.slots[(start + i) & self.mask];
            if slot.fingerprint.load(Ordering::Acquire) != hash {
                continue;
            }
            let mut guard = slot.entry.lock();
            let matches = guard
                .as_ref()
                .is_some_and(|e| e.qtype == rtype && e.name == *name);
            if matches {
                *guard = None;
                slot.fingerprint.store(0, Ordering::Release);
                self.invalidations.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Clear `slot` only if it still holds exactly `expected` (an expired
    /// entry another thread may have already replaced).
    fn clear_if_current(&self, slot: &Slot, expected: &Arc<PacketEntry>) {
        if let Some(mut guard) = slot.entry.try_lock() {
            if guard.as_ref().is_some_and(|cur| Arc::ptr_eq(cur, expected)) {
                *guard = None;
                slot.fingerprint.store(0, Ordering::Release);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zdns_netsim::SECONDS;

    fn entry(name: &str, qtype: RecordType, deadline: SimTime) -> Arc<PacketEntry> {
        let name: Name = name.parse().unwrap();
        let len = 12 + name.wire_len() + 4 + OPT_TAIL_LEN;
        Arc::new(PacketEntry::new(
            name.clone(),
            qtype,
            deadline,
            &vec![0u8; len],
        ))
    }

    #[test]
    fn fill_lookup_roundtrip_and_expiry() {
        let pc = PacketCache::new(64);
        let name: Name = "hot.example".parse().unwrap();
        pc.fill(entry("hot.example", RecordType::A, 10 * SECONDS));
        assert!(matches!(
            pc.lookup(&name, RecordType::A, 0),
            PacketLookup::Hit(_)
        ));
        // Different type: miss.
        assert!(matches!(
            pc.lookup(&name, RecordType::AAAA, 0),
            PacketLookup::Miss
        ));
        // Deadline is exclusive: at the boundary the entry is gone.
        assert!(matches!(
            pc.lookup(&name, RecordType::A, 10 * SECONDS),
            PacketLookup::Expired
        ));
        // The expired slot was cleared: subsequent reads are plain misses.
        assert!(matches!(
            pc.lookup(&name, RecordType::A, 10 * SECONDS),
            PacketLookup::Miss
        ));
        assert!(pc.is_empty());
    }

    #[test]
    fn case_variant_spelling_misses_but_invalidation_is_case_insensitive() {
        let pc = PacketCache::new(64);
        pc.fill(entry("WWW.Example.COM", RecordType::A, SimTime::MAX));
        let lower: Name = "www.example.com".parse().unwrap();
        // Same case-insensitive key, different spelling: a response must
        // echo the client's exact case, so this cannot be served.
        assert!(matches!(
            pc.lookup(&lower, RecordType::A, 0),
            PacketLookup::Miss
        ));
        // But a record-cache promotion for any spelling drops the entry.
        pc.invalidate(&lower, RecordType::A);
        assert_eq!(pc.invalidations(), 1);
        assert!(pc.is_empty());
    }

    #[test]
    fn refill_replaces_in_place() {
        let pc = PacketCache::new(64);
        let name: Name = "refresh.example".parse().unwrap();
        pc.fill(entry("refresh.example", RecordType::A, 5 * SECONDS));
        pc.fill(entry("refresh.example", RecordType::A, 50 * SECONDS));
        assert_eq!(pc.len(), 1);
        assert_eq!(pc.evictions(), 0);
        match pc.lookup(&name, RecordType::A, 20 * SECONDS) {
            PacketLookup::Hit(e) => assert_eq!(e.deadline(), 50 * SECONDS),
            _ => panic!("refreshed entry should be live"),
        }
    }

    #[test]
    fn full_window_evicts_earliest_deadline() {
        // A one-window table: every key contends for the same 8 slots.
        let pc = PacketCache::new(1);
        assert_eq!(pc.capacity(), 8);
        for i in 0..8 {
            pc.fill(entry(
                &format!("name{i}.example"),
                RecordType::A,
                (i as SimTime + 1) * SECONDS,
            ));
        }
        assert_eq!(pc.len(), 8);
        // One more: the entry expiring first (deadline 1s) is displaced.
        pc.fill(entry("straw.example", RecordType::A, 100 * SECONDS));
        assert_eq!(pc.len(), 8);
        assert_eq!(pc.evictions(), 1);
        let evicted: Name = "name0.example".parse().unwrap();
        assert!(matches!(
            pc.lookup(&evicted, RecordType::A, 0),
            PacketLookup::Miss
        ));
        let kept: Name = "straw.example".parse().unwrap();
        assert!(matches!(
            pc.lookup(&kept, RecordType::A, 0),
            PacketLookup::Hit(_)
        ));
    }

    #[test]
    fn invalidate_only_touches_its_key() {
        let pc = PacketCache::new(64);
        pc.fill(entry("a.example", RecordType::A, SimTime::MAX));
        pc.fill(entry("b.example", RecordType::A, SimTime::MAX));
        pc.invalidate(&"a.example".parse().unwrap(), RecordType::A);
        assert_eq!(pc.invalidations(), 1);
        assert_eq!(pc.len(), 1);
        assert!(matches!(
            pc.lookup(&"b.example".parse().unwrap(), RecordType::A, 0),
            PacketLookup::Hit(_)
        ));
        // Invalidating an absent key is a quiet no-op.
        pc.invalidate(&"c.example".parse().unwrap(), RecordType::A);
        assert_eq!(pc.invalidations(), 1);
    }
}
