//! Exposed lookup chains — the feature that motivates ZDNS's own recursion.
//!
//! Every hop of an iterative walk is recorded as a [`TraceStep`]; rendered
//! to JSON it matches the Appendix C `+trace` output shape.

use serde_json::{json, Value};
use zdns_wire::{json as wire_json, Message, Name, Question};

/// One step of the lookup chain.
#[derive(Debug, Clone)]
pub struct TraceStep {
    /// Referral depth (1 = root).
    pub depth: u32,
    /// The zone layer this query targeted (`.`, `com`, `google.com`, ...).
    pub layer: String,
    /// The name being resolved at this step.
    pub name: Name,
    /// Query class (1 = IN).
    pub class: u16,
    /// Query type code.
    pub qtype: u16,
    /// The server queried, `ip:53`.
    pub name_server: String,
    /// True if this layer was answered from the selective cache.
    pub cached: bool,
    /// Attempt number (1-based; counts retries).
    pub try_count: u32,
    /// The response, absent for cache hits.
    pub results: Option<Message>,
}

impl TraceStep {
    /// Render as the Appendix C JSON object.
    pub fn to_json(&self) -> Value {
        let mut obj = json!({
            "cached": self.cached,
            "class": self.class,
            "depth": self.depth,
            "layer": self.layer,
            "name": self.name.to_string(),
            "name_server": self.name_server,
            "try": self.try_count,
            "type": self.qtype,
        });
        if let Some(msg) = &self.results {
            obj["results"] = wire_json::message_to_json(msg, "udp", &self.name_server);
        }
        obj
    }
}

/// Build a trace step for a question answered by `server`.
pub fn step_for(
    question: &Question,
    layer: &Name,
    depth: u32,
    server: String,
    try_count: u32,
    cached: bool,
    results: Option<Message>,
) -> TraceStep {
    TraceStep {
        depth,
        layer: if layer.is_root() {
            ".".to_string()
        } else {
            layer.to_string()
        },
        name: question.name.clone(),
        class: question.qclass.to_u16(),
        qtype: question.qtype.to_u16(),
        name_server: server,
        cached,
        try_count,
        results,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zdns_wire::{Question, RecordType};

    #[test]
    fn json_shape_matches_appendix_c() {
        let q = Question::new("google.com".parse().unwrap(), RecordType::A);
        let step = step_for(
            &q,
            &Name::root(),
            1,
            "199.7.83.42:53".to_string(),
            1,
            false,
            Some(Message::default()),
        );
        let v = step.to_json();
        assert_eq!(v["depth"], 1);
        assert_eq!(v["layer"], ".");
        assert_eq!(v["name"], "google.com");
        assert_eq!(v["name_server"], "199.7.83.42:53");
        assert_eq!(v["cached"], false);
        assert_eq!(v["try"], 1);
        assert_eq!(v["class"], 1);
        assert_eq!(v["type"], 1);
        assert!(v.get("results").is_some());
    }

    #[test]
    fn cached_steps_omit_results() {
        let q = Question::new("x.com".parse().unwrap(), RecordType::PTR);
        let step = step_for(
            &q,
            &"com".parse().unwrap(),
            2,
            "cache".to_string(),
            1,
            true,
            None,
        );
        let v = step.to_json();
        assert_eq!(v["cached"], true);
        assert!(v.get("results").is_none());
    }
}
