//! Run-time statistics shared across lookup routines.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::status::Status;

/// Aggregate counters for a resolver instance.
///
/// Shared by `Arc` across every scan worker, so the completion path must
/// not serialize: per-status counts live in a fixed array of atomics
/// (one slot per [`Status`] variant) rather than behind a mutex-guarded
/// map, and are only folded into a map when a report asks for them.
#[derive(Debug, Default)]
pub struct Stats {
    /// Lookups completed.
    pub lookups: AtomicU64,
    /// Lookups whose status counts as success (NOERROR/NXDOMAIN).
    pub successes: AtomicU64,
    /// Queries sent on the wire.
    pub queries_sent: AtomicU64,
    /// Retries performed (timeouts that were retried).
    pub retries: AtomicU64,
    /// TCP fallbacks after truncation.
    pub tcp_fallbacks: AtomicU64,
    status_counts: [AtomicU64; Status::ALL.len()],
}

impl Stats {
    /// Record a finished lookup.
    pub fn record_lookup(&self, status: Status) {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if status.is_success() {
            self.successes.fetch_add(1, Ordering::Relaxed);
        }
        self.status_counts[status.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of per-status counts (statuses seen at least once),
    /// merged from the per-status atomics at call time.
    pub fn status_counts(&self) -> HashMap<Status, u64> {
        Status::ALL
            .iter()
            .zip(self.status_counts.iter())
            .filter_map(|(status, n)| {
                let n = n.load(Ordering::Relaxed);
                (n > 0).then_some((*status, n))
            })
            .collect()
    }

    /// Point-in-time copy of the atomic counters (diff two snapshots to
    /// scope counters to one scan on a shared resolver).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            lookups: self.lookups.load(Ordering::Relaxed),
            successes: self.successes.load(Ordering::Relaxed),
            queries_sent: self.queries_sent.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            tcp_fallbacks: self.tcp_fallbacks.load(Ordering::Relaxed),
        }
    }

    /// Success fraction so far.
    pub fn success_rate(&self) -> f64 {
        let l = self.lookups.load(Ordering::Relaxed);
        if l == 0 {
            return 0.0;
        }
        self.successes.load(Ordering::Relaxed) as f64 / l as f64
    }
}

/// A point-in-time copy of [`Stats`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Lookups completed.
    pub lookups: u64,
    /// Successful lookups.
    pub successes: u64,
    /// Queries sent on the wire.
    pub queries_sent: u64,
    /// Retries performed.
    pub retries: u64,
    /// TCP fallbacks after truncation.
    pub tcp_fallbacks: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_accounting() {
        let s = Stats::default();
        s.record_lookup(Status::NoError);
        s.record_lookup(Status::NxDomain);
        s.record_lookup(Status::Timeout);
        assert_eq!(s.lookups.load(Ordering::Relaxed), 3);
        assert_eq!(s.successes.load(Ordering::Relaxed), 2);
        assert!((s.success_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.status_counts()[&Status::Timeout], 1);
    }
}
