//! # zdns-core
//!
//! The ZDNS resolver library — the paper's primary contribution,
//! reimplemented in Rust: a caching iterative resolver that exposes full
//! lookup chains, a selective NS/glue cache (§3.4), external-recursive and
//! direct-probe modes, retry/TCP-fallback logic, and a blocking transport
//! with the long-lived-UDP-socket optimization.
//!
//! Lookup logic is written as transport-agnostic state machines so the same
//! code runs under `zdns-netsim`'s discrete-event engine (for the paper's
//! scale experiments) and over real OS sockets.
//!
//! # Example
//!
//! Point a [`ResolverConfig`] at external recursive resolvers — the same
//! configuration drives the simulator, the blocking driver, and the
//! reactor:
//!
//! ```
//! use zdns_core::{ResolutionMode, ResolverConfig};
//!
//! let mut config = ResolverConfig::default();
//! config.mode = ResolutionMode::External {
//!     servers: vec!["192.0.2.53".parse().unwrap()],
//! };
//! assert!(config.retries >= 1);
//! ```

#![warn(missing_docs)]

pub mod alloc_count;
pub mod cache;
pub mod clock;
pub mod config;
pub mod driver;
pub mod machine;
pub mod pacer;
pub mod packet_cache;
pub mod reactor;
pub mod resolver;
pub mod result;
pub mod serve;
pub mod stats;
pub mod status;
pub mod trace;
pub mod transport;
#[cfg(any(target_os = "linux", target_os = "android"))]
pub mod uring;

pub use alloc_count::CountingAllocator;
pub use cache::{Cache, CacheKey, CacheStats};
pub use clock::Clock;
pub use config::{ResolutionMode, ResolverConfig};
pub use driver::{Admission, BatchHistogram, BlockingDriver, Driver, DriverReport};
pub use machine::{
    DirectMachine, ExternalMachine, IterativeMachine, ResolveTarget, ResolverCore, ResultSink,
};
pub use pacer::{
    ConcurrentGate, ConcurrentPacer, Pacer, PacerConfig, SharedPacer, TokenBlock, TOKEN_BLOCK,
};
pub use packet_cache::{PacketCache, PacketEntry, PacketLookup};
pub use reactor::{Reactor, ReactorConfig, DEFAULT_BATCH_SIZE};
pub use resolver::{collecting_sink, drive_blocking, drive_blocking_paced, AddrMap, Resolver};
pub use result::{DelegationInfo, LookupResult};
pub use serve::{ServeConfig, ServeStats, ServerRole, DEFAULT_PACKET_CACHE_CAPACITY};
pub use stats::{Stats, StatsSnapshot};
pub use status::Status;
pub use trace::TraceStep;
pub use transport::{
    blocking_tcp_exchange, pin_to_core, settle_ring_send, BatchIo, BatchSendStatus, IoBackend,
    RecvBatch, RingStats, RingSubmit, SendBatchStats, SendSlot, Transport, TransportError,
    UdpTransport, VectoredSend,
};
#[cfg(any(target_os = "linux", target_os = "android"))]
pub use uring::UringIo;
// The admission credit pool lives next to the other budgeting primitives
// in `zdns-pacing`; re-exported so scan orchestration above this crate
// sees one driver surface.
pub use zdns_pacing::CreditPool;
