//! The event-driven real-socket engine.
//!
//! One [`Reactor`] owns one long-lived non-blocking UDP socket (the
//! paper's §3.4 socket-reuse trick) and multiplexes hundreds-to-thousands
//! of in-flight lookup machines over it:
//!
//! * a **demux table** keyed by `(peer address, wire transaction id)`
//!   routes each incoming datagram to the machine that owns it — wire ids
//!   are reallocated per query so concurrent machines can never collide;
//! * a **hashed timer wheel** arms one entry per in-flight query and
//!   delivers [`ClientEvent::Timeout`] when it fires, which is what makes
//!   the machines' own retry logic run without any blocking waits;
//! * a small **blocking TCP side-pool** absorbs truncation-fallback
//!   exchanges so the UDP loop never stalls on a TCP handshake;
//! * a **pacer** ([`crate::pacer::Pacer`]) gates every UDP send against
//!   global and per-destination budgets: deferred sends are parked on a
//!   queue whose release times are armed on the same timer wheel — no
//!   extra threads, no busy-wait — and timeout/error streaks feed
//!   per-destination adaptive backoff;
//! * a **batched syscall layer** ([`BatchIo`]) amortizes per-datagram
//!   syscall cost: sends emitted in the same event-loop tick — admission
//!   bursts, same-tick retries, and pacer deferred-queue releases that
//!   mature on the same wheel tick — are staged and flushed through one
//!   `sendmmsg(2)`, and receives drain through a reusable
//!   `recvmmsg(2)` arena of [`ReactorConfig::batch_size`] buffers;
//! * an optional **shared admission credit pool**
//!   ([`zdns_pacing::CreditPool`], via [`Reactor::set_credit_pool`]):
//!   instead of a fixed private window, the reactor leases one credit
//!   per active lookup from a scan-wide pool, and *parks* lookups whose
//!   every outstanding send is waiting out a backoff penalty — returning
//!   their credits so sibling workers absorb the stranded window. With
//!   [`Reactor::set_shared_pacer`] the pacing budgets are likewise one
//!   scan-wide pool rather than a static per-worker split.
//!
//! The lookup machines are unchanged — the same [`SimClient`] state
//! machines the discrete-event simulator drives. The reactor is just the
//! third driver for them (after the simulator and [`drive_blocking`]),
//! and is what `run_real_scan` uses so that real-I/O throughput scales
//! with in-flight lookups instead of OS threads.
//!
//! [`drive_blocking`]: crate::resolver::drive_blocking

use std::collections::HashMap;
use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use zdns_netsim::{ClientEvent, JobOutcome, OutQuery, Protocol, SimClient, SimTime, MILLIS};
use zdns_pacing::{CreditPool, PaceDecision, SendGate};
use zdns_wire::{encode_query_into, Message, MessageView, MsgRef, ScratchBuf};

use crate::driver::{Admission, Driver, DriverReport};
use crate::pacer::{ConcurrentGate, ConcurrentPacer, Pacer, PacerConfig, SharedPacer};
use crate::resolver::AddrMap;
use crate::serve::{ServeStats, ServerRole};
use crate::transport::readiness;
use crate::transport::{
    blocking_tcp_exchange, BatchIo, BatchSendStatus, IoBackend, SendSlot, TransportError,
};

/// Tunables for one reactor.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Admission window: how many lookup machines may be in flight at
    /// once on this reactor's socket.
    pub max_in_flight: usize,
    /// Source address the UDP socket binds to.
    pub source: Ipv4Addr,
    /// Threads in the blocking TCP side-pool (truncation fallback).
    pub tcp_pool: usize,
    /// Timer-wheel slot count (rounded up to a power of two).
    pub wheel_slots: usize,
    /// Timer-wheel slot width in nanoseconds.
    pub wheel_granularity: SimTime,
    /// Pacing + backoff budgets for this reactor's sends (disabled by
    /// default). Scans splitting one budget over several workers should
    /// hand each reactor `PacerConfig::split(workers)`.
    pub pacer: PacerConfig,
    /// Datagrams per syscall on the hot path: same-tick sends coalesce
    /// into one `sendmmsg` of up to this many datagrams, and the receive
    /// arena pre-allocates this many buffers for `recvmmsg`. `1` forces
    /// the per-datagram `send_to`/`recv_from` path.
    pub batch_size: usize,
    /// Which syscall strategy drives the hot path: per-datagram, vectored
    /// `sendmmsg`/`recvmmsg`, or io_uring rings. The default ([`IoBackend::Auto`])
    /// takes the best one the running kernel supports; unavailable
    /// choices degrade cleanly (uring → mmsg → per-datagram).
    pub io_backend: IoBackend,
    /// Decode every received datagram into an owned [`Message`] instead of
    /// stepping machines on a borrowed [`MessageView`] over the arena.
    /// The view path is the default; this fallback exists for A/B
    /// benchmarks and as a big red switch if a view-path bug ever needs
    /// ruling out in production.
    pub owned_decode: bool,
    /// Extra machines this reactor may host *beyond* `max_in_flight`
    /// while they sit parked in backoff (credit-pool scans only; parking
    /// never happens without one). Parked lookups cost no window — their
    /// credits are back in the pool — but they do cost slots, so this
    /// bounds the memory a pathological all-destinations-dead scan can
    /// pin. `0` (the default) keeps the classic behaviour: hosted
    /// machines never exceed `max_in_flight`.
    pub max_parked: usize,
    /// The instant this reactor's clock counts nanoseconds from.
    /// Workers sharing one pacer ([`Reactor::set_shared_pacer`]) MUST
    /// share one epoch too: the pacer stores absolute release/penalty
    /// times, so callers on different epochs would mis-read each
    /// other's backoff state by their spawn skew. `None` = this
    /// reactor's construction time (fine for a private pacer).
    pub epoch: Option<Instant>,
}

/// Default [`ReactorConfig::batch_size`]: deep enough to amortize
/// syscall cost, shallow enough that the arena stays ~2 MB per worker.
pub const DEFAULT_BATCH_SIZE: usize = 32;

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            max_in_flight: 1_024,
            source: Ipv4Addr::UNSPECIFIED,
            tcp_pool: 2,
            wheel_slots: 1_024,
            wheel_granularity: 4 * MILLIS,
            pacer: PacerConfig::default(),
            batch_size: DEFAULT_BATCH_SIZE,
            io_backend: IoBackend::default(),
            owned_decode: false,
            max_parked: 0,
            epoch: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Timer wheel
// ---------------------------------------------------------------------------

type DemuxKey = (SocketAddr, u16);

/// Slab sentinel: end of a slot's chain / no entry.
const NIL: u32 = u32::MAX;

struct TimerEntry {
    deadline: SimTime,
    token: u64,
    key: DemuxKey,
    /// Next entry in the owning slot's chain (slab index).
    next: u32,
}

/// A hashed timer wheel with lazy cancellation: cancelled tokens are
/// dropped when their slot next drains, and the `armed` set tracks the
/// armed, not-yet-cancelled population exactly — so cancelling a token
/// that already fired (or was already cancelled) is a harmless no-op.
///
/// Entries live in one slab with intrusive per-slot chains (a `u32` head
/// per slot) instead of a `Vec` per slot: wall-clock keeps marching the
/// cursor into fresh slot indices, and per-slot buffers would regrow from
/// zero every lap. The slab grows to the peak concurrent entry count once
/// and is recycled through a free list from then on — arming a timer in
/// the steady state performs zero heap allocations, which the
/// `zero_alloc` integration test enforces.
struct TimerWheel {
    entries: Vec<TimerEntry>,
    free: Vec<u32>,
    heads: Vec<u32>,
    granularity: SimTime,
    cursor: usize,
    cursor_time: SimTime,
    armed: std::collections::HashSet<u64>,
    cancelled: std::collections::HashSet<u64>,
}

impl TimerWheel {
    fn new(slots: usize, granularity: SimTime) -> TimerWheel {
        let n = slots.next_power_of_two().max(2);
        TimerWheel {
            entries: Vec::new(),
            free: Vec::new(),
            heads: vec![NIL; n],
            granularity: granularity.max(1),
            cursor: 0,
            cursor_time: 0,
            armed: std::collections::HashSet::new(),
            cancelled: std::collections::HashSet::new(),
        }
    }

    /// The slot a deadline routes to from the current cursor position.
    fn slot_for(&self, deadline: SimTime) -> usize {
        let horizon = self.granularity * self.heads.len() as SimTime;
        let offset = deadline.saturating_sub(self.cursor_time).min(horizon - 1);
        let ticks = offset / self.granularity;
        (self.cursor + ticks as usize) % self.heads.len()
    }

    /// Arm a timer. Deadlines beyond the wheel horizon are parked in the
    /// furthest slot and re-inserted as the wheel turns.
    fn arm(&mut self, deadline: SimTime, token: u64, key: DemuxKey) {
        let idx = self.slot_for(deadline);
        let entry = TimerEntry {
            deadline,
            token,
            key,
            next: self.heads[idx],
        };
        let slab_idx = match self.free.pop() {
            Some(i) => {
                self.entries[i as usize] = entry;
                i
            }
            None => {
                self.entries.push(entry);
                (self.entries.len() - 1) as u32
            }
        };
        self.heads[idx] = slab_idx;
        self.armed.insert(token);
    }

    /// Cancel an armed timer by token (lazy: the entry is purged when its
    /// slot drains). Tokens that already fired or were already cancelled
    /// are ignored.
    fn cancel(&mut self, token: u64) {
        if self.armed.remove(&token) {
            self.cancelled.insert(token);
        }
    }

    /// Advance to `now`, collecting every fired `(token, key)`.
    fn expire(&mut self, now: SimTime, fired: &mut Vec<(u64, DemuxKey)>) {
        while self.cursor_time + self.granularity <= now {
            // Detach the whole chain first: re-arms of parked entries can
            // only target *other* slots (a parked deadline is ≥ one tick
            // away), so walking the detached chain stays sound.
            let mut next = std::mem::replace(&mut self.heads[self.cursor], NIL);
            let slot_end = self.cursor_time + self.granularity;
            while next != NIL {
                let i = next as usize;
                next = self.entries[i].next;
                let (deadline, token, key) = {
                    let e = &self.entries[i];
                    (e.deadline, e.token, e.key)
                };
                self.free.push(i as u32);
                if self.cancelled.remove(&token) {
                    continue;
                }
                if deadline >= slot_end {
                    // Parked from beyond the horizon: re-insert relative to
                    // the advanced cursor (stays armed). The slab node just
                    // freed is immediately reused — no allocation.
                    self.arm(deadline, token, key);
                } else {
                    self.armed.remove(&token);
                    fired.push((token, key));
                }
            }
            self.cursor = (self.cursor + 1) % self.heads.len();
            self.cursor_time = slot_end;
        }
    }

    /// Nanoseconds until the next tick that could fire something, if any
    /// timer is armed.
    fn ns_until_next_tick(&self, now: SimTime) -> Option<SimTime> {
        if self.armed.is_empty() {
            return None;
        }
        Some((self.cursor_time + self.granularity).saturating_sub(now))
    }

    /// Armed, not-cancelled timers.
    fn live(&self) -> usize {
        self.armed.len()
    }

    /// Physically stored entries (live + lazily-cancelled).
    fn stored(&self) -> usize {
        self.entries.len() - self.free.len()
    }

    /// Drop every lazily-cancelled entry now (end-of-run sweep).
    fn sweep_cancelled(&mut self) {
        for slot in 0..self.heads.len() {
            let mut idx = self.heads[slot];
            let mut prev = NIL;
            while idx != NIL {
                let next = self.entries[idx as usize].next;
                if self.cancelled.remove(&self.entries[idx as usize].token) {
                    // Unlink and free.
                    if prev == NIL {
                        self.heads[slot] = next;
                    } else {
                        self.entries[prev as usize].next = next;
                    }
                    self.free.push(idx);
                } else {
                    prev = idx;
                }
                idx = next;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// TCP side-pool
// ---------------------------------------------------------------------------

struct TcpJob {
    slot: usize,
    generation: u64,
    tag: u64,
    sim_ip: Ipv4Addr,
    query: zdns_wire::Message,
    to: SocketAddr,
    timeout: Duration,
}

struct TcpDone {
    slot: usize,
    generation: u64,
    tag: u64,
    sim_ip: Ipv4Addr,
    result: Result<zdns_wire::Message, TransportError>,
}

struct TcpPool {
    tx: Option<mpsc::Sender<TcpJob>>,
    rx: mpsc::Receiver<TcpDone>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl TcpPool {
    fn start(workers: usize) -> TcpPool {
        let (job_tx, job_rx) = mpsc::channel::<TcpJob>();
        let (done_tx, done_rx) = mpsc::channel::<TcpDone>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let mut threads = Vec::new();
        for _ in 0..workers.max(1) {
            let job_rx = Arc::clone(&job_rx);
            let done_tx = done_tx.clone();
            threads.push(std::thread::spawn(move || loop {
                let job = match job_rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
                    Ok(job) => job,
                    Err(_) => return,
                };
                let result = blocking_tcp_exchange(&job.query, job.to, job.timeout);
                let done = TcpDone {
                    slot: job.slot,
                    generation: job.generation,
                    tag: job.tag,
                    sim_ip: job.sim_ip,
                    result,
                };
                if done_tx.send(done).is_err() {
                    return;
                }
            }));
        }
        TcpPool {
            tx: Some(job_tx),
            rx: done_rx,
            threads,
        }
    }
}

impl Drop for TcpPool {
    fn drop(&mut self) {
        self.tx.take(); // close the job queue so workers exit
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

// ---------------------------------------------------------------------------
// The reactor
// ---------------------------------------------------------------------------

struct Pending {
    slot: usize,
    tag: u64,
    sim_ip: Ipv4Addr,
    orig_id: u16,
    timer_token: u64,
}

struct Slot {
    machine: Box<dyn SimClient>,
    /// Demux keys of this machine's in-flight UDP queries.
    keys: Vec<DemuxKey>,
    /// Exchanges parked in the TCP side-pool.
    tcp_pending: usize,
    /// Sends held on the pacer's deferred queue.
    deferred: usize,
    /// Sends staged for the next batch flush (same-tick coalescing).
    staged: usize,
    /// The machine's admission credit has been returned to the shared
    /// pool because *every* outstanding send is waiting on the pacer's
    /// deferred queue (typically a backoff penalty): the lookup is alive
    /// but costs the scan no window. The credit is re-leased before its
    /// next send goes to the wire.
    parked: bool,
}

/// A UDP send the pacer is holding back. Its budget was reserved at
/// admission, so when the wheel fires it goes straight to the wire.
struct DeferredSend {
    slot: usize,
    generation: u64,
    /// Backpressure requeues this send has already been through.
    attempts: u32,
    oq: OutQuery,
}

/// Wheel key for deferred-send releases. Never collides with demux
/// lookups: releases are resolved by token (globally unique) before the
/// demux path is consulted.
fn pace_key() -> DemuxKey {
    (
        SocketAddr::new(std::net::IpAddr::V4(Ipv4Addr::UNSPECIFIED), 0),
        0,
    )
}

/// A UDP send admitted by the pacer and waiting for the next batch
/// flush. Staging is what lets every send emitted in one event-loop tick
/// share a single `sendmmsg`.
struct StagedSend {
    slot: usize,
    generation: u64,
    /// Backpressure requeues this send has already been through.
    attempts: u32,
    oq: OutQuery,
}

/// A staged send that has its wire id, demux entry, and timeout armed,
/// and is about to go through the batched syscall. Registration happens
/// at prep time (before the syscall) so two same-tick sends to one peer
/// can never pick the same wire id; non-`Sent` outcomes roll it back.
/// The encoded bytes live in the flush's shared scratch arena (the slot
/// range rides in the parallel [`SendSlot`] vector), so preparing a send
/// touches the allocator zero times in the steady state.
struct PreparedSend {
    slot: usize,
    attempts: u32,
    key: DemuxKey,
    oq: OutQuery,
}

/// The reactor's pacing handle: its own pacer (a static budget split),
/// or one scan-wide pacer shared with its sibling workers (the
/// shared-queue pipeline's budget leasing — reserving from the shared
/// buckets is the lease, so idle workers leave the whole budget to the
/// active ones and backoff knowledge is common property). The shared
/// flavour comes in two implementations: the lock-free
/// [`ConcurrentPacer`] behind a per-worker [`ConcurrentGate`] (the
/// default), and the legacy whole-pacer mutex kept as an A/B lever.
enum PacerHandle {
    Own(Pacer),
    Shared(SharedPacer),
    Concurrent(ConcurrentGate),
}

impl PacerHandle {
    fn admit(&mut self, dest: Ipv4Addr, now: SimTime) -> PaceDecision {
        match self {
            PacerHandle::Own(pacer) => pacer.admit(dest, now),
            PacerHandle::Shared(pacer) => pacer.lock().admit(dest, now),
            PacerHandle::Concurrent(gate) => gate.admit(dest, now),
        }
    }

    fn on_success(&mut self, dest: Ipv4Addr, now: SimTime) {
        match self {
            PacerHandle::Own(pacer) => pacer.on_success(dest, now),
            PacerHandle::Shared(pacer) => pacer.lock().on_success(dest, now),
            PacerHandle::Concurrent(gate) => gate.on_success(dest, now),
        }
    }

    fn on_failure(&mut self, dest: Ipv4Addr, now: SimTime) {
        match self {
            PacerHandle::Own(pacer) => pacer.on_failure(dest, now),
            PacerHandle::Shared(pacer) => pacer.lock().on_failure(dest, now),
            PacerHandle::Concurrent(gate) => gate.on_failure(dest, now),
        }
    }

    /// Give unused global-budget block tokens back to a shared
    /// concurrent pacer — called at the same points admission credits go
    /// back to the pool (park/idle/end-of-run). No-op for the other
    /// handles and for an empty block, so it is safe to call freely.
    fn return_tokens(&mut self) {
        if let PacerHandle::Concurrent(gate) = self {
            gate.return_tokens();
        }
    }
}

/// This reactor's stake in the scan-wide [`CreditPool`].
struct CreditShare {
    pool: Arc<CreditPool>,
    /// Credits currently held: one per active (unparked) machine, plus
    /// the pre-leased spare.
    held: usize,
    /// One credit leased ahead of the next admission and kept across
    /// `Admission::Later` polls, so an idle loop does not churn the
    /// pool's counters.
    spare: bool,
    /// The static per-worker share of the window (total / workers), for
    /// steal telemetry; 0 disables the steal counter.
    fair_share: usize,
}

/// Delay before re-checking the credit pool when a matured deferred send
/// finds it empty (its owner was parked and the window is fully used).
const CREDIT_RETRY_DELAY: SimTime = 2 * MILLIS;

/// Ceiling on consecutive receive errors absorbed in one drain pass, so
/// a repeating error cannot spin the loop while still letting queued
/// datagrams behind an error be drained (not stranded until next poll).
const MAX_DRAIN_ERRORS: u32 = 64;

/// Delay before retrying a send that hit send-buffer backpressure.
const BACKPRESSURE_DELAY: SimTime = 2 * MILLIS;

/// Backpressure requeues one send may consume before it fails the
/// lookup. A bounded retry keeps WouldBlock from looping a query on the
/// deferred queue forever with no timeout armed (the per-query timer
/// only starts at an actual send).
const MAX_BACKPRESSURE_RETRIES: u32 = 8;

/// The event-driven driver: one non-blocking UDP socket, a demux table,
/// a timer wheel, and up to [`ReactorConfig::max_in_flight`] concurrent
/// lookup machines.
pub struct Reactor {
    socket: UdpSocket,
    addr_map: Arc<AddrMap>,
    config: ReactorConfig,
    slots: Vec<Option<Slot>>,
    /// Bumped each time a slot retires, so completions addressed to a
    /// previous occupant of a recycled slot are recognizably stale.
    generations: Vec<u64>,
    free_slots: Vec<usize>,
    in_flight: usize,
    demux: HashMap<DemuxKey, Pending>,
    wheel: TimerWheel,
    pacer: PacerHandle,
    /// Shared admission credits (`None` = the classic static window).
    credits: Option<CreditShare>,
    /// Machines alive but holding no credit (all sends in backoff).
    parked_count: usize,
    deferred: HashMap<u64, DeferredSend>,
    next_token: u64,
    txid_cursor: u16,
    started: Instant,
    tcp: TcpPool,
    tcp_inflight: usize,
    report: DriverReport,
    /// `Option` so [`Reactor::drain_datagrams`] can move the arena out
    /// while borrowed views over it are delivered to machines (which need
    /// `&mut self`); always `Some` between method calls.
    batch: Option<BatchIo>,
    staged: Vec<StagedSend>,
    /// Whether receives step machines on owned messages instead of views.
    owned_decode: bool,
    // -- steady-state allocation pools -------------------------------------
    /// Shared encode arena for one flush's datagrams.
    send_scratch: ScratchBuf,
    /// `(offset, len, dest)` per prepared datagram, parallel to `prepared`.
    send_slots: Vec<SendSlot>,
    /// Prepared sends of the current flush (reused across flushes).
    prepared: Vec<PreparedSend>,
    /// Per-datagram outcomes of the current flush (reused).
    statuses: Vec<BatchSendStatus>,
    /// Recycled machine-output buffers: stepping a machine pops one,
    /// finishing the step pushes it back, so per-lookup stepping never
    /// allocates. A small pool (not one buffer) because event delivery
    /// re-enters: a step can synchronously trigger another step.
    out_pool: Vec<Vec<OutQuery>>,
    /// Recycled per-slot demux-key vectors (admit pops, retire pushes).
    keys_pool: Vec<Vec<DemuxKey>>,
    /// Recycled buffer for expired timers (so timeout storms stay
    /// allocation-free too).
    fired: Vec<(u64, DemuxKey)>,
    /// Recycled queue of slots whose sends were just deferred and that
    /// may therefore be parkable (checked at safe points, not mid-step).
    park_checks: Vec<usize>,
    /// The optional server half: installed via
    /// [`Reactor::set_server_role`], it receives inbound queries (QR=0
    /// demux misses) and queues forwarding machines for admission.
    /// `Option` (like `batch`) so role methods taking `&mut` can run
    /// while the reactor is borrowed; boxed to keep the scan-only
    /// reactor layout lean.
    server: Option<Box<ServerRole>>,
}

impl Reactor {
    /// Bind the long-lived socket and start the TCP side-pool.
    pub fn new(config: ReactorConfig, addr_map: Arc<AddrMap>) -> std::io::Result<Reactor> {
        let socket = UdpSocket::bind((config.source, 0))?;
        Reactor::from_socket(socket, config, addr_map)
    }

    /// Build around an already-bound socket. Lets callers bind (and surface
    /// bind failures) on one thread, then construct the reactor on the
    /// worker thread that will drive it — the reactor itself is not `Send`
    /// because the machines it owns are not.
    pub fn from_socket(
        socket: UdpSocket,
        config: ReactorConfig,
        addr_map: Arc<AddrMap>,
    ) -> std::io::Result<Reactor> {
        socket.set_nonblocking(true)?;
        // A reactor keeps hundreds of queries in flight on one socket;
        // responses arrive in bursts the default buffer would drop.
        zdns_netsim::set_recv_buffer(&socket, 8 << 20);
        let wheel = TimerWheel::new(config.wheel_slots, config.wheel_granularity);
        let tcp = TcpPool::start(config.tcp_pool);
        let pacer = Pacer::new(config.pacer.clone());
        let batch = BatchIo::with_backend(config.io_backend, config.batch_size);
        let owned_decode = config.owned_decode;
        let started = config.epoch.unwrap_or_else(Instant::now);
        Ok(Reactor {
            socket,
            addr_map,
            config,
            slots: Vec::new(),
            generations: Vec::new(),
            free_slots: Vec::new(),
            in_flight: 0,
            demux: HashMap::new(),
            wheel,
            pacer: PacerHandle::Own(pacer),
            credits: None,
            parked_count: 0,
            deferred: HashMap::new(),
            next_token: 0,
            txid_cursor: 1,
            started,
            tcp,
            tcp_inflight: 0,
            report: DriverReport::default(),
            batch: Some(batch),
            staged: Vec::new(),
            owned_decode,
            send_scratch: ScratchBuf::new(),
            send_slots: Vec::new(),
            prepared: Vec::new(),
            statuses: Vec::new(),
            out_pool: Vec::new(),
            keys_pool: Vec::new(),
            fired: Vec::new(),
            park_checks: Vec::new(),
            server: None,
        })
    }

    /// Install a server role: from here on, inbound QR=0 datagrams on the
    /// reactor socket dispatch to it instead of counting as stale, and
    /// [`Reactor::serve_tick`] / [`Reactor::run_serve`] drive its
    /// listener, TCP table, and forwarded-answer queue.
    pub fn set_server_role(&mut self, role: ServerRole) {
        self.server = Some(Box::new(role));
    }

    /// The installed server role's shared counters, if any.
    pub fn server_stats(&self) -> Option<Arc<ServeStats>> {
        self.server.as_ref().map(|r| r.stats())
    }

    /// Join the scan-wide admission [`CreditPool`]: instead of a fixed
    /// private window, this reactor leases one credit per *active*
    /// lookup (and returns it while a lookup's every send is held in
    /// backoff). [`ReactorConfig::max_in_flight`] remains the hard cap
    /// on machines this worker will host — shared-queue scans set it to
    /// the whole window so any one worker can absorb capacity its
    /// siblings are not using. `fair_share` (the static per-worker
    /// split, usually `total / workers`) only feeds the
    /// [`DriverReport::inputs_stolen`] counter; pass 0 to disable it.
    pub fn set_credit_pool(&mut self, pool: Arc<CreditPool>, fair_share: usize) {
        self.credits = Some(CreditShare {
            pool,
            held: 0,
            spare: false,
            fair_share,
        });
    }

    /// Replace this reactor's private pacer with one shared scan-wide —
    /// budget leasing for the pacing half of the contract (see
    /// [`SharedPacer`]).
    pub fn set_shared_pacer(&mut self, pacer: SharedPacer) {
        self.pacer = PacerHandle::Shared(pacer);
    }

    /// Share a lock-free [`ConcurrentPacer`] scan-wide — same contract
    /// as [`Reactor::set_shared_pacer`] (one global budget, common
    /// backoff memory, workers MUST share a [`ReactorConfig::epoch`]),
    /// but admission is a worker-local token block plus a striped table
    /// instead of a whole-pacer mutex.
    pub fn set_concurrent_pacer(&mut self, pacer: Arc<ConcurrentPacer>) {
        self.pacer = PacerHandle::Concurrent(ConcurrentGate::new(pacer));
    }

    /// The bound local address (one reused source port for every lookup).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Machines currently in flight.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// The syscall strategy the batch layer resolved to — what the
    /// requested [`ReactorConfig::io_backend`] actually got on this
    /// kernel (`"syscall"`, `"mmsg"`, or `"uring"`).
    pub fn io_backend(&self) -> &'static str {
        self.batch
            .as_ref()
            .map(BatchIo::backend_name)
            .unwrap_or("syscall")
    }

    /// Armed (not cancelled, not fired) timer entries.
    pub fn live_timers(&self) -> usize {
        self.wheel.live()
    }

    /// Timer entries physically stored in the wheel (live plus entries
    /// cancelled but not yet swept).
    pub fn stored_timers(&self) -> usize {
        self.wheel.stored()
    }

    /// In-flight UDP queries awaiting demux.
    pub fn pending_queries(&self) -> usize {
        self.demux.len()
    }

    /// Sends currently held on the pacer's deferred queue.
    pub fn deferred_sends(&self) -> usize {
        self.deferred.len()
    }

    /// Machines alive but holding no admission credit because every send
    /// they own is waiting out a backoff penalty (shared-queue scans).
    pub fn parked_machines(&self) -> usize {
        self.parked_count
    }

    fn now(&self) -> SimTime {
        self.started.elapsed().as_nanos() as u64
    }

    /// Pop a recycled machine-output buffer (or make a fresh one — only
    /// before the pool has warmed up).
    fn take_out_buf(&mut self) -> Vec<OutQuery> {
        self.out_pool.pop().unwrap_or_default()
    }

    /// Return a machine-output buffer to the pool.
    fn put_out_buf(&mut self, mut out: Vec<OutQuery>) {
        out.clear();
        if self.out_pool.len() < 64 {
            self.out_pool.push(out);
        }
    }

    /// Admit one machine, starting it immediately.
    fn admit(&mut self, machine: Box<dyn SimClient>, on_done: &mut dyn FnMut(Option<JobOutcome>)) {
        let idx = match self.free_slots.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(None);
                self.generations.push(0);
                self.slots.len() - 1
            }
        };
        let keys = self.keys_pool.pop().unwrap_or_default();
        self.slots[idx] = Some(Slot {
            machine,
            keys,
            tcp_pending: 0,
            deferred: 0,
            staged: 0,
            parked: false,
        });
        self.in_flight += 1;
        self.report.peak_in_flight = self.report.peak_in_flight.max(self.in_flight);
        if let Some(credits) = &self.credits {
            // Steal telemetry: an admission while this worker already
            // hosts its static fair share is an input a statically-split
            // worker could not have accepted — capacity absorbed from a
            // sibling's stranded slice. Hosted count (parked included)
            // is the right comparison: a static split has no parking, so
            // its backed-off lookups occupy window slots and a worker at
            // fair_share hosted machines is full, whatever their state.
            if credits.fair_share > 0 && self.in_flight > credits.fair_share {
                self.report.inputs_stolen += 1;
            }
        }

        let mut slot = self.slots[idx].take().expect("fresh slot");
        let mut out = self.take_out_buf();
        let status = slot.machine.start(self.now(), &mut out);
        self.after_step(idx, slot, status, out, on_done);
    }

    /// Common post-step handling: either the machine finished, or its new
    /// queries go on the wire (which may synchronously produce failure
    /// events that feed straight back into the machine).
    fn after_step(
        &mut self,
        idx: usize,
        slot: Slot,
        status: zdns_netsim::StepStatus,
        mut out: Vec<OutQuery>,
        on_done: &mut dyn FnMut(Option<JobOutcome>),
    ) {
        use zdns_netsim::StepStatus;
        match status {
            StepStatus::Done(outcome) => {
                self.put_out_buf(out);
                self.retire(idx, slot);
                self.report.completed += 1;
                if outcome.success {
                    self.report.successes += 1;
                }
                on_done(Some(outcome));
            }
            StepStatus::Running => {
                self.slots[idx] = Some(slot);
                let mut immediate = Vec::new();
                self.register_out(idx, &mut out, &mut immediate);
                self.put_out_buf(out);
                for event in immediate {
                    self.deliver(idx, event, on_done);
                }
                self.reap_if_wedged(idx, on_done);
                if self.credits.is_some() {
                    // This step may have retired the machine's last
                    // on-wire query while an older send still sits on
                    // the deferred queue — the machine is now fully in
                    // backoff even though nothing was deferred *in this
                    // step* (defer_send queues its own checks).
                    self.park_checks.push(idx);
                }
            }
        }
        // Machines whose sends were just deferred (or whose last live
        // query just retired) may now be fully in backoff; park them
        // (returning their credits) while no machine is mid-step.
        self.process_park_checks();
    }

    /// A running machine with nothing in flight would hang the scan; fail
    /// it closed, mirroring `drive_blocking`. A machine whose sends are
    /// merely held by the pacer — or staged for the next batch flush —
    /// is waiting, not wedged.
    fn reap_if_wedged(&mut self, idx: usize, on_done: &mut dyn FnMut(Option<JobOutcome>)) {
        let wedged = match &self.slots[idx] {
            Some(slot) => {
                slot.keys.is_empty()
                    && slot.tcp_pending == 0
                    && slot.deferred == 0
                    && slot.staged == 0
            }
            None => false,
        };
        if wedged {
            let slot = self.slots[idx].take().expect("checked above");
            self.retire(idx, slot);
            self.report.completed += 1;
            on_done(None);
        }
    }

    /// Release a finished machine's slot and cancel anything it left in
    /// the demux table or timer wheel.
    fn retire(&mut self, idx: usize, slot: Slot) {
        let mut keys = slot.keys;
        for key in keys.drain(..) {
            if let Some(pending) = self.demux.remove(&key) {
                self.wheel.cancel(pending.timer_token);
            }
        }
        if self.keys_pool.len() < 4_096 {
            self.keys_pool.push(keys);
        }
        if let Some(credits) = self.credits.as_mut() {
            if slot.parked {
                // A parked machine retired without re-leasing (its credit
                // was already back in the pool).
                self.parked_count -= 1;
            } else {
                credits.pool.release(1);
                credits.held -= 1;
                self.report.credit_returns += 1;
            }
        }
        self.slots[idx] = None;
        self.generations[idx] += 1;
        self.free_slots.push(idx);
        self.in_flight -= 1;
    }

    /// Park `idx` if every outstanding send it owns is sitting on the
    /// pacer's deferred queue: the lookup is alive but off the wire, so
    /// its admission credit goes back to the shared pool for a sibling
    /// (or this worker's next admission) to use. No-op without a credit
    /// pool, for already-parked slots, and for slots with live work.
    fn maybe_park(&mut self, idx: usize) {
        let Some(credits) = self.credits.as_mut() else {
            return;
        };
        let Some(slot) = self.slots[idx].as_mut() else {
            return;
        };
        let idle = !slot.parked
            && slot.deferred > 0
            && slot.keys.is_empty()
            && slot.tcp_pending == 0
            && slot.staged == 0;
        if idle {
            slot.parked = true;
            self.parked_count += 1;
            credits.pool.release(1);
            credits.held -= 1;
            self.report.credit_returns += 1;
            self.report.idle_credit_returns += 1;
            // A park means pacing is the bottleneck here: unused global
            // token-block slots go back with the credit, so siblings
            // (and this worker's own deferred queue) drain the budget.
            self.pacer.return_tokens();
        }
    }

    /// Whether admission may host one more machine: *active* machines
    /// (in flight minus parked) stay under the window, and total hosted
    /// machines stay under window + parked allowance.
    fn admittable(&self) -> bool {
        let active = self.in_flight - self.parked_count;
        active < self.config.max_in_flight
            && self.in_flight
                < self
                    .config
                    .max_in_flight
                    .saturating_add(if self.credits.is_some() {
                        self.config.max_parked
                    } else {
                        0
                    })
    }

    /// Run the queued park checks (slots whose sends were just deferred).
    /// Safe to call at any point where no machine is mid-step.
    fn process_park_checks(&mut self) {
        while let Some(idx) = self.park_checks.pop() {
            self.maybe_park(idx);
        }
    }

    /// Allocate a wire transaction id that is unique for `peer`,
    /// preferring the machine's own deterministic id.
    fn allocate_txid(&mut self, peer: SocketAddr, preferred: u16) -> Option<u16> {
        if !self.demux.contains_key(&(peer, preferred)) {
            return Some(preferred);
        }
        for _ in 0..=u16::MAX {
            let candidate = self.txid_cursor;
            self.txid_cursor = self.txid_cursor.wrapping_add(1);
            if !self.demux.contains_key(&(peer, candidate)) {
                return Some(candidate);
            }
        }
        None
    }

    /// Route a machine's emitted queries: UDP through the pacer (then
    /// the shared socket + demux table + timer wheel), TCP through the
    /// side-pool.
    fn register_out(
        &mut self,
        idx: usize,
        out: &mut Vec<OutQuery>,
        immediate: &mut Vec<ClientEvent<'static>>,
    ) {
        for oq in out.drain(..) {
            match oq.protocol {
                Protocol::Tcp => {
                    let dest = (self.addr_map)(oq.to);
                    let job = TcpJob {
                        slot: idx,
                        generation: self.generations[idx],
                        tag: oq.tag,
                        sim_ip: oq.to,
                        query: oq.to_message(),
                        to: dest,
                        timeout: Duration::from_nanos(oq.timeout),
                    };
                    if let Some(tx) = &self.tcp.tx {
                        if tx.send(job).is_ok() {
                            if let Some(slot) = self.slots[idx].as_mut() {
                                slot.tcp_pending += 1;
                            }
                            self.tcp_inflight += 1;
                            self.report.tcp_fallbacks += 1;
                            continue;
                        }
                    }
                    immediate.push(ClientEvent::TransportFailed { tag: oq.tag });
                }
                Protocol::Udp => match self.pacer.admit(oq.to, self.now()) {
                    PaceDecision::Ready => self.stage_send(idx, oq, 0),
                    PaceDecision::Defer {
                        until,
                        host_limited,
                    } => {
                        if host_limited {
                            self.report.per_host_throttles += 1;
                        }
                        self.report.queries_deferred += 1;
                        self.defer_send(idx, oq, 0, until);
                    }
                },
            }
        }
    }

    /// Park a UDP send on the deferred queue, armed on the timer wheel
    /// for its pacer-assigned release time.
    fn defer_send(&mut self, idx: usize, oq: OutQuery, attempts: u32, release: SimTime) {
        let token = self.next_token;
        self.next_token += 1;
        self.wheel.arm(release, token, pace_key());
        self.deferred.insert(
            token,
            DeferredSend {
                slot: idx,
                generation: self.generations[idx],
                attempts,
                oq,
            },
        );
        if let Some(slot) = self.slots[idx].as_mut() {
            slot.deferred += 1;
        }
        if self.credits.is_some() {
            // The owner may now be fully in backoff; check at the next
            // safe point (never mid-step).
            self.park_checks.push(idx);
        }
        self.report.max_deferred_depth = self.report.max_deferred_depth.max(self.deferred.len());
    }

    /// A deferred send's release time arrived: its budget is already
    /// reserved, so it goes into the next batch flush (unless its owner
    /// retired while it was held). Releases that mature on the same wheel
    /// tick therefore coalesce into one `sendmmsg`.
    ///
    /// A *parked* owner gave its admission credit back when it went into
    /// backoff, so its send must re-lease one before touching the wire.
    /// If the pool is momentarily empty (the window is fully active
    /// elsewhere), the send is re-parked for [`CREDIT_RETRY_DELAY`] — a
    /// bounded-rate retry, counted as a credit stall.
    fn release_deferred(&mut self, sent: DeferredSend) {
        if self.generations[sent.slot] != sent.generation {
            return; // owner finished while the send was held
        }
        let parked = self.slots[sent.slot]
            .as_ref()
            .map(|slot| slot.parked)
            .unwrap_or(false);
        if parked {
            let credits = self.credits.as_mut().expect("parked implies a pool");
            if credits.pool.try_lease(1) {
                credits.held += 1;
                self.report.credit_leases += 1;
                self.parked_count -= 1;
                if let Some(slot) = self.slots[sent.slot].as_mut() {
                    slot.parked = false;
                }
            } else {
                self.report.credit_stalls += 1;
                let token = self.next_token;
                self.next_token += 1;
                self.wheel
                    .arm(self.now() + CREDIT_RETRY_DELAY, token, pace_key());
                self.deferred.insert(token, sent);
                return;
            }
        }
        if let Some(slot) = self.slots[sent.slot].as_mut() {
            slot.deferred -= 1;
        }
        self.stage_send(sent.slot, sent.oq, sent.attempts);
    }

    /// Queue one pacer-admitted UDP send for the next batch flush.
    fn stage_send(&mut self, idx: usize, oq: OutQuery, attempts: u32) {
        if let Some(slot) = self.slots[idx].as_mut() {
            slot.staged += 1;
        }
        self.staged.push(StagedSend {
            slot: idx,
            generation: self.generations[idx],
            attempts,
            oq,
        });
    }

    /// Flush every staged send through the batched syscall layer, looping
    /// until the stage is empty (a `TransportFailed` delivered here can
    /// make its machine emit a retry, which stages again).
    ///
    /// Each flush is three phases so no machine code runs while the batch
    /// is being assembled:
    /// 1. **prep** — per send: allocate a wire id, encode, arm the
    ///    timeout, and register the demux entry (registering *before* the
    ///    syscall is what keeps two same-tick sends to one peer from
    ///    colliding on a wire id);
    /// 2. **syscall** — one `sendmmsg` per `batch_size` datagrams (or
    ///    per-datagram sends on the fallback path);
    /// 3. **settle** — non-`Sent` datagrams roll their registration back:
    ///    backpressure requeues on the deferred queue, errors fail the
    ///    lookup.
    fn flush_staged(&mut self, on_done: &mut dyn FnMut(Option<JobOutcome>)) {
        while !self.staged.is_empty() {
            // Working storage is owned by the reactor and recycled every
            // flush: the encode arena, the slot list, the prepared list,
            // and the status list all keep their capacity, so a
            // steady-state flush performs zero heap allocations.
            let mut staged = std::mem::take(&mut self.staged);
            let mut prepared = std::mem::take(&mut self.prepared);
            let mut send_slots = std::mem::take(&mut self.send_slots);
            let mut statuses = std::mem::take(&mut self.statuses);
            let mut scratch = std::mem::take(&mut self.send_scratch);
            prepared.clear();
            send_slots.clear();
            statuses.clear();
            scratch.reset();
            let mut events: Vec<(usize, u64)> = Vec::new();
            for send in staged.drain(..) {
                if self.generations[send.slot] != send.generation {
                    continue; // owner retired while the send was staged
                }
                if let Some(slot) = self.slots[send.slot].as_mut() {
                    slot.staged -= 1;
                }
                let oq = send.oq;
                let dest = (self.addr_map)(oq.to);
                // The machine's own id is never mutated: the wire carries
                // `txid`, the demux entry remembers the original.
                let Some(txid) = self.allocate_txid(dest, oq.id) else {
                    events.push((send.slot, oq.tag));
                    continue;
                };
                let start = scratch.len();
                if encode_query_into(
                    &mut scratch,
                    txid,
                    &oq.question,
                    oq.recursion_desired,
                    oq.cookie.as_ref(),
                )
                .is_err()
                {
                    events.push((send.slot, oq.tag));
                    continue;
                }
                let len = scratch.len() - start;
                let token = self.next_token;
                self.next_token += 1;
                let key = (dest, txid);
                self.wheel.arm(self.now() + oq.timeout, token, key);
                self.demux.insert(
                    key,
                    Pending {
                        slot: send.slot,
                        tag: oq.tag,
                        sim_ip: oq.to,
                        orig_id: oq.id,
                        timer_token: token,
                    },
                );
                if let Some(slot) = self.slots[send.slot].as_mut() {
                    slot.keys.push(key);
                }
                send_slots.push((start as u32, len as u32, dest));
                prepared.push(PreparedSend {
                    slot: send.slot,
                    attempts: send.attempts,
                    key,
                    oq,
                });
            }

            if !prepared.is_empty() {
                let (batch, report) = (
                    self.batch.as_mut().expect("batch io present"),
                    &mut self.report,
                );
                let stats = batch.send_slots(
                    &self.socket,
                    scratch.as_slice(),
                    &send_slots,
                    &mut statuses,
                    &mut |fill| report.send_batch_fill.record(fill),
                );
                self.report.send_syscalls += stats.syscalls;
                self.report.datagrams_sent += stats.sent;

                for (p, status) in prepared.drain(..).zip(statuses.iter()) {
                    if matches!(status, BatchSendStatus::Sent) {
                        continue; // registration done at prep time
                    }
                    // Roll the registration back: the datagram never made
                    // it onto the wire.
                    if let Some(pending) = self.demux.remove(&p.key) {
                        self.wheel.cancel(pending.timer_token);
                    }
                    if let Some(slot) = self.slots[p.slot].as_mut() {
                        if let Some(pos) = slot.keys.iter().position(|k| *k == p.key) {
                            slot.keys.swap_remove(pos);
                        }
                    }
                    match status {
                        BatchSendStatus::Backpressure if p.attempts < MAX_BACKPRESSURE_RETRIES => {
                            // Retry shortly; a bounded retry keeps
                            // WouldBlock from cycling a query on the
                            // deferred queue forever with no timeout
                            // armed.
                            self.report.backpressure_requeues += 1;
                            self.defer_send(
                                p.slot,
                                p.oq,
                                p.attempts + 1,
                                self.now() + BACKPRESSURE_DELAY,
                            );
                        }
                        _ => {
                            // Sustained backpressure or a hard socket
                            // error: fail the lookup.
                            events.push((p.slot, p.oq.tag));
                        }
                    }
                }
            }

            // Restore the recycled storage *before* delivering failure
            // events: a machine reacting to one may stage a retry, which
            // must land in the capacity-retaining `staged` vector.
            self.staged = staged;
            self.prepared = prepared;
            self.send_slots = send_slots;
            self.statuses = statuses;
            self.send_scratch = scratch;
            for (idx, tag) in events {
                self.deliver(idx, ClientEvent::TransportFailed { tag }, on_done);
            }
        }
        self.process_park_checks();
    }

    /// Feed one event to the machine in `idx` and process the aftermath.
    fn deliver(
        &mut self,
        idx: usize,
        event: ClientEvent<'_>,
        on_done: &mut dyn FnMut(Option<JobOutcome>),
    ) {
        let Some(mut slot) = self.slots[idx].take() else {
            return; // machine already retired (e.g. late TCP completion)
        };
        let mut out = self.take_out_buf();
        let status = slot.machine.on_event(event, self.now(), &mut out);
        self.after_step(idx, slot, status, out, on_done);
    }

    /// Drain every datagram currently queued on the socket, one arena
    /// batch at a time.
    ///
    /// Hard socket errors (e.g. ICMP unreachable surfaced as
    /// ECONNREFUSED) are skipped — the per-query timer still guards the
    /// lookup — and draining continues so one error doesn't strand
    /// already-queued datagrams until the next poll round; the
    /// [`MAX_DRAIN_ERRORS`] cap stops a repeating error from spinning the
    /// loop. A *short batch* (fewer datagrams than the arena holds) is a
    /// normal drain — the queue simply emptied — and is counted in
    /// `recv_partial_batches`, never against the error cap.
    fn drain_datagrams(&mut self, on_done: &mut dyn FnMut(Option<JobOutcome>)) {
        // Move the arena out so machines (stepped via `&mut self`) can be
        // handed borrowed views straight over its buffers — the zero-copy
        // receive path: no `to_vec`, no owned decode per datagram.
        let mut io = self.batch.take().expect("batch io present");
        // The server role is moved out the same way: its dispatch method
        // needs `&mut` while `self` stays borrowed for the socket and
        // report counters.
        let mut server = self.server.take();
        let mut errors = 0u32;
        'drain: loop {
            let batch = io.recv_into_arena(&self.socket);
            self.report.recv_syscalls += batch.syscalls;
            if batch.count > 0 {
                self.report.datagrams_received += batch.count as u64;
                self.report.recv_batch_fill.record(batch.count);
                if batch.count < io.batch_size() {
                    self.report.recv_partial_batches += 1;
                }
            }
            for i in 0..batch.count {
                let peer = io.arena_peer(i);
                let bytes = io.arena_bytes(i);
                // Parse up front (view sweep or owned decode), but touch
                // the demux table only after the datagram proves to be a
                // well-formed response.
                let mut owned: Option<zdns_wire::Message> = None;
                let mut view: Option<MessageView<'_>> = None;
                let (is_response, wire_id) = if self.owned_decode {
                    match Message::decode(bytes) {
                        Ok(m) => {
                            let meta = (m.flags.response, m.id);
                            owned = Some(m);
                            meta
                        }
                        Err(_) => {
                            self.report.decode_errors += 1;
                            continue;
                        }
                    }
                } else {
                    match MessageView::parse(bytes) {
                        Ok(v) => {
                            let meta = (v.flags().response, v.id());
                            view = Some(v);
                            meta
                        }
                        Err(_) => {
                            self.report.decode_errors += 1;
                            continue;
                        }
                    }
                };
                if !is_response {
                    // QR=0: with a server role installed this is a client
                    // query for the serve path — the dual-role socket's
                    // inbound half. Without one, an echoed query from a
                    // reflecting server or middlebox must not complete a
                    // lookup as a response.
                    match server.as_deref_mut() {
                        Some(role) => {
                            let now = self.now();
                            role.on_udp_datagram(&self.socket, bytes, peer, now);
                        }
                        None => self.report.stale_datagrams += 1,
                    }
                    continue;
                }
                let key = (peer, wire_id);
                let Some(pending) = self.demux.remove(&key) else {
                    // Late, stale, or unsolicited: exactly the datagrams
                    // the demux table exists to reject.
                    self.report.stale_datagrams += 1;
                    continue;
                };
                self.wheel.cancel(pending.timer_token);
                if let Some(slot) = self.slots[pending.slot].as_mut() {
                    if let Some(pos) = slot.keys.iter().position(|k| *k == key) {
                        slot.keys.swap_remove(pos);
                    }
                }
                // The machine sees its own transaction id: the view
                // overrides it without touching the arena, the owned
                // fallback rewrites the field.
                let message = match owned {
                    Some(mut m) => {
                        m.id = pending.orig_id;
                        MsgRef::Owned(m)
                    }
                    None => MsgRef::View(view.expect("view parsed").with_id(pending.orig_id)),
                };
                self.report.datagrams_delivered += 1;
                self.pacer.on_success(pending.sim_ip, self.now());
                let event = ClientEvent::Response {
                    tag: pending.tag,
                    from: pending.sim_ip,
                    message,
                    protocol: Protocol::Udp,
                };
                self.deliver(pending.slot, event, on_done);
            }
            match batch.err {
                None if batch.count == 0 => break 'drain, // socket drained
                None => {}                                // keep draining
                Some(_) => {
                    self.report.socket_errors += 1;
                    errors += 1;
                    if errors >= MAX_DRAIN_ERRORS {
                        break 'drain;
                    }
                }
            }
        }
        self.batch = Some(io);
        self.server = server;
    }

    /// Collect finished TCP side-pool exchanges.
    fn drain_tcp(&mut self, on_done: &mut dyn FnMut(Option<JobOutcome>)) {
        while let Ok(done) = self.tcp.rx.try_recv() {
            self.tcp_inflight -= 1;
            if self.generations[done.slot] != done.generation {
                // The owning machine retired while this exchange was in the
                // side-pool; the slot may already belong to someone else.
                // These are completions, not datagrams — they get their own
                // counter so demux telemetry stays honest.
                self.report.stale_tcp_completions += 1;
                continue;
            }
            if let Some(slot) = self.slots[done.slot].as_mut() {
                slot.tcp_pending -= 1;
            }
            let event = match done.result {
                Ok(message) => {
                    self.pacer.on_success(done.sim_ip, self.now());
                    ClientEvent::Response {
                        tag: done.tag,
                        from: done.sim_ip,
                        message: MsgRef::Owned(message),
                        protocol: Protocol::Tcp,
                    }
                }
                Err(TransportError::Timeout) => {
                    self.pacer.on_failure(done.sim_ip, self.now());
                    ClientEvent::Timeout { tag: done.tag }
                }
                Err(_) => {
                    self.pacer.on_failure(done.sim_ip, self.now());
                    ClientEvent::TransportFailed { tag: done.tag }
                }
            };
            self.deliver(done.slot, event, on_done);
        }
    }

    /// Fire every expired timer: deferred-send releases go to the wire,
    /// per-query timeouts go to their machines (and feed backoff).
    fn fire_timers(&mut self, on_done: &mut dyn FnMut(Option<JobOutcome>)) {
        let mut fired = std::mem::take(&mut self.fired);
        fired.clear();
        self.wheel.expire(self.now(), &mut fired);
        for (token, key) in fired.drain(..) {
            if let Some(sent) = self.deferred.remove(&token) {
                // Staged, not sent: every deferred release maturing on
                // this tick lands in the same upcoming batch flush.
                self.release_deferred(sent);
                continue;
            }
            let stale = match self.demux.get(&key) {
                Some(pending) => pending.timer_token != token,
                None => true,
            };
            if stale {
                continue;
            }
            let pending = self.demux.remove(&key).expect("checked above");
            if let Some(slot) = self.slots[pending.slot].as_mut() {
                if let Some(pos) = slot.keys.iter().position(|k| *k == key) {
                    slot.keys.swap_remove(pos);
                }
            }
            self.report.timeouts_fired += 1;
            self.pacer.on_failure(pending.sim_ip, self.now());
            self.deliver(
                pending.slot,
                ClientEvent::Timeout { tag: pending.tag },
                on_done,
            );
        }
        self.fired = fired;
    }

    /// One iteration of the serve loop: drain inbound datagrams (client
    /// queries dispatch to the server role, upstream responses to their
    /// lookup machines), collect TCP completions and timers, run the
    /// role's own listener/TCP/answer work, admit the forwarding machines
    /// that cache misses queued, and flush staged upstream sends in one
    /// batch.
    ///
    /// Public — rather than only reachable through [`Reactor::run_serve`]
    /// — so the zero-allocation suite can tick the loop on the measuring
    /// thread (allocation counters are per-thread) and benches can drive
    /// it without a stop flag.
    pub fn serve_tick(&mut self) {
        let mut on_done = |_outcome: Option<JobOutcome>| {};
        self.drain_datagrams(&mut on_done);
        self.drain_tcp(&mut on_done);
        self.fire_timers(&mut on_done);
        if let Some(mut role) = self.server.take() {
            let now = self.now();
            role.poll(&self.socket, now);
            self.server = Some(role);
        }
        // Admit the forwarding machines queued by cache misses. When the
        // hosting window is full the machine is dropped instead — it has
        // not started, so there is nothing to unwind, and the client
        // retries against a cache its sibling queries are busy filling.
        while let Some(machine) = self.server.as_mut().and_then(|r| r.pop_admission()) {
            if self.admittable() {
                self.admit(machine, &mut on_done);
            } else if let Some(role) = self.server.as_ref() {
                role.note_overload();
            }
        }
        self.flush_staged(&mut on_done);
    }

    /// Drive the serve loop until `stop` is raised: the blocking
    /// counterpart to [`Driver::run_scan`] for a reactor with a server
    /// role installed. Sleeps between ticks on the same readiness/timer
    /// logic as a scan, capped tighter while the role has work the
    /// reactor's own socket cannot signal (a dedicated `SO_REUSEPORT`
    /// listener, live TCP connections, queued answers).
    pub fn run_serve(&mut self, stop: &AtomicBool) -> DriverReport {
        #[cfg(unix)]
        use std::os::fd::AsRawFd;

        self.report = DriverReport::default();
        let ring_stats_start = if let Some(batch) = self.batch.as_mut() {
            batch.prime_recv(&self.socket);
            batch.ring_stats()
        } else {
            None
        };
        while !stop.load(Ordering::Relaxed) {
            self.serve_tick();

            let now = self.now();
            let mut wait_ns = self.wheel.ns_until_next_tick(now).unwrap_or(5 * MILLIS);
            if self.tcp_inflight > 0 {
                wait_ns = wait_ns.min(2 * MILLIS);
            }
            if self.server.as_ref().is_some_and(|r| r.wants_fast_tick()) {
                wait_ns = wait_ns.min(MILLIS);
            }
            // Floor of 1ms (a scan may spin at 0; a server must bound its
            // idle wakeup rate), ceiling of 50ms so the stop flag is
            // honored promptly.
            let wait_ms = wait_ns.div_ceil(MILLIS).clamp(1, 50) as i32;
            #[cfg(unix)]
            let fd = self
                .batch
                .as_ref()
                .map(|b| b.poll_fd(&self.socket))
                .unwrap_or_else(|| self.socket.as_raw_fd());
            #[cfg(not(unix))]
            let fd = 0;
            let buffered = self.batch.as_ref().is_some_and(BatchIo::has_buffered_recv);
            if !buffered {
                readiness::wait_readable(fd, wait_ms);
            }
        }

        // Same end-of-run hygiene as a scan: machines still forwarding
        // are abandoned (their clients will retry), deferred sends are
        // dropped with their wheel entries, and cancelled timers are
        // swept so the reactor can be reused.
        for (token, _) in self.deferred.drain() {
            self.wheel.cancel(token);
        }
        self.wheel.sweep_cancelled();

        self.report.io_backend = self.io_backend();
        if let (Some(end), Some(start)) = (
            self.batch.as_ref().and_then(BatchIo::ring_stats),
            ring_stats_start,
        ) {
            self.report.ring_sqes = end.sqes - start.sqes;
            self.report.ring_enters = end.enters - start.enters;
            self.report.cqe_batches = end.cqe_batches - start.cqe_batches;
            self.report.sq_full_stalls = end.sq_full_stalls - start.sq_full_stalls;
        }
        self.report.clone()
    }
}

impl Driver for Reactor {
    fn run_scan(
        &mut self,
        source: &mut dyn FnMut() -> Admission,
        on_done: &mut dyn FnMut(Option<JobOutcome>),
    ) -> DriverReport {
        #[cfg(unix)]
        use std::os::fd::AsRawFd;

        // A reactor is reusable; each scan reports its own counts.
        self.report = DriverReport::default();
        // The io_uring backend's standing RECVMSG pool must be armed
        // before the first sleep, or the opening tick would wait on a
        // ring with nothing in flight. Ring counters are reported as
        // this scan's delta off the cumulative backend stats.
        let ring_stats_start = if let Some(batch) = self.batch.as_mut() {
            batch.prime_recv(&self.socket);
            batch.ring_stats()
        } else {
            None
        };
        let mut exhausted = false;
        loop {
            // Admission: top the window up from the source. With a
            // shared credit pool, every admission also needs one leased
            // credit; a spare is leased ahead of the source pull (a
            // machine cannot be pushed back) and kept across empty
            // polls. Parked machines cost slots but no window, so the
            // hosting cap is `max_in_flight` *active* machines plus up
            // to `max_parked` parked ones.
            while !exhausted && self.admittable() {
                if let Some(credits) = self.credits.as_mut() {
                    if !credits.spare {
                        if !credits.pool.try_lease(1) {
                            break; // window fully active elsewhere
                        }
                        credits.spare = true;
                        credits.held += 1;
                        self.report.credit_leases += 1;
                    }
                }
                match source() {
                    Admission::Admit(machine) => {
                        if let Some(credits) = self.credits.as_mut() {
                            credits.spare = false; // the machine carries it now
                        }
                        self.admit(machine, on_done);
                    }
                    Admission::Later => break,
                    Admission::Exhausted => exhausted = true,
                }
            }
            if exhausted {
                // No more inputs will ever need the pre-leased spare.
                if let Some(credits) = self.credits.as_mut() {
                    if credits.spare {
                        credits.spare = false;
                        credits.held -= 1;
                        credits.pool.release(1);
                        self.report.credit_returns += 1;
                    }
                }
                // Nor will fresh admissions need the token block: the
                // drain phase re-leases on demand if retries crop up.
                self.pacer.return_tokens();
            }
            if self.in_flight == 0 && exhausted {
                break;
            }

            // Flush the admission burst in one batch before sleeping —
            // nothing would ever answer an unsent query.
            self.flush_staged(on_done);
            if self.in_flight == 0 && exhausted {
                break;
            }

            // Sleep until the next timer tick could fire, capped so TCP
            // completions and a refilling source are noticed promptly.
            let now = self.now();
            let mut wait_ns = self.wheel.ns_until_next_tick(now).unwrap_or(5 * MILLIS);
            if self.tcp_inflight > 0 || !exhausted {
                wait_ns = wait_ns.min(2 * MILLIS);
            }
            let wait_ms = wait_ns.div_ceil(MILLIS).clamp(0, 50) as i32;
            // Under io_uring the wake signal is the *ring* fd (armed
            // receives complete into the CQ without making the socket
            // readable), and datagrams already reaped into backend
            // memory would never wake a poll at all — skip the sleep
            // and drain them instead.
            #[cfg(unix)]
            let fd = self
                .batch
                .as_ref()
                .map(|b| b.poll_fd(&self.socket))
                .unwrap_or_else(|| self.socket.as_raw_fd());
            #[cfg(not(unix))]
            let fd = 0;
            let buffered = self.batch.as_ref().is_some_and(BatchIo::has_buffered_recv);
            if !buffered && (self.in_flight > 0 || !exhausted) {
                readiness::wait_readable(fd, wait_ms);
            }

            self.drain_datagrams(on_done);
            self.drain_tcp(on_done);
            self.fire_timers(on_done);
            // Same-tick coalescing: retries emitted by responses and
            // timeouts above, plus deferred releases that just matured,
            // all go out in one sendmmsg.
            self.flush_staged(on_done);
        }
        debug_assert!(self.staged.is_empty(), "staged sends leaked past the scan");
        debug_assert!(
            self.credits.as_ref().map_or(0, |c| c.held) == 0 && self.parked_count == 0,
            "credits leaked past the scan"
        );

        // End-of-run hygiene: every slot is free, the demux table is empty,
        // deferred sends whose owners retired are dropped with their wheel
        // entries, and lazily-cancelled timers get swept so nothing leaks
        // into the next scan on this reactor.
        for (token, _) in self.deferred.drain() {
            self.wheel.cancel(token);
        }
        self.wheel.sweep_cancelled();
        self.pacer.return_tokens();

        // Ring telemetry: this scan's delta, plus which backend ran.
        self.report.io_backend = self.io_backend();
        if let (Some(end), Some(start)) = (
            self.batch.as_ref().and_then(BatchIo::ring_stats),
            ring_stats_start,
        ) {
            self.report.ring_sqes = end.sqes - start.sqes;
            self.report.ring_enters = end.enters - start.enters;
            self.report.cqe_batches = end.cqe_batches - start.cqe_batches;
            self.report.sq_full_stalls = end.sq_full_stalls - start.sq_full_stalls;
        }
        self.report.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u16) -> DemuxKey {
        ("127.0.0.1:53".parse().unwrap(), n)
    }

    #[test]
    fn wheel_fires_in_deadline_order_windows() {
        let mut wheel = TimerWheel::new(8, MILLIS);
        wheel.arm(2 * MILLIS, 1, key(1));
        wheel.arm(5 * MILLIS, 2, key(2));
        let mut fired = Vec::new();
        wheel.expire(3 * MILLIS, &mut fired);
        assert_eq!(fired.iter().map(|(t, _)| *t).collect::<Vec<_>>(), vec![1]);
        wheel.expire(6 * MILLIS, &mut fired);
        assert_eq!(
            fired.iter().map(|(t, _)| *t).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(wheel.live(), 0);
    }

    #[test]
    fn wheel_cancellation_is_exact_and_sweepable() {
        let mut wheel = TimerWheel::new(8, MILLIS);
        wheel.arm(2 * MILLIS, 1, key(1));
        wheel.arm(2 * MILLIS, 2, key(2));
        wheel.cancel(1);
        assert_eq!(wheel.live(), 1);
        let mut fired = Vec::new();
        wheel.expire(4 * MILLIS, &mut fired);
        assert_eq!(fired.iter().map(|(t, _)| *t).collect::<Vec<_>>(), vec![2]);
        assert_eq!(wheel.live(), 0);
        wheel.sweep_cancelled();
        assert_eq!(wheel.stored(), 0);
    }

    #[test]
    fn wheel_parks_beyond_horizon_and_still_fires() {
        let mut wheel = TimerWheel::new(4, MILLIS); // horizon = 4ms
        wheel.arm(11 * MILLIS, 7, key(7));
        let mut fired = Vec::new();
        wheel.expire(10 * MILLIS, &mut fired);
        assert!(fired.is_empty(), "{fired:?}");
        assert_eq!(wheel.live(), 1);
        wheel.expire(12 * MILLIS, &mut fired);
        assert_eq!(fired.iter().map(|(t, _)| *t).collect::<Vec<_>>(), vec![7]);
        assert_eq!(wheel.live(), 0);
    }

    #[test]
    fn wheel_cancel_after_fire_is_a_noop() {
        let mut wheel = TimerWheel::new(8, MILLIS);
        wheel.arm(2 * MILLIS, 1, key(1));
        wheel.arm(2 * MILLIS, 2, key(2));
        let mut fired = Vec::new();
        wheel.expire(4 * MILLIS, &mut fired);
        assert_eq!(fired.len(), 2);
        assert_eq!(wheel.live(), 0);
        // A machine retiring right after its timers fired in the same batch
        // cancels tokens that are no longer armed: must not corrupt counts.
        wheel.cancel(1);
        wheel.cancel(2);
        assert_eq!(wheel.live(), 0);
        wheel.arm(6 * MILLIS, 3, key(3));
        assert_eq!(wheel.live(), 1);
        fired.clear();
        wheel.expire(8 * MILLIS, &mut fired);
        assert_eq!(fired.iter().map(|(t, _)| *t).collect::<Vec<_>>(), vec![3]);
        wheel.sweep_cancelled();
        assert_eq!(wheel.stored(), 0);
    }

    #[test]
    fn txid_allocation_avoids_collisions() {
        let addr_map: Arc<AddrMap> = Arc::new(|ip| SocketAddr::new(std::net::IpAddr::V4(ip), 53));
        let mut reactor = Reactor::new(
            ReactorConfig {
                source: Ipv4Addr::LOCALHOST,
                ..ReactorConfig::default()
            },
            addr_map,
        )
        .unwrap();
        let peer: SocketAddr = "127.0.0.1:5300".parse().unwrap();
        assert_eq!(reactor.allocate_txid(peer, 42), Some(42));
        reactor.demux.insert(
            (peer, 42),
            Pending {
                slot: 0,
                tag: 1,
                sim_ip: Ipv4Addr::LOCALHOST,
                orig_id: 42,
                timer_token: 0,
            },
        );
        let other = reactor.allocate_txid(peer, 42).unwrap();
        assert_ne!(other, 42);
        // A different peer can reuse the same wire id freely.
        let peer2: SocketAddr = "127.0.0.1:5301".parse().unwrap();
        assert_eq!(reactor.allocate_txid(peer2, 42), Some(42));
    }
}
