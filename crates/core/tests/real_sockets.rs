//! Resolution over real OS sockets: the blocking driver + long-lived UDP
//! socket against in-process loopback servers (root → TLD → leaf), including
//! truncation → TCP fallback.

use std::net::{Ipv4Addr, SocketAddr};
use std::sync::Arc;

use zdns_core::{AddrMap, Resolver, ResolverConfig, Status, UdpTransport};
use zdns_netsim::WireServer;
use zdns_wire::rdata::TxtData;
use zdns_wire::{Name, Question, RData, Record, RecordType};
use zdns_zones::{ExplicitUniverse, Universe, Zone};

/// Build a miniature Internet: a root zone delegating `test.` which
/// delegates `example.test.`, all servable from explicit zones.
fn mini_universe() -> ExplicitUniverse {
    let root_ip: Ipv4Addr = "198.41.0.1".parse().unwrap();
    let tld_ip: Ipv4Addr = "199.0.0.1".parse().unwrap();
    let leaf_ip: Ipv4Addr = "204.10.0.53".parse().unwrap();

    let mut root = Zone::new(Name::root(), "a.root-servers.test".parse().unwrap(), 518400);
    root.delegate(
        "test".parse().unwrap(),
        &["ns1.nic.test".parse().unwrap()],
        &[("ns1.nic.test".parse().unwrap(), RData::A(tld_ip))],
    );

    let mut tld = Zone::new("test".parse().unwrap(), "ns1.nic.test".parse().unwrap(), 900);
    tld.delegate(
        "example.test".parse().unwrap(),
        &["ns1.example.test".parse().unwrap()],
        &[("ns1.example.test".parse().unwrap(), RData::A(leaf_ip))],
    );

    let mut leaf = Zone::new(
        "example.test".parse().unwrap(),
        "ns1.example.test".parse().unwrap(),
        300,
    );
    leaf.add(Record::new(
        "example.test".parse().unwrap(),
        300,
        RData::A("192.0.2.80".parse().unwrap()),
    ));
    leaf.add(Record::new(
        "www.example.test".parse().unwrap(),
        300,
        RData::Cname("example.test".parse().unwrap()),
    ));
    // A TXT RRset fat enough to truncate over UDP at 512 bytes (query the
    // no-EDNS path via config) — actually EDNS is on by default with a
    // 1232-byte limit, so exceed that.
    for i in 0..24 {
        leaf.add(Record::new(
            "big.example.test".parse().unwrap(),
            300,
            RData::Txt(TxtData::from_text(&format!(
                "{}{}",
                "x".repeat(60),
                i
            ))),
        ));
    }

    let mut u = ExplicitUniverse::new();
    u.hint("a.root-servers.test".parse().unwrap(), root_ip);
    u.host(root_ip, root);
    u.host(tld_ip, tld);
    u.host(leaf_ip, leaf);
    u
}

/// Start one WireServer per simulated IP and return the address map.
fn start_servers(u: Arc<ExplicitUniverse>) -> (Vec<WireServer>, Box<AddrMap>) {
    let ips: Vec<Ipv4Addr> = ["198.41.0.1", "199.0.0.1", "204.10.0.53"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let mut servers = Vec::new();
    let mut mapping: Vec<(Ipv4Addr, SocketAddr)> = Vec::new();
    for ip in ips {
        let server = WireServer::start(Arc::clone(&u) as Arc<dyn Universe>, ip).unwrap();
        mapping.push((ip, server.addr()));
        servers.push(server);
    }
    let map: Box<AddrMap> = Box::new(move |ip| {
        mapping
            .iter()
            .find(|(sim, _)| *sim == ip)
            .map(|(_, real)| *real)
            .unwrap_or_else(|| SocketAddr::new(ip.into(), 53))
    });
    (servers, map)
}

fn resolver_for(u: &ExplicitUniverse) -> Resolver {
    let mut config = ResolverConfig::iterative(u.root_hints());
    config.retries = 2;
    config.timeout = zdns_netsim::SECONDS;
    config.iteration_timeout = zdns_netsim::SECONDS;
    Resolver::new(config)
}

#[test]
fn iterative_resolution_over_real_udp() {
    let u = Arc::new(mini_universe());
    let resolver = resolver_for(&u);
    let (_servers, map) = start_servers(Arc::clone(&u));
    let mut transport = UdpTransport::bind(Ipv4Addr::LOCALHOST).unwrap();

    let result = resolver.lookup_a("example.test", &mut transport, &map);
    assert_eq!(result.status, Status::NoError, "{result:?}");
    assert!(result
        .answers
        .iter()
        .any(|r| r.rdata == RData::A("192.0.2.80".parse().unwrap())));
    // Walked root → test → example.test.
    assert!(result.trace.len() >= 3);
    assert_eq!(result.queries_sent, 3);
}

#[test]
fn cname_chase_over_real_udp() {
    let u = Arc::new(mini_universe());
    let resolver = resolver_for(&u);
    let (_servers, map) = start_servers(Arc::clone(&u));
    let mut transport = UdpTransport::bind(Ipv4Addr::LOCALHOST).unwrap();

    let result = resolver.lookup_a("www.example.test", &mut transport, &map);
    assert_eq!(result.status, Status::NoError, "{result:?}");
    assert!(result.answers.iter().any(|r| matches!(r.rdata, RData::Cname(_))));
    assert!(result.answers.iter().any(|r| matches!(r.rdata, RData::A(_))));
}

#[test]
fn socket_reuse_across_lookups() {
    let u = Arc::new(mini_universe());
    let resolver = resolver_for(&u);
    let (_servers, map) = start_servers(Arc::clone(&u));
    let mut transport = UdpTransport::bind(Ipv4Addr::LOCALHOST).unwrap();
    let port = transport.local_addr().unwrap().port();
    for _ in 0..5 {
        let result = resolver.lookup_a("example.test", &mut transport, &map);
        assert_eq!(result.status, Status::NoError);
    }
    // One socket for all lookups — the §3.4 optimization.
    assert_eq!(transport.local_addr().unwrap().port(), port);
    // The warmed cache should skip root+TLD on later lookups.
    assert!(resolver.core().cache.stats.hit_rate() > 0.0);
}

#[test]
fn truncated_udp_falls_back_to_tcp() {
    let u = Arc::new(mini_universe());
    let resolver = resolver_for(&u);
    let (_servers, map) = start_servers(Arc::clone(&u));
    let mut transport = UdpTransport::bind(Ipv4Addr::LOCALHOST).unwrap();

    let result = resolver.lookup(
        Question::new("big.example.test".parse().unwrap(), RecordType::TXT),
        &mut transport,
        &map,
    );
    assert_eq!(result.status, Status::NoError, "{result:?}");
    assert_eq!(result.answers.len(), 24, "full RRset via TCP");
    assert_eq!(result.protocol, "tcp");
    assert_eq!(
        resolver
            .core()
            .stats
            .tcp_fallbacks
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
}

#[test]
fn nxdomain_over_real_sockets() {
    let u = Arc::new(mini_universe());
    let resolver = resolver_for(&u);
    let (_servers, map) = start_servers(Arc::clone(&u));
    let mut transport = UdpTransport::bind(Ipv4Addr::LOCALHOST).unwrap();

    let result = resolver.lookup_a("missing.example.test", &mut transport, &map);
    assert_eq!(result.status, Status::NxDomain);
    assert!(result.status.is_success(), "NXDOMAIN is a successful scan");
}
