//! Resolution over real OS sockets: the blocking driver + long-lived UDP
//! socket against in-process loopback servers (root → TLD → leaf), including
//! truncation → TCP fallback, plus the reactor driver multiplexing hundreds
//! of in-flight lookups over one socket.

use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::sync::Arc;

use zdns_core::{
    collecting_sink, AddrMap, Admission, ConcurrentPacer, Driver, PacerConfig, Reactor,
    ReactorConfig, Resolver, ResolverConfig, Status, UdpTransport,
};
use zdns_netsim::WireServer;
use zdns_wire::rdata::TxtData;
use zdns_wire::{Name, Question, RData, Record, RecordType};
use zdns_zones::{ExplicitUniverse, Universe, Zone};

/// Build a miniature Internet: a root zone delegating `test.` which
/// delegates `example.test.`, all servable from explicit zones.
fn mini_universe() -> ExplicitUniverse {
    let root_ip: Ipv4Addr = "198.41.0.1".parse().unwrap();
    let tld_ip: Ipv4Addr = "199.0.0.1".parse().unwrap();
    let leaf_ip: Ipv4Addr = "204.10.0.53".parse().unwrap();

    let mut root = Zone::new(Name::root(), "a.root-servers.test".parse().unwrap(), 518400);
    root.delegate(
        "test".parse().unwrap(),
        &["ns1.nic.test".parse().unwrap()],
        &[("ns1.nic.test".parse().unwrap(), RData::A(tld_ip))],
    );

    let mut tld = Zone::new(
        "test".parse().unwrap(),
        "ns1.nic.test".parse().unwrap(),
        900,
    );
    tld.delegate(
        "example.test".parse().unwrap(),
        &["ns1.example.test".parse().unwrap()],
        &[("ns1.example.test".parse().unwrap(), RData::A(leaf_ip))],
    );

    let mut leaf = Zone::new(
        "example.test".parse().unwrap(),
        "ns1.example.test".parse().unwrap(),
        300,
    );
    leaf.add(Record::new(
        "example.test".parse().unwrap(),
        300,
        RData::A("192.0.2.80".parse().unwrap()),
    ));
    leaf.add(Record::new(
        "www.example.test".parse().unwrap(),
        300,
        RData::Cname("example.test".parse().unwrap()),
    ));
    // A TXT RRset fat enough to truncate over UDP at 512 bytes (query the
    // no-EDNS path via config) — actually EDNS is on by default with a
    // 1232-byte limit, so exceed that.
    for i in 0..24 {
        leaf.add(Record::new(
            "big.example.test".parse().unwrap(),
            300,
            RData::Txt(TxtData::from_text(&format!("{}{}", "x".repeat(60), i))),
        ));
    }

    let mut u = ExplicitUniverse::new();
    u.hint("a.root-servers.test".parse().unwrap(), root_ip);
    u.host(root_ip, root);
    u.host(tld_ip, tld);
    u.host(leaf_ip, leaf);
    u
}

/// Start one WireServer per simulated IP and return the address map.
fn start_servers(u: Arc<ExplicitUniverse>) -> (Vec<WireServer>, Box<AddrMap>) {
    let ips: Vec<Ipv4Addr> = ["198.41.0.1", "199.0.0.1", "204.10.0.53"]
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let mut servers = Vec::new();
    let mut mapping: Vec<(Ipv4Addr, SocketAddr)> = Vec::new();
    for ip in ips {
        let server = WireServer::start(Arc::clone(&u) as Arc<dyn Universe>, ip).unwrap();
        mapping.push((ip, server.addr()));
        servers.push(server);
    }
    let map: Box<AddrMap> = Box::new(move |ip| {
        mapping
            .iter()
            .find(|(sim, _)| *sim == ip)
            .map(|(_, real)| *real)
            .unwrap_or_else(|| SocketAddr::new(ip.into(), 53))
    });
    (servers, map)
}

fn resolver_for(u: &ExplicitUniverse) -> Resolver {
    let mut config = ResolverConfig::iterative(u.root_hints());
    config.retries = 2;
    config.timeout = zdns_netsim::SECONDS;
    config.iteration_timeout = zdns_netsim::SECONDS;
    Resolver::new(config)
}

#[test]
fn iterative_resolution_over_real_udp() {
    let u = Arc::new(mini_universe());
    let resolver = resolver_for(&u);
    let (_servers, map) = start_servers(Arc::clone(&u));
    let mut transport = UdpTransport::bind(Ipv4Addr::LOCALHOST).unwrap();

    let result = resolver.lookup_a("example.test", &mut transport, &map);
    assert_eq!(result.status, Status::NoError, "{result:?}");
    assert!(result
        .answers
        .iter()
        .any(|r| r.rdata == RData::A("192.0.2.80".parse().unwrap())));
    // Walked root → test → example.test.
    assert!(result.trace.len() >= 3);
    assert_eq!(result.queries_sent, 3);
}

#[test]
fn cname_chase_over_real_udp() {
    let u = Arc::new(mini_universe());
    let resolver = resolver_for(&u);
    let (_servers, map) = start_servers(Arc::clone(&u));
    let mut transport = UdpTransport::bind(Ipv4Addr::LOCALHOST).unwrap();

    let result = resolver.lookup_a("www.example.test", &mut transport, &map);
    assert_eq!(result.status, Status::NoError, "{result:?}");
    assert!(result
        .answers
        .iter()
        .any(|r| matches!(r.rdata, RData::Cname(_))));
    assert!(result
        .answers
        .iter()
        .any(|r| matches!(r.rdata, RData::A(_))));
}

#[test]
fn socket_reuse_across_lookups() {
    let u = Arc::new(mini_universe());
    let resolver = resolver_for(&u);
    let (_servers, map) = start_servers(Arc::clone(&u));
    let mut transport = UdpTransport::bind(Ipv4Addr::LOCALHOST).unwrap();
    let port = transport.local_addr().unwrap().port();
    for _ in 0..5 {
        let result = resolver.lookup_a("example.test", &mut transport, &map);
        assert_eq!(result.status, Status::NoError);
    }
    // One socket for all lookups — the §3.4 optimization.
    assert_eq!(transport.local_addr().unwrap().port(), port);
    // The warmed cache should skip root+TLD on later lookups.
    assert!(resolver.core().cache.stats.hit_rate() > 0.0);
}

#[test]
fn truncated_udp_falls_back_to_tcp() {
    let u = Arc::new(mini_universe());
    let resolver = resolver_for(&u);
    let (_servers, map) = start_servers(Arc::clone(&u));
    let mut transport = UdpTransport::bind(Ipv4Addr::LOCALHOST).unwrap();

    let result = resolver.lookup(
        Question::new("big.example.test".parse().unwrap(), RecordType::TXT),
        &mut transport,
        &map,
    );
    assert_eq!(result.status, Status::NoError, "{result:?}");
    assert_eq!(result.answers.len(), 24, "full RRset via TCP");
    assert_eq!(result.protocol, "tcp");
    assert_eq!(
        resolver
            .core()
            .stats
            .tcp_fallbacks
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
}

#[test]
fn nxdomain_over_real_sockets() {
    let u = Arc::new(mini_universe());
    let resolver = resolver_for(&u);
    let (_servers, map) = start_servers(Arc::clone(&u));
    let mut transport = UdpTransport::bind(Ipv4Addr::LOCALHOST).unwrap();

    let result = resolver.lookup_a("missing.example.test", &mut transport, &map);
    assert_eq!(result.status, Status::NxDomain);
    assert!(result.status.is_success(), "NXDOMAIN is a successful scan");
}

// ---------------------------------------------------------------------------
// Reactor driver: many in-flight machines on one socket
// ---------------------------------------------------------------------------

/// Expected address for the i-th scan name (unique per name so a demux
/// mix-up between two in-flight lookups is always detectable).
fn scan_addr(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 7, (i / 256) as u8, (i % 256) as u8)
}

/// A universe with one fat authoritative zone holding `n` uniquely
/// addressed names, served from a single IP — so one WireServer can play
/// the external resolver for hundreds of concurrent lookups.
fn scan_universe(n: usize) -> (ExplicitUniverse, Ipv4Addr) {
    let server_ip: Ipv4Addr = "203.0.113.53".parse().unwrap();
    let mut zone = Zone::new(
        "scan.test".parse().unwrap(),
        "ns1.scan.test".parse().unwrap(),
        300,
    );
    for i in 0..n {
        zone.add(Record::new(
            format!("n{i}.scan.test").parse().unwrap(),
            300,
            RData::A(scan_addr(i)),
        ));
    }
    let mut u = ExplicitUniverse::new();
    u.host(server_ip, zone);
    (u, server_ip)
}

/// Feed `machines` through `reactor`, asserting everything drains.
/// Returns the scan's driver report (`report.completed` = lookups).
fn drive_all(
    reactor: &mut Reactor,
    mut machines: Vec<Box<dyn zdns_netsim::SimClient>>,
) -> zdns_core::DriverReport {
    machines.reverse(); // pop() admits in original order
    let mut feed = || match machines.pop() {
        Some(m) => Admission::Admit(m),
        None => Admission::Exhausted,
    };
    let mut completed = 0u64;
    let mut on_done = |_outcome| completed += 1;
    let report = reactor.run_scan(&mut feed, &mut on_done);
    assert_eq!(report.completed, completed);
    report
}

#[test]
fn reactor_multiplexes_500_lookups_on_one_socket() {
    const N: usize = 500;
    let (u, server_ip) = scan_universe(N);
    let u = Arc::new(u);
    let server = WireServer::start(Arc::clone(&u) as Arc<dyn Universe>, server_ip).unwrap();
    let real = server.addr();
    let map: Arc<AddrMap> = Arc::new(move |_ip| real);

    let mut config = ResolverConfig::external(vec![server_ip]);
    config.timeout = 2 * zdns_netsim::SECONDS;
    config.retries = 2;
    let resolver = Resolver::new(config);
    let (sink, collected) = collecting_sink();

    let mut reactor = Reactor::new(
        ReactorConfig {
            max_in_flight: N, // all 500 in flight at once
            source: Ipv4Addr::LOCALHOST,
            ..ReactorConfig::default()
        },
        map,
    )
    .unwrap();
    let port = reactor.local_addr().unwrap().port();

    // Inject hostile traffic at the reactor's socket before the scan: raw
    // garbage (decode errors) and well-formed DNS "responses" from a peer
    // that is not the server (stale/late datagrams). The demux table must
    // reject all of it by (peer, transaction id).
    let injector = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    let target = SocketAddr::new(Ipv4Addr::LOCALHOST.into(), port);
    for i in 0..40u16 {
        injector.send_to(&[0xFF, 0xEE, 0xDD], target).unwrap();
        let mut fake = zdns_wire::Message::query(
            i, // ids that will collide with in-flight wire ids
            Question::new("n0.scan.test".parse().unwrap(), RecordType::A),
        );
        fake.flags.response = true;
        injector.send_to(&fake.encode().unwrap(), target).unwrap();
    }

    let machines: Vec<_> = (0..N)
        .map(|i| {
            resolver.machine(
                Question::new(format!("n{i}.scan.test").parse().unwrap(), RecordType::A),
                Some(sink.clone()),
            )
        })
        .collect();
    let completed = drive_all(&mut reactor, machines).completed;
    assert_eq!(completed, N as u64);

    // Per-lookup demux correctness: every result carries exactly the
    // address planted for its own name, so interleaved and out-of-order
    // responses were all routed to their owning machine.
    let results = collected.lock();
    assert_eq!(results.len(), N);
    for r in results.iter() {
        assert_eq!(r.status, Status::NoError, "{:?}", r.name);
        let text = r.name.to_string();
        let digits: String = text
            .trim_start_matches('n')
            .chars()
            .take_while(char::is_ascii_digit)
            .collect();
        let i: usize = digits.parse().expect("name carries its index");
        assert_eq!(
            r.answers.iter().find_map(|rec| match rec.rdata {
                RData::A(a) => Some(a),
                _ => None,
            }),
            Some(scan_addr(i)),
            "lookup {i} got someone else's answer"
        );
    }

    // Nothing leaked: no in-flight queries, no armed timers, and the
    // end-of-run sweep cleared lazily-cancelled wheel entries too.
    assert_eq!(reactor.in_flight(), 0);
    assert_eq!(reactor.pending_queries(), 0);
    assert_eq!(reactor.live_timers(), 0, "leaked armed timers");
    assert_eq!(reactor.stored_timers(), 0, "leaked cancelled timer entries");
}

#[test]
fn reactor_times_out_and_retries_via_timer_wheel() {
    // A bound-but-silent "server": every query must be timed out by the
    // wheel, retried by the machine, and finally reported as TIMEOUT.
    let silent = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    let dead = silent.local_addr().unwrap();
    let map: Arc<AddrMap> = Arc::new(move |_ip| dead);

    let mut config = ResolverConfig::external(vec!["192.0.2.1".parse().unwrap()]);
    config.retries = 1;
    config.timeout = 40 * zdns_netsim::MILLIS;
    let resolver = Resolver::new(config);
    let (sink, collected) = collecting_sink();

    let mut reactor = Reactor::new(
        ReactorConfig {
            max_in_flight: 64,
            source: Ipv4Addr::LOCALHOST,
            wheel_granularity: zdns_netsim::MILLIS,
            ..ReactorConfig::default()
        },
        map,
    )
    .unwrap();

    const N: usize = 50;
    let machines: Vec<_> = (0..N)
        .map(|i| {
            resolver.machine(
                Question::new(format!("t{i}.dead.test").parse().unwrap(), RecordType::A),
                Some(sink.clone()),
            )
        })
        .collect();
    let completed = drive_all(&mut reactor, machines).completed;
    assert_eq!(completed, N as u64);

    let results = collected.lock();
    assert_eq!(results.len(), N);
    for r in results.iter() {
        assert_eq!(r.status, Status::Timeout);
        assert_eq!(r.queries_sent, 2, "initial + 1 retry");
    }
    assert_eq!(reactor.live_timers(), 0);
    assert_eq!(reactor.pending_queries(), 0);
}

#[test]
fn reactor_routes_truncation_fallback_to_tcp_side_pool() {
    let u = Arc::new(mini_universe());
    let resolver = resolver_for(&u);
    let (_servers, map) = start_servers(Arc::clone(&u));
    let map: Arc<AddrMap> = Arc::from(map);
    let (sink, collected) = collecting_sink();

    let mut reactor = Reactor::new(
        ReactorConfig {
            max_in_flight: 8,
            source: Ipv4Addr::LOCALHOST,
            ..ReactorConfig::default()
        },
        map,
    )
    .unwrap();
    let machines = vec![resolver.machine(
        Question::new("big.example.test".parse().unwrap(), RecordType::TXT),
        Some(sink),
    )];
    let completed = drive_all(&mut reactor, machines).completed;
    assert_eq!(completed, 1);

    let results = collected.lock();
    assert_eq!(results[0].status, Status::NoError, "{:?}", results[0]);
    assert_eq!(results[0].answers.len(), 24, "full RRset via TCP");
    assert_eq!(results[0].protocol, "tcp");
    assert_eq!(reactor.live_timers(), 0);
}

#[test]
fn reactor_is_reusable_with_per_scan_reports() {
    let (u, server_ip) = scan_universe(8);
    let u = Arc::new(u);
    let server = WireServer::start(Arc::clone(&u) as Arc<dyn Universe>, server_ip).unwrap();
    let real = server.addr();
    let map: Arc<AddrMap> = Arc::new(move |_ip| real);
    let resolver = Resolver::new(ResolverConfig::external(vec![server_ip]));
    let mut reactor = Reactor::new(
        ReactorConfig {
            max_in_flight: 8,
            source: Ipv4Addr::LOCALHOST,
            ..ReactorConfig::default()
        },
        map,
    )
    .unwrap();

    for (scan, count) in [(1, 5usize), (2, 3usize)] {
        let machines: Vec<_> = (0..count)
            .map(|i| {
                resolver.machine(
                    Question::new(format!("n{i}.scan.test").parse().unwrap(), RecordType::A),
                    None,
                )
            })
            .collect();
        let completed = drive_all(&mut reactor, machines).completed;
        assert_eq!(completed, count as u64, "scan {scan}");
    }
    assert_eq!(reactor.in_flight(), 0);
    assert_eq!(reactor.live_timers(), 0);
}

#[test]
fn reactor_reports_transport_errors_not_timeouts() {
    // An address map pointing at an unreachable destination (port 0 is
    // invalid for sendto) forces an immediate socket error: the machine
    // must finish with ERROR, not TIMEOUT.
    let map: Arc<AddrMap> = Arc::new(|_ip| SocketAddr::new(Ipv4Addr::LOCALHOST.into(), 0));
    let mut config = ResolverConfig::external(vec!["192.0.2.1".parse().unwrap()]);
    config.retries = 1;
    let resolver = Resolver::new(config);
    let (sink, collected) = collecting_sink();

    let mut reactor = Reactor::new(
        ReactorConfig {
            max_in_flight: 4,
            source: Ipv4Addr::LOCALHOST,
            ..ReactorConfig::default()
        },
        map,
    )
    .unwrap();
    let machines = vec![resolver.machine(
        Question::new("err.test".parse().unwrap(), RecordType::A),
        Some(sink),
    )];
    drive_all(&mut reactor, machines);

    let results = collected.lock();
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].status, Status::Error, "I/O failure is ERROR");
    assert_eq!(reactor.live_timers(), 0);
}

// ---------------------------------------------------------------------------
// Pacing: the deferred send queue and the rate contract
// ---------------------------------------------------------------------------

#[test]
fn reactor_holds_send_rate_within_ten_percent_of_budget() {
    const N: usize = 500;
    const RATE: f64 = 1000.0;
    let (u, server_ip) = scan_universe(N);
    let u = Arc::new(u);
    let server = WireServer::start(Arc::clone(&u) as Arc<dyn Universe>, server_ip).unwrap();
    let real = server.addr();
    let map: Arc<AddrMap> = Arc::new(move |_ip| real);

    let mut config = ResolverConfig::external(vec![server_ip]);
    config.timeout = 4 * zdns_netsim::SECONDS;
    config.retries = 2;
    let resolver = Resolver::new(config);
    let stats_before = resolver.core().stats.snapshot();

    let mut reactor = Reactor::new(
        ReactorConfig {
            max_in_flight: N, // everything admitted at once: pure pacing
            source: Ipv4Addr::LOCALHOST,
            wheel_granularity: zdns_netsim::MILLIS,
            pacer: PacerConfig {
                rate_pps: RATE,
                burst: 1.0,
                ..PacerConfig::default()
            },
            ..ReactorConfig::default()
        },
        map,
    )
    .unwrap();

    let machines: Vec<_> = (0..N)
        .map(|i| {
            resolver.machine(
                Question::new(format!("n{i}.scan.test").parse().unwrap(), RecordType::A),
                None,
            )
        })
        .collect();
    let started = std::time::Instant::now();
    let report = drive_all(&mut reactor, machines);
    let elapsed = started.elapsed().as_secs_f64();

    assert_eq!(report.completed, N as u64);
    assert_eq!(report.successes, N as u64, "loopback scan must succeed");
    assert!(report.queries_deferred > 0, "pacing must actually engage");

    // The rate contract: sends per wall-clock second within ±10% of the
    // configured budget (N queries take ~(N-1)/RATE seconds when paced).
    let queries = resolver.core().stats.snapshot().queries_sent - stats_before.queries_sent;
    let measured_pps = queries as f64 / elapsed;
    assert!(
        (measured_pps - RATE).abs() <= RATE * 0.10,
        "measured {measured_pps:.0} pps vs budget {RATE:.0} pps ({queries} queries in {elapsed:.3}s)"
    );

    // Nothing leaked: the deferred queue drained and its wheel entries
    // are gone with it.
    assert_eq!(reactor.deferred_sends(), 0);
    assert_eq!(reactor.in_flight(), 0);
    assert_eq!(reactor.live_timers(), 0);
    assert_eq!(reactor.stored_timers(), 0);
}

#[test]
fn reactor_backoff_defers_retries_to_a_silent_destination() {
    // A bound-but-silent server: every timeout feeds the pacer's failure
    // streak, so retries to that destination are held back (per-host
    // throttle events), not blasted.
    let silent = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    let dead = silent.local_addr().unwrap();
    let map: Arc<AddrMap> = Arc::new(move |_ip| dead);

    let mut config = ResolverConfig::external(vec!["192.0.2.1".parse().unwrap()]);
    config.retries = 2;
    config.timeout = 30 * zdns_netsim::MILLIS;
    let resolver = Resolver::new(config);

    let mut reactor = Reactor::new(
        ReactorConfig {
            max_in_flight: 8,
            source: Ipv4Addr::LOCALHOST,
            wheel_granularity: zdns_netsim::MILLIS,
            pacer: PacerConfig {
                backoff: true,
                backoff_base: 20 * zdns_netsim::MILLIS,
                ..PacerConfig::default()
            },
            ..ReactorConfig::default()
        },
        map,
    )
    .unwrap();

    let machines: Vec<_> = (0..4)
        .map(|i| {
            resolver.machine(
                Question::new(format!("b{i}.dead.test").parse().unwrap(), RecordType::A),
                None,
            )
        })
        .collect();
    let report = drive_all(&mut reactor, machines);

    assert_eq!(report.completed, 4);
    assert_eq!(report.successes, 0);
    assert!(report.timeouts_fired >= 8, "{}", report.timeouts_fired);
    assert!(
        report.queries_deferred > 0 && report.per_host_throttles > 0,
        "retries into a failure streak must be throttled (deferred {}, per-host {})",
        report.queries_deferred,
        report.per_host_throttles
    );
    assert_eq!(reactor.deferred_sends(), 0);
    assert_eq!(reactor.live_timers(), 0);
}

#[test]
fn concurrent_pacer_backoff_memory_propagates_across_workers() {
    // Two workers (separate reactors, separate sockets, separate
    // threads) share one ConcurrentPacer and one epoch. Worker A retries
    // into a silent destination, building a failure streak in the shared
    // per-destination table; worker B then scans the same destination
    // with *zero* retries, so the only sends it ever attempts are the
    // initial ones — any per-host deferral B observes can only be the
    // penalty A left behind.
    let silent = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    let dead = silent.local_addr().unwrap();
    let map: Arc<AddrMap> = Arc::new(move |_ip| dead);
    let epoch = std::time::Instant::now();

    let pacer = Arc::new(ConcurrentPacer::new(PacerConfig {
        backoff: true,
        backoff_base: 50 * zdns_netsim::MILLIS,
        backoff_cap: 300 * zdns_netsim::MILLIS,
        ..PacerConfig::default()
    }));

    let make_reactor = |map: &Arc<AddrMap>| {
        let mut reactor = Reactor::new(
            ReactorConfig {
                max_in_flight: 8,
                source: Ipv4Addr::LOCALHOST,
                wheel_granularity: zdns_netsim::MILLIS,
                epoch: Some(epoch),
                ..ReactorConfig::default()
            },
            Arc::clone(map),
        )
        .unwrap();
        reactor.set_concurrent_pacer(Arc::clone(&pacer));
        reactor
    };

    // Worker A: retries feed the shared failure streak. The reactor and
    // its machines are built inside the worker thread, exactly as the
    // scan pipeline does (reactors are not Send).
    let report_a = std::thread::scope(|s| {
        s.spawn(|| {
            let mut reactor = make_reactor(&map);
            let mut config = ResolverConfig::external(vec!["192.0.2.7".parse().unwrap()]);
            config.retries = 2;
            config.timeout = 30 * zdns_netsim::MILLIS;
            let resolver = Resolver::new(config);
            let machines: Vec<_> = (0..4)
                .map(|i| {
                    resolver.machine(
                        Question::new(format!("a{i}.dead.test").parse().unwrap(), RecordType::A),
                        None,
                    )
                })
                .collect();
            drive_all(&mut reactor, machines)
        })
        .join()
        .unwrap()
    });
    assert_eq!(report_a.completed, 4);
    assert!(report_a.timeouts_fired >= 8, "{}", report_a.timeouts_fired);
    assert!(
        pacer.backoff_events() > 0,
        "worker A's timeouts must feed the shared backoff table"
    );

    // Worker B: no retries, so its initial sends run before any of its
    // own timeouts can fire — a per-host throttle here is inherited.
    let report_b = {
        let mut reactor = make_reactor(&map);
        let mut config = ResolverConfig::external(vec!["192.0.2.7".parse().unwrap()]);
        config.retries = 0;
        config.timeout = 30 * zdns_netsim::MILLIS;
        let resolver = Resolver::new(config);
        let machines: Vec<_> = (0..2)
            .map(|i| {
                resolver.machine(
                    Question::new(format!("b{i}.dead.test").parse().unwrap(), RecordType::A),
                    None,
                )
            })
            .collect();
        drive_all(&mut reactor, machines)
    };
    assert_eq!(report_b.completed, 2);
    assert!(
        report_b.queries_deferred > 0 && report_b.per_host_throttles > 0,
        "worker B must inherit worker A's penalty (deferred {}, per-host {})",
        report_b.queries_deferred,
        report_b.per_host_throttles
    );
}
