//! Property tests for the batched syscall layer: the `sendmmsg`/`recvmmsg`
//! path and the per-datagram fallback path must deliver identical datagram
//! sequences for the same input, across batch sizes 1..=64 — and the
//! settling engine must handle short returns, hard errors, and
//! `WouldBlock` mid-batch without losing or reordering a datagram.

use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

use proptest::prelude::*;
use zdns_core::{settle_ring_send, BatchIo, BatchSendStatus, IoBackend, RingSubmit};

/// Index-stamped payloads so sequence comparisons are meaningful.
fn payloads(count: usize, sizes: &[usize]) -> Vec<Vec<u8>> {
    (0..count)
        .map(|i| {
            let size = sizes[i % sizes.len()].clamp(4, 900);
            let mut p = vec![(i % 251) as u8; size];
            p[..4].copy_from_slice(&(i as u32).to_be_bytes());
            p
        })
        .collect()
}

/// Send every payload through `io`, asserting it all made the wire.
fn send_all(io: &mut BatchIo, socket: &UdpSocket, to: SocketAddr, msgs: &[Vec<u8>]) {
    let refs: Vec<(&[u8], SocketAddr)> = msgs.iter().map(|m| (m.as_slice(), to)).collect();
    let mut statuses = Vec::new();
    let stats = io.send_batch(socket, &refs, &mut statuses, &mut |_| {});
    assert_eq!(statuses.len(), msgs.len());
    assert!(
        statuses.iter().all(|s| *s == BatchSendStatus::Sent),
        "loopback send should not block or fail: {statuses:?}"
    );
    assert_eq!(stats.sent as usize, msgs.len());
}

/// Drain `expected` datagrams from `socket` through `io`, in order.
fn recv_all(io: &mut BatchIo, socket: &UdpSocket, expected: usize) -> Vec<Vec<u8>> {
    let mut got = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(5);
    while got.len() < expected {
        let batch = io.recv_into_arena(socket);
        assert!(
            batch.err.is_none(),
            "unexpected recv error: {:?}",
            batch.err
        );
        for i in 0..batch.count {
            got.push(io.arena_bytes(i).to_vec());
        }
        if batch.count == 0 {
            assert!(
                Instant::now() < deadline,
                "datagrams lost: {}/{expected}",
                got.len()
            );
            std::thread::sleep(Duration::from_micros(300));
        }
    }
    got
}

fn loopback_pair() -> (UdpSocket, UdpSocket, SocketAddr) {
    let tx = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    let rx = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    tx.set_nonblocking(true).unwrap();
    rx.set_nonblocking(true).unwrap();
    zdns_netsim::set_recv_buffer(&rx, 4 << 20);
    let to = rx.local_addr().unwrap();
    (tx, rx, to)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Batched send → fallback receive and fallback send → batched
    // receive both deliver exactly the sent sequence, for any batch
    // size: the two paths are interchangeable on the wire.
    #[test]
    fn batched_and_fallback_paths_deliver_identical_sequences(
        batch in 1usize..=64,
        count in 1usize..=96,
        sizes in proptest::collection::vec(4usize..900, 1..=8),
    ) {
        let msgs = payloads(count, &sizes);

        // Round 1: batched sender, fallback receiver.
        let (tx, rx, to) = loopback_pair();
        let mut sender = BatchIo::new(batch);
        let mut receiver = BatchIo::per_datagram(batch);
        send_all(&mut sender, &tx, to, &msgs);
        let via_fallback_rx = recv_all(&mut receiver, &rx, msgs.len());

        // Round 2: fallback sender, batched receiver.
        let (tx2, rx2, to2) = loopback_pair();
        let mut sender2 = BatchIo::per_datagram(batch);
        let mut receiver2 = BatchIo::new(batch);
        send_all(&mut sender2, &tx2, to2, &msgs);
        let via_batched_rx = recv_all(&mut receiver2, &rx2, msgs.len());

        // Loopback UDP preserves order, so both sequences must equal the
        // input exactly — same datagrams, same order, same bytes.
        prop_assert_eq!(&via_fallback_rx, &msgs);
        prop_assert_eq!(&via_batched_rx, &msgs);
    }
}

// ---------------------------------------------------------------------------
// Scripted-syscall settling properties (WouldBlock mid-batch etc.)
// ---------------------------------------------------------------------------

/// One scripted outcome of the vectored-send primitive.
#[derive(Debug, Clone, Copy)]
enum Step {
    /// Send the first `n` datagrams of the chunk (clamped to its length).
    Short(usize),
    /// `WouldBlock` (already past the one writability wait).
    Block,
    /// A hard socket error.
    Fail,
}

/// Run the settling engine over scripted syscall outcomes, recording the
/// payload of every datagram that "made the wire" in order.
fn run_scripted(
    batch: usize,
    msgs: &[Vec<u8>],
    script: &[Step],
) -> (Vec<BatchSendStatus>, Vec<Vec<u8>>) {
    let mut io = BatchIo::new(batch);
    let dest: SocketAddr = "127.0.0.1:53".parse().unwrap();
    let refs: Vec<(&[u8], SocketAddr)> = msgs.iter().map(|m| (m.as_slice(), dest)).collect();
    let mut statuses = Vec::new();
    let mut wire: Vec<Vec<u8>> = Vec::new();
    let mut cursor = 0usize;
    let mut primitive = |chunk: &[(&[u8], SocketAddr)]| {
        let step = script
            .get(cursor)
            .copied()
            .unwrap_or(Step::Short(usize::MAX));
        cursor += 1;
        match step {
            Step::Short(n) => {
                let n = n.clamp(1, chunk.len());
                wire.extend(chunk[..n].iter().map(|(b, _)| b.to_vec()));
                Ok(n)
            }
            Step::Block => Err(std::io::Error::from(std::io::ErrorKind::WouldBlock)),
            Step::Fail => Err(std::io::Error::from(std::io::ErrorKind::ConnectionRefused)),
        }
    };
    let stats = io.send_batch_with(&mut primitive, &refs, &mut statuses, &mut |_| {});
    assert_eq!(stats.sent as usize, wire.len());
    (statuses, wire)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // Under any interleaving of short returns, hard errors, and
    // WouldBlock mid-batch: every datagram settles exactly once, the
    // wire carries exactly the Sent-marked datagrams in input order,
    // and everything after the first backpressure is backpressure (the
    // suffix is requeued whole, never reordered).
    #[test]
    fn scripted_syscalls_settle_every_datagram_exactly_once(
        batch in 1usize..=64,
        count in 1usize..=96,
        raw_script in proptest::collection::vec((0u8..=3, 1usize..=64), 0..=48),
    ) {
        let sizes = [16usize, 33, 64];
        let msgs = payloads(count, &sizes);
        let script: Vec<Step> = raw_script
            .iter()
            .map(|(kind, n)| match kind {
                0 => Step::Block,
                1 => Step::Fail,
                _ => Step::Short(*n),
            })
            .collect();
        let (statuses, wire) = run_scripted(batch, &msgs, &script);

        prop_assert_eq!(statuses.len(), msgs.len(), "every datagram settles exactly once");
        let sent: Vec<Vec<u8>> = msgs
            .iter()
            .zip(statuses.iter())
            .filter(|(_, s)| **s == BatchSendStatus::Sent)
            .map(|(m, _)| m.clone())
            .collect();
        prop_assert_eq!(&sent, &wire, "wire must carry exactly the Sent datagrams, in order");
        if let Some(first) = statuses.iter().position(|s| *s == BatchSendStatus::Backpressure) {
            prop_assert!(
                statuses[first..].iter().all(|s| *s == BatchSendStatus::Backpressure),
                "after the first backpressure the whole suffix is backpressure: {statuses:?}"
            );
        }
    }

    // With no errors scripted, every batch size sends the identical full
    // sequence — chunking never drops, duplicates, or reorders.
    #[test]
    fn benign_scripts_send_everything_for_any_batch_size(
        batch in 1usize..=64,
        count in 1usize..=96,
        shorts in proptest::collection::vec(1usize..=64, 0..=48),
    ) {
        let sizes = [24usize, 48];
        let msgs = payloads(count, &sizes);
        let script: Vec<Step> = shorts.iter().map(|n| Step::Short(*n)).collect();
        let (statuses, wire) = run_scripted(batch, &msgs, &script);
        prop_assert!(statuses.iter().all(|s| *s == BatchSendStatus::Sent));
        prop_assert_eq!(&wire, &msgs);
    }
}

#[test]
fn wouldblock_mid_batch_marks_exact_suffix() {
    let msgs = payloads(10, &[32]);
    // First syscall sends 3, second hits WouldBlock: 3 Sent + 7 Backpressure.
    let (statuses, wire) = run_scripted(8, &msgs, &[Step::Short(3), Step::Block]);
    assert_eq!(wire.len(), 3);
    assert_eq!(&statuses[..3], &[BatchSendStatus::Sent; 3]);
    assert_eq!(&statuses[3..], &[BatchSendStatus::Backpressure; 7]);
}

#[test]
fn hard_error_fails_one_datagram_and_continues() {
    let msgs = payloads(6, &[32]);
    // 2 sent, then a hard error on the 3rd, then the rest sends.
    let (statuses, wire) = run_scripted(8, &msgs, &[Step::Short(2), Step::Fail]);
    assert_eq!(wire.len(), 5);
    assert_eq!(
        statuses,
        vec![
            BatchSendStatus::Sent,
            BatchSendStatus::Sent,
            BatchSendStatus::Failed,
            BatchSendStatus::Sent,
            BatchSendStatus::Sent,
            BatchSendStatus::Sent,
        ]
    );
}

// ---------------------------------------------------------------------------
// io_uring backend: wire equivalence with the other two backends
// ---------------------------------------------------------------------------

/// Try to build an io_uring-backed `BatchIo`; `None` when this kernel
/// refuses rings (old kernel, seccomp, RLIMIT_MEMLOCK), in which case
/// the equivalence rounds below are skipped rather than failed.
#[cfg(any(target_os = "linux", target_os = "android"))]
fn try_uring_io(batch: usize) -> Option<BatchIo> {
    let io = BatchIo::with_backend(IoBackend::Uring, batch);
    (io.backend_name() == "uring").then_some(io)
}

#[cfg(any(target_os = "linux", target_os = "android"))]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // The ring backend is interchangeable with mmsg and per-datagram on
    // the wire: uring send → mmsg receive, mmsg send → uring receive,
    // and uring send → uring receive all deliver exactly the input
    // sequence, byte for byte, for any batch size.
    #[test]
    fn uring_mmsg_and_fallback_deliver_identical_sequences(
        batch in 2usize..=64,
        count in 1usize..=96,
        sizes in proptest::collection::vec(4usize..900, 1..=8),
    ) {
        // Skip (not fail) on kernels without io_uring: the Auto
        // degradation path is covered separately below.
        if let Some(mut sender) = try_uring_io(batch) {
            let msgs = payloads(count, &sizes);

            // Round 1: uring sender, mmsg receiver.
            let (tx, rx, to) = loopback_pair();
            let mut receiver = BatchIo::new(batch);
            send_all(&mut sender, &tx, to, &msgs);
            let via_mmsg_rx = recv_all(&mut receiver, &rx, msgs.len());
            prop_assert_eq!(&via_mmsg_rx, &msgs);

            // Round 2: per-datagram sender, uring receiver.
            let (tx2, rx2, to2) = loopback_pair();
            let mut sender2 = BatchIo::per_datagram(batch);
            let mut receiver2 = try_uring_io(batch).unwrap();
            receiver2.prime_recv(&rx2);
            send_all(&mut sender2, &tx2, to2, &msgs);
            let via_uring_rx = recv_all(&mut receiver2, &rx2, msgs.len());
            prop_assert_eq!(&via_uring_rx, &msgs);

            // Round 3: uring on both ends.
            let (tx3, rx3, to3) = loopback_pair();
            let mut sender3 = try_uring_io(batch).unwrap();
            let mut receiver3 = try_uring_io(batch).unwrap();
            receiver3.prime_recv(&rx3);
            send_all(&mut sender3, &tx3, to3, &msgs);
            let via_ring_both = recv_all(&mut receiver3, &rx3, msgs.len());
            prop_assert_eq!(&via_ring_both, &msgs);
        }
    }
}

// ---------------------------------------------------------------------------
// Scripted-CQE settling: the ring-side settling engine in isolation
// ---------------------------------------------------------------------------

/// A scripted ring submitter: `(call_index, chunk, completions_out)`.
#[cfg(any(target_os = "linux", target_os = "android"))]
type ScriptedRing<'a> =
    dyn FnMut(usize, &[u32], &mut Vec<(u32, i32)>) -> std::io::Result<RingSubmit> + 'a;

/// Drive `settle_ring_send` with a scripted ring: each call's submit
/// outcome and CQE results come from a script instead of a kernel.
#[cfg(any(target_os = "linux", target_os = "android"))]
fn run_ring_script(
    batch: usize,
    count: usize,
    script: &mut ScriptedRing<'_>,
) -> (Vec<BatchSendStatus>, zdns_core::SendBatchStats, usize) {
    let msgs: Vec<u32> = (0..count as u32).collect();
    let mut statuses = Vec::new();
    let mut completions = Vec::new();
    let mut calls = 0usize;
    let stats = {
        let calls = &mut calls;
        let mut ring = |chunk: &[u32], comps: &mut Vec<(u32, i32)>| {
            let call = *calls;
            *calls += 1;
            script(call, chunk, comps)
        };
        settle_ring_send(
            batch,
            &mut ring,
            &msgs,
            &mut statuses,
            &mut |_| {},
            &mut completions,
        )
    };
    (statuses, stats, calls)
}

#[cfg(any(target_os = "linux", target_os = "android"))]
#[test]
fn sq_full_mid_batch_requeues_exact_suffix_in_order() {
    // 10 datagrams, ring room for 4: the submitter accepts 4 (all
    // complete fine) then reports SQ-full. The remaining 6 must come
    // back as one contiguous backpressure suffix — requeued whole, in
    // order, with no further submit attempts this flush.
    let (statuses, stats, calls) = run_ring_script(8, 10, &mut |call, chunk, comps| {
        assert_eq!(call, 0, "sq_full must end the flush");
        assert_eq!(chunk.len(), 8, "first chunk is batch-sized");
        for (i, _) in chunk.iter().take(4).enumerate() {
            comps.push((i as u32, 40));
        }
        Ok(RingSubmit {
            accepted: 4,
            sq_full: true,
        })
    });
    assert_eq!(calls, 1);
    assert_eq!(&statuses[..4], &[BatchSendStatus::Sent; 4]);
    assert_eq!(&statuses[4..], &[BatchSendStatus::Backpressure; 6]);
    assert_eq!(stats.sent, 4);
    assert_eq!(stats.syscalls, 1);
}

#[cfg(any(target_os = "linux", target_os = "android"))]
#[test]
fn per_cqe_errors_settle_independently() {
    // One chunk, CQEs arriving out of order: -EAGAIN and -ENOBUFS are
    // individual backpressure, a hard error (-ECONNREFUSED) fails only
    // its own datagram, and neighbours still count as sent.
    let (statuses, stats, _) = run_ring_script(8, 6, &mut |_, chunk, comps| {
        comps.push((5, 40)); // deliberately out of order
        comps.push((1, -11)); // -EAGAIN → backpressure
        comps.push((3, -111)); // -ECONNREFUSED → failed
        comps.push((0, 40));
        comps.push((2, -105)); // -ENOBUFS → backpressure
        comps.push((4, 40));
        Ok(RingSubmit {
            accepted: chunk.len(),
            sq_full: false,
        })
    });
    assert_eq!(
        statuses,
        vec![
            BatchSendStatus::Sent,
            BatchSendStatus::Backpressure,
            BatchSendStatus::Backpressure,
            BatchSendStatus::Failed,
            BatchSendStatus::Sent,
            BatchSendStatus::Sent,
        ]
    );
    assert_eq!(stats.sent, 3);
}

#[cfg(any(target_os = "linux", target_os = "android"))]
#[test]
fn missing_cqe_fails_only_its_own_datagram() {
    // The ring accepts 3 but only reports CQEs for two of them — the
    // orphan settles as Failed, never as silently-sent, and the flush
    // continues with the rest of the input.
    let (statuses, stats, calls) = run_ring_script(3, 5, &mut |call, chunk, comps| {
        match call {
            0 => {
                comps.push((0, 40));
                comps.push((2, 40)); // CQE for idx 1 never arrives
            }
            _ => {
                for (i, _) in chunk.iter().enumerate() {
                    comps.push((i as u32, 40));
                }
            }
        }
        Ok(RingSubmit {
            accepted: chunk.len(),
            sq_full: false,
        })
    });
    assert_eq!(calls, 2);
    assert_eq!(
        statuses,
        vec![
            BatchSendStatus::Sent,
            BatchSendStatus::Failed,
            BatchSendStatus::Sent,
            BatchSendStatus::Sent,
            BatchSendStatus::Sent,
        ]
    );
    assert_eq!(stats.sent, 4);
}

#[cfg(any(target_os = "linux", target_os = "android"))]
#[test]
fn ring_wouldblock_marks_whole_suffix() {
    // First chunk settles, second submit hits WouldBlock: everything
    // from the second chunk on is backpressure, untouched and in order.
    let (statuses, stats, calls) = run_ring_script(4, 10, &mut |call, chunk, comps| {
        if call == 0 {
            for (i, _) in chunk.iter().enumerate() {
                comps.push((i as u32, 40));
            }
            Ok(RingSubmit {
                accepted: chunk.len(),
                sq_full: false,
            })
        } else {
            Err(std::io::Error::from(std::io::ErrorKind::WouldBlock))
        }
    });
    assert_eq!(calls, 2);
    assert_eq!(&statuses[..4], &[BatchSendStatus::Sent; 4]);
    assert_eq!(&statuses[4..], &[BatchSendStatus::Backpressure; 6]);
    assert_eq!(stats.sent, 4);
}

// ---------------------------------------------------------------------------
// Forced-unavailable fallback: auto must degrade to mmsg silently
// ---------------------------------------------------------------------------

#[cfg(any(target_os = "linux", target_os = "android"))]
#[test]
fn auto_degrades_to_mmsg_when_uring_setup_fails() {
    // ENOSYS (kernel without io_uring_setup) and EPERM (seccomp denial)
    // both degrade `auto` — and explicit `uring` — to mmsg, silently.
    for errno in [38i32 /* ENOSYS */, 1 /* EPERM */] {
        for choice in [IoBackend::Auto, IoBackend::Uring] {
            let mut attempts = 0usize;
            let io = BatchIo::with_backend_detected(choice, 32, &mut |n| {
                attempts += 1;
                assert_eq!(n, 32);
                Err(std::io::Error::from_raw_os_error(errno))
            });
            assert_eq!(attempts, 1, "uring is tried exactly once");
            assert_eq!(
                io.backend_name(),
                "mmsg",
                "{choice:?} with errno {errno} must degrade to mmsg"
            );
            assert!(io.is_batched());
        }
    }
}

#[cfg(any(target_os = "linux", target_os = "android"))]
#[test]
fn degraded_backend_still_moves_datagrams() {
    // The fallback object is not just correctly labelled — it works.
    let mut io = BatchIo::with_backend_detected(IoBackend::Auto, 8, &mut |_| {
        Err(std::io::Error::from_raw_os_error(38))
    });
    assert_eq!(io.backend_name(), "mmsg");
    let msgs = payloads(20, &[64, 128]);
    let (tx, rx, to) = loopback_pair();
    send_all(&mut io, &tx, to, &msgs);
    let mut receiver = BatchIo::per_datagram(8);
    let got = recv_all(&mut receiver, &rx, msgs.len());
    assert_eq!(got, msgs);
}

#[cfg(any(target_os = "linux", target_os = "android"))]
#[test]
fn batch_size_one_never_builds_a_ring() {
    // batch_size 1 means per-datagram semantics; auto/uring must not
    // even attempt ring setup for it.
    let mut attempts = 0usize;
    let io = BatchIo::with_backend_detected(IoBackend::Auto, 1, &mut |_| {
        attempts += 1;
        unreachable!("ring setup must not be attempted at batch_size 1")
    });
    assert_eq!(attempts, 0);
    assert!(!io.is_batched());
}
