//! Property tests for the lock-free scan-wide pacer: four workers
//! hammering one [`ConcurrentPacer`] through their own token blocks must
//! never exceed the configured global budget over *any* observation
//! window, and a saturated pacer must converge to exactly its rate —
//! the same contracts `prop_bucket.rs` pins on the mutex token bucket,
//! re-proved across threads and block leasing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use zdns_core::{ConcurrentPacer, PacerConfig, TokenBlock};
use zdns_pacing::{PaceDecision, MILLIS, SECONDS};

const WORKERS: usize = 4;

/// Count how many of `times` fall inside `[start, start + window)`.
fn in_window(times: &[u64], start: u64, window: u64) -> usize {
    times
        .iter()
        .filter(|&&t| t >= start && t < start + window)
        .count()
}

/// The budget ceiling for one window: initial burst plus refill, one
/// token of boundary slack, plus the block-staleness allowance — a
/// worker sitting on a part-used block can dump at most `block - 1`
/// extra already-reserved slots into a window, per worker.
fn ceiling(rate: f64, burst: f64, block: u32, window: u64) -> usize {
    let budget = (burst + rate * window as f64 / SECONDS as f64).ceil() as usize + 1;
    budget + WORKERS * block as usize
}

/// Run one worker's admission schedule against the shared pacer,
/// advancing the shared virtual clock by its private gap sequence.
/// Returns the release time of every reserved slot (`now` when admitted
/// ready, the deferred-until instant otherwise — each reservation is one
/// eventual send).
fn drive_worker(
    pacer: &ConcurrentPacer,
    clock: &AtomicU64,
    dest: std::net::Ipv4Addr,
    gaps: &[u64],
) -> Vec<u64> {
    let mut block = TokenBlock::default();
    let mut releases = Vec::with_capacity(gaps.len());
    for &gap in gaps {
        let now = clock.fetch_add(gap, Ordering::Relaxed) + gap;
        match pacer.admit(&mut block, dest, now) {
            PaceDecision::Ready => releases.push(now),
            PaceDecision::Defer { until, .. } => {
                assert!(until >= now, "release in the past");
                releases.push(until);
            }
        }
    }
    pacer.return_block(&mut block);
    releases
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn four_workers_never_exceed_global_budget_over_any_window(
        rate_x10 in 100u64..20_000,
        burst in 1u64..64,
        gap_sets in proptest::collection::vec(
            proptest::collection::vec(0u64..5_000_000, 40..150),
            WORKERS,
        ),
    ) {
        let rate = rate_x10 as f64 / 10.0;
        let pacer = Arc::new(ConcurrentPacer::new(PacerConfig {
            rate_pps: rate,
            burst: burst as f64,
            ..PacerConfig::default()
        }));
        let clock = AtomicU64::new(0);
        let mut releases: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = gap_sets
                .iter()
                .enumerate()
                .map(|(i, gaps)| {
                    let pacer = Arc::clone(&pacer);
                    let clock = &clock;
                    let dest = std::net::Ipv4Addr::new(192, 0, 2, i as u8);
                    s.spawn(move || drive_worker(&pacer, clock, dest, gaps))
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
        });
        releases.sort_unstable();
        let block = zdns_core::TOKEN_BLOCK.min(burst as u32);
        for window in [50 * MILLIS, 500 * MILLIS, SECONDS] {
            for &start in &releases {
                prop_assert!(
                    in_window(&releases, start, window)
                        <= ceiling(rate, burst as f64, block, window),
                    "window {window} from {start} exceeded budget"
                );
            }
        }
    }

    #[test]
    fn saturated_four_worker_demand_converges_to_rate(
        rate in 10u64..2_000,
        n_per_worker in 50usize..200,
    ) {
        // Every worker demands its whole share up front at t = 0: the
        // global schedule must spread the N total sends over exactly
        // (N - burst) / rate seconds, regardless of how the CAS races
        // interleave the block leases.
        let burst = 8.0;
        let pacer = Arc::new(ConcurrentPacer::new(PacerConfig {
            rate_pps: rate as f64,
            burst,
            ..PacerConfig::default()
        }));
        let last: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = (0..WORKERS)
                .map(|i| {
                    let pacer = Arc::clone(&pacer);
                    let dest = std::net::Ipv4Addr::new(192, 0, 2, i as u8);
                    s.spawn(move || {
                        let mut block = TokenBlock::default();
                        let mut last = 0u64;
                        for _ in 0..n_per_worker {
                            last = match pacer.admit(&mut block, dest, 0) {
                                PaceDecision::Ready => 0,
                                PaceDecision::Defer { until, .. } => until.max(last),
                            };
                        }
                        last
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).max().unwrap()
        });
        let n = (WORKERS * n_per_worker) as f64;
        let interval = SECONDS as f64 / rate as f64;
        let expected = ((n - burst) * interval) as i64;
        // ±1% plus one nanosecond of ceil slack per reservation, plus the
        // part-used tail block each worker may strand (its unused slots
        // push the final releases deeper into the schedule).
        let tolerance = expected / 100
            + n as i64
            + 2
            + (WORKERS as f64 * zdns_core::TOKEN_BLOCK as f64 * interval) as i64;
        prop_assert!(
            (last as i64 - expected).abs() <= tolerance,
            "{n} sends at {rate}/s across {WORKERS} workers: last release {last}, expected {expected} (±{tolerance})"
        );
        prop_assert!(pacer.blocks_leased() > 0, "block leasing never engaged");
    }
}
