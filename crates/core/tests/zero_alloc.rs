//! The zero-alloc message lifecycle, enforced by a counting allocator.
//!
//! Claim under test (the PR-4 tentpole): once warmed up, the reactor's
//! view-path loop — borrowed `MessageView` decode over the receive arena,
//! scratch-buffer query encode, pooled bookkeeping — performs **zero heap
//! allocations per lookup**. Machine *construction* (boxing a machine,
//! cloning the server list) is the admission source's cost, so the test
//! pre-builds machines before the measured region; everything the reactor
//! and machines do per lookup afterwards is measured.
//!
//! Counters are per-thread, so the loopback wire server threads (which do
//! allocate) cannot pollute the reactor thread's measurement.

use std::net::Ipv4Addr;
use std::sync::Arc;

use zdns_core::alloc_count::{thread_allocations, CountingAllocator};
use zdns_core::{
    AddrMap, Admission, Cache, CacheKey, CreditPool, Driver, IoBackend, Reactor, ReactorConfig,
    Resolver, ResolverConfig,
};
use zdns_netsim::{JobOutcome, SimClient, WireServer, SECONDS};
use zdns_wire::{
    encode_query_into, Cookie, MessageView, Name, Question, RData, Record, RecordType, ScratchBuf,
};
use zdns_zones::{ExplicitUniverse, Universe, Zone};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// `n` A records behind one zero-latency loopback wire server.
fn loopback_fleet(n: usize) -> (WireServer, Resolver, Arc<AddrMap>, Vec<Question>) {
    let server_ip = Ipv4Addr::new(203, 0, 113, 77);
    let mut zone = Zone::new(
        "zeroalloc.test".parse().unwrap(),
        "ns1.zeroalloc.test".parse().unwrap(),
        300,
    );
    for i in 0..n {
        zone.add(Record::new(
            format!("z{i}.zeroalloc.test").parse().unwrap(),
            300,
            RData::A(Ipv4Addr::new(10, 7, (i / 256) as u8, (i % 256) as u8)),
        ));
    }
    let mut universe = ExplicitUniverse::new();
    universe.host(server_ip, zone);
    let server = WireServer::start(Arc::new(universe) as Arc<dyn Universe>, server_ip).unwrap();
    let real = server.addr();
    let addr_map: Arc<AddrMap> = Arc::new(move |_| real);
    let mut config = ResolverConfig::external(vec![server_ip]);
    config.timeout = 2 * SECONDS;
    config.retries = 2;
    let resolver = Resolver::new(config);
    let questions = (0..n)
        .map(|i| {
            Question::new(
                format!("z{i}.zeroalloc.test").parse::<Name>().unwrap(),
                RecordType::A,
            )
        })
        .collect();
    (server, resolver, addr_map, questions)
}

/// Drive `questions` through `reactor` from a pre-built machine pool.
/// Returns (completed, successes, allocations during the scan).
fn run_prebuilt(
    reactor: &mut Reactor,
    resolver: &Resolver,
    questions: &[Question],
    trap: bool,
) -> (usize, usize, u64) {
    let mut machines: Vec<Box<dyn SimClient>> = questions
        .iter()
        .rev()
        .map(|q| resolver.machine(q.clone(), None))
        .collect();
    let mut done = 0usize;
    let mut ok = 0usize;
    let before = thread_allocations();
    if trap && std::env::var_os("ZDNS_TRAP_ALLOCS").is_some() {
        zdns_core::alloc_count::trap_allocations(true);
    }
    {
        let mut feed = || match machines.pop() {
            Some(m) => Admission::Admit(m),
            None => Admission::Exhausted,
        };
        let mut on_done = |outcome: Option<JobOutcome>| {
            done += 1;
            if matches!(&outcome, Some(o) if o.success) {
                ok += 1;
            }
        };
        reactor.run_scan(&mut feed, &mut on_done);
    }
    zdns_core::alloc_count::trap_allocations(false);
    let allocs = thread_allocations() - before;
    (done, ok, allocs)
}

#[test]
fn steady_state_view_path_scan_allocates_zero_per_lookup() {
    const WARMUP: usize = 1500;
    const MEASURED: usize = 1000;
    let (_server, resolver, addr_map, questions) = loopback_fleet(WARMUP + MEASURED);
    // Pinned to mmsg: the uring backend has its own test below, so this
    // one keeps guarding the sendmmsg/recvmmsg arena path regardless of
    // what `Auto` resolves to on the build machine.
    let mut reactor = Reactor::new(
        ReactorConfig {
            max_in_flight: 256,
            source: Ipv4Addr::LOCALHOST,
            io_backend: IoBackend::Mmsg,
            ..ReactorConfig::default()
        },
        addr_map,
    )
    .unwrap();

    // Warmup: grows every pool, map, wheel slot, and scratch buffer to its
    // steady-state high-water mark.
    let (done, ok, _) = run_prebuilt(&mut reactor, &resolver, &questions[..WARMUP], false);
    assert_eq!(done, WARMUP);
    assert!(ok * 10 >= WARMUP * 9, "warmup success {ok}/{WARMUP}");

    // Measured: the reactor loop itself — admission from the pre-built
    // pool, scratch encode, sendmmsg, recvmmsg, view decode, machine
    // stepping, retire — must not touch the allocator at all.
    let (done, ok, allocs) = run_prebuilt(&mut reactor, &resolver, &questions[WARMUP..], true);
    assert_eq!(done, MEASURED);
    assert!(ok * 10 >= MEASURED * 9, "measured success {ok}/{MEASURED}");
    assert_eq!(
        allocs, 0,
        "steady-state view-path scan allocated {allocs} times over {MEASURED} lookups"
    );
}

#[test]
fn steady_state_credit_leased_scan_allocates_zero_per_lookup() {
    // The shared-queue pipeline's admission path: every lookup leases a
    // credit from the scan-wide pool and returns it on retire. The pool
    // is a pair of atomics, so joining it must not cost the hot loop a
    // single allocation.
    const WARMUP: usize = 1200;
    const MEASURED: usize = 800;
    let (_server, resolver, addr_map, questions) = loopback_fleet(WARMUP + MEASURED);
    let pool = Arc::new(CreditPool::new(256));
    let mut reactor = Reactor::new(
        ReactorConfig {
            max_in_flight: 256,
            source: Ipv4Addr::LOCALHOST,
            max_parked: 1024,
            io_backend: IoBackend::Mmsg,
            ..ReactorConfig::default()
        },
        addr_map,
    )
    .unwrap();
    reactor.set_credit_pool(Arc::clone(&pool), 128);

    let (done, ok, _) = run_prebuilt(&mut reactor, &resolver, &questions[..WARMUP], false);
    assert_eq!(done, WARMUP);
    assert!(ok * 10 >= WARMUP * 9, "warmup success {ok}/{WARMUP}");

    let (done, ok, allocs) = run_prebuilt(&mut reactor, &resolver, &questions[WARMUP..], true);
    assert_eq!(done, MEASURED);
    assert!(ok * 10 >= MEASURED * 9, "measured success {ok}/{MEASURED}");
    assert_eq!(
        allocs, 0,
        "credit-leased steady-state scan allocated {allocs} times over {MEASURED} lookups"
    );
    assert_eq!(pool.available(), 256, "every credit returned");
    assert_eq!(pool.leases(), pool.returns());
}

#[test]
fn steady_state_concurrent_pacer_scan_allocates_zero_per_lookup() {
    // The lock-free pacer's admission path: every send takes a slot from
    // the worker's token block (plain arithmetic; one CAS per block
    // lease), probes the striped per-destination table, and reserves on
    // the host bucket. After warmup grows the one host entry, none of
    // that may touch the allocator — the tentpole's 0 allocs/lookup
    // claim extends to paced scans.
    const WARMUP: usize = 1200;
    const MEASURED: usize = 800;
    let (_server, resolver, addr_map, questions) = loopback_fleet(WARMUP + MEASURED);
    let pacer = Arc::new(zdns_core::ConcurrentPacer::new(zdns_core::PacerConfig {
        // High budgets so pacing engages on every send without deferring
        // the loopback scan; backoff on so successes run the stripe's
        // streak-decay path too.
        rate_pps: 10_000_000.0,
        per_host_pps: 5_000_000.0,
        backoff: true,
        ..zdns_core::PacerConfig::default()
    }));
    let mut reactor = Reactor::new(
        ReactorConfig {
            max_in_flight: 256,
            source: Ipv4Addr::LOCALHOST,
            io_backend: IoBackend::Mmsg,
            ..ReactorConfig::default()
        },
        addr_map,
    )
    .unwrap();
    reactor.set_concurrent_pacer(Arc::clone(&pacer));

    let (done, ok, _) = run_prebuilt(&mut reactor, &resolver, &questions[..WARMUP], false);
    assert_eq!(done, WARMUP);
    assert!(ok * 10 >= WARMUP * 9, "warmup success {ok}/{WARMUP}");

    let (done, ok, allocs) = run_prebuilt(&mut reactor, &resolver, &questions[WARMUP..], true);
    assert_eq!(done, MEASURED);
    assert!(ok * 10 >= MEASURED * 9, "measured success {ok}/{MEASURED}");
    assert_eq!(
        allocs, 0,
        "concurrent-pacer steady-state scan allocated {allocs} times over {MEASURED} lookups"
    );
    // Prove the measured region actually exercised the paced path.
    assert!(pacer.blocks_leased() > 0, "global block leasing never ran");
    assert_eq!(pacer.tracked_hosts(), 1, "host table never probed");
}

#[test]
fn uring_steady_state_scan_allocates_zero_per_lookup() {
    // The io_uring backend's whole per-lookup dance — SENDMSG SQE fill,
    // ring submit, CQE reap, armed-pool re-arm, spill/ready shuffling —
    // runs on storage sized at ring construction, so the steady state is
    // just as allocation-free as the mmsg arena. Skipped (not failed)
    // when the kernel refuses rings; the reactor reports which backend
    // it actually got.
    const WARMUP: usize = 1500;
    const MEASURED: usize = 1000;
    let (_server, resolver, addr_map, questions) = loopback_fleet(WARMUP + MEASURED);
    let mut reactor = Reactor::new(
        ReactorConfig {
            max_in_flight: 256,
            source: Ipv4Addr::LOCALHOST,
            io_backend: IoBackend::Uring,
            ..ReactorConfig::default()
        },
        addr_map,
    )
    .unwrap();
    if reactor.io_backend() != "uring" {
        eprintln!(
            "skipping: io_uring unavailable here (backend = {})",
            reactor.io_backend()
        );
        return;
    }

    let (done, ok, _) = run_prebuilt(&mut reactor, &resolver, &questions[..WARMUP], false);
    assert_eq!(done, WARMUP);
    assert!(ok * 10 >= WARMUP * 9, "warmup success {ok}/{WARMUP}");

    let (done, ok, allocs) = run_prebuilt(&mut reactor, &resolver, &questions[WARMUP..], true);
    assert_eq!(done, MEASURED);
    assert!(ok * 10 >= MEASURED * 9, "measured success {ok}/{MEASURED}");
    assert_eq!(
        allocs, 0,
        "uring steady-state scan allocated {allocs} times over {MEASURED} lookups"
    );
}

#[test]
fn owned_decode_fallback_stays_green() {
    const LOOKUPS: usize = 800;
    let (_server, resolver, addr_map, questions) = loopback_fleet(LOOKUPS);
    let mut reactor = Reactor::new(
        ReactorConfig {
            max_in_flight: 128,
            source: Ipv4Addr::LOCALHOST,
            owned_decode: true,
            ..ReactorConfig::default()
        },
        addr_map,
    )
    .unwrap();
    let (done, ok, _) = run_prebuilt(&mut reactor, &resolver, &questions, false);
    // The fallback allocates (that is its nature); it must simply keep
    // resolving correctly.
    assert_eq!(done, LOOKUPS);
    assert!(
        ok * 10 >= LOOKUPS * 9,
        "owned fallback success {ok}/{LOOKUPS}"
    );
}

#[test]
fn codec_paths_allocate_zero_after_warmup() {
    let question = Question::new("host.codec.zeroalloc.test".parse().unwrap(), RecordType::A);
    let cookie = Cookie::client([7, 7, 7, 7, 7, 7, 7, 7]);
    // A realistic referral-sized response to parse.
    let mut response = zdns_wire::Message::query(0x5151, question.clone());
    response.flags.response = true;
    for i in 0..6u8 {
        let ns: Name = format!("ns{i}.codec.zeroalloc.test").parse().unwrap();
        response.answers.push(Record::new(
            question.name.clone(),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, i)),
        ));
        response.additionals.push(Record::new(
            ns,
            300,
            RData::A(Ipv4Addr::new(198, 51, 100, i)),
        ));
    }
    let bytes = response.encode().unwrap();
    let mut scratch = ScratchBuf::new();
    let target: Name = "codec.zeroalloc.test".parse().unwrap();

    let exercise = |scratch: &mut ScratchBuf| {
        scratch.reset();
        encode_query_into(scratch, 0xABCD, &question, true, Some(&cookie)).unwrap();
        let view = MessageView::parse(&bytes).unwrap();
        let mut addrs = 0usize;
        for rec in view.answers() {
            if rec.a_addr().is_some() {
                addrs += 1;
            }
        }
        let mut owners = 0usize;
        for rec in view.additionals() {
            if rec.name().to_name().is_subdomain_of(&target) {
                owners += 1;
            }
        }
        assert_eq!((addrs, owners), (6, 6));
        std::hint::black_box(view.rcode());
    };

    for _ in 0..8 {
        exercise(&mut scratch); // warm the scratch buffer
    }
    let before = thread_allocations();
    for _ in 0..1_000 {
        exercise(&mut scratch);
    }
    let allocs = thread_allocations() - before;
    assert_eq!(
        allocs, 0,
        "borrowed decode + scratch encode allocated {allocs} times over 1000 iterations"
    );
}

#[test]
fn steady_state_serve_hit_path_allocates_zero_per_query() {
    // The serve-mode counterpart of the scan claims above: once the
    // answer cache and the TCP connection table are warm, answering a
    // client query — borrowed view parse, per-client gate, cache probe,
    // scratch re-encode with cookie echo, send — allocates nothing, over
    // UDP and over an established TCP connection alike. `serve_tick` is
    // public precisely so this test can run the loop on the measuring
    // thread; the client lives on its own thread whose allocations the
    // per-thread counters ignore.
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream, UdpSocket};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::time::{Duration, Instant};
    use zdns_core::{Clock, ServeConfig, ServerRole};

    const NAMES: usize = 16;
    const WARMUP_ROUNDS: u64 = 200;
    const MEASURED_ROUNDS: u64 = 600;

    let epoch = Instant::now();
    let clock = Clock::from_epoch(epoch);
    let resolver = Resolver::new(ResolverConfig::external(vec![Ipv4Addr::new(
        203, 0, 113, 99,
    )]));
    for i in 0..NAMES {
        let name: Name = format!("z{i}.zeroalloc.test").parse().unwrap();
        resolver.core().cache.put(
            CacheKey {
                name: name.clone(),
                rtype: RecordType::A,
            },
            vec![Record::new(
                name,
                3600,
                RData::A(Ipv4Addr::new(10, 7, 0, i as u8)),
            )],
            0,
        );
    }
    // Upstream map is never consulted: every query hits the cache.
    let addr_map: Arc<AddrMap> = Arc::new(|_| (Ipv4Addr::LOCALHOST, 9).into());
    let mut reactor = Reactor::new(
        ReactorConfig {
            max_in_flight: 64,
            source: Ipv4Addr::LOCALHOST,
            io_backend: IoBackend::Mmsg,
            epoch: Some(epoch),
            ..ReactorConfig::default()
        },
        addr_map,
    )
    .unwrap();
    let tcp_listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    let tcp_addr = tcp_listener.local_addr().unwrap();
    let role = ServerRole::new(resolver.clone(), clock, ServeConfig::default())
        .with_tcp_listener(tcp_listener)
        .unwrap();
    reactor.set_server_role(role);
    let udp_addr = reactor.local_addr().unwrap();

    let rounds = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));
    let client = {
        let rounds = Arc::clone(&rounds);
        let stop = Arc::clone(&stop);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let udp = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
            udp.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let mut tcp = TcpStream::connect(tcp_addr).unwrap();
            tcp.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            tcp.set_nodelay(true).unwrap();
            let questions: Vec<Question> = (0..NAMES)
                .map(|i| {
                    Question::new(
                        format!("z{i}.zeroalloc.test").parse().unwrap(),
                        RecordType::A,
                    )
                })
                .collect();
            let cookie = Cookie::client(*b"zeroallc");
            let mut scratch = ScratchBuf::new();
            let mut buf = [0u8; 4096];
            let mut round = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let question = &questions[(round as usize) % NAMES];
                let id = (round % 0xFFFF) as u16;
                scratch.reset();
                encode_query_into(&mut scratch, id, question, true, Some(&cookie)).unwrap();
                if round % 4 == 3 {
                    // Every fourth round goes over the warm TCP connection.
                    let msg = scratch.as_slice();
                    tcp.write_all(&(msg.len() as u16).to_be_bytes()).unwrap();
                    tcp.write_all(msg).unwrap();
                    let mut prefix = [0u8; 2];
                    tcp.read_exact(&mut prefix).unwrap();
                    let len = u16::from_be_bytes(prefix) as usize;
                    tcp.read_exact(&mut buf[..len]).unwrap();
                    let reply = MessageView::parse(&buf[..len]).unwrap();
                    assert_eq!(reply.id(), id);
                    assert_eq!(reply.answer_count(), 1);
                } else {
                    udp.send_to(scratch.as_slice(), udp_addr).unwrap();
                    let (n, _) = udp.recv_from(&mut buf).unwrap();
                    let reply = MessageView::parse(&buf[..n]).unwrap();
                    assert_eq!(reply.id(), id);
                    assert_eq!(reply.answer_count(), 1);
                    assert!(reply.cookie().is_some(), "UDP answers echo the cookie");
                }
                round += 1;
                rounds.store(round, Ordering::Relaxed);
            }
            done.store(true, Ordering::Relaxed);
        })
    };

    // Warmup: grows the scratch buffer, the connection table slot, the
    // read/write buffers of the accepted connection, and the per-client
    // gate entry to their steady-state sizes.
    let deadline = Instant::now() + Duration::from_secs(30);
    while rounds.load(Ordering::Relaxed) < WARMUP_ROUNDS {
        reactor.serve_tick();
        assert!(Instant::now() < deadline, "serve warmup stalled");
    }

    let before = thread_allocations();
    if std::env::var_os("ZDNS_TRAP_ALLOCS").is_some() {
        zdns_core::alloc_count::trap_allocations(true);
    }
    let target = WARMUP_ROUNDS + MEASURED_ROUNDS;
    while rounds.load(Ordering::Relaxed) < target {
        reactor.serve_tick();
        assert!(Instant::now() < deadline, "serve measurement stalled");
    }
    zdns_core::alloc_count::trap_allocations(false);
    let allocs = thread_allocations() - before;

    stop.store(true, Ordering::Relaxed);
    while !done.load(Ordering::Relaxed) {
        reactor.serve_tick();
        std::thread::yield_now();
    }
    client.join().unwrap();
    assert_eq!(
        allocs, 0,
        "steady-state serve hit path allocated {allocs} times over {MEASURED_ROUNDS} queries"
    );
}

#[test]
fn packet_cache_hit_path_allocates_zero_per_query() {
    // The PR-10 tentpole's claim, isolated from sockets: answering a
    // repeat query from the packet cache — view parse, fingerprint
    // probe, Arc clone, canonical-bytes copy, ID/flags patch, cookie
    // splice — touches the allocator zero times per query. The role is
    // driven through the public `handle_datagram` seam so only the hot
    // path itself is measured (no sendto, no reactor tick).
    use zdns_core::{Clock, ServeConfig, ServerRole};

    const NAMES: usize = 16;
    const MEASURED: usize = 1_000;

    let resolver = Resolver::new(ResolverConfig::external(vec![Ipv4Addr::new(
        203, 0, 113, 99,
    )]));
    for i in 0..NAMES {
        let name: Name = format!("p{i}.zeroalloc.test").parse().unwrap();
        resolver.core().cache.put(
            CacheKey {
                name: name.clone(),
                rtype: RecordType::A,
            },
            vec![Record::new(
                name,
                3600,
                RData::A(Ipv4Addr::new(10, 9, 0, i as u8)),
            )],
            0,
        );
    }
    let mut role = ServerRole::new(resolver, Clock::new(), ServeConfig::default());
    let peer: std::net::SocketAddr = "127.0.0.1:50505".parse().unwrap();
    let cookie = Cookie::client(*b"pktalloc");
    let queries: Vec<Vec<u8>> = (0..NAMES)
        .map(|i| {
            let mut scratch = ScratchBuf::new();
            let q = Question::new(
                format!("p{i}.zeroalloc.test").parse().unwrap(),
                RecordType::A,
            );
            encode_query_into(&mut scratch, i as u16, &q, true, Some(&cookie)).unwrap();
            scratch.take_bytes()
        })
        .collect();

    // Warmup: the first pass memoizes (entry boxing is the fill's cost),
    // later passes grow the role's scratch buffer to steady state.
    for _ in 0..4 {
        for raw in &queries {
            assert!(role.handle_datagram(raw, peer, 1).is_some());
        }
    }
    let stats = role.stats();
    assert_eq!(stats.packet_fills(), NAMES as u64);
    let hits_before = stats.packet_hits();

    let before = thread_allocations();
    if std::env::var_os("ZDNS_TRAP_ALLOCS").is_some() {
        zdns_core::alloc_count::trap_allocations(true);
    }
    for round in 0..MEASURED {
        let raw = &queries[round % NAMES];
        std::hint::black_box(role.handle_datagram(raw, peer, 1));
    }
    zdns_core::alloc_count::trap_allocations(false);
    let allocs = thread_allocations() - before;
    assert_eq!(
        allocs, 0,
        "packet-cache hit path allocated {allocs} times over {MEASURED} queries"
    );
    let stats = role.stats();
    assert_eq!(
        stats.packet_hits() - hits_before,
        MEASURED as u64,
        "every measured query rode the packet path"
    );
}

#[test]
fn cache_misses_and_shard_routing_allocate_zero() {
    let cache = Cache::new(4096);
    let com: Name = "com".parse().unwrap();
    cache.put(
        CacheKey {
            name: com.clone(),
            rtype: RecordType::NS,
        },
        vec![Record::new(
            com,
            172_800,
            RData::Ns("a.gtld-servers.net".parse().unwrap()),
        )],
        0,
    );
    let absent: Name = "WWW.Absent.Example.ORG".parse().unwrap();
    let probe_key = CacheKey {
        name: "MiXeD.CaSe.CoM".parse().unwrap(),
        rtype: RecordType::NS,
    };
    let before = thread_allocations();
    for _ in 0..1_000 {
        // Key hashing, shard routing, and suffix-walk probes all run on
        // inline name storage: no lowercased String, no per-label boxes.
        std::hint::black_box(cache.shard_index(&probe_key));
        assert!(cache.get(&absent, RecordType::NS, 0).is_none());
        assert!(cache.deepest_cut(&absent, 0).is_none());
    }
    let allocs = thread_allocations() - before;
    assert_eq!(
        allocs, 0,
        "cache probes allocated {allocs} times over 1000 iterations"
    );
}
