//! End-to-end resolution through the discrete-event simulator: the
//! iterative machine walking the synthetic Internet, external mode against
//! resolver models, caching behaviour, and failure handling.

use std::sync::Arc;

use zdns_core::{collecting_sink, Resolver, ResolverConfig, Status};
use zdns_netsim::{Engine, EngineConfig, PublicResolverConfig, PublicResolverSim};
use zdns_wire::{Name, Question, RData, RecordType};
use zdns_zones::{SynthConfig, SyntheticUniverse, Universe};

fn universe() -> Arc<SyntheticUniverse> {
    Arc::new(SyntheticUniverse::new(SynthConfig::default()))
}

fn iterative_resolver(u: &SyntheticUniverse) -> Resolver {
    Resolver::new(ResolverConfig::iterative(u.root_hints()))
}

fn existing_domains(u: &SyntheticUniverse, tld: &str, n: usize) -> Vec<Name> {
    (0..200_000)
        .map(|i| format!("sim{i}.{tld}").parse::<Name>().unwrap())
        .filter(|name| u.domain_exists(name))
        .take(n)
        .collect()
}

fn run_lookups(
    u: Arc<SyntheticUniverse>,
    resolver: &Resolver,
    names: Vec<Name>,
    qtype: RecordType,
    threads: usize,
) -> (zdns_netsim::RunReport, Vec<zdns_core::LookupResult>) {
    let mut engine = Engine::new(
        EngineConfig {
            threads,
            wire_fidelity: true,
            ..EngineConfig::default()
        },
        u,
    );
    let (sink, collected) = collecting_sink();
    let resolver = resolver.clone();
    let mut iter = names.into_iter();
    let report = engine.run(move || {
        let name = iter.next()?;
        Some(resolver.machine(Question::new(name, qtype), Some(sink.clone())))
    });
    let results = std::mem::take(&mut *collected.lock());
    (report, results)
}

#[test]
fn iterative_resolves_existing_domains() {
    let u = universe();
    let resolver = iterative_resolver(&u);
    let names = existing_domains(&u, "com", 40);
    let expected: Vec<_> = names.iter().map(|n| u.domain_profile(n).apex_a).collect();
    let (report, results) = run_lookups(Arc::clone(&u), &resolver, names.clone(), RecordType::A, 8);
    assert_eq!(report.jobs, 40);
    assert!(report.success_rate() > 0.85, "{:?}", report.status_counts);
    // Verify answers against ground truth (skipping failed lookups).
    let mut verified = 0;
    for result in &results {
        if result.status != Status::NoError {
            continue;
        }
        let idx = names.iter().position(|n| *n == result.name).unwrap();
        let profile = u.domain_profile(&names[idx]);
        if profile.inconsistent {
            continue; // any of several answers is legitimate
        }
        assert!(
            result
                .answers
                .iter()
                .any(|r| r.rdata == RData::A(expected[idx])),
            "wrong answer for {}",
            result.name
        );
        verified += 1;
    }
    assert!(verified >= 30, "only verified {verified}");
}

#[test]
fn iterative_traces_expose_lookup_chain() {
    let u = universe();
    let resolver = iterative_resolver(&u);
    let names = existing_domains(&u, "com", 3);
    let (_, results) = run_lookups(Arc::clone(&u), &resolver, names, RecordType::A, 1);
    let ok = results
        .iter()
        .find(|r| r.status == Status::NoError)
        .expect("at least one success");
    // Appendix C: the trace has one step per layer: root, com, leaf.
    assert!(ok.trace.len() >= 3, "trace too short: {}", ok.trace.len());
    assert_eq!(ok.trace[0].layer, ".");
    assert_eq!(ok.trace[0].depth, 1);
    let json = ok.to_json();
    assert!(json["trace"].as_array().unwrap().len() >= 3);
    assert!(json["trace"][0]["results"]["authorities"].is_array());
}

#[test]
fn selective_cache_only_holds_infrastructure() {
    let u = universe();
    let resolver = iterative_resolver(&u);
    let names = existing_domains(&u, "com", 30);
    let (_, _) = run_lookups(Arc::clone(&u), &resolver, names, RecordType::A, 4);
    let cache = &resolver.core().cache;
    assert!(!cache.is_empty(), "referrals should have been cached");
    // com NS must be cached after resolving .com names.
    assert!(
        cache
            .get(&"com".parse().unwrap(), RecordType::NS, 1)
            .is_some(),
        "com NS missing from cache"
    );
}

#[test]
fn cache_cuts_queries_on_subsequent_lookups() {
    let u = universe();
    let resolver = iterative_resolver(&u);
    let first = existing_domains(&u, "com", 60);
    let (report1, _) = run_lookups(Arc::clone(&u), &resolver, first, RecordType::A, 4);
    let qpl1 = report1.queries_sent as f64 / report1.jobs as f64;
    // Second batch reuses the warmed TLD/provider cache.
    let second: Vec<Name> = (200_000..400_000)
        .map(|i| format!("sim{i}.com").parse::<Name>().unwrap())
        .filter(|n| u.domain_exists(n))
        .take(60)
        .collect();
    let (report2, _) = run_lookups(Arc::clone(&u), &resolver, second, RecordType::A, 4);
    let qpl2 = report2.queries_sent as f64 / report2.jobs as f64;
    assert!(
        qpl2 < qpl1,
        "warm cache should cut queries/lookup: cold {qpl1:.2} warm {qpl2:.2}"
    );
    // Warm lookups skip the root entirely: ≤ ~2.5 queries per lookup.
    assert!(qpl2 < 3.0, "warm qpl {qpl2:.2}");
}

#[test]
fn nxdomain_counts_as_success() {
    let u = universe();
    let resolver = iterative_resolver(&u);
    let missing: Vec<Name> = (0..200_000)
        .map(|i| format!("gone{i}.com").parse::<Name>().unwrap())
        .filter(|n| !u.domain_exists(n))
        .take(20)
        .collect();
    let (report, results) = run_lookups(Arc::clone(&u), &resolver, missing, RecordType::A, 4);
    assert!(report.success_rate() > 0.9, "{:?}", report.status_counts);
    assert!(results.iter().any(|r| r.status == Status::NxDomain));
}

#[test]
fn external_mode_resolves_via_public_resolver() {
    let u = universe();
    let google: std::net::Ipv4Addr = "8.8.8.8".parse().unwrap();
    let resolver = Resolver::new(ResolverConfig::external(vec![google]));
    let names = existing_domains(&u, "net", 30);
    let mut engine = Engine::new(
        EngineConfig {
            threads: 8,
            wire_fidelity: true,
            ..EngineConfig::default()
        },
        Arc::clone(&u) as Arc<dyn Universe>,
    );
    engine.add_resolver(PublicResolverSim::new(PublicResolverConfig::google(google)));
    let (sink, collected) = collecting_sink();
    let r2 = resolver.clone();
    let mut iter = names.into_iter();
    let report = engine.run(move || {
        let name = iter.next()?;
        Some(r2.machine(Question::new(name, RecordType::A), Some(sink.clone())))
    });
    assert_eq!(report.jobs, 30);
    assert!(report.success_rate() > 0.85, "{:?}", report.status_counts);
    let results = collected.lock();
    let ok = results
        .iter()
        .filter(|r| r.status == Status::NoError)
        .count();
    assert!(ok > 20);
    // External lookups send exactly one query when nothing fails, and the
    // resolver's RA bit is set.
    let clean = results
        .iter()
        .find(|r| r.status == Status::NoError && r.retries_used == 0)
        .unwrap();
    assert_eq!(clean.queries_sent, 1);
    assert!(clean.flags.unwrap().recursion_available);
}

#[test]
fn ptr_lookups_resolve_through_reverse_tree() {
    let u = universe();
    let resolver = iterative_resolver(&u);
    let ips: Vec<std::net::Ipv4Addr> = (0..u32::MAX)
        .map(|i| std::net::Ipv4Addr::from(0x0800_0000u32.wrapping_add(i * 999_983)))
        .filter(|ip| u.ptr_exists(*ip))
        .take(15)
        .collect();
    let names: Vec<Name> = ips.iter().map(|ip| Name::reverse_ipv4(*ip)).collect();
    let (report, results) = run_lookups(Arc::clone(&u), &resolver, names, RecordType::PTR, 4);
    assert!(report.success_rate() > 0.8, "{:?}", report.status_counts);
    let ok = results
        .iter()
        .find(|r| r.status == Status::NoError)
        .expect("a PTR success");
    assert!(matches!(ok.answers[0].rdata, RData::Ptr(_)));
}

#[test]
fn glueless_delegations_resolve_via_ns_walks() {
    let u = universe();
    let resolver = iterative_resolver(&u);
    let glueless: Vec<Name> = (0..400_000)
        .map(|i| format!("gl{i}.org").parse::<Name>().unwrap())
        .filter(|n| u.domain_exists(n) && u.domain_profile(n).glueless)
        .take(10)
        .collect();
    assert!(!glueless.is_empty());
    let (report, _) = run_lookups(Arc::clone(&u), &resolver, glueless, RecordType::A, 4);
    assert!(report.success_rate() > 0.6, "{:?}", report.status_counts);
}

#[test]
fn lame_nameservers_are_retried_elsewhere() {
    let u = universe();
    let resolver = iterative_resolver(&u);
    let lame: Vec<Name> = (0..400_000)
        .map(|i| format!("lm{i}.com").parse::<Name>().unwrap())
        .filter(|n| u.domain_exists(n) && u.domain_profile(n).lame_ns.is_some())
        .take(10)
        .collect();
    assert!(!lame.is_empty());
    let (report, _) = run_lookups(Arc::clone(&u), &resolver, lame, RecordType::A, 4);
    // The other nameservers still answer.
    assert!(report.success_rate() > 0.7, "{:?}", report.status_counts);
}

#[test]
fn caa_lookup_follows_cname_chain() {
    let u = universe();
    let resolver = iterative_resolver(&u);
    let via_cname: Vec<Name> = (0..3_000_000)
        .map(|i| format!("cc{i}.pl").parse::<Name>().unwrap())
        .filter(|n| {
            u.domain_exists(n) && {
                let p = u.domain_profile(n);
                p.caa_via_cname && !p.caa_records.is_empty()
            }
        })
        .take(3)
        .collect();
    assert!(!via_cname.is_empty(), "no CAA-via-CNAME domains found");
    let (_, results) = run_lookups(Arc::clone(&u), &resolver, via_cname, RecordType::CAA, 2);
    let ok = results
        .iter()
        .find(|r| r.status == Status::NoError && !r.answers.is_empty())
        .expect("CAA resolution succeeded");
    assert!(ok
        .answers
        .iter()
        .any(|r| matches!(r.rdata, RData::Cname(_))));
    assert!(ok.answers.iter().any(|r| matches!(r.rdata, RData::Caa(_))));
}

#[test]
fn delegation_info_lists_leaf_nameservers() {
    let u = universe();
    let resolver = iterative_resolver(&u);
    let names = existing_domains(&u, "com", 5);
    let profile = u.domain_profile(&names[0]);
    let provider = u.providers().by_index(profile.provider).unwrap();
    let (_, results) = run_lookups(
        Arc::clone(&u),
        &resolver,
        vec![names[0].clone()],
        RecordType::A,
        1,
    );
    let r = &results[0];
    let delegation = r.delegation.as_ref().expect("delegation recorded");
    assert_eq!(delegation.nameservers.len(), provider.ns_count as usize);
    // NS names follow the provider's hostname scheme.
    let ns0 = delegation.nameservers[0].0.to_string();
    assert!(ns0.contains(&provider.label), "{ns0}");
}

#[test]
fn flaky_nameservers_consume_retries() {
    let u = universe();
    // Find deep-flaky domains (the §5 ten-retry population).
    let flaky: Vec<Name> = (0..2_000_000)
        .map(|i| format!("fk{i}.vn").parse::<Name>().unwrap())
        .filter(|n| u.domain_exists(n) && matches!(u.domain_profile(n).flaky, Some(f) if f.deep))
        .take(5)
        .collect();
    assert!(!flaky.is_empty(), "no deep-flaky .vn domains");
    let mut config = ResolverConfig::iterative(u.root_hints());
    config.retries = 10;
    let resolver = Resolver::new(config);
    let (_, results) = run_lookups(Arc::clone(&u), &resolver, flaky, RecordType::A, 2);
    // Some lookup must have needed retries when it hit the flaky NS.
    let total_retries: u32 = results.iter().map(|r| r.retries_used).sum();
    assert!(total_retries > 0, "expected retries against flaky servers");
}
