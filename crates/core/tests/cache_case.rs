//! Property tests for the cache's case-insensitive, allocation-free keys.
//!
//! The selective cache used to rely on each probe hashing a `Name` whose
//! labels lived in per-label heap boxes; the inline-storage `Name` now
//! hashes and compares lowercased bytes in place. These properties pin the
//! observable contract: any case-variant spelling of a name routes to the
//! same shard and finds the same entry.

use proptest::prelude::*;
use zdns_core::{Cache, CacheKey};
use zdns_wire::{Name, RData, Record, RecordType};

/// A lowercase DNS-ish name with 1..=4 labels (the vendored proptest has
/// no regex strategies, so labels are derived from integer seeds).
fn arb_name_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u64>(), 1..=4).prop_map(|seeds| {
        seeds
            .iter()
            .map(|seed| {
                let len = 1 + (seed % 12) as usize;
                (0..len)
                    .map(|i| {
                        let v = (seed >> (i * 5)) & 0x1F;
                        char::from(if v < 26 {
                            b'a' + v as u8
                        } else {
                            b'0' + (v - 26) as u8
                        })
                    })
                    .collect::<String>()
            })
            .collect::<Vec<_>>()
            .join(".")
    })
}

/// Flip the case of a subset of ASCII letters, selected by a bitmask.
fn case_variant(text: &str, mask: u64) -> String {
    text.chars()
        .enumerate()
        .map(|(i, c)| {
            if c.is_ascii_alphabetic() && (mask >> (i % 64)) & 1 == 1 {
                c.to_ascii_uppercase()
            } else {
                c
            }
        })
        .collect()
}

fn ns_record(zone: &Name) -> Record {
    Record::new(
        zone.clone(),
        3600,
        RData::Ns("ns1.cache-case.test".parse().unwrap()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mixed_case_names_hit_the_same_shard_and_entry(
        text in arb_name_text(),
        mask in any::<u64>(),
    ) {
        let lower: Name = text.parse().unwrap();
        let mixed: Name = case_variant(&text, mask).parse().unwrap();
        let cache = Cache::new(4096);

        // Identical shard routing, no lowercased scratch key involved.
        let key_lower = CacheKey { name: lower.clone(), rtype: RecordType::NS };
        let key_mixed = CacheKey { name: mixed.clone(), rtype: RecordType::NS };
        prop_assert_eq!(cache.shard_index(&key_lower), cache.shard_index(&key_mixed));

        // Insert under one spelling, hit under the other.
        cache.put(key_lower, vec![ns_record(&lower)], 0);
        let hit = cache.get(&mixed, RecordType::NS, 0);
        prop_assert!(hit.is_some(), "case variant missed: {} vs {}", lower, mixed);

        // And the deepest-cut walk sees it through a case-variant child.
        let child: Name = case_variant(&format!("www.{text}"), mask.rotate_left(7))
            .parse()
            .unwrap();
        let (cut, _) = cache.deepest_cut(&child, 0).expect("cut cached above");
        prop_assert_eq!(cut, lower);
    }

    #[test]
    fn case_variants_are_one_entry_not_two(
        text in arb_name_text(),
        mask in any::<u64>(),
    ) {
        let lower: Name = text.parse().unwrap();
        let mixed: Name = case_variant(&text, mask).parse().unwrap();
        let cache = Cache::new(4096);
        cache.put(
            CacheKey { name: lower.clone(), rtype: RecordType::NS },
            vec![ns_record(&lower)],
            0,
        );
        cache.put(
            CacheKey { name: mixed, rtype: RecordType::NS },
            vec![ns_record(&lower)],
            0,
        );
        prop_assert_eq!(cache.len(), 1);
    }
}
