//! Correctness of the serve-path packet cache (the PR-10 tentpole),
//! exercised through the public [`ServerRole::handle_datagram`] seam.
//!
//! The invariant under test: a packet-cache hit must be **byte-identical**
//! to what a fresh record-cache encode would have produced for the same
//! query — same ID, same flags, same cookie echo, same truncation
//! decision — because the hit path is a memcpy plus patches, not a
//! re-encode. A role with `packet_cache_capacity: 0` is the reference
//! encoder: same record cache contents, same query, old scratch-encode
//! path.

use std::net::{Ipv4Addr, SocketAddr};

use zdns_core::{CacheKey, Clock, PacketLookup, Resolver, ResolverConfig, ServeConfig, ServerRole};
use zdns_wire::{
    encode_query_into, Cookie, Edns, Message, MessageView, Name, Question, RData, Record,
    RecordClass, RecordType, ScratchBuf,
};

const SECONDS: u64 = 1_000_000_000;

fn peer() -> SocketAddr {
    "127.0.0.1:53535".parse().unwrap()
}

/// A serve role with (or without) the packet cache, no sockets attached.
fn role(packet_capacity: usize) -> ServerRole {
    let resolver = Resolver::new(ResolverConfig::external(vec![Ipv4Addr::new(192, 0, 2, 53)]));
    let config = ServeConfig {
        packet_cache_capacity: packet_capacity,
        ..ServeConfig::default()
    };
    ServerRole::new(resolver, Clock::new(), config)
}

fn put_records(role: &ServerRole, name: &str, records: Vec<Record>, now: u64) {
    role.resolver().core().cache.put(
        CacheKey {
            name: name.parse().unwrap(),
            rtype: RecordType::A,
        },
        records,
        now,
    );
}

fn put_a(role: &ServerRole, name: &str, ttl: u32, addr: [u8; 4], now: u64) {
    let owner: Name = name.parse().unwrap();
    put_records(
        role,
        name,
        vec![Record::new(
            owner,
            ttl,
            RData::A(Ipv4Addr::new(addr[0], addr[1], addr[2], addr[3])),
        )],
        now,
    );
}

fn a_query(id: u16, name: &str, cookie: Option<Cookie>) -> Vec<u8> {
    let mut scratch = ScratchBuf::new();
    let question = Question::new(name.parse().unwrap(), RecordType::A);
    encode_query_into(&mut scratch, id, &question, true, cookie.as_ref()).unwrap();
    scratch.take_bytes()
}

/// A query with full control over EDNS: `payload: None` drops the OPT
/// record entirely (a plain pre-EDNS client).
fn custom_query(id: u16, name: &str, payload: Option<u16>, cookie: Option<Cookie>) -> Vec<u8> {
    let mut m = Message::query(id, Question::new(name.parse().unwrap(), RecordType::A));
    m.flags.recursion_desired = true;
    m.edns = payload.map(|p| {
        let mut e = Edns {
            udp_payload_size: p,
            ..Edns::default()
        };
        if let Some(c) = cookie {
            e.set_cookie(c);
        }
        e
    });
    m.encode().unwrap()
}

#[test]
fn packet_hit_bytes_match_the_reference_encoder_exactly() {
    // Reference role (capacity 0, the A/B lever) and packet role share
    // identical record-cache contents.
    let mut reference = role(0);
    let mut packet = role(1024);
    for r in [&reference, &packet] {
        put_a(r, "hot.example", 300, [192, 0, 2, 7], 0);
    }
    let cookie = Cookie::client(*b"byteidnt");
    // Distinct IDs and cookie presence across rounds: every variation
    // must still match the reference byte-for-byte.
    let rounds: [(u16, Option<Cookie>); 3] = [
        (0x1111, Some(cookie)),
        (0x2222, None),
        (0xFEFE, Some(cookie)),
    ];
    for (round, (id, cookie)) in rounds.into_iter().enumerate() {
        let raw = a_query(id, "hot.example", cookie);
        let want = reference
            .handle_datagram(&raw, peer(), 0)
            .expect("reference answers")
            .to_vec();
        let got = packet
            .handle_datagram(&raw, peer(), 0)
            .expect("packet role answers")
            .to_vec();
        assert_eq!(
            got, want,
            "round {round}: packet-path bytes diverge from the fresh encode"
        );
    }
    let stats = packet.stats();
    assert_eq!(stats.packet_fills(), 1, "first query memoizes");
    assert_eq!(stats.packet_hits(), 2, "later rounds ride the packet path");
    assert_eq!(stats.cache_hits(), 3);

    // A non-EDNS client gets the OPT record trimmed off the canonical
    // packet — still byte-identical to the reference encoder.
    let raw = custom_query(0x3333, "hot.example", None, None);
    let want = reference.handle_datagram(&raw, peer(), 0).unwrap().to_vec();
    let got = packet.handle_datagram(&raw, peer(), 0).unwrap().to_vec();
    assert_eq!(got, want, "non-EDNS trim diverges from the fresh encode");
    let reply = MessageView::parse(&got).unwrap();
    assert!(!reply.has_edns(), "no OPT for a non-EDNS client");
    assert_eq!(reply.answer_count(), 1);
    assert_eq!(packet.stats().packet_hits(), 3);
}

#[test]
fn entries_expire_at_the_answer_ttl_boundary() {
    let mut packet = role(1024);
    put_a(&packet, "ttl.example", 300, [192, 0, 2, 8], 0);
    let raw = a_query(1, "ttl.example", None);

    assert!(packet.handle_datagram(&raw, peer(), 0).is_some());
    assert_eq!(packet.stats().packet_fills(), 1);

    // One tick before the 300 s deadline: still a hit.
    let last_valid = 300 * SECONDS - 1;
    assert!(packet.handle_datagram(&raw, peer(), last_valid).is_some());
    assert_eq!(packet.stats().packet_hits(), 1);

    // At the deadline the packet entry reports Expired, and the record
    // entry behind it is dead too, so the query is forwarded upstream.
    assert!(packet
        .handle_datagram(&raw, peer(), 300 * SECONDS)
        .is_none());
    let stats = packet.stats();
    assert_eq!(stats.packet_expired(), 1);
    assert_eq!(stats.packet_hits(), 1, "no hit at the boundary");
    assert_eq!(stats.forwarded(), 1);
}

#[test]
fn record_cache_promotion_invalidates_the_memoized_answer() {
    let mut packet = role(1024);
    put_a(&packet, "fresh.example", 300, [10, 0, 0, 1], 0);
    let raw = a_query(2, "fresh.example", None);
    assert!(packet.handle_datagram(&raw, peer(), 0).is_some());
    assert_eq!(packet.stats().packet_fills(), 1);

    // An upstream answer promotes a fresher RRset for the same key: the
    // stale pre-encoded packet must not survive it.
    put_a(&packet, "fresh.example", 300, [10, 0, 0, 2], 1);
    assert_eq!(packet.stats().packet_invalidations(), 1);

    let bytes = packet.handle_datagram(&raw, peer(), 1).unwrap().to_vec();
    let reply = MessageView::parse(&bytes).unwrap();
    let addr = reply.answers().find_map(|r| r.a_addr()).unwrap();
    assert_eq!(addr, Ipv4Addr::new(10, 0, 0, 2), "new RRset served");
    let stats = packet.stats();
    assert_eq!(stats.packet_hits(), 0, "stale entry never served");
    assert_eq!(stats.packet_fills(), 2, "re-memoized from the new RRset");
}

#[test]
fn truncation_is_rechecked_against_each_clients_payload() {
    // ~40 A records ≈ 27 bytes each (uncompressed owner) — comfortably
    // past 512 but under the 1232 default advertisement.
    let mut reference = role(0);
    let mut packet = role(1024);
    let owner: Name = "midsize.example".parse().unwrap();
    let records: Vec<Record> = (0..40)
        .map(|i| Record::new(owner.clone(), 600, RData::A(Ipv4Addr::new(10, 1, 0, i))))
        .collect();
    for r in [&reference, &packet] {
        put_records(r, "midsize.example", records.clone(), 0);
    }

    // Fill from a roomy client: the full answer fits 1232 and is memoized.
    let roomy = custom_query(5, "midsize.example", Some(1232), None);
    let full = packet.handle_datagram(&roomy, peer(), 0).unwrap().to_vec();
    assert_eq!(MessageView::parse(&full).unwrap().answer_count(), 40);
    assert!(!MessageView::parse(&full).unwrap().flags().truncated);

    // A later client advertising only 512 must get TC=1 from the very
    // same cached packet — and match the reference encoder exactly.
    let cramped = custom_query(6, "midsize.example", Some(512), None);
    let want = reference
        .handle_datagram(&cramped, peer(), 0)
        .unwrap()
        .to_vec();
    let got = packet
        .handle_datagram(&cramped, peer(), 0)
        .unwrap()
        .to_vec();
    assert_eq!(got, want, "TC re-check diverges from the fresh encode");
    let reply = MessageView::parse(&got).unwrap();
    assert!(reply.flags().truncated);
    assert_eq!(reply.answer_count(), 0);
    let stats = packet.stats();
    assert_eq!(stats.packet_hits(), 1);
    assert_eq!(stats.truncated(), 1);
}

#[test]
fn case_variant_spellings_are_distinct_packets() {
    // 0x20-style case randomization: the record cache matches names
    // case-insensitively, but the echoed question must preserve the
    // client's exact spelling — so a case variant bypasses the memoized
    // packet and memoizes its own.
    let mut packet = role(1024);
    put_a(&packet, "case.example", 300, [192, 0, 2, 9], 0);

    let lower = a_query(7, "case.example", None);
    let upper = a_query(8, "CASE.Example", None);
    assert!(packet.handle_datagram(&lower, peer(), 0).is_some());
    let bytes = packet.handle_datagram(&upper, peer(), 0).unwrap().to_vec();
    let reply = MessageView::parse(&bytes).unwrap();
    let qname = reply.question().unwrap().name.to_name();
    assert_eq!(qname.to_string(), "CASE.Example", "exact spelling echoed");

    let stats = packet.stats();
    assert_eq!(stats.packet_hits(), 0, "variant must not reuse the packet");
    assert_eq!(stats.packet_fills(), 2, "each spelling memoizes its own");

    // Replaying each spelling now hits its own packet, spelling intact.
    let bytes = packet.handle_datagram(&upper, peer(), 1).unwrap().to_vec();
    let reply = MessageView::parse(&bytes).unwrap();
    assert_eq!(
        reply.question().unwrap().name.to_name().to_string(),
        "CASE.Example"
    );
    assert_eq!(packet.stats().packet_hits(), 1);
}

#[test]
fn non_in_classes_never_touch_the_packet_cache() {
    let mut packet = role(1024);
    put_a(&packet, "classy.example", 300, [192, 0, 2, 10], 0);
    let mut m = Message::query(
        9,
        Question {
            name: "classy.example".parse().unwrap(),
            qtype: RecordType::A,
            qclass: RecordClass::CH,
        },
    );
    m.flags.recursion_desired = true;
    let raw = m.encode().unwrap();
    // The record cache keys on (name, type) only, so a CH query can still
    // answer from it — but it must do so through the direct encode path,
    // leaving the IN-keyed packet table untouched.
    assert!(packet.handle_datagram(&raw, peer(), 0).is_some());
    let stats = packet.stats();
    assert_eq!(stats.packet_fills(), 0);
    assert_eq!(stats.packet_hits(), 0);
}

#[test]
fn capacity_zero_disables_the_packet_path_entirely() {
    let mut off = role(0);
    put_a(&off, "off.example", 300, [192, 0, 2, 11], 0);
    let raw = a_query(10, "off.example", None);
    for _ in 0..3 {
        assert!(off.handle_datagram(&raw, peer(), 0).is_some());
    }
    let stats = off.stats();
    assert_eq!(stats.cache_hits(), 3, "record path still answers");
    assert_eq!(stats.packet_fills(), 0);
    assert_eq!(stats.packet_hits(), 0);
    assert_eq!(stats.packet_invalidations(), 0);
    assert!(
        off.resolver().core().cache.packet_cache().is_none(),
        "no packet table is even attached"
    );
}

#[test]
fn direct_packet_cache_lookup_agrees_with_the_serve_path() {
    // Sanity-check the public PacketCache surface against what the role
    // filled: the entry is findable, carries the deadline the serve path
    // derived (record expiry == min answer TTL here), and survives only
    // under its exact spelling.
    let mut packet = role(1024);
    put_a(&packet, "direct.example", 120, [192, 0, 2, 12], 0);
    let raw = a_query(11, "direct.example", None);
    assert!(packet.handle_datagram(&raw, peer(), 0).is_some());

    let pc = packet
        .resolver()
        .core()
        .cache
        .packet_cache()
        .expect("attached")
        .clone();
    let name: Name = "direct.example".parse().unwrap();
    match pc.lookup(&name, RecordType::A, 0) {
        PacketLookup::Hit(entry) => {
            assert_eq!(entry.deadline(), 120 * SECONDS);
            let canon = MessageView::parse(entry.canonical_bytes()).unwrap();
            assert_eq!(canon.id(), 0, "canonical form is ID-less");
            assert_eq!(canon.answer_count(), 1);
        }
        other => panic!("expected a hit, got {other:?}"),
    }
    assert!(matches!(
        pc.lookup(&name, RecordType::AAAA, 0),
        PacketLookup::Miss
    ));
}
