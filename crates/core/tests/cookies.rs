//! EDNS(0) cookie (RFC 7873) behaviour across the stack.
//!
//! * Machines attach a client cookie to every query, learn the server
//!   cookie from responses, and echo the full cookie on retries to the
//!   same server (scripted-event tests — no sockets, fully deterministic).
//! * The loopback `WireServer` echoes client cookies with its fixed server
//!   cookie appended, end to end over real sockets.

use std::net::{Ipv4Addr, SocketAddr};
use std::sync::Arc;
use std::time::Duration;

use zdns_core::{
    DirectMachine, ExternalMachine, ResolverConfig, ResolverCore, Transport, UdpTransport,
};
use zdns_netsim::{ClientEvent, OutQuery, Protocol, SimClient, StepStatus, SERVER_COOKIE};
use zdns_wire::{Cookie, Message, MsgRef, Question, RecordType, CLIENT_COOKIE_LEN};
use zdns_zones::{ExplicitUniverse, Universe, Zone};

const SERVER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 53);

fn external_core() -> Arc<ResolverCore> {
    let mut config = ResolverConfig::external(vec![SERVER]);
    config.retries = 3;
    ResolverCore::new(config)
}

/// Build the full cookie a server would echo: the query's client part plus
/// `server` bytes.
fn echoed(query_cookie: &Cookie, server: &[u8]) -> Cookie {
    let mut full = [0u8; 40];
    full[..CLIENT_COOKIE_LEN].copy_from_slice(query_cookie.client_part());
    full[CLIENT_COOKIE_LEN..CLIENT_COOKIE_LEN + server.len()].copy_from_slice(server);
    Cookie::from_wire(&full[..CLIENT_COOKIE_LEN + server.len()]).unwrap()
}

/// A truncated response carrying `cookie`, answering `oq`.
fn truncated_response(oq: &OutQuery, cookie: Cookie) -> Message {
    let mut resp = Message::query(oq.id, oq.question.clone());
    resp.flags.response = true;
    resp.flags.truncated = true;
    resp.edns.as_mut().unwrap().set_cookie(cookie);
    resp
}

#[test]
fn direct_machine_echoes_server_cookie_on_same_server_retry() {
    let core = external_core();
    let question = Question::new("cookie.test".parse().unwrap(), RecordType::A);
    let mut machine = DirectMachine::new(core, question, SERVER, false, None);
    let mut out = Vec::new();
    assert!(matches!(machine.start(0, &mut out), StepStatus::Running));
    let first = out.pop().unwrap();
    let first_cookie = first.cookie.expect("cookies on by default");
    assert!(
        !first_cookie.has_server_part(),
        "first query carries a client-only cookie"
    );

    // The server answers truncated (forcing a same-server TCP retry) and
    // echoes a full cookie.
    let full = echoed(&first_cookie, b"srv-cook");
    let resp = truncated_response(&first, full);
    let status = machine.on_event(
        ClientEvent::Response {
            tag: first.tag,
            from: SERVER,
            message: MsgRef::Owned(resp),
            protocol: Protocol::Udp,
        },
        1,
        &mut out,
    );
    assert!(matches!(status, StepStatus::Running));
    let retry = out.pop().unwrap();
    assert_eq!(retry.protocol, Protocol::Tcp);
    assert_eq!(
        retry.cookie,
        Some(full),
        "retry to the same server echoes the learned full cookie"
    );
}

#[test]
fn external_machine_pins_cookies_per_server() {
    let core = {
        let other = Ipv4Addr::new(198, 51, 100, 54);
        let mut config = ResolverConfig::external(vec![SERVER, other]);
        config.retries = 3;
        ResolverCore::new(config)
    };
    let question = Question::new("rotate.cookie.test".parse().unwrap(), RecordType::A);
    let mut machine = ExternalMachine::new(core, question, None);
    let mut out = Vec::new();
    machine.start(0, &mut out);
    let first = out.pop().unwrap();
    let first_cookie = first.cookie.unwrap();

    // Learn a full cookie from the first server via a truncated response.
    let full = echoed(&first_cookie, b"pinsrvck");
    let resp = truncated_response(&first, full);
    machine.on_event(
        ClientEvent::Response {
            tag: first.tag,
            from: first.to,
            message: MsgRef::Owned(resp),
            protocol: Protocol::Udp,
        },
        1,
        &mut out,
    );
    let tcp_retry = out.pop().unwrap();
    assert_eq!(tcp_retry.to, first.to);
    assert_eq!(tcp_retry.cookie, Some(full));

    // A timeout rotates to the other upstream: the learned cookie must NOT
    // follow — other servers get the bare client cookie.
    machine.on_event(ClientEvent::Timeout { tag: tcp_retry.tag }, 2, &mut out);
    let rotated = out.pop().unwrap();
    assert_ne!(rotated.to, first.to, "retry rotates to the next upstream");
    let rotated_cookie = rotated.cookie.unwrap();
    assert!(!rotated_cookie.has_server_part());
    assert_eq!(rotated_cookie.client_part(), first_cookie.client_part());
}

#[test]
fn keyed_secret_derives_per_destination_cookies() {
    // RFC 7873 §6: with --cookie-secret, the client cookie is a keyed
    // hash over the destination — distinct per server, identical across
    // lookups of different names, and stable for one (secret, server).
    let secret = [7u8; 16];
    let other_server = Ipv4Addr::new(198, 51, 100, 54);
    let core_for = |secret: [u8; 16]| {
        let mut config = ResolverConfig::external(vec![SERVER, other_server]);
        config.cookie_secret = Some(secret);
        config.retries = 3;
        ResolverCore::new(config)
    };

    let q = |name: &str| Question::new(name.parse().unwrap(), RecordType::A);
    let mut a = DirectMachine::new(core_for(secret), q("alpha.test"), SERVER, false, None);
    let mut b = DirectMachine::new(core_for(secret), q("beta.test"), SERVER, false, None);
    let mut c = DirectMachine::new(core_for(secret), q("alpha.test"), other_server, false, None);
    let mut out = Vec::new();
    a.start(0, &mut out);
    let cookie_a = out.pop().unwrap().cookie.unwrap();
    b.start(0, &mut out);
    let cookie_b = out.pop().unwrap().cookie.unwrap();
    c.start(0, &mut out);
    let cookie_c = out.pop().unwrap().cookie.unwrap();

    assert_eq!(
        cookie_a.client_part(),
        cookie_b.client_part(),
        "keyed cookies do not depend on the queried name"
    );
    assert_ne!(
        cookie_a.client_part(),
        cookie_c.client_part(),
        "each destination gets its own client cookie"
    );

    // A different secret changes every cookie; the default (no secret)
    // still derives from the name.
    let mut d = DirectMachine::new(core_for([8u8; 16]), q("alpha.test"), SERVER, false, None);
    d.start(0, &mut out);
    assert_ne!(
        out.pop().unwrap().cookie.unwrap().client_part(),
        cookie_a.client_part()
    );
    let mut plain = DirectMachine::new(external_core(), q("alpha.test"), SERVER, false, None);
    let mut plain2 = DirectMachine::new(external_core(), q("beta.test"), SERVER, false, None);
    plain.start(0, &mut out);
    let p1 = out.pop().unwrap().cookie.unwrap();
    plain2.start(0, &mut out);
    let p2 = out.pop().unwrap().cookie.unwrap();
    assert_ne!(
        p1.client_part(),
        p2.client_part(),
        "default derivation stays per-name"
    );
}

#[test]
fn keyed_cookies_still_learn_and_echo_server_cookies() {
    let mut config = ResolverConfig::external(vec![SERVER]);
    config.cookie_secret = Some([42u8; 16]);
    config.retries = 3;
    let core = ResolverCore::new(config);
    let question = Question::new("keyed-echo.test".parse().unwrap(), RecordType::A);
    let mut machine = DirectMachine::new(core, question, SERVER, false, None);
    let mut out = Vec::new();
    assert!(matches!(machine.start(0, &mut out), StepStatus::Running));
    let first = out.pop().unwrap();
    let first_cookie = first.cookie.unwrap();
    assert!(!first_cookie.has_server_part());

    // Server echoes our keyed client part with its server part appended
    // on a truncated answer; the same-server TCP retry must carry it.
    let full = echoed(&first_cookie, b"KEYEDSRV");
    let response = truncated_response(&first, full);
    let status = machine.on_event(
        ClientEvent::Response {
            tag: first.tag,
            from: SERVER,
            message: MsgRef::Owned(response),
            protocol: Protocol::Udp,
        },
        1,
        &mut out,
    );
    assert!(matches!(status, StepStatus::Running));
    let retry = out.pop().unwrap();
    assert_eq!(retry.protocol, Protocol::Tcp);
    let retry_cookie = retry.cookie.unwrap();
    assert!(retry_cookie.has_server_part(), "learned cookie echoed");
    assert_eq!(retry_cookie.client_part(), first_cookie.client_part());
}

#[test]
fn cookies_can_be_disabled_by_config() {
    let mut config = ResolverConfig::external(vec![SERVER]);
    config.edns_cookies = false;
    let core = ResolverCore::new(config);
    let question = Question::new("nocookie.test".parse().unwrap(), RecordType::A);
    let mut machine = DirectMachine::new(core, question, SERVER, false, None);
    let mut out = Vec::new();
    machine.start(0, &mut out);
    assert_eq!(out.pop().unwrap().cookie, None);
}

#[test]
fn wire_server_echoes_cookie_over_real_sockets() {
    let server_ip = Ipv4Addr::new(203, 0, 113, 9);
    let mut zone = Zone::new(
        "echo.test".parse().unwrap(),
        "ns1.echo.test".parse().unwrap(),
        300,
    );
    zone.add(zdns_wire::Record::new(
        "echo.test".parse().unwrap(),
        300,
        zdns_wire::RData::A("192.0.2.99".parse().unwrap()),
    ));
    let mut universe = ExplicitUniverse::new();
    universe.host(server_ip, zone);
    let server =
        zdns_netsim::WireServer::start(Arc::new(universe) as Arc<dyn Universe>, server_ip).unwrap();

    let question = Question::new("echo.test".parse().unwrap(), RecordType::A);
    let client_cookie = Cookie::client(*b"CLNTCOOK");
    let mut query = Message::query(0x7777, question);
    query.edns.as_mut().unwrap().set_cookie(client_cookie);

    let mut transport = UdpTransport::bind(Ipv4Addr::LOCALHOST).unwrap();
    let addr: SocketAddr = server.addr();
    let response = transport
        .exchange(&query, addr, Protocol::Udp, Duration::from_secs(2))
        .unwrap();
    let echoed = response
        .edns
        .as_ref()
        .and_then(|e| e.cookie())
        .expect("server echoes a cookie");
    assert_eq!(echoed.client_part(), client_cookie.client_part());
    assert_eq!(echoed.server_part(), &SERVER_COOKIE);
}
