//! Figure 2 — internal resolver cache performance: successes/second and
//! cache hit rate vs. selective-cache capacity (50K–1M entries) at 50K
//! threads, iterative A and PTR.
//!
//! Paper shape: successes grow >3× across the sweep while the hit rate
//! moves only a few points; performance plateaus near 600K entries.
//!
//! Run: `cargo run --release -p zdns-bench --bin fig2_cache_sweep`

use zdns_bench::*;

fn main() {
    let quick = quick_mode();
    let universe = bench_universe();
    let cache_grid: &[usize] = if quick {
        &[50_000, 200_000, 600_000, 1_000_000]
    } else {
        &[
            50_000, 100_000, 200_000, 400_000, 600_000, 800_000, 1_000_000,
        ]
    };
    let threads = if quick { 10_000 } else { 50_000 };
    println!("Figure 2: successes/second and hit rate vs cache size @ {threads} threads\n");
    for workload in [Workload::A, Workload::Ptr] {
        println!("-- {} lookups, iterative --", workload.label());
        let table = TablePrinter::new(&["cache_size", "succ/s", "hit_%", "queries/lookup"]);
        let mut first_rate = None;
        let mut last_rate = 0.0;
        for &cache_size in cache_grid {
            let spec = ScanSpec {
                resolver: TargetResolver::Iterative,
                workload,
                threads,
                cache_size,
                jobs: jobs_for(threads, quick),
                ..ScanSpec::default()
            };
            let o = run_scan(&universe, &spec);
            let qpl = o.report.queries_sent as f64 / o.report.jobs.max(1) as f64;
            table.row(&[
                cache_size.to_string(),
                format!("{:.0}", o.successes_per_sec),
                format!("{:.1}", o.cache_hit_rate * 100.0),
                format!("{qpl:.2}"),
            ]);
            first_rate.get_or_insert(o.successes_per_sec);
            last_rate = o.successes_per_sec;
        }
        if let Some(first) = first_rate {
            println!(
                "growth across sweep: {:.2}x (paper: >3x for PTR)\n",
                last_rate / first.max(1.0)
            );
        }
    }
    println!("paper reference: plateau at ~600K entries; hit-rate change <5 points.");
}
