//! Table 3 — the evaluation dataset: fqdn/domain/TLD counts per category
//! for the CT-log-like corpus.
//!
//! Paper numbers:
//! ```text
//!               fqdn         domain      tld
//! legacy gTLDs  129,644,044  45,865,899  5
//! ngTLDs        14,228,236   6,094,090   1211
//! ccTLDs        90,659,109   41,574,286  486
//! All           234,531,389  93,534,275  1702
//! ```
//!
//! The harness generates a corpus sample and scales the measured shares to
//! the paper's 234.5M-fqdn total.
//!
//! Run: `cargo run --release -p zdns-bench --bin table3_dataset`

use zdns_bench::quick_mode;
use zdns_bench::TablePrinter;
use zdns_workloads::CtCorpus;

fn main() {
    let sample: u64 = if quick_mode() { 200_000 } else { 2_000_000 };
    let corpus = CtCorpus::new(0x5DA5_2D45, 486, 1211);
    let stats = corpus.stats(sample);
    let scale = 234_531_389.0 / stats.fqdns as f64;

    println!(
        "Table 3: Certificate Transparency domains dataset (sample of {sample} fqdns, scaled)\n"
    );
    let table = TablePrinter::new(&[
        "category",
        "fqdn",
        "domain",
        "tld",
        "paper_fqdn",
        "paper_domain",
    ]);
    let rows = [
        (
            "legacy gTLDs",
            stats.fqdns_by_category.0,
            stats.domains_by_category.0,
            stats.tlds_by_category.0,
            "129,644,044",
            "45,865,899",
        ),
        (
            "ngTLDs",
            stats.fqdns_by_category.1,
            stats.domains_by_category.1,
            stats.tlds_by_category.1,
            "14,228,236",
            "6,094,090",
        ),
        (
            "ccTLDs",
            stats.fqdns_by_category.2,
            stats.domains_by_category.2,
            stats.tlds_by_category.2,
            "90,659,109",
            "41,574,286",
        ),
    ];
    for (label, fqdns, domains, tlds, paper_f, paper_d) in rows {
        table.row(&[
            label.to_string(),
            format!("{:.0}", fqdns as f64 * scale),
            format!("{:.0}", domains as f64 * scale),
            tlds.to_string(),
            paper_f.to_string(),
            paper_d.to_string(),
        ]);
    }
    table.row(&[
        "All".to_string(),
        format!("{:.0}", stats.fqdns as f64 * scale),
        format!("{:.0}", stats.domains as f64 * scale),
        (stats.tlds_by_category.0 + stats.tlds_by_category.1 + stats.tlds_by_category.2)
            .to_string(),
        "234,531,389".to_string(),
        "93,534,275".to_string(),
    ]);
    println!(
        "\nnote: the sample touches the head of the Zipf TLD distribution; the\n\
         registry holds exactly 5 + 1211 + 486 = 1702 TLDs (run the zdns-zones\n\
         tests for the registry-level counts)."
    );
}
