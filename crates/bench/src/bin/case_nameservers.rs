//! §5 case study — nameserver (in)consistency: scan domains with the
//! `--all-nameservers` extension, measuring per-nameserver availability
//! (retries needed) and response consistency.
//!
//! Paper findings to reproduce in shape:
//! * ~0.55% of resolvable domains have ≥1 nameserver needing ≥2 retries;
//! * ~0.01% have a nameserver needing 10 retries, 31% of those at
//!   `namebrightdns.com`, with `.vn`/`.ng` over-represented;
//! * >99.99% of domains return consistent A records across nameservers;
//! * no relationship between content category and availability.
//!
//! Run: `cargo run --release -p zdns-bench --bin case_nameservers`

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use zdns_bench::{bench_universe, quick_mode, TablePrinter};
use zdns_core::{Resolver, ResolverConfig};
use zdns_framework::{run_sim_scan_with, Conf};
use zdns_modules::AllNameserversModule;
use zdns_workloads::{categorize, CtCorpus};
use zdns_zones::Universe;

fn main() {
    let quick = quick_mode();
    let universe = bench_universe();
    let corpus = CtCorpus::new(universe.config().seed, 486, 1211);
    let scan_size: u64 = if quick { 20_000 } else { 150_000 };

    // §5 methodology: up to 10 retries per query to approximate
    // availability.
    let mut conf = Conf::parse(["ALLNAMESERVERS", "--threads", "4000", "--retries", "10"])
        .expect("valid configuration");
    conf.resolver.iteration_timeout = 400 * zdns_netsim::MILLIS;
    let resolver = {
        let mut rc: ResolverConfig = conf.resolver.clone();
        rc.root_hints = universe.root_hints();
        Resolver::new(rc)
    };

    let total = Arc::new(AtomicU64::new(0));
    let flaky2 = Arc::new(AtomicU64::new(0)); // ≥2 retries on some NS
    let flaky10 = Arc::new(AtomicU64::new(0)); // ≥10 retries
    let inconsistent = Arc::new(AtomicU64::new(0));
    let flaky10_by_provider: Arc<Mutex<HashMap<String, u64>>> =
        Arc::new(Mutex::new(HashMap::new()));
    let flaky_by_category: Arc<Mutex<HashMap<&'static str, (u64, u64)>>> =
        Arc::new(Mutex::new(HashMap::new()));

    let seed = universe.config().seed;
    let (t2, f2, f10, inc, prov, cat) = (
        Arc::clone(&total),
        Arc::clone(&flaky2),
        Arc::clone(&flaky10),
        Arc::clone(&inconsistent),
        Arc::clone(&flaky10_by_provider),
        Arc::clone(&flaky_by_category),
    );
    let module = Arc::new(AllNameserversModule::default());
    let inputs = corpus.base_domains(scan_size);
    let report = run_sim_scan_with(
        &conf,
        Arc::clone(&universe) as Arc<dyn Universe>,
        module,
        &resolver,
        inputs,
        move |o| {
            if !o.status.is_success() {
                return;
            }
            t2.fetch_add(1, Ordering::Relaxed);
            let max_retries = o.data["max_retries"].as_u64().unwrap_or(0);
            let category = categorize(seed, &o.name).as_str();
            let mut cats = cat.lock();
            let entry = cats.entry(category).or_insert((0, 0));
            entry.1 += 1;
            if max_retries >= 2 {
                f2.fetch_add(1, Ordering::Relaxed);
                entry.0 += 1;
            }
            if max_retries >= 10 {
                f10.fetch_add(1, Ordering::Relaxed);
                // Attribute to the provider via the NS hostname.
                if let Some(ns) = o.data["nameservers"][0]["nameserver"].as_str() {
                    let provider = ns.split('.').nth(1).unwrap_or("?").to_string();
                    *prov.lock().entry(provider).or_insert(0) += 1;
                }
            }
            if o.data["consistent"] == false {
                inc.fetch_add(1, Ordering::Relaxed);
            }
        },
    );

    let total = total.load(Ordering::Relaxed) as f64;
    println!(
        "§5 nameserver (in)consistency — {scan_size} domains scanned, {} resolvable\n",
        total as u64
    );
    println!(
        "completed in {} of virtual time (paper: 18.5h for 234M fqdns)\n",
        zdns_bench::human_time(zdns_netsim::as_secs_f64(report.makespan))
    );
    let table = TablePrinter::new(&["metric", "measured", "paper"]);
    table.row(&[
        "domains with NS needing >=2 retries".to_string(),
        format!(
            "{:.2}%",
            flaky2.load(Ordering::Relaxed) as f64 / total * 100.0
        ),
        "0.55%".to_string(),
    ]);
    table.row(&[
        "domains with NS needing 10 retries".to_string(),
        format!(
            "{:.3}%",
            flaky10.load(Ordering::Relaxed) as f64 / total * 100.0
        ),
        "0.01%".to_string(),
    ]);
    table.row(&[
        "domains with inconsistent A sets".to_string(),
        format!(
            "{:.3}%",
            inconsistent.load(Ordering::Relaxed) as f64 / total * 100.0
        ),
        "<0.01%".to_string(),
    ]);

    println!("\n10-retry domains by provider (paper: 31% namebrightdns.com):");
    let providers = flaky10_by_provider.lock();
    let f10_total: u64 = providers.values().sum();
    let mut sorted: Vec<_> = providers.iter().collect();
    sorted.sort_by(|a, b| b.1.cmp(a.1));
    for (provider, count) in sorted.iter().take(5) {
        println!(
            "  {provider}: {:.0}%",
            **count as f64 / f10_total.max(1) as f64 * 100.0
        );
    }

    println!("\navailability by content category (paper: no relationship):");
    let cats = flaky_by_category.lock();
    let mut rates: Vec<(&str, f64)> = cats
        .iter()
        .filter(|(_, (_, n))| *n > 100)
        .map(|(k, (flaky, n))| (*k, *flaky as f64 / *n as f64 * 100.0))
        .collect();
    rates.sort_by(|a, b| a.0.cmp(b.0));
    for (category, rate) in rates {
        println!("  {category:>14}: {rate:.2}% flaky");
    }
}
