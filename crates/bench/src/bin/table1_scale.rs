//! Table 1 — ZDNS performance at scale: 50M A lookups and the full public
//! IPv4 PTR sweep, for Google / Cloudflare / iterative resolution.
//!
//! Paper rows:
//! ```text
//! A    Google      50M        96.4%   10.6m
//! A    Cloudflare  50M        97.0%   10.3m
//! A    Iterative   50M        96.7%   46.3m
//! PTR  Google      100% IPv4  93.0%   12.1h
//! PTR  Cloudflare  100% IPv4  93.5%   12.9h
//! PTR  Iterative   100% IPv4  88.5%   116.7h
//! ```
//!
//! The harness measures a steady-state sample at the paper's operating
//! point (50K threads, /28) and extrapolates wall time to the full
//! workload from the measured rate — the same arithmetic the paper's
//! durations imply.
//!
//! Run: `cargo run --release -p zdns-bench --bin table1_scale`

use zdns_bench::*;
use zdns_workloads::public_ipv4_count;

fn main() {
    let quick = quick_mode();
    let universe = bench_universe();
    let threads = if quick { 10_000 } else { 50_000 };
    let full_a = 50_000_000.0;
    let full_ptr = public_ipv4_count() as f64;

    println!("Table 1: ZDNS performance (measured sample + full-scale extrapolation)\n");
    let table = TablePrinter::new(&[
        "lookup",
        "resolver",
        "workload",
        "succ_%",
        "succ/s",
        "time(full)",
        "paper",
    ]);
    let rows: [(Workload, TargetResolver, f64, &str, &str); 6] = [
        (
            Workload::A,
            TargetResolver::Google,
            full_a,
            "50M",
            "10.6m / 96.4%",
        ),
        (
            Workload::A,
            TargetResolver::Cloudflare,
            full_a,
            "50M",
            "10.3m / 97.0%",
        ),
        (
            Workload::A,
            TargetResolver::Iterative,
            full_a,
            "50M",
            "46.3m / 96.7%",
        ),
        (
            Workload::Ptr,
            TargetResolver::Google,
            full_ptr,
            "100% IPv4",
            "12.1h / 93.0%",
        ),
        (
            Workload::Ptr,
            TargetResolver::Cloudflare,
            full_ptr,
            "100% IPv4",
            "12.9h / 93.5%",
        ),
        (
            Workload::Ptr,
            TargetResolver::Iterative,
            full_ptr,
            "100% IPv4",
            "116.7h / 88.5%",
        ),
    ];
    for (workload, resolver, total, label, paper) in rows {
        let spec = ScanSpec {
            resolver,
            workload,
            threads,
            source_ips: 16,
            jobs: jobs_for(threads, quick),
            ..ScanSpec::default()
        };
        let o = run_scan(&universe, &spec);
        let full_time = extrapolate_time(total, o.successes_per_sec / o.success_rate.max(1e-9));
        table.row(&[
            workload.label().to_string(),
            resolver.label().to_string(),
            label.to_string(),
            format!("{:.1}", o.success_rate * 100.0),
            format!("{:.0}", o.successes_per_sec),
            human_time(full_time),
            paper.to_string(),
        ]);
    }
    println!(
        "\nshape checks: iterative is several times slower than external mode;\n\
         success drops only a few points from A scans to the full PTR sweep."
    );
}
