//! Table 2 — alternatives vs ZDNS: MassDNS, ZDNS+Unbound, ZDNS iterative,
//! ZDNS+public resolvers, on A and PTR workloads (10M names in the paper;
//! a steady-state sample here). ZDNS runs 60K threads, 600K cache entries,
//! ≤5 retries, matching §4.2.
//!
//! Paper rows (success/s, % total success):
//! ```text
//! MassDNS  A   Google      197K  65%      ZDNS  A   Iterative  18K    97%
//! MassDNS  PTR Google      179K  61%      ZDNS  PTR Iterative  11.8K  90%
//! MassDNS  A   Cloudflare  224K  67%      ZDNS  A   Google     93.1K  96%
//! MassDNS  PTR Cloudflare  183K  63%      ZDNS  PTR Google     88.8K  93%
//! ZDNS     A   Unbound     4.9K  96%      ZDNS  A   Cloudflare 92.5K  97%
//! ZDNS     PTR Unbound     4.5K  91%      ZDNS  PTR Cloudflare 99.1K  94%
//! ```
//!
//! Run: `cargo run --release -p zdns-bench --bin table2_tools`

use std::sync::Arc;

use zdns_baselines::{massdns_engine_config, MassDnsMachine};
use zdns_bench::*;
use zdns_netsim::{Engine, SimClient};
use zdns_wire::{Name, RecordType};
use zdns_workloads::{CtCorpus, Ipv4Walk};
use zdns_zones::Universe;

fn massdns_row(
    universe: &Arc<zdns_zones::SyntheticUniverse>,
    workload: Workload,
    resolver: TargetResolver,
    jobs: u64,
) -> (f64, f64) {
    let addr = match resolver {
        TargetResolver::Google => GOOGLE,
        _ => CLOUDFLARE,
    };
    // MassDNS's default concurrency is 10K sockets; its aggressive resend
    // interval (500 ms) keeps offered load high.
    let mut engine = Engine::new(
        massdns_engine_config(10_000, 11),
        Arc::clone(universe) as Arc<dyn Universe>,
    );
    engine.add_resolver(tuned_google());
    engine.add_resolver(tuned_cloudflare());
    let corpus = CtCorpus::new(universe.config().seed, 486, 1211);
    let mut ips = Ipv4Walk::new(991, jobs);
    let mut i = 0u64;
    let report = engine.run(move || {
        if i >= jobs {
            return None;
        }
        i += 1;
        let name: Name = match workload {
            Workload::A => corpus.fqdn(3_000_000 + i, 0).parse().ok()?,
            Workload::Ptr => Name::reverse_ipv4(ips.next()?),
        };
        let qtype = match workload {
            Workload::A => RecordType::A,
            Workload::Ptr => RecordType::PTR,
        };
        Some(Box::new(MassDnsMachine::new(addr, name, qtype)) as Box<dyn SimClient>)
    });
    (report.steady_success_rate(), report.success_rate())
}

fn main() {
    let quick = quick_mode();
    let universe = bench_universe();
    let zdns_threads = if quick { 10_000 } else { 60_000 };
    let jobs = if quick { 30_000 } else { 300_000 };

    println!("Table 2: alternatives vs ZDNS (10M-name workload, sampled)\n");
    let table = TablePrinter::new(&["tool", "lookup", "resolver", "succ/s", "succ_%", "paper"]);

    // MassDNS rows.
    for (workload, resolver, paper) in [
        (Workload::A, TargetResolver::Google, "197K / 65%"),
        (Workload::Ptr, TargetResolver::Google, "179K / 61%"),
        (Workload::A, TargetResolver::Cloudflare, "224K / 67%"),
        (Workload::Ptr, TargetResolver::Cloudflare, "183K / 63%"),
    ] {
        let (rate, success) = massdns_row(&universe, workload, resolver, jobs);
        table.row(&[
            "MassDNS".to_string(),
            workload.label().to_string(),
            resolver.label().to_string(),
            format!("{rate:.0}"),
            format!("{:.0}", success * 100.0),
            paper.to_string(),
        ]);
    }

    // ZDNS rows: Unbound, Iterative, Google, Cloudflare.
    for (workload, resolver, paper) in [
        (Workload::A, TargetResolver::Unbound, "4.9K / 96%"),
        (Workload::Ptr, TargetResolver::Unbound, "4.5K / 91%"),
        (Workload::A, TargetResolver::Iterative, "18K / 97%"),
        (Workload::Ptr, TargetResolver::Iterative, "11.8K / 90%"),
        (Workload::A, TargetResolver::Google, "93.1K / 96%"),
        (Workload::Ptr, TargetResolver::Google, "88.8K / 93%"),
        (Workload::A, TargetResolver::Cloudflare, "92.5K / 97%"),
        (Workload::Ptr, TargetResolver::Cloudflare, "99.1K / 94%"),
    ] {
        let spec = ScanSpec {
            resolver,
            workload,
            threads: zdns_threads,
            retries: 5,
            cache_size: 600_000,
            jobs,
            ..ScanSpec::default()
        };
        let o = run_scan(&universe, &spec);
        table.row(&[
            "ZDNS".to_string(),
            workload.label().to_string(),
            resolver.label().to_string(),
            format!("{:.0}", o.successes_per_sec),
            format!("{:.0}", o.success_rate * 100.0),
            paper.to_string(),
        ]);
    }
    println!(
        "\nshape checks: MassDNS trades success rate for raw rate; ZDNS iterative\n\
         beats Unbound ~2.6-3.6x; public-resolver rows beat iterative ~5x."
    );
}
