//! §6 case study — CAA records: scan base domains with the `CAALOOKUP`
//! module and reproduce the deployment/configuration/issuer breakdown.
//!
//! Paper findings to reproduce in shape:
//! * ~1.69% of NOERROR domains hold CAA; ccTLDs ≈48% of all CAA records,
//!   `.pl` alone ≈25% of CAA-enabled cc domains;
//! * tags: issue 96.8%, issuewild 55.27%, iodef 6.87%; ~0.04% invalid
//!   (concentrated at one registrar); ~8000 domains need a CNAME hop;
//! * issuers: Let's Encrypt in ≈92.4% of issue sets; Comodo and DigiCert
//!   each >50%.
//!
//! Run: `cargo run --release -p zdns-bench --bin case_caa`

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use zdns_bench::{bench_universe, quick_mode, TablePrinter};
use zdns_core::{Resolver, ResolverConfig};
use zdns_framework::{run_sim_scan_with, Conf};
use zdns_modules::CaaLookupModule;
use zdns_workloads::CtCorpus;
use zdns_zones::tlds::TldCategory;
use zdns_zones::Universe;

#[derive(Default)]
struct Tally {
    noerror: AtomicU64,
    caa: AtomicU64,
    caa_cc: AtomicU64,
    caa_pl: AtomicU64,
    issue: AtomicU64,
    issuewild: AtomicU64,
    iodef: AtomicU64,
    invalid: AtomicU64,
    via_cname: AtomicU64,
    le: AtomicU64,
    comodo: AtomicU64,
    digicert: AtomicU64,
}

fn main() {
    let quick = quick_mode();
    let universe = bench_universe();
    let corpus = CtCorpus::new(universe.config().seed, 486, 1211);
    let scan_size: u64 = if quick { 50_000 } else { 400_000 };

    let conf = Conf::parse(["CAALOOKUP", "--threads", "4000"]).expect("valid configuration");
    let resolver = {
        let mut rc: ResolverConfig = conf.resolver.clone();
        rc.root_hints = universe.root_hints();
        Resolver::new(rc)
    };
    let tally = Arc::new(Tally::default());
    let t = Arc::clone(&tally);
    let u2 = Arc::clone(&universe);
    let module = Arc::new(CaaLookupModule);
    let inputs = corpus.base_domains(scan_size);
    run_sim_scan_with(
        &conf,
        Arc::clone(&universe) as Arc<dyn Universe>,
        module,
        &resolver,
        inputs,
        move |o| {
            if o.status != zdns_core::Status::NoError {
                return;
            }
            t.noerror.fetch_add(1, Ordering::Relaxed);
            let records = o.data["records"].as_array().cloned().unwrap_or_default();
            if records.is_empty() {
                return;
            }
            t.caa.fetch_add(1, Ordering::Relaxed);
            let name: zdns_wire::Name = match o.name.parse() {
                Ok(n) => n,
                Err(_) => return,
            };
            if let Some(tld) = u2.tld_of(&name) {
                if tld.category == TldCategory::CcTld {
                    t.caa_cc.fetch_add(1, Ordering::Relaxed);
                    if tld.label == "pl" {
                        t.caa_pl.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            let issue = o.data["issue"].as_array().cloned().unwrap_or_default();
            if !issue.is_empty() {
                t.issue.fetch_add(1, Ordering::Relaxed);
            }
            if o.data["issuewild"]
                .as_array()
                .is_some_and(|a| !a.is_empty())
            {
                t.issuewild.fetch_add(1, Ordering::Relaxed);
            }
            if o.data["has_iodef"] == true {
                t.iodef.fetch_add(1, Ordering::Relaxed);
            }
            if o.data["invalid_tags"]
                .as_array()
                .is_some_and(|a| !a.is_empty())
            {
                t.invalid.fetch_add(1, Ordering::Relaxed);
            }
            if o.data["via_cname"] == true {
                t.via_cname.fetch_add(1, Ordering::Relaxed);
            }
            let issue_values: Vec<String> = issue
                .iter()
                .filter_map(|v| v.as_str().map(str::to_string))
                .collect();
            if issue_values.iter().any(|v| v.contains("letsencrypt")) {
                t.le.fetch_add(1, Ordering::Relaxed);
            }
            if issue_values.iter().any(|v| v.contains("comodo")) {
                t.comodo.fetch_add(1, Ordering::Relaxed);
            }
            if issue_values.iter().any(|v| v.contains("digicert")) {
                t.digicert.fetch_add(1, Ordering::Relaxed);
            }
        },
    );

    let noerror = tally.noerror.load(Ordering::Relaxed) as f64;
    let caa = tally.caa.load(Ordering::Relaxed) as f64;
    println!(
        "§6 CAA records — {scan_size} base domains scanned, {} NOERROR, {} CAA holders\n",
        noerror as u64, caa as u64
    );
    let pct = |n: &AtomicU64, base: f64| n.load(Ordering::Relaxed) as f64 / base.max(1.0) * 100.0;
    let table = TablePrinter::new(&["metric", "measured", "paper"]);
    table.row(&[
        "CAA rate among NOERROR domains".to_string(),
        format!("{:.2}%", caa / noerror * 100.0),
        "1.69%".to_string(),
    ]);
    table.row(&[
        "ccTLD share of CAA records".to_string(),
        format!("{:.0}%", pct(&tally.caa_cc, caa)),
        "48%".to_string(),
    ]);
    table.row(&[
        ".pl share of cc CAA records".to_string(),
        format!(
            "{:.0}%",
            pct(&tally.caa_pl, tally.caa_cc.load(Ordering::Relaxed) as f64)
        ),
        "25%".to_string(),
    ]);
    table.row(&[
        "issue tag".to_string(),
        format!("{:.1}%", pct(&tally.issue, caa)),
        "96.8%".to_string(),
    ]);
    table.row(&[
        "issuewild tag".to_string(),
        format!("{:.1}%", pct(&tally.issuewild, caa)),
        "55.27%".to_string(),
    ]);
    table.row(&[
        "iodef tag".to_string(),
        format!("{:.1}%", pct(&tally.iodef, caa)),
        "6.87%".to_string(),
    ]);
    table.row(&[
        "invalid tags".to_string(),
        format!("{:.2}%", pct(&tally.invalid, caa)),
        "0.04%".to_string(),
    ]);
    table.row(&[
        "CAA via CNAME chain".to_string(),
        format!("{:.2}%", pct(&tally.via_cname, caa)),
        "0.74% (8000/1.08M)".to_string(),
    ]);
    table.row(&[
        "Let's Encrypt in issue set".to_string(),
        format!(
            "{:.1}%",
            pct(&tally.le, tally.issue.load(Ordering::Relaxed) as f64)
        ),
        "92.4%".to_string(),
    ]);
    table.row(&[
        "Comodo in issue set".to_string(),
        format!(
            "{:.1}%",
            pct(&tally.comodo, tally.issue.load(Ordering::Relaxed) as f64)
        ),
        ">50%".to_string(),
    ]);
    table.row(&[
        "DigiCert in issue set".to_string(),
        format!(
            "{:.1}%",
            pct(&tally.digicert, tally.issue.load(Ordering::Relaxed) as f64)
        ),
        ">50%".to_string(),
    ]);
}
