//! Appendix C — exposed lookup chain: the same traced A lookup rendered as
//! dig's text output and as ZDNS's JSON.
//!
//! Run: `cargo run --release -p zdns-bench --bin appendix_trace`

use std::sync::Arc;

use parking_lot::Mutex;
use zdns_bench::bench_universe;
use zdns_core::{collecting_sink, Resolver, ResolverConfig};
use zdns_netsim::{Engine, EngineConfig};
use zdns_wire::{Name, Question, RecordType};
use zdns_zones::Universe;

fn main() {
    let universe = bench_universe();
    // Pick an existing .com domain to play "google.com".
    let name: Name = (0..50_000)
        .map(|i| format!("trace{i}.com").parse::<Name>().unwrap())
        .find(|n| universe.domain_exists(n))
        .expect("an existing domain");

    let mut config = ResolverConfig::iterative(universe.root_hints());
    config.trace = true;
    let resolver = Resolver::new(config);

    let mut engine = Engine::new(
        EngineConfig {
            threads: 1,
            wire_fidelity: true,
            ..EngineConfig::default()
        },
        Arc::clone(&universe) as Arc<dyn Universe>,
    );
    let (sink, collected) = collecting_sink();
    let job_name = name.clone();
    let mut remaining = 1;
    engine.run(move || {
        if remaining == 0 {
            return None;
        }
        remaining -= 1;
        Some(resolver.machine(
            Question::new(job_name.clone(), RecordType::A),
            Some(sink.clone()),
        ))
    });
    let results: &Mutex<Vec<zdns_core::LookupResult>> = &collected;
    let results = results.lock();
    let result = results.first().expect("one lookup result");

    println!("=== dig +trace style output (Appendix C, Figure 5) ===\n");
    println!("; <<>> zdns-repro dig-model <<>> {name} +trace");
    println!(";; global options: +cmd");
    for step in &result.trace {
        if let Some(msg) = &step.results {
            for rec in msg.answers.iter().chain(&msg.authorities) {
                println!(
                    "{:<30} {:>8} IN {:<6} {}",
                    rec.name,
                    rec.ttl,
                    rec.rtype.to_string(),
                    summarize(&rec.rdata)
                );
            }
            println!(
                ";; Received from {} (depth {})\n",
                step.name_server, step.depth
            );
        }
    }

    println!("=== ZDNS JSON output (Appendix C, Figure 6) ===\n");
    println!(
        "{}",
        serde_json::to_string_pretty(&result.to_json()).expect("valid JSON")
    );
}

fn summarize(rdata: &zdns_wire::RData) -> String {
    match rdata {
        zdns_wire::RData::A(a) => a.to_string(),
        zdns_wire::RData::Ns(n) => format!("{n}."),
        zdns_wire::RData::Soa(s) => format!("{} {} {}", s.mname, s.rname, s.serial),
        other => format!("{other:?}"),
    }
}
