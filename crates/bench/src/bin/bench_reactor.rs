//! Reactor syscall-batching A/B: lookups/sec for the batched
//! (`sendmmsg`/`recvmmsg`, `--batch-size 32`) reactor versus per-datagram
//! syscalls (`--batch-size 1`) on a zero-latency loopback workload with a
//! 1000-lookup admission window — the configuration where syscall cost,
//! not network latency, is the binding constraint.
//!
//! Writes a `BENCH_reactor.json` artifact recording both rates so CI can
//! track the bench trajectory, and exits non-zero if `--min-speedup X` is
//! given and the batched/per-datagram ratio lands below it (the perf
//! gate).
//!
//! Run: `cargo run --release -p zdns-bench --bin bench_reactor -- [--quick]
//! [--out PATH] [--min-speedup X]`

use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Instant;

use zdns_bench::quick_mode;
use zdns_core::{
    AddrMap, Admission, Driver, DriverReport, Reactor, ReactorConfig, Resolver, ResolverConfig,
};
use zdns_netsim::{WireServer, SECONDS};
use zdns_wire::{Name, Question, RData, Record, RecordType};
use zdns_zones::{ExplicitUniverse, Universe, Zone};

/// The admission window the acceptance criterion names.
const IN_FLIGHT: usize = 1_000;
/// Batch depth for the batched configuration (the reactor default).
const BATCH: usize = 32;

/// `n` A records behind `servers` zero-latency loopback wire servers;
/// external-mode lookups hash across the servers, spreading server-side
/// work over several OS threads so the measured bottleneck is the
/// client's syscall layer.
fn loopback_fleet(
    n: usize,
    servers: usize,
) -> (Vec<WireServer>, Resolver, Arc<AddrMap>, Vec<Question>) {
    let server_ips: Vec<Ipv4Addr> = (0..servers)
        .map(|i| Ipv4Addr::new(203, 0, 113, 50 + i as u8))
        .collect();
    let mut fleet = Vec::new();
    let mut mapping = Vec::new();
    for ip in &server_ips {
        let mut zone = Zone::new(
            "bench.test".parse().unwrap(),
            "ns1.bench.test".parse().unwrap(),
            300,
        );
        for i in 0..n {
            zone.add(Record::new(
                format!("b{i}.bench.test").parse().unwrap(),
                300,
                RData::A(Ipv4Addr::new(10, 9, (i / 256) as u8, (i % 256) as u8)),
            ));
        }
        let mut universe = ExplicitUniverse::new();
        universe.host(*ip, zone);
        let server = WireServer::start(Arc::new(universe) as Arc<dyn Universe>, *ip).unwrap();
        mapping.push((*ip, server.addr()));
        fleet.push(server);
    }
    let addr_map: Arc<AddrMap> = Arc::new(move |ip| {
        mapping
            .iter()
            .find(|(sim, _)| *sim == ip)
            .map(|(_, real)| *real)
            .expect("every query targets a bench server")
    });
    let mut config = ResolverConfig::external(server_ips);
    config.timeout = 2 * SECONDS;
    config.retries = 2;
    let resolver = Resolver::new(config);
    let questions = (0..n)
        .map(|i| {
            Question::new(
                format!("b{i}.bench.test").parse::<Name>().unwrap(),
                RecordType::A,
            )
        })
        .collect();
    (fleet, resolver, addr_map, questions)
}

/// Drive every question through one reactor and return
/// (lookups/sec, driver report).
fn run_once(
    resolver: &Resolver,
    addr_map: &Arc<AddrMap>,
    questions: &[Question],
    batch_size: usize,
) -> (f64, DriverReport) {
    let mut reactor = Reactor::new(
        ReactorConfig {
            max_in_flight: IN_FLIGHT,
            source: Ipv4Addr::LOCALHOST,
            batch_size,
            ..ReactorConfig::default()
        },
        Arc::clone(addr_map),
    )
    .unwrap();
    let mut next = 0usize;
    let mut feed = || {
        if next < questions.len() {
            let machine = resolver.machine(questions[next].clone(), None);
            next += 1;
            Admission::Admit(machine)
        } else {
            Admission::Exhausted
        }
    };
    let mut done = 0usize;
    let mut on_done = |_| done += 1;
    let started = Instant::now();
    let report = reactor.run_scan(&mut feed, &mut on_done);
    let elapsed = started.elapsed();
    assert_eq!(done, questions.len(), "every lookup must complete");
    (questions.len() as f64 / elapsed.as_secs_f64(), report)
}

/// Best of `rounds` runs (loopback benches are noisy on shared runners).
fn best_of(
    rounds: usize,
    resolver: &Resolver,
    addr_map: &Arc<AddrMap>,
    questions: &[Question],
    batch_size: usize,
) -> (f64, DriverReport) {
    let mut best: Option<(f64, DriverReport)> = None;
    for _ in 0..rounds {
        let run = run_once(resolver, addr_map, questions, batch_size);
        if best.as_ref().map(|(r, _)| run.0 > *r).unwrap_or(true) {
            best = Some(run);
        }
    }
    best.expect("rounds >= 1")
}

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Measure this kernel's raw per-datagram send cost through `BatchIo`
/// itself — per-datagram path vs batched path — so the artifact records
/// how expensive syscall *boundaries* are where the bench ran. On
/// mitigation-heavy kernels (KPTI etc.) the boundary runs 0.5–1.5µs and
/// batching pays off ~10×; on paravirt kernels with cheap entry it can
/// be tens of nanoseconds, bounding the achievable end-to-end speedup.
fn measure_syscall_costs() -> (f64, f64) {
    use zdns_core::BatchIo;
    let tx = std::net::UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    let rx = std::net::UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
    let to = rx.local_addr().unwrap();
    tx.set_nonblocking(true).unwrap();
    let payload = vec![0u8; 40];
    let n = 32_000usize;
    let msgs: Vec<(&[u8], std::net::SocketAddr)> =
        (0..n).map(|_| (payload.as_slice(), to)).collect();
    let mut statuses = Vec::new();
    let mut time_path = |io: &mut BatchIo| {
        statuses.clear();
        let started = Instant::now();
        let stats = io.send_batch(&tx, &msgs, &mut statuses, &mut |_| {});
        started.elapsed().as_nanos() as f64 / stats.sent.max(1) as f64
    };
    let per_dg = time_path(&mut BatchIo::per_datagram(1));
    let batched = time_path(&mut BatchIo::new(BATCH));
    (per_dg, batched)
}

fn main() {
    let quick = quick_mode();
    let out_path = arg_value("--out").unwrap_or_else(|| "BENCH_reactor.json".to_string());
    let min_speedup: Option<f64> = arg_value("--min-speedup").map(|v| v.parse().unwrap());
    let lookups = if quick { 8_000 } else { 30_000 };
    let rounds = if quick { 2 } else { 3 };

    let (sendto_ns, sendmmsg_ns) = measure_syscall_costs();
    println!(
        "kernel syscall layer: {sendto_ns:.0} ns/dg per-datagram, {sendmmsg_ns:.0} ns/dg \
         batched ({:.0} ns boundary saved per datagram)",
        sendto_ns - sendmmsg_ns
    );

    let (_fleet, resolver, addr_map, questions) = loopback_fleet(lookups, 4);

    // Warm up server threads, caches, and the page allocator before
    // either timed configuration runs.
    let warm: Vec<Question> = questions.iter().take(lookups / 4).cloned().collect();
    let _ = run_once(&resolver, &addr_map, &warm, BATCH);

    let (per_datagram_rate, per_datagram_report) =
        best_of(rounds, &resolver, &addr_map, &questions, 1);
    let (batched_rate, batched_report) = best_of(rounds, &resolver, &addr_map, &questions, BATCH);
    let speedup = batched_rate / per_datagram_rate;

    let batched_fill = batched_report.datagrams_sent as f64 / batched_report.send_syscalls as f64;
    println!(
        "reactor loopback bench: {lookups} lookups, {IN_FLIGHT} in-flight window, 4 servers \
         (peak in flight: {} per-datagram / {} batched)",
        per_datagram_report.peak_in_flight, batched_report.peak_in_flight
    );
    println!(
        "  per-datagram (batch 1):  {per_datagram_rate:>9.0} lookups/s  \
         ({} send syscalls)",
        per_datagram_report.send_syscalls
    );
    println!(
        "  batched     (batch {BATCH}): {batched_rate:>9.0} lookups/s  \
         ({} send syscalls, {batched_fill:.1} dg/syscall, fill {})",
        batched_report.send_syscalls,
        batched_report.send_batch_fill.summary()
    );
    println!("  speedup: {speedup:.2}x");

    let json = serde_json::json!({
        "bench": "reactor_batched_vs_per_datagram",
        "kernel": {
            "sendto_ns_per_datagram": sendto_ns,
            "sendmmsg_ns_per_datagram": sendmmsg_ns,
            "syscall_boundary_ns_saved_per_datagram": sendto_ns - sendmmsg_ns,
        },
        "workload": {
            "lookups": lookups,
            "in_flight": IN_FLIGHT,
            "servers": 4,
            "latency_ms": 0,
            "quick": quick,
        },
        "per_datagram": {
            "batch_size": 1,
            "lookups_per_sec": per_datagram_rate,
            "send_syscalls": per_datagram_report.send_syscalls,
            "recv_syscalls": per_datagram_report.recv_syscalls,
        },
        "batched": {
            "batch_size": BATCH,
            "lookups_per_sec": batched_rate,
            "send_syscalls": batched_report.send_syscalls,
            "recv_syscalls": batched_report.recv_syscalls,
            "datagrams_per_send_syscall": batched_fill,
            "send_batch_fill": batched_report.send_batch_fill.summary(),
            "recv_batch_fill": batched_report.recv_batch_fill.summary(),
        },
        "speedup": speedup,
    });
    std::fs::write(&out_path, serde_json::to_string_pretty(&json).unwrap()).unwrap();
    println!("wrote {out_path}");

    if let Some(min) = min_speedup {
        if speedup < min {
            eprintln!("bench_reactor: FAIL — speedup {speedup:.2}x below the {min:.2}x gate");
            std::process::exit(1);
        }
        println!("bench_reactor: speedup gate passed ({speedup:.2}x >= {min:.2}x)");
    }
}
